//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal property-testing engine that is source-compatible with
//! the subset of proptest the test suites use:
//!
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `name in strategy` argument syntax;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! - range strategies (`0usize..20`, `0.0f64..1.0`, `1u32..=5`),
//!   [`any`]`::<T>()`, [`Just`], tuple strategies, and
//!   [`collection::vec`] / [`collection::btree_set`] /
//!   [`collection::btree_map`] (also reachable as `prop::collection::*`);
//! - `prop_map` / `prop_filter` / `prop_flat_map` combinators on
//!   [`Strategy`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed derived from the test name (fully reproducible runs),
//! and there is **no shrinking** — on failure the offending inputs are
//! printed as-is. That trade-off keeps the engine small while preserving the
//! bug-finding power of the random search for the suite sizes used here
//! (12–64 cases per property).

#![forbid(unsafe_code)]

use std::fmt::Debug;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum rejected cases (via [`prop_assume!`]) before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration demanding `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: 1024,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

pub mod test_runner {
    //! Deterministic RNG and case-outcome plumbing used by the macros.

    pub use super::ProptestConfig as Config;

    /// Outcome of one generated case, produced by the assertion macros.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by [`crate::prop_assume!`]; try another.
        Reject,
        /// The property failed with the given message.
        Fail(String),
    }

    /// SplitMix64-based deterministic RNG used to drive value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG whose stream is a pure function of `name` — each
        /// property gets its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Next uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of test-case values.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy is
/// just a reproducible sampler.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards values for which `f` returns `false` (retrying up to a
    /// bounded number of times, then panicking like an exhausted filter).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Feeds generated values into `f` to obtain a second-stage strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted 1000 attempts: {}", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Type-erased strategy (see [`Strategy::boxed`]).
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Strategy that always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Sized + Debug {
    /// Produces one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any value of type `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Size specification for collection strategies: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi_exclusive {
            self.lo
        } else {
            self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`, `btree_map`).

    use super::{SizeRange, Strategy, TestRng};
    use std::collections::{BTreeMap, BTreeSet};

    /// Strategy for `Vec<T>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>`; duplicates collapse, so the set size is
    /// *at most* the drawn size (matching real proptest semantics loosely).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`; duplicate keys collapse.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prop {
    //! Namespace mirror so `prop::collection::vec(...)` resolves.
    pub use super::collection;
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude::*`.
    pub use super::test_runner::{Config, TestCaseError};
    pub use super::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest,
        Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, SizeRange, Strategy,
    };
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    let values = ( $( $crate::Strategy::generate(&($strat), &mut rng), )+ );
                    let rendered = format!("{:#?}", values);
                    let ( $($arg,)+ ) = values;
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => passed += 1,
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections ({})",
                                    stringify!($name), rejected
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed after {} passing case(s): {}\ninputs: {}",
                                stringify!($name), passed, msg, rendered
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body (fails the case, printing
/// the generated inputs, instead of unwinding immediately).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), left, right
        );
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "{}\n  both: {:?}", format!($($fmt)+), left);
    }};
}

/// Rejects the current case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(n in 3usize..17, x in 0.25f64..0.75, k in 1u32..=4) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((0.25..0.75).contains(&x));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn collections_and_tuples(
            v in collection::vec(0u64..100, 0..20),
            s in collection::btree_set((0usize..5, 0usize..5), 0..10),
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(s.len() < 10);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(seed in any::<u64>()) {
            let _ = seed;
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails' failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            #[allow(unused)]
            fn always_fails(n in 0usize..10) {
                prop_assert!(n > 100, "n is small: {}", n);
            }
        }
        always_fails();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn combinators_work(n in (1usize..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert!(n < 20);
        }
    }
}

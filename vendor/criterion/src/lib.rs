//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors a minimal, API-compatible harness covering the subset the
//! `dcl_bench` benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::finish`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it reports a simple
//! calibrated wall-clock estimate per benchmark, printed as one line to
//! stdout. Measurement only happens when the binary receives `--bench`
//! (which is what `cargo bench` passes); under `cargo test --benches` (no
//! arguments) or an explicit `--test`, every closure runs exactly once so
//! test runs stay fast — the same mode selection real criterion uses.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Measured time for the sampled batch.
    elapsed: Duration,
    /// Iterations executed in the sampled batch.
    iters: u64,
    /// True when running under `--test`: execute once, skip measurement.
    test_mode: bool,
}

impl Bencher {
    /// Calls `routine` repeatedly and records its average wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.iters = 1;
            self.elapsed = Duration::ZERO;
            return;
        }
        // Calibrate: aim for batches of roughly 20ms, capped for slow routines.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let iters =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = t1.elapsed();
        self.iters = iters;
    }
}

/// Top-level benchmark driver (a stand-in for `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror real criterion: `cargo bench` passes `--bench` to the
        // binary and enables measurement; any other invocation (notably
        // `cargo test --benches`, which passes no arguments, and an explicit
        // `--test`) runs each closure once as a smoke test.
        let mut measure = false;
        for arg in std::env::args() {
            match arg.as_str() {
                "--bench" => measure = true,
                "--test" => {
                    measure = false;
                    break;
                }
                _ => {}
            }
        }
        Criterion {
            test_mode: !measure,
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            test_mode: self.test_mode,
        };
        f(&mut b);
        if self.test_mode {
            println!("test bench {id} ... ok");
        } else if b.iters > 0 {
            let per_iter = b.elapsed.as_nanos() as f64 / b.iters as f64;
            println!(
                "bench {id:<50} {:>12.1} ns/iter ({} iters)",
                per_iter, b.iters
            );
        } else {
            println!("bench {id:<50} (no measurement: closure never called iter)");
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: group_name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim ignores the sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim ignores the target time.
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_and_group_run() {
        let mut c = Criterion { test_mode: true };
        c.bench_function("smoke", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10)
            .bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| {
                b.iter(|| black_box(x * 2))
            });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
            b.iter(|| black_box(x + 1))
        });
        g.finish();
    }

    #[test]
    fn measured_mode_produces_timing() {
        let mut c = Criterion { test_mode: false };
        c.bench_function("timed", |b| b.iter(|| black_box((0..100u64).sum::<u64>())));
    }
}

//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build container has no network access to crates.io, so the workspace
//! vendors this minimal, API-compatible subset of `rand 0.8`:
//!
//! - [`rngs::StdRng`] — a deterministic xoshiro256** generator seeded via
//!   SplitMix64 (`StdRng::seed_from_u64` produces a fixed stream for a fixed
//!   seed, which is exactly what the reproducibility-focused callers rely on);
//! - [`Rng::gen_range`] over half-open and inclusive integer/float ranges;
//! - [`Rng::gen`] for `f64`, `f32`, `bool` and unsigned integers;
//! - [`seq::SliceRandom`] with Fisher–Yates [`seq::SliceRandom::shuffle`]
//!   and [`seq::SliceRandom::choose`].
//!
//! The statistical quality (xoshiro256**) is more than adequate for the
//! seeded graph generators, randomized baselines and property tests that use
//! it. Swap back to the real crate by replacing the `rand` entry in the
//! workspace `[workspace.dependencies]` table.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// Core random-number-generation trait: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next `u64` in the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next `u32` in the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Trait for generators that can be constructed from a numeric seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    /// Samples uniformly from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                low.wrapping_add((uniform_u128_below(rng, span)) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(uniform_u128_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128 + 1) as u128;
                (low as i128 + uniform_u128_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                low + (high - low) * (unit_f64(rng) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                low + (high - low) * (unit_f64(rng) as $t)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Uniform value in `[0, bound)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is `< 2^-64` per draw).
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    if bound <= u64::MAX as u128 {
        (rng.next_u64() as u128 * bound) >> 64
    } else {
        // Only reachable for ranges wider than 2^64, which the workspace
        // never requests; fall back to modulo of a 128-bit draw.
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        ((hi << 64) | lo) % bound
    }
}

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Sample from the standard distribution of `T` (uniform `[0,1)` for
    /// floats, uniform over all values for integers, fair coin for `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw: `true` with probability `numerator / denominator`,
    /// computed exactly in integer arithmetic.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(
            numerator <= denominator && denominator > 0,
            "gen_ratio: need numerator <= denominator, denominator > 0"
        );
        (self.next_u64() as u128 * denominator as u128) >> 64 < numerator as u128
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = Self::splitmix(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers (`SliceRandom`).

    use super::{Rng, RngCore};

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: u64 = rng.gen_range(5..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn unit_floats_cover_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mut lo, mut hi) = (1.0f64, 0.0f64);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}

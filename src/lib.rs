//! # distributed-coloring
//!
//! A reproduction of **"Efficient Deterministic Distributed Coloring with
//! Small Bandwidth"** (Bamberger, Kuhn, Maus — PODC 2020).
//!
//! This facade crate re-exports the workspace sub-crates under stable module
//! names so that examples, integration tests and downstream users can depend
//! on a single crate:
//!
//! - [`graphs`] — graph representation, generators, metrics, validators.
//! - [`kernels`] — the arch-dispatched numeric kernels behind the hot
//!   loops (Lemma 2.6 digit DP, argmin, bit accounting): reference /
//!   scalar-SoA / SIMD tiers, proven bit-identical, selectable with the
//!   `DCL_KERNEL_TIER` environment variable.
//! - [`sim`] — the shared simulator runtime: wire accounting, bandwidth
//!   caps ([`sim::BandwidthCap`]), unified metrics, topology policies and
//!   the backend-aware round engine every model runs on.
//! - [`congest`] — CONGEST model simulator (rounds, bandwidth, BFS trees).
//! - [`derand`] — hash families, biased coins, conditional expectations.
//! - [`coloring`] — the paper's core algorithms (Algorithm 1, Lemmas 2.1–2.6,
//!   Theorem 1.1, Linial's coloring, bounded-degree MIS, baselines).
//! - [`decomp`] — network decomposition (Definition 3.1, RG19-style
//!   clustering) and the `poly log n` coloring of Corollary 1.2.
//! - [`clique`] — CONGESTED CLIQUE simulator and Theorem 1.3.
//! - [`mpc`] — MPC simulator, Section 5 toolbox and Theorems 1.4/1.5.
//! - [`delta`] — the Δ-coloring scenario (Halldórsson–Maus 2024 regime):
//!   Brooks-bound coloring with typed obstruction errors, built on the same
//!   runtime and swept by the same bandwidth caps.
//! - [`runner`] — the one front door: the [`runner::Scenario`] trait every
//!   pipeline implements, the unified [`runner::Report`]/[`runner::RunError`]
//!   types, and the declarative [`runner::Runner`] sweep harness. The
//!   ready-made scenario objects are gathered in [`scenarios`].
//! - [`service`] — coloring as a service: the versioned request/response
//!   protocol over the transport tier's framing, the `dcl_serve` TCP
//!   server (sharded worker pool, backpressure, graceful drain) and the
//!   pipelining [`service::ServiceClient`] — served results are
//!   bit-identical to direct [`runner::Scenario`] runs.
//!
//! # Quickstart
//!
//! Every pipeline is runnable through the same front door:
//!
//! ```
//! use distributed_coloring::graphs::generators;
//! use distributed_coloring::runner::Scenario;
//! use distributed_coloring::scenarios::CongestScenario;
//! use distributed_coloring::ExecConfig;
//!
//! let g = generators::gnp(64, 0.1, 42);
//! let report = CongestScenario::default().run(&g, &ExecConfig::default()).unwrap();
//! assert!(report.valid(), "proper and within the (Δ+1) palette");
//! ```
//!
//! The underlying entry points stay public — the same run, spelled directly:
//!
//! ```
//! use distributed_coloring::graphs::generators;
//! use distributed_coloring::coloring::congest_coloring::{color_degree_plus_one, CongestColoringConfig};
//! use distributed_coloring::graphs::validation::check_proper;
//!
//! let g = generators::gnp(64, 0.1, 42);
//! let result = color_degree_plus_one(&g, &CongestColoringConfig::default());
//! assert!(check_proper(&g, &result.colors).is_none());
//! ```

#![forbid(unsafe_code)]

pub use dcl_clique as clique;
pub use dcl_coloring as coloring;
pub use dcl_congest as congest;
pub use dcl_decomp as decomp;
pub use dcl_delta as delta;
pub use dcl_derand as derand;
pub use dcl_graphs as graphs;
pub use dcl_kernels as kernels;
pub use dcl_mpc as mpc;
pub use dcl_par::{Backend, Pool};
pub use dcl_runner as runner;
pub use dcl_service as service;
pub use dcl_sim as sim;
pub use dcl_sim::{BandwidthCap, ExecConfig, TransportError, TransportSpec};

/// The five pipelines as ready-made [`runner::Scenario`] objects, gathered
/// from their home crates.
pub mod scenarios {
    pub use dcl_clique::scenario::CliqueScenario;
    pub use dcl_coloring::scenario::CongestScenario;
    pub use dcl_decomp::scenario::DecompScenario;
    pub use dcl_delta::scenario::DeltaScenario;
    pub use dcl_mpc::scenario::{MpcLinearScenario, MpcSublinearScenario};

    use crate::runner::Scenario;

    /// Every scenario in the workspace, boxed for uniform iteration —
    /// CONGEST (Thm 1.1), decomposition (Cor 1.2), CONGESTED CLIQUE
    /// (Thm 1.3), MPC linear/sublinear (Thms 1.4/1.5, `α = 0.6`), and the
    /// Δ-coloring scenario (Halldórsson–Maus 2024).
    pub fn all() -> Vec<Box<dyn Scenario>> {
        vec![
            Box::new(CongestScenario::default()),
            Box::new(DecompScenario::default()),
            Box::new(CliqueScenario::default()),
            Box::new(MpcLinearScenario),
            Box::new(MpcSublinearScenario::default()),
            Box::new(DeltaScenario::default()),
        ]
    }
}

//! Smoke test for the facade: every re-exported sub-crate must be reachable
//! and functional through `distributed_coloring::*` paths (the paths the
//! README and examples teach downstream users).

use distributed_coloring::clique::{clique_color, CliqueColoringConfig};
use distributed_coloring::coloring::congest_coloring::{
    color_degree_plus_one, CongestColoringConfig,
};
use distributed_coloring::coloring::ListInstance;
use distributed_coloring::congest::network::Network;
use distributed_coloring::decomp::rg::{decompose, RgConfig};
use distributed_coloring::delta::{delta_color, DeltaColoringConfig, DeltaError};
use distributed_coloring::derand::seed::PartialSeed;
use distributed_coloring::derand::slice::SliceFamily;
use distributed_coloring::graphs::{generators, metrics, validation};
use distributed_coloring::mpc::{mpc_color_linear, mpc_color_sublinear};

#[test]
fn graphs_reexport_generates_and_measures() {
    let g = generators::gnp(40, 0.15, 11);
    assert_eq!(g.n(), 40);
    assert!(g.max_degree() >= 1);
    let ring = generators::ring(10);
    assert_eq!(metrics::diameter(&ring), Some(5));
}

#[test]
fn congest_reexport_runs_a_metered_round() {
    let g = generators::ring(8);
    let mut net = Network::with_default_cap(&g, 16);
    let inboxes = net.broadcast_round(|v| Some(v as u32));
    assert_eq!(net.metrics().rounds, 1);
    assert_eq!(net.metrics().messages, 16, "2 per node on a ring");
    assert_eq!(inboxes[0].len(), 2);
}

#[test]
fn derand_reexport_evaluates_the_slice_family() {
    let fam = SliceFamily::new(3, 4);
    let mut seed = PartialSeed::new(fam.seed_len());
    let p = fam.prob_lt(&seed, 0b101, 6);
    assert!((p - 6.0 / 16.0).abs() < 1e-12, "uniform before fixing: {p}");
    for i in 0..fam.seed_len() {
        seed.fix(i, false);
    }
    assert_eq!(
        fam.evaluate(&seed, 0b101),
        0,
        "all-zero seed is the zero map"
    );
}

#[test]
fn coloring_reexport_colors_congest() {
    let g = generators::gnp(48, 0.12, 7);
    let result = color_degree_plus_one(&g, &CongestColoringConfig::default());
    assert!(validation::check_proper(&g, &result.colors).is_none());
    assert!(result.metrics.rounds > 0, "work must be metered");
}

#[test]
fn decomp_reexport_builds_a_valid_decomposition() {
    let g = generators::gnp(40, 0.1, 3);
    let mut net = Network::with_default_cap(&g, 64);
    let decomposition = decompose(&mut net, &RgConfig::default());
    let stats = decomposition.validate(&g).expect("decomposition is valid");
    assert!(stats.colors >= 1);
}

#[test]
fn clique_reexport_colors_the_clique_model() {
    let g = generators::random_regular(30, 4, 9);
    let inst = ListInstance::degree_plus_one(g);
    let result = clique_color(&inst, &CliqueColoringConfig::default());
    assert!(validation::check_proper(inst.graph(), &result.colors).is_none());
}

#[test]
fn delta_reexport_colors_with_delta_colors_and_types_obstructions() {
    let g = generators::random_regular(40, 5, 3);
    let delta = g.max_degree() as u64;
    let result = delta_color(&g, &DeltaColoringConfig::default()).unwrap();
    assert!(validation::check_proper(&g, &result.colors).is_none());
    assert!(result.colors.iter().all(|&c| c < delta));
    let k4 = generators::complete(4);
    assert!(matches!(
        delta_color(&k4, &DeltaColoringConfig::default()),
        Err(DeltaError::CliqueObstruction { size: 4, .. })
    ));
}

#[test]
fn mpc_reexport_colors_in_both_memory_regimes() {
    let g = generators::gnp(36, 0.12, 5);
    let inst = ListInstance::degree_plus_one(g);
    let linear = mpc_color_linear(&inst);
    assert!(validation::check_proper(inst.graph(), &linear.colors).is_none());
    let sublinear = mpc_color_sublinear(&inst, 0.6);
    assert!(validation::check_proper(inst.graph(), &sublinear.colors).is_none());
}

#[test]
fn runner_reexport_sweeps_a_scenario() {
    use distributed_coloring::runner::{CapSpec, GraphSpec, Runner, Scenario};
    use distributed_coloring::scenarios::{self, CongestScenario};
    use distributed_coloring::ExecConfig;

    // The one-call path.
    let g = generators::gnp(32, 0.15, 11);
    let report = CongestScenario::default()
        .run(&g, &ExecConfig::default())
        .unwrap();
    assert!(report.valid());
    assert!(report.metrics.rounds > 0, "work must be metered");

    // The declarative sweep path.
    let sweep = Runner::new(&CongestScenario::default())
        .graph(GraphSpec::ring(16))
        .caps(CapSpec::log_n_sweep())
        .run();
    assert_eq!(sweep.cells.len(), 4);
    assert!(sweep.cells.iter().all(|c| c.report().valid()));

    // The registry covers all five pipelines (six scenario objects).
    let all = scenarios::all();
    assert_eq!(all.len(), 6);
    let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
    assert_eq!(
        names,
        vec![
            "congest",
            "decomp",
            "clique",
            "mpc-linear",
            "mpc-sublinear",
            "delta"
        ]
    );
}

#[test]
fn runner_reexport_types_errors_losslessly() {
    use distributed_coloring::delta::DeltaError;
    use distributed_coloring::runner::{RunError, Scenario};
    use distributed_coloring::scenarios::DeltaScenario;
    use distributed_coloring::ExecConfig;

    let k4 = generators::complete(4);
    let err = DeltaScenario::default()
        .run(&k4, &ExecConfig::default())
        .unwrap_err();
    assert!(matches!(err, RunError::Rejected { .. }));
    assert!(matches!(
        err.rejection::<DeltaError>(),
        Some(DeltaError::CliqueObstruction { size: 4, .. })
    ));
    // RunError is a std error with a preserved source chain.
    let std_err: &dyn std::error::Error = &err;
    assert!(std_err.source().is_some());
}

//! Property-based tests (proptest) spanning the whole workspace: for
//! arbitrary random instances, every algorithm must produce valid output and
//! every invariant must hold.

use distributed_coloring::clique::coloring::{clique_color, CliqueColoringConfig};
use distributed_coloring::coloring::baselines;
use distributed_coloring::coloring::congest_coloring::{
    color_list_instance, CongestColoringConfig,
};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::congest::network::Network;
use distributed_coloring::decomp::rg::{decompose, RgConfig};
use distributed_coloring::graphs::{generators, validation};
use proptest::prelude::*;

fn arb_gnp() -> impl Strategy<Value = (usize, f64, u64)> {
    (4usize..32, 0.02f64..0.4, any::<u64>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn congest_coloring_is_always_proper((n, p, seed) in arb_gnp()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let r = color_list_instance(&inst, &CongestColoringConfig::default());
        prop_assert_eq!(validation::check_proper(&g, &r.colors), None);
        let delta = g.max_degree() as u64;
        prop_assert!(r.colors.iter().all(|&c| c <= delta));
    }

    #[test]
    fn clique_coloring_is_always_proper((n, p, seed) in arb_gnp()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let r = clique_color(&inst, &CliqueColoringConfig::default());
        prop_assert_eq!(validation::check_proper(&g, &r.colors), None);
    }

    #[test]
    fn decomposition_always_satisfies_definition_3_1((n, p, seed) in arb_gnp()) {
        let g = generators::gnp(n, p, seed);
        let mut net = Network::with_default_cap(&g, 64);
        let d = decompose(&mut net, &RgConfig::default());
        prop_assert!(d.validate(&g).is_ok());
    }

    #[test]
    fn randomized_baseline_matches_greedy_validity((n, p, seed) in arb_gnp()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let r = baselines::johansson(&inst, seed ^ 0xabcd);
        prop_assert_eq!(
            validation::check_list_coloring(&g, inst.lists(), &r.colors),
            None
        );
        let greedy = baselines::greedy(&inst);
        prop_assert_eq!(
            validation::check_list_coloring(&g, inst.lists(), &greedy),
            None
        );
    }

    #[test]
    fn list_instances_with_random_gaps_are_colored(
        (n, p, seed) in arb_gnp(),
        stride in 1u64..7,
        offset in 0u64..5,
    ) {
        let g = generators::gnp(n, p, seed);
        let lists: Vec<Vec<u64>> = g
            .nodes()
            .map(|v| (0..=g.degree(v) as u64).map(|i| i * stride + offset + (v as u64 % 2)).collect())
            .collect();
        let c = (g.max_degree() as u64 + 1) * stride + offset + 2;
        let inst = ListInstance::new(g.clone(), c, lists.clone()).unwrap();
        let r = color_list_instance(&inst, &CongestColoringConfig::default());
        prop_assert_eq!(validation::check_list_coloring(&g, &lists, &r.colors), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mpc_models_are_always_proper((n, p, seed) in (4usize..24, 0.05f64..0.35, any::<u64>())) {
        use distributed_coloring::mpc::coloring::{mpc_color_linear, mpc_color_sublinear};
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let lin = mpc_color_linear(&inst);
        prop_assert_eq!(validation::check_proper(&g, &lin.colors), None);
        let sub = mpc_color_sublinear(&inst, 0.6);
        prop_assert_eq!(validation::check_proper(&g, &sub.colors), None);
    }
}

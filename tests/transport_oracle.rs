//! The cross-transport oracle: every scenario in the workspace, driven
//! through the `Runner` front door with the transport axis swept, produces
//! a `Report` bit-identical to the in-memory `Local` reference on the
//! channel tier and on real localhost sockets — colors, metrics, extras,
//! and typed rejections alike. The transport layer is physical plumbing;
//! if any model-visible observable shifted with the tier, the determinism
//! contract (`DESIGN.md` §7) would be broken.

use distributed_coloring::delta::DeltaError;
use distributed_coloring::graphs::generators;
use distributed_coloring::runner::{CapSpec, Cell, GraphSpec, RunError, Runner};
use distributed_coloring::scenarios::{self, DeltaScenario};
use distributed_coloring::{Backend, TransportSpec};

/// Splits a transport-swept grid into (local reference, byte-tier) pairs:
/// with transports innermost, cells come in consecutive groups of three
/// that differ only in the tier.
fn tier_groups(cells: &[Cell]) -> impl Iterator<Item = (&Cell, &[Cell])> {
    cells.chunks(TransportSpec::all().len()).map(|chunk| {
        assert_eq!(chunk[0].transport, TransportSpec::Local);
        (&chunk[0], &chunk[1..])
    })
}

/// Asserts that a byte-tier cell's outcome matches the local reference in
/// every model-visible observable.
fn assert_cell_matches(reference: &Cell, cell: &Cell, context: &str) {
    match (&reference.outcome, &cell.outcome) {
        (Ok(expected), Ok(report)) => {
            assert_eq!(report.colors, expected.colors, "{context}: colors diverged");
            assert_eq!(
                report.metrics, expected.metrics,
                "{context}: metrics diverged"
            );
            assert_eq!(report.extras, expected.extras, "{context}: extras diverged");
            assert_eq!(report.palette, expected.palette);
            assert_eq!(report.colors_used, expected.colors_used);
            assert_eq!(report.proper, expected.proper);
        }
        (Err(expected), Err(err)) => {
            assert_eq!(
                err.to_string(),
                expected.to_string(),
                "{context}: errors diverged"
            );
        }
        (expected, got) => panic!(
            "{context}: outcome kind diverged from the local reference: \
             expected {expected:?}, got {got:?}"
        ),
    }
}

/// All five pipelines, on a graph every scenario solves, over the full
/// transport axis and both cap regimes: every cell matches the local
/// reference bit for bit.
#[test]
fn all_scenarios_are_transport_identical() {
    for scenario in scenarios::all() {
        let sweep = Runner::new(scenario.as_ref())
            .graph(GraphSpec::gnp(28, 0.25, 11))
            .caps([CapSpec::ModelDefault, CapSpec::LogN(2)])
            .transports(TransportSpec::all())
            .catch_panics(true)
            .run();
        assert_eq!(sweep.cells.len(), 2 * 3, "caps x transports");
        for (reference, byte_cells) in tier_groups(&sweep.cells) {
            assert!(
                reference.outcome.is_ok(),
                "{}: the reference cell must solve this input, got {:?}",
                sweep.scenario,
                reference.outcome
            );
            for cell in byte_cells {
                let context = format!("{} on {}/{}", sweep.scenario, cell.transport, cell.cap);
                assert_cell_matches(reference, cell, &context);
            }
        }
    }
}

/// The parallel backend composes with the byte tiers: backend × transport
/// cells all match the sequential-local reference.
#[test]
fn backends_and_transports_compose() {
    for scenario in scenarios::all() {
        let sweep = Runner::new(scenario.as_ref())
            .graph(GraphSpec::regular(24, 4, 7))
            .backends([Backend::Sequential, Backend::Parallel(3)])
            .transports(TransportSpec::all())
            .run();
        assert_eq!(sweep.cells.len(), 2 * 3, "backends x transports");
        let reference = &sweep.cells[0];
        assert_eq!(
            (reference.backend, reference.transport),
            (Backend::Sequential, TransportSpec::Local)
        );
        for cell in &sweep.cells[1..] {
            let context = format!(
                "{} on {:?}/{}",
                sweep.scenario, cell.backend, cell.transport
            );
            assert_cell_matches(reference, cell, &context);
        }
    }
}

/// Typed rejections are tier-independent: the Δ-coloring scenario rejects a
/// Brooks obstruction (an odd cycle) with the same lossless `DeltaError` on
/// every transport.
#[test]
fn typed_rejections_are_transport_identical() {
    let sweep = Runner::new(&DeltaScenario::default())
        .graph(GraphSpec::new("odd-ring", generators::ring(9)))
        .transports(TransportSpec::all())
        .catch_panics(true)
        .run();
    assert_eq!(sweep.cells.len(), 3);
    let mut rejections = Vec::new();
    for cell in &sweep.cells {
        match &cell.outcome {
            Err(e @ RunError::Rejected { .. }) => {
                let delta = e
                    .rejection::<DeltaError>()
                    .expect("the concrete DeltaError survives the runner");
                rejections.push((cell.transport, delta.clone(), e.to_string()));
            }
            other => panic!(
                "{}: an odd ring must be rejected as a Brooks obstruction, got {other:?}",
                cell.transport
            ),
        }
    }
    assert!(
        rejections
            .windows(2)
            .all(|w| w[0].1 == w[1].1 && w[0].2 == w[1].2),
        "tiers disagreed on the rejection: {rejections:?}"
    );
}

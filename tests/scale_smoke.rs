//! Release-gated scale smoke tests (n = 10⁵): the scale-tier generators, the
//! parallel backend and the full coloring pipeline at sizes the experiment
//! harness targets. Debug builds mark these `#[ignore]` — run them with
//! `cargo test --release`.

use distributed_coloring::coloring::congest_coloring::{
    color_degree_plus_one, CongestColoringConfig,
};
use distributed_coloring::congest::network::Network;
use distributed_coloring::graphs::{generators, validation};
use distributed_coloring::Backend;

const SCALE_N: usize = 100_000;

#[test]
#[cfg_attr(debug_assertions, ignore = "scale test; run with cargo test --release")]
fn scale_generators_build_100k_graphs() {
    let gnp = generators::gnp(SCALE_N, 8.0 / SCALE_N as f64, 1);
    assert_eq!(gnp.n(), SCALE_N);
    let expect = SCALE_N as f64 * 4.0;
    assert!((gnp.m() as f64 - expect).abs() < 0.05 * expect);

    let pl = generators::power_law(SCALE_N, 2.5, 4.0, 7);
    assert!(pl.m() > SCALE_N);
    assert!(pl.max_degree() > 500, "power law should have heavy head");

    let ex = generators::expander(SCALE_N, 8, 1);
    assert!(ex.max_degree() <= 8);
    assert!(ex.nodes().filter(|&v| ex.degree(v) == 8).count() > SCALE_N - 100);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "scale test; run with cargo test --release")]
fn scale_round_backend_equivalence_on_power_law() {
    let g = generators::power_law(SCALE_N, 2.5, 4.0, 7);
    let sender = |v: usize| -> Vec<(usize, u64)> {
        g.neighbors(v)
            .iter()
            .filter(|&&u| (u ^ v).is_multiple_of(4))
            .map(|&u| (u, (v ^ u) as u64))
            .collect()
    };
    let mut seq = Network::with_default_cap(&g, SCALE_N as u64);
    let mut par = Network::with_backend(&g, seq.cap_bits(), Backend::Parallel(0));
    for _ in 0..5 {
        assert_eq!(seq.round(sender), par.round(sender));
        let a = seq.broadcast_round(|v| (v % 7 == 0).then_some(v as u64));
        let b = par.broadcast_round(|v| (v % 7 == 0).then_some(v as u64));
        assert_eq!(a, b);
    }
    assert_eq!(seq.metrics(), par.metrics());
}

#[test]
#[cfg_attr(debug_assertions, ignore = "scale test; run with cargo test --release")]
fn scale_coloring_completes_on_100k_expander() {
    let g = generators::expander(SCALE_N, 8, 1);
    let par = color_degree_plus_one(
        &g,
        &CongestColoringConfig::default().with_exec(
            distributed_coloring::sim::ExecConfig::default().with_backend(Backend::Parallel(0)),
        ),
    );
    assert_eq!(validation::check_proper(&g, &par.colors), None);
    // (Δ+1)-coloring: palette ≤ 9.
    assert!(par.colors.iter().all(|&c| c <= 8));
}

//! Whole-pipeline kernel-tier oracle.
//!
//! The kernels crate proves its tiers bit-identical at the function level
//! (`dcl_kernels/tests/tier_equivalence.rs`) and against brute force
//! (`dcl_derand/tests/digit_dp_oracle.rs`); this suite closes the loop at
//! the system level: **every scenario in the workspace produces an
//! identical [`Report`]** — colors, metrics, extras, everything `PartialEq`
//! sees — no matter which kernel tier is forced. This is the end-to-end
//! statement of the float-association rule: swapping reference code for
//! SoA, SIMD, or prefix-cached incremental kernels is unobservable from
//! outside the process.

use distributed_coloring::graphs::generators;
use distributed_coloring::kernels::{clear_active_tier, set_active_tier, KernelTier};
use distributed_coloring::runner::Report;
use distributed_coloring::scenarios;
use distributed_coloring::{Backend, ExecConfig};
use proptest::prelude::*;

/// Runs every scenario on `graph` under `exec` and returns the per-scenario
/// outcomes (scenario name plus `Ok(Report)` / error string).
fn run_all(
    graph: &distributed_coloring::graphs::Graph,
    exec: &ExecConfig,
) -> Vec<(String, Result<Report, String>)> {
    scenarios::all()
        .iter()
        .map(|s| {
            (
                s.name().to_string(),
                s.run(graph, exec).map_err(|e| e.to_string()),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All six scenarios × all four tiers × both backends: bit-identical
    /// reports (or identical typed rejections).
    #[test]
    fn every_scenario_is_tier_invariant(
        n in 8usize..40,
        p in 0.08f64..0.35,
        seed in any::<u64>(),
        threads in 2usize..=4,
    ) {
        let g = generators::gnp(n, p, seed);
        for backend in [Backend::Sequential, Backend::Parallel(threads)] {
            let exec = ExecConfig::default().with_backend(backend);
            let per_tier: Vec<_> = KernelTier::all()
                .iter()
                .map(|&tier| {
                    set_active_tier(tier);
                    run_all(&g, &exec)
                })
                .collect();
            clear_active_tier();

            let anchor = &per_tier[0];
            for (tier, outcomes) in KernelTier::all().iter().zip(&per_tier) {
                prop_assert_eq!(
                    outcomes,
                    anchor,
                    "tier {} diverged from reference under {:?}",
                    tier.name(),
                    backend
                );
            }
        }
    }
}

/// The structured graph families the sweeps actually use stay
/// tier-invariant too (the gnp property above covers the irregular case).
#[test]
fn structured_families_are_tier_invariant() {
    let graphs = [
        ("ring", generators::ring(24)),
        ("power_law", generators::power_law(32, 2.5, 4.0, 7)),
    ];
    let exec = ExecConfig::default();
    for (label, g) in &graphs {
        let anchor = {
            set_active_tier(KernelTier::Reference);
            run_all(g, &exec)
        };
        for tier in [
            KernelTier::Scalar,
            KernelTier::Simd,
            KernelTier::Incremental,
        ] {
            set_active_tier(tier);
            let got = run_all(g, &exec);
            assert_eq!(got, anchor, "{label} diverged under tier {}", tier.name());
        }
        clear_active_tier();
    }
}

//! Cross-model integration tests, driven through the unified front door:
//! the same instances are solved by every [`Scenario`] in the workspace
//! (CONGEST Theorem 1.1, decomposition-based Corollary 1.2, CONGESTED
//! CLIQUE Theorem 1.3, MPC Theorems 1.4/1.5, the Δ-coloring scenario) by
//! iterating `distributed_coloring::scenarios::all()`, and every [`Report`]
//! is validated against the shared summary plus the reference checkers.

use distributed_coloring::coloring::baselines;
use distributed_coloring::coloring::congest_coloring::{
    color_list_instance, CongestColoringConfig,
};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::congest::bfs::build_bfs_tree;
use distributed_coloring::congest::network::Network;
use distributed_coloring::congest::tree::{
    broadcast_charged, broadcast_stepped, convergecast_charged, convergecast_stepped,
};
use distributed_coloring::decomp::coloring::{color_via_decomposition, DecompColoringConfig};
use distributed_coloring::graphs::{generators, validation, Graph};
use distributed_coloring::runner::{Report, Scenario};
use distributed_coloring::scenarios;
use distributed_coloring::ExecConfig;

fn instances() -> Vec<(String, Graph)> {
    vec![
        ("gnp-sparse".into(), generators::gnp(40, 0.08, 1)),
        ("gnp-dense".into(), generators::gnp(28, 0.3, 2)),
        ("regular".into(), generators::random_regular(36, 5, 3)),
        ("ring".into(), generators::ring(33)),
        ("grid".into(), generators::grid(5, 7)),
        ("star".into(), generators::star(21)),
        ("chain".into(), generators::cluster_chain(5, 6, 0.5, 4)),
        ("disconnected".into(), {
            Graph::from_edges(
                12,
                &[(0, 1), (1, 2), (2, 0), (4, 5), (6, 7), (7, 8), (8, 9)],
            )
            .unwrap()
        }),
    ]
}

/// The Δ-coloring scenario rejects Brooks obstructions by design; small-Δ
/// shared instances (the odd ring, the Δ = 2 disconnected graph with a
/// triangle component) are covered by `dcl_delta`'s own tests.
fn applicable(scenario: &dyn Scenario, g: &Graph) -> bool {
    scenario.name() != "delta" || g.max_degree() >= 3
}

fn run(scenario: &dyn Scenario, name: &str, g: &Graph) -> Report {
    scenario
        .run(g, &ExecConfig::default())
        .unwrap_or_else(|e| panic!("{name}/{}: {e}", scenario.name()))
}

#[test]
fn every_scenario_colors_every_instance_properly() {
    for (name, g) in instances() {
        let mut ran = 0;
        for scenario in scenarios::all() {
            if !applicable(scenario.as_ref(), &g) {
                continue;
            }
            let report = run(scenario.as_ref(), &name, &g);
            assert_eq!(report.colors.len(), g.n(), "{name}/{}", scenario.name());
            assert!(report.proper, "{name}/{}", scenario.name());
            assert!(
                report.within_palette(),
                "{name}/{}: colors must stay below the promised palette {}",
                scenario.name(),
                report.palette
            );
            // The unified summary must agree with the reference checker.
            assert_eq!(
                validation::check_proper(&g, &report.colors),
                None,
                "{name}/{}",
                scenario.name()
            );
            ran += 1;
        }
        assert!(ran >= 5, "{name}: at least the five (Δ+1) pipelines ran");

        // The randomized baseline is a comparison oracle, not a scenario.
        let random = baselines::johansson(&ListInstance::degree_plus_one(g.clone()), 5);
        assert_eq!(
            validation::check_proper(&g, &random.colors),
            None,
            "{name}/johansson"
        );
    }
}

/// The Δ-coloring scenario promises one color fewer than the `(Δ+1)`
/// scenarios on every applicable instance — visible directly in the
/// unified report palettes.
#[test]
fn delta_scenario_saves_a_color_on_shared_instances() {
    let congest = scenarios::CongestScenario::default();
    let delta = scenarios::DeltaScenario::default();
    let mut checked = 0;
    for (name, g) in instances() {
        if !applicable(&delta, &g) {
            continue;
        }
        let d = run(&delta, &name, &g);
        let c = run(&congest, &name, &g);
        assert_eq!(d.palette, g.max_degree() as u64, "{name}");
        assert_eq!(c.palette, g.max_degree() as u64 + 1, "{name}");
        assert!(d.valid(), "{name}/delta");
        assert!(c.valid(), "{name}/congest");
        checked += 1;
    }
    assert!(checked >= 5, "most shared instances have Δ ≥ 3");
}

#[test]
fn all_models_respect_shared_custom_lists() {
    // Custom list instances sit below the Scenario surface (scenarios run
    // the canonical degree+1 instance); the underlying entry points stay
    // public precisely for this.
    use distributed_coloring::clique::coloring::{clique_color, CliqueColoringConfig};
    use distributed_coloring::mpc::coloring::{mpc_color_linear, mpc_color_sublinear};
    let g = generators::gnp(30, 0.15, 9);
    // Lists with gaps, shared across all models.
    let lists: Vec<Vec<u64>> = g
        .nodes()
        .map(|v| {
            (0..=g.degree(v) as u64)
                .map(|i| i * 5 + (v % 3) as u64)
                .collect()
        })
        .collect();
    let c = 5 * (g.max_degree() as u64 + 1) + 3;
    let inst = ListInstance::new(g.clone(), c, lists.clone()).unwrap();

    for (model, colors) in [
        (
            "congest",
            color_list_instance(&inst, &CongestColoringConfig::default()).colors,
        ),
        (
            "decomp",
            color_via_decomposition(&inst, &DecompColoringConfig::default()).colors,
        ),
        (
            "clique",
            clique_color(&inst, &CliqueColoringConfig::default()).colors,
        ),
        ("mpc-linear", mpc_color_linear(&inst).colors),
        ("mpc-sublinear", mpc_color_sublinear(&inst, 0.7).colors),
    ] {
        assert_eq!(
            validation::check_list_coloring(&g, &lists, &colors),
            None,
            "{model}"
        );
    }
}

#[test]
fn deterministic_scenarios_are_reproducible() {
    let g = generators::gnp(26, 0.2, 17);
    for scenario in scenarios::all() {
        if !applicable(scenario.as_ref(), &g) {
            continue;
        }
        let a = run(scenario.as_ref(), "gnp(26,0.2)", &g);
        let b = run(scenario.as_ref(), "gnp(26,0.2)", &g);
        assert_eq!(a, b, "{}: report must be bit-identical", scenario.name());
    }
}

#[test]
fn clique_beats_congest_on_high_diameter() {
    let g = generators::ring(64);
    let congest = run(&scenarios::CongestScenario::default(), "ring(64)", &g);
    let clique = run(&scenarios::CliqueScenario::default(), "ring(64)", &g);
    assert!(
        clique.metrics.rounds * 4 < congest.metrics.rounds,
        "clique {} vs congest {}",
        clique.metrics.rounds,
        congest.metrics.rounds
    );
}

/// After the `dcl_sim` runtime extraction, the charged (formula-cost) tree
/// collectives must still cost exactly what their stepped (round-by-round)
/// ground-truth twins cost — results, rounds, messages and bits — at the
/// default bandwidth cap *and* at swept caps where payloads fragment
/// (`DESIGN.md` §2.4).
#[test]
fn charged_tree_aggregation_costs_equal_stepped_costs() {
    for cap_bits in [128u32, 7] {
        for seed in 0..3 {
            let g = generators::random_connected(30, 15, seed);
            let values: Vec<u64> = (0..30).map(|v| (v * v + seed as usize) as u64).collect();

            let mut stepped_net = Network::new(&g, cap_bits);
            let stepped_tree = build_bfs_tree(&mut stepped_net, 0);
            let stepped_base = stepped_net.metrics();
            let a = convergecast_stepped(&mut stepped_net, &stepped_tree, &values, |x, y| x + y);
            let stepped_cost = stepped_net.metrics();

            let mut charged_net = Network::new(&g, cap_bits);
            let charged_tree = build_bfs_tree(&mut charged_net, 0);
            let charged_base = charged_net.metrics();
            let b = convergecast_charged(&mut charged_net, &charged_tree, &values, |x, y| x + y);
            let charged_cost = charged_net.metrics();

            assert_eq!(a, b, "cap {cap_bits} seed {seed}: aggregate diverged");
            assert_eq!(stepped_base, charged_base);
            assert_eq!(
                stepped_cost, charged_cost,
                "cap {cap_bits} seed {seed}: charged convergecast costs diverged from stepped"
            );

            let a = broadcast_stepped(&mut stepped_net, &stepped_tree, 99_999u32);
            let b = broadcast_charged(&mut charged_net, &charged_tree, 99_999u32);
            assert_eq!(a, b);
            assert_eq!(
                stepped_net.metrics(),
                charged_net.metrics(),
                "cap {cap_bits} seed {seed}: charged broadcast costs diverged from stepped"
            );
        }
    }
}

/// Pins the default-cap formula of `DESIGN.md` §2.2 across the facade:
/// `2 · max(64, ⌈log₂ n⌉, ⌈log₂ C⌉)` bits.
#[test]
fn default_bandwidth_cap_formula_matches_design() {
    use distributed_coloring::BandwidthCap;
    assert_eq!(BandwidthCap::default_for(8, 8).bits(), 128);
    assert_eq!(BandwidthCap::default_for(1 << 20, 1 << 40).bits(), 128);
    assert_eq!(BandwidthCap::default_for(8, u64::MAX).bits(), 128);
    let g = generators::path(4);
    assert_eq!(Network::with_default_cap(&g, 100).cap_bits(), 128);
}

#[test]
fn decomposition_validates_on_every_instance() {
    for (name, g) in instances() {
        let inst = ListInstance::degree_plus_one(g.clone());
        let result = color_via_decomposition(&inst, &DecompColoringConfig::default());
        let stats = result.decomposition.validate(&g).unwrap_or_else(|e| {
            panic!("{name}: invalid decomposition: {e}");
        });
        // Empirical sanity versus the asymptotic bounds (generous slack).
        let logn = (g.n().max(2) as f64).log2();
        assert!(
            (stats.colors as f64) <= 4.0 * logn + 8.0,
            "{name}: α = {}",
            stats.colors
        );
        assert!(
            f64::from(stats.congestion) <= 2.0 * logn + 4.0,
            "{name}: κ = {}",
            stats.congestion
        );
    }
}

//! End-to-end checks of the paper's quantitative guarantees, one per
//! lemma/theorem (the "shape" results recorded in `EXPERIMENTS.md`).

use distributed_coloring::coloring::congest_coloring::{
    color_list_instance, CongestColoringConfig,
};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::coloring::linial::linial_from_ids;
use distributed_coloring::coloring::partial::{partial_coloring, PartialConfig};
use distributed_coloring::congest::bfs::build_bfs_forest;
use distributed_coloring::congest::network::Network;
use distributed_coloring::graphs::generators;

/// Lemma 2.1: every invocation colors at least n/8 of the active nodes and
/// at least half the nodes end with ≤ 3 conflicts.
#[test]
fn lemma_2_1_guarantees() {
    for seed in 0..6 {
        let g = generators::gnp(48, 0.12, seed);
        let inst = ListInstance::degree_plus_one(g);
        let n = inst.graph().n();
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let lin = linial_from_ids(&mut net);
        let out = partial_coloring(
            &mut net,
            &forest,
            &inst,
            &vec![true; n],
            &lin.colors,
            lin.palette,
            PartialConfig::default(),
        );
        assert!(
            out.colored.len() * 8 >= n,
            "seed {seed}: colored {}",
            out.colored.len()
        );
        assert!(
            out.eligible_count * 2 >= n,
            "seed {seed}: eligible {}",
            out.eligible_count
        );
        // Lemma 2.6 invariant chain: Σ Φ ≤ 2n at the end.
        assert!(*out.trace.values.last().unwrap() <= 2.0 * n as f64 + 1e-6);
        // Equation (5): every phase within budget.
        let budget = n as f64 / f64::from(inst.color_bits());
        assert!(out.trace.max_increase() <= budget + 1e-6);
    }
}

/// Theorem 1.1: iterations are logarithmic and the rounds respect the
/// D-dominated structure: on a fixed family, doubling n (hence D on rings)
/// increases rounds roughly proportionally, far below quadratic blowup.
#[test]
fn theorem_1_1_iteration_and_round_shape() {
    let mut prev_rounds = 0u64;
    for n in [24usize, 48, 96] {
        let g = generators::ring(n);
        let inst = ListInstance::degree_plus_one(g);
        let r = color_list_instance(&inst, &CongestColoringConfig::default());
        let log87 = (n as f64).ln() / (8.0f64 / 7.0).ln();
        assert!(
            (r.iterations as f64) <= log87,
            "n={n}: {} iterations > log_{{8/7}} n = {log87:.1}",
            r.iterations
        );
        if prev_rounds > 0 {
            // Rounds scale like D·polylog: doubling the ring should not
            // multiply rounds by more than ~4 (2 for D, slack for logs).
            assert!(
                r.metrics.rounds <= 4 * prev_rounds,
                "n={n}: rounds jumped {prev_rounds} -> {}",
                r.metrics.rounds
            );
        }
        prev_rounds = r.metrics.rounds;
    }
}

/// The CONGEST bandwidth constraint is enforced throughout: the largest
/// message ever sent by the full Theorem 1.1 stack fits the O(log n) cap.
#[test]
fn bandwidth_cap_respected_end_to_end() {
    let g = generators::gnp(40, 0.15, 3);
    let inst = ListInstance::degree_plus_one(g);
    let r = color_list_instance(&inst, &CongestColoringConfig::default());
    assert!(
        r.metrics.max_message_bits <= 128,
        "max message {}",
        r.metrics.max_message_bits
    );
}

/// Remark after Theorem 1.1: on disconnected instances the algorithm's
/// effective diameter is the max component diameter — each component
/// derandomizes independently, and small components do not wait for big
/// ones in terms of correctness.
#[test]
fn disconnected_components_are_independent() {
    use distributed_coloring::graphs::Graph;
    // Two copies of the same component should get the same colors (the
    // algorithm is id-driven but symmetric components with shifted ids may
    // differ — we only require properness and completion here).
    let g = Graph::from_edges(
        10,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 0),
            (5, 6),
            (6, 7),
            (7, 8),
            (8, 5),
        ],
    )
    .unwrap();
    let inst = ListInstance::degree_plus_one(g.clone());
    let r = color_list_instance(&inst, &CongestColoringConfig::default());
    assert_eq!(
        distributed_coloring::graphs::validation::check_proper(&g, &r.colors),
        None
    );
}

/// The seed-length accounting matches the documented substitution:
/// `seed_len = b · (⌈log₂ K⌉ + 1)` per phase, versus the paper's
/// `2·max(log K, b)` bound (DESIGN.md §2.1).
#[test]
fn seed_length_accounting() {
    let g = generators::gnp(48, 0.15, 8);
    let inst = ListInstance::degree_plus_one(g);
    let n = inst.graph().n();
    let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
    let forest = build_bfs_forest(&mut net);
    let lin = linial_from_ids(&mut net);
    let out = partial_coloring(
        &mut net,
        &forest,
        &inst,
        &vec![true; n],
        &lin.colors,
        lin.palette,
        PartialConfig::default(),
    );
    let m = 64 - (lin.palette - 1).leading_zeros();
    assert_eq!(out.seed_len, out.accuracy_bits as usize * (m as usize + 1));
}

//! Integration tests for `run_protected`: drive the *real* simulator
//! assertions (not hand-copied message strings) through the panic shield
//! and check they classify as the contract of `DESIGN.md` §2.3 promises —
//! model-budget violations become `RunError::Budget`, progress-bug safety
//! nets become `RunError::Panic`. This pins the substring classifier in
//! `dcl_runner::error` to the actual assertion wording in `dcl_sim` /
//! `dcl_mpc` / the drivers: rewording an assert over there fails here.

use distributed_coloring::congest::network::Network;
use distributed_coloring::graphs::{generators, Graph};
use distributed_coloring::mpc::Mpc;
use distributed_coloring::runner::{run_protected, Model, Report, RunError, Scenario};
use distributed_coloring::scenarios::CongestScenario;
use distributed_coloring::{ExecConfig, TransportError, TransportSpec};

/// Sends one message far over the strict CONGEST cap — the real
/// `SimMetrics::account` assertion fires.
struct OversizedSend;

impl Scenario for OversizedSend {
    fn name(&self) -> &str {
        "oversized-send"
    }
    fn model(&self) -> Model {
        Model::Congest
    }
    fn run(&self, g: &Graph, _: &ExecConfig) -> Result<Report, RunError> {
        // A u64 payload is 64 bits > the 8-bit cap: the strict
        // (non-fragmented) round panics with the model's cap assertion.
        let mut net = Network::new(g, 8);
        let _ = net.round(|v| {
            g.neighbors(v)
                .iter()
                .map(|&u| (u, u64::MAX))
                .collect::<Vec<_>>()
        });
        unreachable!("the cap assertion fires first");
    }
}

/// Declares more resident storage than the MPC memory bound allows — the
/// real `Mpc::assert_storage` assertion fires.
struct MemoryOverflow;

impl Scenario for MemoryOverflow {
    fn name(&self) -> &str {
        "memory-overflow"
    }
    fn model(&self) -> Model {
        Model::Mpc
    }
    fn run(&self, _: &Graph, _: &ExecConfig) -> Result<Report, RunError> {
        let mut mpc = Mpc::new(2, 10);
        mpc.assert_storage(0, 10_000);
        unreachable!("the storage assertion fires first");
    }
}

/// Exceeds the per-machine send budget of a real `Mpc::round`.
struct SendBudgetOverflow;

impl Scenario for SendBudgetOverflow {
    fn name(&self) -> &str {
        "send-budget-overflow"
    }
    fn model(&self) -> Model {
        Model::Mpc
    }
    fn run(&self, _: &Graph, _: &ExecConfig) -> Result<Report, RunError> {
        let mut mpc = Mpc::new(2, 4); // budget = slack 4 × 4 words = 16
        let _ = mpc.round(|machine| {
            if machine == 0 {
                (0..100u64).map(|x| (1usize, x)).collect()
            } else {
                Vec::new()
            }
        });
        unreachable!("the send-budget assertion fires first");
    }
}

/// Runs one real TCP round to establish the socket links, then tears down
/// one endpoint and sends again — the dial is refused and the transport
/// raises its typed error through the infallible round API.
struct DroppedPeer;

impl Scenario for DroppedPeer {
    fn name(&self) -> &str {
        "dropped-peer"
    }
    fn model(&self) -> Model {
        Model::Congest
    }
    fn run(&self, g: &Graph, _: &ExecConfig) -> Result<Report, RunError> {
        let exec = ExecConfig::default().with_transport(TransportSpec::Tcp);
        let mut net = Network::from_exec(g, 100, &exec);
        let talk = |v: usize| {
            g.neighbors(v)
                .iter()
                .map(|&u| (u, (v + u) as u64))
                .collect::<Vec<_>>()
        };
        let _ = net.round(talk); // all links come up
        net.close_transport_endpoint(0); // node 0 vanishes mid-protocol
        let _ = net.round(talk);
        unreachable!("sending to the dropped peer raises the transport error");
    }
}

fn ring() -> Graph {
    generators::ring(8)
}

#[test]
fn real_cap_violation_classifies_as_budget() {
    let err = run_protected(&OversizedSend, &ring(), &ExecConfig::default()).unwrap_err();
    match err {
        RunError::Budget { model, message } => {
            assert_eq!(model, Model::Congest);
            assert!(message.contains("cap"), "{message}");
        }
        other => panic!("expected Budget, got {other:?}"),
    }
}

#[test]
fn real_mpc_memory_violation_classifies_as_budget() {
    let err = run_protected(&MemoryOverflow, &ring(), &ExecConfig::default()).unwrap_err();
    assert!(
        matches!(
            err,
            RunError::Budget {
                model: Model::Mpc,
                ..
            }
        ),
        "expected Budget, got {err:?}"
    );
}

#[test]
fn real_mpc_send_budget_violation_classifies_as_budget() {
    let err = run_protected(&SendBudgetOverflow, &ring(), &ExecConfig::default()).unwrap_err();
    assert!(
        matches!(
            err,
            RunError::Budget {
                model: Model::Mpc,
                ..
            }
        ),
        "expected Budget, got {err:?}"
    );
}

/// A real driver progress-cap panic (Theorem 1.1 with an impossible
/// iteration budget) must classify as `Panic`, not `Budget`.
#[test]
fn real_iteration_cap_panic_classifies_as_panic() {
    let scenario = CongestScenario::with_config(
        distributed_coloring::coloring::CongestColoringConfig::default()
            .with_max_iterations(Some(0)),
    );
    let err = run_protected(&scenario, &ring(), &ExecConfig::default()).unwrap_err();
    match err {
        RunError::Panic { scenario, message } => {
            assert_eq!(scenario, "congest");
            assert!(message.contains("iteration cap"), "{message}");
        }
        other => panic!("expected Panic, got {other:?}"),
    }
}

/// A dropped TCP peer surfaces as the typed `RunError::Transport` with the
/// original `TransportError` intact on the source chain — and the run
/// returns promptly (the socket tier's deadlines bound every read and
/// accept), it never hangs.
#[test]
fn dropped_tcp_peer_classifies_as_transport_error() {
    let err = run_protected(&DroppedPeer, &ring(), &ExecConfig::default()).unwrap_err();
    match &err {
        RunError::Transport(e) => {
            assert!(
                matches!(e, TransportError::Disconnected { .. }),
                "expected a disconnection, got {e:?}"
            );
            assert!(
                e.to_string().contains("disconnected"),
                "the error names the failure: {e}"
            );
        }
        other => panic!("expected Transport, got {other:?}"),
    }
    assert!(err.to_string().contains("transport failure"), "{err}");
    let source = std::error::Error::source(&err).expect("transport keeps its source");
    assert!(
        source.downcast_ref::<TransportError>().is_some(),
        "the concrete TransportError survives losslessly"
    );
}

/// The shield is transparent for successful runs: same report as a direct
/// call.
#[test]
fn run_protected_is_transparent_on_success() {
    let g = ring();
    let scenario = CongestScenario::default();
    let shielded = run_protected(&scenario, &g, &ExecConfig::default()).unwrap();
    let direct = scenario.run(&g, &ExecConfig::default()).unwrap();
    assert_eq!(shielded, direct);
}

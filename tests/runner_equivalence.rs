//! Property test for the declarative sweep harness: a `Runner` sweep is
//! pure plumbing, so its per-cell output must be bit-identical to calling
//! the underlying entry point directly with the same `ExecConfig` at every
//! (graph, cap, backend) cell.

use distributed_coloring::coloring::congest_coloring::{
    color_list_instance, CongestColoringConfig,
};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::delta::{delta_color, DeltaColoringConfig};
use distributed_coloring::graphs::{generators, Graph};
use distributed_coloring::runner::{CapSpec, GraphSpec, Runner, Sweep};
use distributed_coloring::scenarios::{CongestScenario, DeltaScenario};
use distributed_coloring::{Backend, ExecConfig};
use proptest::prelude::*;

/// The swept grid: both cap regimes (model default and the tightest
/// `⌈log₂ n⌉` point) on both backends.
fn sweep_grid(scenario: &dyn distributed_coloring::runner::Scenario, graph: &Graph) -> Sweep {
    Runner::new(scenario)
        .graph(GraphSpec::new("instance", graph.clone()))
        .caps([CapSpec::ModelDefault, CapSpec::LogN(1)])
        .backends([Backend::Sequential, Backend::Parallel(3)])
        .run()
}

/// Rebuilds the exact `ExecConfig` the runner constructed for a cell.
fn cell_exec(cell: &distributed_coloring::runner::Cell) -> ExecConfig {
    let exec = ExecConfig::default().with_backend(cell.backend);
    match cell.cap_bits {
        Some(bits) => exec.with_cap(distributed_coloring::BandwidthCap::new(bits)),
        None => exec,
    }
}

proptest! {
    /// CONGEST scenario cells ≡ `color_list_instance` at every cell.
    #[test]
    fn congest_sweep_cells_match_direct_calls(
        n in 4usize..36,
        p in 0.05f64..0.3,
        seed in any::<u64>(),
    ) {
        let g = generators::gnp(n, p, seed);
        let sweep = sweep_grid(&CongestScenario::default(), &g);
        prop_assert_eq!(sweep.cells.len(), 4);
        for cell in &sweep.cells {
            let report = cell.report();
            let direct = color_list_instance(
                &ListInstance::degree_plus_one(g.clone()),
                &CongestColoringConfig::default().with_exec(cell_exec(cell)),
            );
            prop_assert_eq!(&report.colors, &direct.colors, "cell {:?}", (cell.cap, cell.backend));
            prop_assert_eq!(report.metrics, direct.metrics, "cell {:?}", (cell.cap, cell.backend));
            prop_assert_eq!(report.extra("iterations"), Some(direct.iterations as u64));
        }
    }

    /// Δ-coloring scenario cells ≡ `delta_color` at every cell (including
    /// the typed rejection on obstruction inputs).
    #[test]
    fn delta_sweep_cells_match_direct_calls(
        n in 12usize..36,
        d in 3usize..6,
        seed in any::<u64>(),
    ) {
        let g = generators::random_regular(n, d, seed);
        prop_assume!(g.max_degree() >= 3);
        let sweep = sweep_grid(&DeltaScenario::default(), &g);
        for cell in &sweep.cells {
            let direct = delta_color(
                &g,
                &DeltaColoringConfig::default().with_exec(cell_exec(cell)),
            );
            match (&cell.outcome, direct) {
                (Ok(report), Ok(direct)) => {
                    prop_assert_eq!(&report.colors, &direct.colors);
                    prop_assert_eq!(report.metrics, direct.metrics);
                    prop_assert_eq!(report.palette, direct.palette);
                }
                (Err(err), Err(direct)) => {
                    let rejection = err
                        .rejection::<distributed_coloring::delta::DeltaError>()
                        .expect("delta rejections preserve the typed error");
                    prop_assert_eq!(rejection, &direct);
                }
                (cell_outcome, direct) => {
                    return Err(TestCaseError::Fail(format!(
                        "sweep and direct outcomes disagree: {cell_outcome:?} vs {direct:?}"
                    )));
                }
            }
        }
    }
}

//! One problem, three models: color the same conflict graph in CONGEST,
//! CONGESTED CLIQUE and MPC, and compare the round bills.
//!
//! The scenario: a scheduler must assign time slots to jobs whose resource
//! conflicts form a graph (adjacent jobs cannot share a slot). Depending on
//! the deployment, the computation runs (a) on the conflict network itself
//! (CONGEST), (b) inside one rack with all-to-all links (CONGESTED CLIQUE),
//! or (c) on a shared-nothing data-parallel cluster (MPC). The paper gives a
//! deterministic algorithm for each; this example shows how their costs
//! diverge on the same input.
//!
//! ```text
//! cargo run --example datacenter_models --release
//! ```

use distributed_coloring::clique::coloring::{clique_color, CliqueColoringConfig};
use distributed_coloring::coloring::congest_coloring::{
    color_list_instance, CongestColoringConfig,
};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::graphs::{generators, metrics, validation};
use distributed_coloring::mpc::coloring::{mpc_color_linear, mpc_color_sublinear};

fn main() {
    // Job conflict graph: a ring of dense racks — high local degree, large
    // global diameter (the regime where the models differ most).
    let graph = generators::cluster_chain(10, 9, 0.5, 3);
    let instance = ListInstance::degree_plus_one(graph.clone());
    println!(
        "conflict graph: n = {}, m = {}, Δ = {}, D = {:?}\n",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        metrics::diameter(&graph)
    );

    // (a) CONGEST: the jobs talk over conflict edges only.
    let congest = color_list_instance(&instance, &CongestColoringConfig::default());
    assert!(validation::check_proper(&graph, &congest.colors).is_none());
    println!(
        "CONGEST   (Thm 1.1): {:>7} rounds, {} iterations",
        congest.metrics.rounds, congest.iterations
    );

    // (b) CONGESTED CLIQUE: all-to-all links make the diameter irrelevant.
    let clique = clique_color(&instance, &CliqueColoringConfig::default());
    assert!(validation::check_proper(&graph, &clique.colors).is_none());
    println!(
        "CLIQUE    (Thm 1.3): {:>7} rounds, {} iterations, {} jobs finished at the leader",
        clique.metrics.rounds, clique.iterations, clique.collected_nodes
    );

    // (c) MPC, linear memory: a few beefy machines.
    let linear = mpc_color_linear(&instance);
    assert!(validation::check_proper(&graph, &linear.colors).is_none());
    println!(
        "MPC-lin   (Thm 1.4): {:>7} rounds, {} machines x {} words",
        linear.metrics.rounds, linear.machines, linear.memory_words
    );

    // (d) MPC, sublinear memory: many small machines.
    let sublinear = mpc_color_sublinear(&instance, 0.55);
    assert!(validation::check_proper(&graph, &sublinear.colors).is_none());
    println!(
        "MPC-sub   (Thm 1.5): {:>7} rounds, {} machines x {} words ({} finisher iterations)",
        sublinear.metrics.rounds,
        sublinear.machines,
        sublinear.memory_words,
        sublinear.finisher_iterations
    );

    println!(
        "\nall four schedules are proper; slot counts: {} / {} / {} / {}",
        validation::count_colors(&congest.colors),
        validation::count_colors(&clique.colors),
        validation::count_colors(&linear.colors),
        validation::count_colors(&sublinear.colors),
    );
}

//! One problem, every model: color the same conflict graph in CONGEST,
//! CONGESTED CLIQUE and MPC, and compare the round bills.
//!
//! The scenario: a scheduler must assign time slots to jobs whose resource
//! conflicts form a graph (adjacent jobs cannot share a slot). Depending on
//! the deployment, the computation runs (a) on the conflict network itself
//! (CONGEST), (b) inside one rack with all-to-all links (CONGESTED CLIQUE),
//! or (c) on a shared-nothing data-parallel cluster (MPC). The paper gives
//! a deterministic algorithm for each; since all of them implement
//! `runner::Scenario`, the comparison is one loop over scenario objects
//! instead of four differently-shaped driver calls (that boilerplate now
//! lives in git history — see `examples/unified_runner.rs` for the sweep
//! version).
//!
//! ```text
//! cargo run --example datacenter_models --release
//! ```

use distributed_coloring::graphs::{generators, metrics};
use distributed_coloring::runner::Scenario;
use distributed_coloring::scenarios::{
    CliqueScenario, CongestScenario, MpcLinearScenario, MpcSublinearScenario,
};
use distributed_coloring::ExecConfig;

fn main() {
    // Job conflict graph: a ring of dense racks — high local degree, large
    // global diameter (the regime where the models differ most).
    let graph = generators::cluster_chain(10, 9, 0.5, 3);
    println!(
        "conflict graph: n = {}, m = {}, Δ = {}, D = {:?}\n",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        metrics::diameter(&graph)
    );

    // (a) jobs talk over conflict edges; (b) one rack, all-to-all links;
    // (c) few beefy machines; (d) many small machines.
    let deployments: Vec<(&str, Box<dyn Scenario>)> = vec![
        ("CONGEST   (Thm 1.1)", Box::new(CongestScenario::default())),
        ("CLIQUE    (Thm 1.3)", Box::new(CliqueScenario::default())),
        ("MPC-lin   (Thm 1.4)", Box::new(MpcLinearScenario)),
        (
            "MPC-sub   (Thm 1.5)",
            Box::new(MpcSublinearScenario::new(0.55)),
        ),
    ];

    let mut slot_counts = Vec::new();
    for (label, scenario) in &deployments {
        let report = scenario
            .run(&graph, &ExecConfig::default())
            .expect("the (Δ+1) scenarios are total");
        assert!(report.valid());
        let detail = match report.model {
            distributed_coloring::runner::Model::Mpc => format!(
                "{} machines x {} words",
                report.extra("machines").unwrap(),
                report.extra("memory_words").unwrap()
            ),
            _ => format!("{} iterations", report.extra("iterations").unwrap()),
        };
        println!("{label}: {:>7} rounds, {detail}", report.metrics.rounds);
        slot_counts.push(report.colors_used.to_string());
    }

    println!(
        "\nall four schedules are proper; slot counts: {}",
        slot_counts.join(" / ")
    );
}

//! Coloring as a service: every scenario shipped through the `dcl_service`
//! wire protocol and checked bit-identical against a direct in-process run.
//!
//! With no arguments the example hosts the server itself on an ephemeral
//! loopback port — a self-contained round trip. Pass an address to drive an
//! external `dcl_serve` instead:
//!
//! ```text
//! cargo run --example service_roundtrip --release
//! cargo run --release -p dcl_service --bin dcl_serve -- --addr 127.0.0.1:7070 &
//! cargo run --example service_roundtrip --release -- 127.0.0.1:7070
//! ```
//!
//! Two extra modes exercise the service's typed refusal paths (CI drives
//! them against servers configured to shed or to time out):
//!
//! ```text
//! service_roundtrip ADDR --expect-busy     # server ran with --max-inflight 0
//! service_roundtrip ADDR --expect-timeout  # server ran with --timeout-ms 0
//! ```
//!
//! The example exits nonzero on any mismatch, so it doubles as an
//! end-to-end smoke test.

use std::process::exit;

use distributed_coloring::graphs::generators;
use distributed_coloring::runner::run_protected;
use distributed_coloring::service::{
    build_scenario, outcome_matches_direct, scenario_names, Reject, Server, ServiceClient,
    ServiceConfig, ServiceError,
};
use distributed_coloring::ExecConfig;

fn main() {
    let mut addr: Option<String> = None;
    let mut expect: Option<&str> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--expect-busy" => expect = Some("busy"),
            "--expect-timeout" => expect = Some("timeout"),
            "--help" | "-h" => {
                println!("usage: service_roundtrip [ADDR] [--expect-busy | --expect-timeout]");
                return;
            }
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_string()),
            other => {
                eprintln!("unexpected argument `{other}`");
                exit(2);
            }
        }
    }

    // Host the server in-process unless the caller points at an external one.
    let (addr, _handle) = match addr {
        Some(a) => (a, None),
        None => {
            let server = Server::bind(ServiceConfig::default().with_workers(2))
                .expect("bind an ephemeral loopback port");
            let local = server.local_addr().expect("bound address").to_string();
            println!("hosting in-process server on {local}");
            (local, Some(server.start()))
        }
    };

    let mut client = ServiceClient::connect(addr.as_str()).expect("connect to the service");
    println!(
        "connected; server speaks protocol v{}",
        client.server_version()
    );

    match expect {
        Some(mode) => expect_refusal(&mut client, mode),
        None => round_trip(&mut client),
    }

    let stats = client.close().expect("clean drain on close");
    println!(
        "\nclosed: {} requests, {} responses, {} bytes up, {} bytes down",
        stats.requests, stats.responses, stats.bytes_sent, stats.bytes_received
    );
}

/// Submits every registered scenario pipelined, then checks each served
/// outcome — success or typed rejection — against a direct run.
fn round_trip(client: &mut ServiceClient) {
    let graph = generators::gnp(48, 0.15, 7);
    let exec = ExecConfig::default();
    println!(
        "\ncoloring gnp(48,0.15) (n = {}, m = {}) through the service:\n",
        graph.n(),
        graph.m()
    );

    // Pipelined: all six requests go out before the first response is read.
    let ids: Vec<(u64, &str)> = scenario_names()
        .into_iter()
        .map(|name| {
            let id = client.submit(name, &graph, &exec).expect("submit");
            (id, name)
        })
        .collect();

    let mut mismatches = 0;
    for (id, name) in ids {
        let served = client.wait(id);
        let direct = run_protected(
            build_scenario(name).expect("registered scenario").as_ref(),
            &graph,
            &exec,
        );
        let matches = outcome_matches_direct(&served, &direct);
        match &served {
            Ok(report) => println!(
                "  {name:<14} {:>3} colors  {:>4} rounds  {:>8} bits  match={matches}",
                report.colors_used, report.metrics.rounds, report.metrics.bits
            ),
            Err(err) => println!("  {name:<14} rejected: {err}  match={matches}"),
        }
        mismatches += usize::from(!matches);
    }
    if mismatches > 0 {
        eprintln!("{mismatches} served outcome(s) differ from direct runs");
        exit(1);
    }
    println!("\nall served outcomes bit-identical to direct runs");
}

/// Drives one request into a server configured to refuse it, and checks the
/// refusal is the expected *typed* rejection (never a hang or a dropped
/// connection).
fn expect_refusal(client: &mut ServiceClient, mode: &str) {
    let graph = generators::gnp(24, 0.2, 3);
    let id = client
        .submit("congest", &graph, &ExecConfig::default())
        .expect("submit");
    match (mode, client.wait(id)) {
        ("busy", Err(ServiceError::Rejected(Reject::Busy { max_inflight, .. }))) => {
            println!("typed Busy rejection as expected (max_inflight = {max_inflight})");
        }
        ("timeout", Err(ServiceError::Rejected(Reject::TimedOut { limit_ms }))) => {
            println!("typed TimedOut rejection as expected (limit = {limit_ms} ms)");
        }
        (_, outcome) => {
            eprintln!("expected a typed {mode} rejection, got {outcome:?}");
            exit(1);
        }
    }
}

//! Build a network decomposition (Definition 3.1) explicitly and use it to
//! color a large-diameter graph in `poly log n` rounds (Corollary 1.2).
//!
//! ```text
//! cargo run --example network_decomposition --release
//! ```

use distributed_coloring::coloring::congest_coloring::{
    color_list_instance, CongestColoringConfig,
};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::congest::network::Network;
use distributed_coloring::decomp::coloring::{color_via_decomposition, DecompColoringConfig};
use distributed_coloring::decomp::rg::{decompose_traced, RgConfig};
use distributed_coloring::graphs::{generators, metrics, validation};

fn main() {
    // A path of dense clusters: diameter ≈ 2·k, the worst case for any
    // algorithm paying D per derandomized seed bit.
    let graph = generators::cluster_chain(16, 8, 0.5, 5);
    println!(
        "graph: n = {}, m = {}, Δ = {}, D = {:?}\n",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        metrics::diameter(&graph)
    );

    // Step 1: the decomposition itself.
    let mut net = Network::with_default_cap(&graph, 64);
    let (decomposition, trace) = decompose_traced(&mut net, &RgConfig::default());
    let stats = decomposition
        .validate(&graph)
        .expect("Definition 3.1 holds");
    println!(
        "decomposition: α = {} colors, β = {} (max tree diameter), κ = {} (congestion)",
        stats.colors, stats.max_tree_diameter, stats.congestion
    );
    println!(
        "  {} clusters, largest has {} members; construction took {} rounds",
        stats.clusters,
        stats.max_cluster_size,
        net.rounds()
    );
    for (run, frac) in trace.clustered_fraction.iter().enumerate() {
        println!(
            "  run {run}: clustered {:.0}% of the remaining vertices",
            100.0 * frac
        );
    }

    // Step 2: color through the decomposition vs directly.
    let instance = ListInstance::degree_plus_one(graph.clone());
    let via_decomp = color_via_decomposition(&instance, &DecompColoringConfig::default());
    let direct = color_list_instance(&instance, &CongestColoringConfig::default());
    assert!(validation::check_proper(&graph, &via_decomp.colors).is_none());
    assert!(validation::check_proper(&graph, &direct.colors).is_none());

    println!(
        "\nCorollary 1.2: {} rounds to decompose + {} rounds to color = {}",
        via_decomp.decomposition_rounds, via_decomp.coloring_rounds, via_decomp.metrics.rounds
    );
    println!(
        "Theorem 1.1 (direct, pays D per seed bit): {} rounds",
        direct.metrics.rounds
    );
}

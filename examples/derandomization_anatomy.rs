//! Anatomy of the derandomization: watch the method of conditional
//! expectations fix a shared seed bit by bit and keep the potential
//! `Σ_u Φ(u)` under control (Lemmas 2.2, 2.3, 2.5 and 2.6 in action).
//!
//! ```text
//! cargo run --example derandomization_anatomy --release
//! ```

use distributed_coloring::coloring::derand_step::{accuracy_bits, derandomized_phase};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::coloring::linial::linial_from_ids;
use distributed_coloring::coloring::prefix::{randomized_one_bit_step, PrefixState};
use distributed_coloring::congest::bfs::build_bfs_forest;
use distributed_coloring::congest::network::Network;
use distributed_coloring::graphs::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let graph = generators::gnp(120, 0.07, 21);
    let instance = ListInstance::degree_plus_one(graph.clone());
    let n = graph.n();
    println!(
        "graph: n = {n}, Δ = {}, color space C = {} (⌈log C⌉ = {} phases)\n",
        graph.max_degree(),
        instance.color_space(),
        instance.color_bits()
    );

    // The randomized process (Algorithm 1) for reference: average over
    // trials, the potential never increases in expectation (Lemma 2.2).
    let base = PrefixState::new(&instance, &vec![true; n]);
    let phi0 = base.total_potential();
    let trials = 200;
    let mut mean_after = 0.0;
    for t in 0..trials {
        let mut state = base.clone();
        let mut rng = StdRng::seed_from_u64(t);
        let (_, after) = randomized_one_bit_step(&mut state, &instance, &mut rng);
        mean_after += after / trials as f64;
    }
    println!(
        "Algorithm 1 (randomized): Φ₀ = {phi0:.2}, mean Φ₁ over {trials} trials = {mean_after:.2}"
    );

    // The derandomized process (Lemma 2.6): every phase is *guaranteed* to
    // increase Φ by at most n/⌈log C⌉.
    let mut net = Network::with_default_cap(&graph, instance.color_space());
    let forest = build_bfs_forest(&mut net);
    let linial = linial_from_ids(&mut net);
    println!(
        "\nLinial input coloring: K = {} colors in {} rounds (log* n behavior)",
        linial.palette, linial.steps
    );

    let b = accuracy_bits(graph.max_degree(), instance.color_bits(), 1);
    let budget = n as f64 / f64::from(instance.color_bits());
    println!("coin accuracy b = {b} bits (ε = 2^-{b}); per-phase budget = {budget:.2}\n");

    let mut state = PrefixState::new(&instance, &vec![true; n]);
    for phase in 0..instance.color_bits() {
        let rounds_before = net.rounds();
        let outcome = derandomized_phase(
            &mut net,
            &forest,
            &instance,
            &mut state,
            &linial.colors,
            linial.palette,
            b,
        );
        println!(
            "phase {phase}: Φ {:8.3} -> {:8.3}  (Δ = {:+.3} ≤ {:.2}; seed {} bits; {} rounds)",
            outcome.potential_before,
            outcome.potential_after,
            outcome.potential_after - outcome.potential_before,
            budget,
            outcome.seed_len,
            net.rounds() - rounds_before
        );
        assert!(outcome.potential_after <= outcome.potential_before + budget + 1e-6);
    }

    let conflict_free = (0..n).filter(|&v| state.conflict_degree(v) == 0).count();
    let few = (0..n).filter(|&v| state.conflict_degree(v) <= 3).count();
    println!(
        "\nafter all phases: Σ Φ = {:.2} ≤ 2n = {}; {} nodes conflict-free, {} with ≤ 3 conflicts (≥ n/2 = {})",
        state.total_potential(),
        2 * n,
        conflict_free,
        few,
        n / 2
    );
}

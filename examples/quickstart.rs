//! Quickstart: deterministically (Δ+1)-color a random graph in the CONGEST
//! model (Theorem 1.1) and inspect the cost counters.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use distributed_coloring::coloring::congest_coloring::{
    color_degree_plus_one, CongestColoringConfig,
};
use distributed_coloring::graphs::{generators, metrics, validation};

fn main() {
    // A reproducible random graph: 200 nodes, expected degree ≈ 8.
    let graph = generators::gnp(200, 0.04, 42);
    println!(
        "graph: n = {}, m = {}, Δ = {}, D = {:?}",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        metrics::diameter(&graph)
    );

    // Run the deterministic CONGEST algorithm on the canonical (Δ+1)
    // instance (every node's list is {0, …, deg(v)}).
    let result = color_degree_plus_one(&graph, &CongestColoringConfig::default());

    assert!(validation::check_proper(&graph, &result.colors).is_none());
    println!(
        "colored with {} colors in {} partial-coloring iterations",
        validation::count_colors(&result.colors),
        result.iterations
    );
    println!(
        "simulated cost: {} rounds, {} messages, {} bits (max message {} bits)",
        result.metrics.rounds,
        result.metrics.messages,
        result.metrics.bits,
        result.metrics.max_message_bits
    );
    println!(
        "Linial input coloring used K = {} colors",
        result.linial_palette
    );
    for (i, outcome) in result.outcomes.iter().enumerate() {
        println!(
            "  iteration {}: {}/{} nodes colored (potential {:.1} -> {:.1})",
            i + 1,
            outcome.colored.len(),
            outcome.active_count,
            outcome.trace.values.first().unwrap_or(&0.0),
            outcome.trace.values.last().unwrap_or(&0.0),
        );
    }
}

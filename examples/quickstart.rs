//! Quickstart: deterministically (Δ+1)-color a random graph in the CONGEST
//! model (Theorem 1.1) through the unified `Scenario` front door, and
//! inspect the unified report plus the driver-specific details.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use distributed_coloring::coloring::congest_coloring::{
    color_degree_plus_one, CongestColoringConfig,
};
use distributed_coloring::runner::Scenario;
use distributed_coloring::scenarios::CongestScenario;
use distributed_coloring::ExecConfig;

fn main() {
    // A reproducible random graph: 200 nodes, expected degree ≈ 8.
    let graph = distributed_coloring::graphs::generators::gnp(200, 0.04, 42);
    println!(
        "graph: n = {}, m = {}, Δ = {}, D = {:?}",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        distributed_coloring::graphs::metrics::diameter(&graph)
    );

    // Run the deterministic CONGEST pipeline through the front door: every
    // scenario takes (graph, ExecConfig) and returns the same Report shape.
    let report = CongestScenario::default()
        .run(&graph, &ExecConfig::default())
        .expect("the (Δ+1) scenarios are total");

    assert!(report.valid());
    println!(
        "colored with {} colors (palette {}) in {} partial-coloring iterations",
        report.colors_used,
        report.palette,
        report.extra("iterations").unwrap(),
    );
    println!(
        "simulated cost: {} rounds, {} messages, {} bits (max message {} bits)",
        report.metrics.rounds,
        report.metrics.messages,
        report.metrics.bits,
        report.metrics.max_message_bits
    );
    println!(
        "Linial input coloring used K = {} colors",
        report.extra("linial_palette").unwrap()
    );

    // The underlying entry point stays public for driver-level detail the
    // unified report intentionally summarizes (per-iteration traces etc.).
    let result = color_degree_plus_one(&graph, &CongestColoringConfig::default());
    assert_eq!(result.colors, report.colors, "front door = direct call");
    for (i, outcome) in result.outcomes.iter().enumerate() {
        println!(
            "  iteration {}: {}/{} nodes colored (potential {:.1} -> {:.1})",
            i + 1,
            outcome.colored.len(),
            outcome.active_count,
            outcome.trace.values.first().unwrap_or(&0.0),
            outcome.trace.values.last().unwrap_or(&0.0),
        );
    }
}

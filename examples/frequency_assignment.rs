//! Frequency assignment as (degree+1)-*list* coloring.
//!
//! A classic motivation for list coloring: radio towers must pick operating
//! channels such that interfering towers (edges) never share a channel, and
//! each tower can only use the channels its hardware and local regulation
//! permit (its *list*). As long as every tower has one more permitted
//! channel than it has interference neighbors, the paper's deterministic
//! CONGEST algorithm assigns channels without any randomness — and without
//! any tower ever learning more than `O(log n)` bits per neighbor per round.
//!
//! ```text
//! cargo run --example frequency_assignment --release
//! ```

use distributed_coloring::coloring::congest_coloring::{
    color_list_instance, CongestColoringConfig,
};
use distributed_coloring::coloring::instance::ListInstance;
use distributed_coloring::graphs::{generators, validation};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    // Interference graph: towers on a coarse grid interfere with their
    // 4-neighborhood (a standard planar interference model).
    let graph = generators::grid(10, 14);
    let n = graph.n();
    let channels_total: u64 = 64; // the licensed band, channels 0..64

    // Each tower's permitted channel list: a random subset of the band of
    // size deg(v)+2 (one more than required, so some slack remains).
    let mut rng = StdRng::seed_from_u64(7);
    let mut band: Vec<u64> = (0..channels_total).collect();
    let lists: Vec<Vec<u64>> = graph
        .nodes()
        .map(|v| {
            band.shuffle(&mut rng);
            band[..graph.degree(v) + 2].to_vec()
        })
        .collect();

    let instance =
        ListInstance::new(graph.clone(), channels_total, lists.clone()).expect("valid instance");
    let result = color_list_instance(&instance, &CongestColoringConfig::default());

    assert!(validation::check_list_coloring(&graph, &lists, &result.colors).is_none());
    println!("assigned channels to {n} towers over a {channels_total}-channel band");
    println!(
        "distinct channels used: {}, CONGEST rounds: {}, iterations: {}",
        validation::count_colors(&result.colors),
        result.metrics.rounds,
        result.iterations
    );

    // Show a few assignments.
    for v in [0usize, 1, 14, n - 1] {
        println!(
            "  tower {v:3}: channel {:2} (list {:?}…)",
            result.colors[v],
            &lists[v][..lists[v].len().min(5)]
        );
    }

    // Every assignment is deterministic: re-running yields the same plan.
    let again = color_list_instance(&instance, &CongestColoringConfig::default());
    assert_eq!(result.colors, again.colors);
    println!("re-run produced the identical assignment (fully deterministic)");
}

//! One front door: every pipeline in the workspace behind the same
//! `Scenario` trait, and the declarative `Runner` sweep harness that drives
//! a scenario over a graph-family × bandwidth-cap × backend grid.
//!
//! Part 1 runs all six scenario objects (five pipelines; MPC contributes
//! both memory regimes) on one conflict graph and prints the unified
//! reports — the loop the per-model examples used to hand-roll. Part 2
//! sweeps the CONGEST scenario over the paper's bandwidth-cap axis with a
//! three-line `Runner` program.
//!
//! ```text
//! cargo run --example unified_runner --release
//! ```

use distributed_coloring::graphs::{generators, metrics};
use distributed_coloring::runner::{CapSpec, GraphSpec, Runner};
use distributed_coloring::scenarios::{self, CongestScenario};
use distributed_coloring::ExecConfig;

fn main() {
    // A ring of dense racks: high local degree, large global diameter — the
    // regime where the models differ most.
    let graph = generators::cluster_chain(10, 9, 0.5, 3);
    println!(
        "conflict graph: n = {}, m = {}, Δ = {}, D = {:?}\n",
        graph.n(),
        graph.m(),
        graph.max_degree(),
        metrics::diameter(&graph)
    );

    // --- Part 1: one loop instead of five differently-shaped calls. ------
    println!(
        "{:<14} {:>17} {:>9} {:>12} {:>9} {:>7}",
        "scenario", "model", "rounds", "messages", "palette", "valid"
    );
    for scenario in scenarios::all() {
        let report = scenario
            .run(&graph, &ExecConfig::default())
            .expect("this graph is no Brooks obstruction");
        println!(
            "{:<14} {:>17} {:>9} {:>12} {:>9} {:>7}",
            report.scenario,
            report.model.to_string(),
            report.metrics.rounds,
            report.metrics.messages,
            report.palette,
            report.valid()
        );
    }

    // --- Part 2: the declarative bandwidth sweep (the E12 axis). ---------
    println!("\nCONGEST under shrinking bandwidth caps (Runner sweep):");
    let sweep = Runner::new(&CongestScenario::default())
        .graph(GraphSpec::regular(96, 6, 5))
        .caps(CapSpec::log_n_sweep())
        .run();
    println!(
        "{:>8} {:>9} {:>9} {:>12}",
        "cap", "bits", "rounds", "messages"
    );
    for cell in &sweep.cells {
        let report = cell.report();
        assert!(report.valid(), "proper at every swept cap");
        println!(
            "{:>8} {:>9} {:>9} {:>12}",
            cell.cap.to_string(),
            cell.cap_bits.expect("swept cap"),
            report.metrics.rounds,
            report.metrics.messages
        );
    }
    println!("\nsmaller caps fragment wide payloads into more rounds; the coloring stays proper.");
}

//! Backend-equivalence properties for the CONGEST simulator and the
//! Theorem 1.1 coloring: the parallel round-execution backend must produce
//! bit-identical inboxes, metrics and colorings to the sequential backend on
//! every instance family (the determinism contract of `DESIGN.md` §7).
//!
//! The assertion scaffolding is shared across the three models via
//! `dcl_sim::test_util`; this file only contributes the CONGEST runners and
//! instance strategies.

use dcl_coloring::congest_coloring::{color_degree_plus_one, CongestColoringConfig};
use dcl_congest::network::Network;
use dcl_congest::Backend;
use dcl_graphs::{generators, validation, Graph, NodeId};
use dcl_sim::test_util::{assert_backend_equivalent, assert_eq_sides, assert_round_equivalence};
use dcl_sim::ExecConfig;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn assert_equivalent(g: &Graph, threads: usize) -> Result<(), TestCaseError> {
    let seq = assert_backend_equivalent(threads, |backend| {
        let r = color_degree_plus_one(
            g,
            &CongestColoringConfig::default()
                .with_exec(ExecConfig::default().with_backend(backend)),
        );
        (r.colors, r.metrics, r.iterations)
    })
    .map_err(TestCaseError::Fail)?;
    prop_assert_eq!(validation::check_proper(g, &seq.0), None);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Identical colorings + metrics on rings of arbitrary size.
    #[test]
    fn coloring_equivalence_on_rings(n in 3usize..80, threads in 2usize..5) {
        assert_equivalent(&generators::ring(n), threads)?;
    }

    /// Identical colorings + metrics on G(n, p).
    #[test]
    fn coloring_equivalence_on_gnp(
        n in 4usize..48,
        p in 0.03f64..0.35,
        seed in any::<u64>(),
        threads in 2usize..5,
    ) {
        assert_equivalent(&generators::gnp(n, p, seed), threads)?;
    }

    /// Identical colorings + metrics on Chung–Lu power-law graphs (the
    /// degree-skewed regime where chunk load imbalance is worst).
    #[test]
    fn coloring_equivalence_on_power_law(
        n in 8usize..48,
        seed in any::<u64>(),
        threads in 2usize..5,
    ) {
        assert_equivalent(&generators::power_law(n, 2.5, 4.0, seed), threads)?;
    }

    /// Raw round equivalence: inboxes and metrics agree between backends for
    /// arbitrary per-node fan-out senders.
    #[test]
    fn round_inbox_equivalence(
        n in 2usize..60,
        p in 0.05f64..0.5,
        seed in any::<u64>(),
        threads in 2usize..6,
    ) {
        let g = generators::gnp(n, p, seed);
        let sender = |v: NodeId| -> Vec<(NodeId, u64)> {
            g.neighbors(v)
                .iter()
                .filter(|&&u| !(u + v + seed as usize).is_multiple_of(3))
                .map(|&u| (u, (v * n + u) as u64))
                .collect()
        };
        let mut seq = Network::with_default_cap(&g, n as u64 + 1);
        let mut par = Network::with_backend(&g, seq.cap_bits(), Backend::Parallel(threads));
        assert_round_equivalence(3, || (seq.round(sender), par.round(sender)))
            .map_err(TestCaseError::Fail)?;
        let a = seq.broadcast_round(|v| (v % 2 == 0).then_some(v as u32));
        let b = par.broadcast_round(|v| (v % 2 == 0).then_some(v as u32));
        assert_eq_sides("broadcast inboxes", a, b).map_err(TestCaseError::Fail)?;
        assert_eq_sides("metrics", seq.metrics(), par.metrics()).map_err(TestCaseError::Fail)?;
    }
}

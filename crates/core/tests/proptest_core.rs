//! Property-based tests of the core algorithms: Linial, MIS, the prefix
//! machinery and the end-to-end coloring on arbitrary instances.

use dcl_coloring::congest_coloring::{color_degree_plus_one, CongestColoringConfig};
use dcl_coloring::instance::ListInstance;
use dcl_coloring::linial::linial_from_ids;
use dcl_coloring::mis::mis_bounded_degree;
use dcl_coloring::prefix::{randomized_one_bit_step, PrefixState};
use dcl_congest::network::Network;
use dcl_graphs::{generators, validation, NodeId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Linial always produces a proper coloring with a Δ-dependent palette.
    #[test]
    fn linial_is_proper(n in 2usize..50, p in 0.02f64..0.4, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let mut net = Network::with_default_cap(&g, 64);
        let out = linial_from_ids(&mut net);
        prop_assert_eq!(validation::check_proper(&g, &out.colors), None);
        prop_assert!(out.colors.iter().all(|&c| c < out.palette));
    }

    /// The MIS sweep yields a maximal independent set on arbitrary
    /// bounded-degree graphs.
    #[test]
    fn mis_is_valid(n in 4usize..60, d in 1usize..4, seed in any::<u64>()) {
        let g = generators::random_regular(n, d, seed);
        let adj: Vec<Vec<NodeId>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
        let ids: Vec<u64> = (0..n as u64).collect();
        let mut net = Network::with_default_cap(&g, 64);
        let out = mis_bounded_degree(&mut net, &adj, &vec![true; n], &ids, n as u64);
        prop_assert_eq!(validation::check_mis(&g, &out.in_set), None);
    }

    /// Randomized prefix selection never empties a candidate set and always
    /// ends on a list color.
    #[test]
    fn prefix_selection_stays_valid(n in 2usize..40, p in 0.02f64..0.5, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g);
        let mut state = PrefixState::new(&inst, &vec![true; n]);
        let mut rng = StdRng::seed_from_u64(seed);
        while !state.is_complete() {
            randomized_one_bit_step(&mut state, &inst, &mut rng);
        }
        for v in 0..n {
            let c = state.candidate_color(&inst, v);
            prop_assert!(inst.list(v).contains(&c));
        }
    }

    /// Digit-based (multi-bit) extension is consistent with the bit-based
    /// one: extending by one w-bit digit equals w single-bit extensions.
    #[test]
    fn digit_extension_matches_bits(list_seed in any::<u64>(), w in 1u32..3) {
        let g = dcl_graphs::Graph::empty(1);
        // A single node with an 8-color list (3 bits).
        let lists = vec![(0..8u64).filter(|c| list_seed >> c & 1 == 1 || *c == 7).collect::<Vec<_>>()];
        let inst = ListInstance::new(g, 8, lists).unwrap();
        prop_assume!(inst.color_bits() >= w);
        let digits = inst.list(0).len();
        prop_assume!(digits >= 1);

        let mut by_digit = PrefixState::new(&inst, &[true]);
        let counts = by_digit.split_digits(&inst, 0, w);
        let digit = counts.iter().position(|&k| k > 0).unwrap() as u64;
        by_digit.extend_digit(&inst, 0, w, digit);
        by_digit.finish_phase_digits(w);

        let mut by_bits = PrefixState::new(&inst, &[true]);
        for i in (0..w).rev() {
            let bit = digit >> i & 1 == 1;
            by_bits.extend(&inst, 0, bit);
            by_bits.finish_phase();
        }
        prop_assert_eq!(by_digit.candidate_count(0), by_bits.candidate_count(0));
    }

    /// Full Theorem 1.1 on arbitrary gnp graphs (release-speed sizes).
    #[test]
    fn theorem_1_1_proper_on_arbitrary_graphs(n in 2usize..28, p in 0.02f64..0.45, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let r = color_degree_plus_one(&g, &CongestColoringConfig::default());
        prop_assert_eq!(validation::check_proper(&g, &r.colors), None);
    }
}

//! Baseline algorithms the experiment harness compares against.
//!
//! - [`johansson`]: the classic randomized `O(log n)`-round trial coloring
//!   \[Joh99\] that the paper's Section 1.4 takes as the starting point of
//!   its derandomization: every uncolored node picks a uniformly random
//!   color from its current list and keeps it if no neighbor picked the
//!   same; colored nodes announce, neighbors prune lists.
//! - [`greedy`]: the sequential greedy list-coloring (the trivial
//!   centralized algorithm both problems admit; reference for correctness
//!   and color counts, not for round complexity).

use crate::instance::ListInstance;
use dcl_congest::network::{Metrics, Network};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of the randomized baseline.
#[derive(Debug, Clone)]
pub struct JohanssonResult {
    /// The proper list coloring.
    pub colors: Vec<u64>,
    /// Number of trial iterations (2 rounds each).
    pub iterations: usize,
    /// Simulator cost counters.
    pub metrics: Metrics,
}

/// Randomized trial coloring with an explicit RNG seed. Each iteration costs
/// two communication rounds (announce trial color; announce keep).
///
/// # Panics
///
/// Panics if 64·⌈log₂ n⌉ + 64 iterations do not suffice (probability
/// vanishingly small; indicates a bug).
pub fn johansson(instance: &ListInstance, rng_seed: u64) -> JohanssonResult {
    let g = instance.graph();
    let n = g.n();
    let mut net = Network::with_default_cap(g, instance.color_space());
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let mut residual = instance.clone();
    let mut colors: Vec<Option<u64>> = vec![None; n];
    let mut remaining = n;
    let mut iterations = 0;
    let cap = 64 * (usize::BITS - n.max(2).leading_zeros()) as usize + 64;

    while remaining > 0 {
        assert!(iterations < cap, "randomized baseline failed to converge");
        iterations += 1;
        // Trial round: uncolored nodes draw a uniform color from their list.
        let trial: Vec<Option<u64>> = (0..n)
            .map(|v| {
                if colors[v].is_some() {
                    None
                } else {
                    let list = residual.list(v);
                    Some(list[rng.gen_range(0..list.len())])
                }
            })
            .collect();
        let inboxes = net.broadcast_round(|v| trial[v]);
        // Keep-decision + announcement round.
        let keeps: Vec<Option<u64>> = (0..n)
            .map(|v| {
                let mine = trial[v]?;
                let conflicted = inboxes[v].iter().any(|&(_, c)| c == mine);
                if conflicted {
                    None
                } else {
                    Some(mine)
                }
            })
            .collect();
        let keep_inboxes = net.broadcast_round(|v| keeps[v]);
        for v in 0..n {
            if let Some(c) = keeps[v] {
                colors[v] = Some(c);
                remaining -= 1;
            }
        }
        for v in 0..n {
            if colors[v].is_none() {
                for &(_, c) in &keep_inboxes[v] {
                    residual.remove_color(v, c);
                }
            }
        }
    }

    JohanssonResult {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
        iterations,
        metrics: net.metrics(),
    }
}

/// Sequential greedy list coloring: processes nodes in id order, assigning
/// the smallest list color unused by already-colored neighbors.
///
/// Always succeeds on `(degree+1)` instances.
pub fn greedy(instance: &ListInstance) -> Vec<u64> {
    let g = instance.graph();
    let mut colors: Vec<Option<u64>> = vec![None; g.n()];
    for v in g.nodes() {
        let taken: Vec<u64> = g.neighbors(v).iter().filter_map(|&u| colors[u]).collect();
        let c = instance
            .list(v)
            .iter()
            .copied()
            .find(|c| !taken.contains(c))
            .expect("(degree+1) slack guarantees a free color");
        colors[v] = Some(c);
    }
    colors
        .into_iter()
        .map(|c| c.expect("assigned above"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, validation};

    #[test]
    fn johansson_produces_proper_list_colorings() {
        for seed in 0..5 {
            let g = generators::gnp(40, 0.2, seed);
            let inst = ListInstance::degree_plus_one(g);
            let result = johansson(&inst, seed * 31 + 1);
            assert_eq!(
                validation::check_list_coloring(inst.graph(), inst.lists(), &result.colors),
                None,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn johansson_iterations_are_logarithmic() {
        let g = generators::random_regular(200, 6, 5);
        let inst = ListInstance::degree_plus_one(g);
        let result = johansson(&inst, 77);
        assert!(
            result.iterations <= 40,
            "took {} iterations",
            result.iterations
        );
        assert_eq!(result.metrics.rounds, 2 * result.iterations as u64);
    }

    #[test]
    fn johansson_is_reproducible_per_seed() {
        let g = generators::gnp(30, 0.25, 2);
        let inst = ListInstance::degree_plus_one(g);
        let a = johansson(&inst, 5);
        let b = johansson(&inst, 5);
        assert_eq!(a.colors, b.colors);
    }

    #[test]
    fn greedy_colors_any_instance() {
        for seed in 0..5 {
            let g = generators::gnp(50, 0.15, seed + 20);
            let inst = ListInstance::degree_plus_one(g);
            let colors = greedy(&inst);
            assert_eq!(
                validation::check_list_coloring(inst.graph(), inst.lists(), &colors),
                None
            );
        }
    }

    #[test]
    fn greedy_handles_custom_lists() {
        let g = generators::ring(8);
        let lists: Vec<Vec<u64>> = (0..8u64).map(|v| vec![v, v + 8, v + 16]).collect();
        let inst = ListInstance::new(g, 24, lists.clone()).unwrap();
        let colors = greedy(&inst);
        assert_eq!(
            validation::check_list_coloring(inst.graph(), &lists, &colors),
            None
        );
    }
}

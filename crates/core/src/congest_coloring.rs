//! Theorem 1.1: deterministic `(degree+1)`-list coloring in
//! `O(D · log n · log C · (log Δ + log log C))` CONGEST rounds (with the
//! seed-length caveat of `DESIGN.md` §2.1).
//!
//! The driver is the proof of Theorem 1.1: compute a `K = O(Δ²)`-ish input
//! coloring with Linial's algorithm once, then iterate Lemma 2.1 `O(log n)`
//! times; after every iteration the freshly colored nodes announce their
//! color and the still-uncolored neighbors remove it from their lists, which
//! preserves the `(degree+1)` slack on the residual instance.

use crate::instance::ListInstance;
use crate::linial::linial_from_ids;
use crate::partial::{partial_coloring, PartialConfig, PartialOutcome};
use dcl_congest::bfs::build_bfs_forest;
use dcl_congest::network::{Metrics, Network};
use dcl_graphs::Graph;
use dcl_sim::ExecConfig;

/// Configuration of the Theorem 1.1 driver.
///
/// `#[non_exhaustive]`: build it with [`Default`] plus the `with_*` setters
/// so future knobs are not semver breaks.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct CongestColoringConfig {
    /// Strategy and accuracy of each partial-coloring invocation.
    pub partial: PartialConfig,
    /// Hard iteration cap (safety net; `None` = `6·⌈log₂ n⌉ + 10`, well
    /// above the guaranteed `log_{8/7} n` bound).
    pub max_iterations: Option<usize>,
    /// Simulator execution: round backend (results are bit-identical across
    /// backends) and bandwidth cap (`None` = the model default; smaller
    /// caps fragment wide payloads and stretch rounds accordingly — the
    /// sweep axis of `dcl_bench::e12_bandwidth_sweep`).
    pub exec: ExecConfig,
}

impl CongestColoringConfig {
    /// Sets the partial-coloring strategy (builder style).
    #[must_use]
    pub fn with_partial(mut self, partial: PartialConfig) -> Self {
        self.partial = partial;
        self
    }

    /// Sets the iteration safety cap (builder style).
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: Option<usize>) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the simulator execution knob (builder style).
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }
}

/// Result of the full CONGEST coloring.
#[derive(Debug, Clone)]
pub struct ColoringResult {
    /// The proper list coloring (one color per node).
    pub colors: Vec<u64>,
    /// Number of Lemma 2.1 iterations used.
    pub iterations: usize,
    /// Simulator cost counters (rounds, messages, bits).
    pub metrics: Metrics,
    /// Palette of the Linial input coloring (the `K` of Lemma 2.1).
    pub linial_palette: u64,
    /// Per-iteration partial-coloring outcomes (for the experiment harness).
    pub outcomes: Vec<PartialOutcome>,
}

/// Colors a `(degree+1)`-list instance deterministically (Theorem 1.1).
///
/// # Panics
///
/// Panics if the iteration cap is exceeded (would indicate a progress bug —
/// Lemma 2.1 guarantees an eighth of the remaining nodes per iteration).
pub fn color_list_instance(
    instance: &ListInstance,
    config: &CongestColoringConfig,
) -> ColoringResult {
    let mut net = Network::from_exec(instance.graph(), instance.color_space(), &config.exec);
    color_list_instance_on(&mut net, instance, config)
}

/// [`color_list_instance`] on a caller-supplied [`Network`], so scenario
/// pipelines that run Theorem 1.1 as one phase of a longer algorithm (e.g.
/// the `dcl_delta` Δ-coloring) accumulate every round on a single simulator.
/// The network's graph must be the instance graph; `config.exec` is ignored
/// (the network already carries its backend and cap). The returned
/// [`ColoringResult::metrics`] are the network's cumulative counters, which
/// include whatever the caller already charged.
///
/// # Panics
///
/// Panics if the iteration cap is exceeded (progress bug) or if the
/// network's graph differs from the instance graph.
pub fn color_list_instance_on(
    net: &mut Network<'_>,
    instance: &ListInstance,
    config: &CongestColoringConfig,
) -> ColoringResult {
    let g = instance.graph();
    let n = g.n();
    assert_eq!(
        net.graph(),
        g,
        "network graph must match the instance graph"
    );
    if n == 0 {
        return ColoringResult {
            colors: Vec::new(),
            iterations: 0,
            metrics: net.metrics(),
            linial_palette: 0,
            outcomes: Vec::new(),
        };
    }
    let forest = build_bfs_forest(net);
    let lin = linial_from_ids(net);

    let cap = config
        .max_iterations
        .unwrap_or_else(|| 6 * (usize::BITS - (n - 1).leading_zeros()) as usize + 10);

    let mut residual = instance.clone();
    let mut active = vec![true; n];
    let mut colors: Vec<Option<u64>> = vec![None; n];
    let mut outcomes = Vec::new();
    let mut remaining = n;

    while remaining > 0 {
        assert!(
            outcomes.len() < cap,
            "iteration cap {cap} exceeded with {remaining} nodes uncolored — progress bug"
        );
        let outcome = partial_coloring(
            net,
            &forest,
            &residual,
            &active,
            &lin.colors,
            lin.palette,
            config.partial,
        );
        // One real round: newly colored nodes announce their final color;
        // uncolored neighbors delete it from their lists.
        let newly: Vec<Option<u64>> = {
            let mut a = vec![None; n];
            for &(v, c) in &outcome.colored {
                a[v] = Some(c);
            }
            a
        };
        let inboxes = net.fragmented_broadcast_round(|v| newly[v]);
        for &(v, c) in &outcome.colored {
            colors[v] = Some(c);
            active[v] = false;
            remaining -= 1;
        }
        for v in 0..n {
            if active[v] {
                for &(_, c) in &inboxes[v] {
                    residual.remove_color(v, c);
                }
            }
        }
        debug_assert!(
            residual.slack_holds(&active),
            "slack lost on residual instance"
        );
        outcomes.push(outcome);
    }

    ColoringResult {
        colors: colors
            .into_iter()
            .map(|c| c.expect("loop exits only when all colored"))
            .collect(),
        iterations: outcomes.len(),
        metrics: net.metrics(),
        linial_palette: lin.palette,
        outcomes,
    }
}

/// Colors the canonical `(Δ+1)` instance of `graph` (lists `{0..deg(v)}`).
pub fn color_degree_plus_one(graph: &Graph, config: &CongestColoringConfig) -> ColoringResult {
    color_list_instance(&ListInstance::degree_plus_one(graph.clone()), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partial::ConflictResolution;
    use dcl_graphs::{generators, metrics, validation};

    #[test]
    fn colors_random_graphs_properly() {
        for seed in 0..4 {
            let g = generators::gnp(40, 0.15, seed);
            let result = color_degree_plus_one(&g, &CongestColoringConfig::default());
            assert_eq!(
                validation::check_proper(&g, &result.colors),
                None,
                "seed {seed}"
            );
            // (Δ+1) colors suffice.
            let delta = g.max_degree() as u64;
            assert!(result.colors.iter().all(|&c| c <= delta));
        }
    }

    #[test]
    fn colors_structured_graphs() {
        for g in [
            generators::ring(31),
            generators::star(20),
            generators::complete(9),
            generators::grid(5, 6),
            generators::hypercube(4),
        ] {
            let result = color_degree_plus_one(&g, &CongestColoringConfig::default());
            assert_eq!(validation::check_proper(&g, &result.colors), None);
        }
    }

    #[test]
    fn respects_arbitrary_lists() {
        // Custom lists with gaps and a large color space.
        let g = generators::ring(10);
        let lists: Vec<Vec<u64>> = (0..10)
            .map(|v| vec![7 + v as u64, 31 + v as u64, 64 + (v % 3) as u64])
            .collect();
        let inst = ListInstance::new(g, 128, lists.clone()).unwrap();
        let result = color_list_instance(&inst, &CongestColoringConfig::default());
        assert_eq!(
            validation::check_list_coloring(inst.graph(), &lists, &result.colors),
            None
        );
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let g = generators::gnp(64, 0.1, 3);
        let result = color_degree_plus_one(&g, &CongestColoringConfig::default());
        // log_{8/7} 64 ≈ 31; in practice far fewer.
        assert!(
            result.iterations <= 31,
            "took {} iterations",
            result.iterations
        );
    }

    #[test]
    fn deterministic_end_to_end() {
        let g = generators::gnp(30, 0.2, 9);
        let r1 = color_degree_plus_one(&g, &CongestColoringConfig::default());
        let r2 = color_degree_plus_one(&g, &CongestColoringConfig::default());
        assert_eq!(r1.colors, r2.colors);
        assert_eq!(r1.metrics, r2.metrics);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = dcl_graphs::Graph::from_edges(
            9,
            &[(0, 1), (1, 2), (2, 0), (3, 4), (5, 6), (6, 7), (7, 8)],
        )
        .unwrap();
        let result = color_degree_plus_one(&g, &CongestColoringConfig::default());
        assert_eq!(validation::check_proper(&g, &result.colors), None);
    }

    #[test]
    fn handles_trivial_graphs() {
        let empty = dcl_graphs::Graph::empty(0);
        assert_eq!(
            color_degree_plus_one(&empty, &CongestColoringConfig::default()).colors,
            vec![]
        );
        let single = dcl_graphs::Graph::empty(1);
        let r = color_degree_plus_one(&single, &CongestColoringConfig::default());
        assert_eq!(r.colors, vec![0]);
        let edgeless = dcl_graphs::Graph::empty(5);
        let r = color_degree_plus_one(&edgeless, &CongestColoringConfig::default());
        assert_eq!(r.colors, vec![0; 5]);
        assert_eq!(r.iterations, 1);
    }

    #[test]
    fn avoid_mis_variant_also_completes() {
        let g = generators::gnp(32, 0.2, 4);
        let config = CongestColoringConfig::default().with_partial(PartialConfig {
            resolution: ConflictResolution::AvoidMis,
            extra_accuracy_bits: 0,
        });
        let result = color_degree_plus_one(&g, &config);
        assert_eq!(validation::check_proper(&g, &result.colors), None);
    }

    #[test]
    fn rounds_scale_with_diameter() {
        // Same n and Δ, very different D: rounds should grow accordingly.
        let small_d = generators::hypercube(5); // n=32, D=5
        let large_d = generators::ring(32); // D=16
        let r_small = color_degree_plus_one(&small_d, &CongestColoringConfig::default());
        let r_large = color_degree_plus_one(&large_d, &CongestColoringConfig::default());
        let d_small = metrics::diameter(&small_d).unwrap() as f64;
        let d_large = metrics::diameter(&large_d).unwrap() as f64;
        assert!(d_large > d_small);
        assert!(
            (r_large.metrics.rounds as f64) > (r_small.metrics.rounds as f64) * 0.5,
            "ring ({}) should not be much cheaper than hypercube ({})",
            r_large.metrics.rounds,
            r_small.metrics.rounds
        );
    }
}

//! Bitwise candidate-color selection (Section 2) and Algorithm 1.
//!
//! Every node `u` maintains a bit prefix `s_ℓ(u)` of its eventual candidate
//! color, extended by one bit per phase over `⌈log₂ C⌉` phases. The candidate
//! set `L_ℓ(u)` (colors of `L(u)` starting with `s_ℓ(u)`) is a contiguous
//! range of the sorted list, so `k₀/k₁` splits are binary searches. The
//! *conflict graph* `G_ℓ` keeps exactly the edges whose endpoints share a
//! prefix; it is maintained incrementally, one real communication round per
//! phase (nodes exchange their latest bit).

use crate::instance::ListInstance;
use dcl_graphs::NodeId;
use rand::Rng;

/// Central state of the prefix-extension process for one partial-coloring
/// attempt (the per-node fields are exactly what each node would store in a
/// faithful message-passing deployment; see `DESIGN.md` §2).
#[derive(Debug, Clone)]
pub struct PrefixState {
    /// Total number of phases = `⌈log₂ C⌉`.
    c_bits: u32,
    /// Phases completed so far.
    prefix_len: u32,
    /// Participating nodes.
    active: Vec<bool>,
    /// Candidate range start (index into the node's sorted list).
    lo: Vec<usize>,
    /// Candidate range end (exclusive).
    hi: Vec<usize>,
    /// Prefix value chosen so far (high bits of the eventual color).
    prefix: Vec<u64>,
    /// Adjacency of the current conflict graph `G_ℓ` (only meaningful for
    /// active nodes; always a subset of the instance graph's adjacency).
    conflict_adj: Vec<Vec<NodeId>>,
}

/// The `k₀/k₁` split of a node's candidate set for the next phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Split {
    /// Number of candidate colors whose next bit is 0.
    pub k0: usize,
    /// Number of candidate colors whose next bit is 1.
    pub k1: usize,
}

impl PrefixState {
    /// Initializes the state for the active nodes of `instance`.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from `n` or an active node has an
    /// empty list.
    pub fn new(instance: &ListInstance, active: &[bool]) -> Self {
        let g = instance.graph();
        let n = g.n();
        assert_eq!(active.len(), n, "mask length must equal n");
        let mut conflict_adj = vec![Vec::new(); n];
        for v in g.nodes() {
            if !active[v] {
                continue;
            }
            assert!(
                !instance.list(v).is_empty(),
                "active node {v} has an empty list"
            );
            conflict_adj[v] = g
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| active[u])
                .collect();
        }
        PrefixState {
            c_bits: instance.color_bits(),
            prefix_len: 0,
            active: active.to_vec(),
            lo: vec![0; n],
            hi: (0..n)
                .map(|v| if active[v] { instance.list(v).len() } else { 0 })
                .collect(),
            prefix: vec![0; n],
            conflict_adj,
        }
    }

    /// Number of phases in total (`⌈log₂ C⌉`).
    pub fn total_phases(&self) -> u32 {
        self.c_bits
    }

    /// Phases completed so far.
    pub fn phases_done(&self) -> u32 {
        self.prefix_len
    }

    /// Whether all bits have been fixed.
    pub fn is_complete(&self) -> bool {
        self.prefix_len == self.c_bits
    }

    /// Whether `v` participates.
    pub fn is_active(&self, v: NodeId) -> bool {
        self.active[v]
    }

    /// Bit position (from the most significant of the `⌈log₂ C⌉`-bit color
    /// representation) fixed by the next phase.
    fn next_bit_pos(&self) -> u32 {
        self.c_bits - 1 - self.prefix_len
    }

    /// Current candidate count `|L_ℓ(v)|`.
    pub fn candidate_count(&self, v: NodeId) -> usize {
        self.hi[v] - self.lo[v]
    }

    /// The `k₀/k₁` split of `v`'s candidates on the next bit.
    ///
    /// # Panics
    ///
    /// Panics if the process is complete or `v` is inactive.
    pub fn split(&self, instance: &ListInstance, v: NodeId) -> Split {
        assert!(!self.is_complete(), "all bits already fixed");
        assert!(self.active[v], "split queried for inactive node {v}");
        let pos = self.next_bit_pos();
        let list = instance.list(v);
        let range = &list[self.lo[v]..self.hi[v]];
        // Candidates share the chosen prefix above `pos`, so they are
        // partitioned by bit `pos`: all 0-bit colors precede all 1-bit ones.
        let boundary = range.partition_point(|&c| c >> pos & 1 == 0);
        Split {
            k0: boundary,
            k1: range.len() - boundary,
        }
    }

    /// Extends `v`'s prefix by `bit`, narrowing the candidate range.
    ///
    /// # Panics
    ///
    /// Panics if the chosen side is empty (Algorithm 1 never does this) or
    /// `v` is inactive.
    pub fn extend(&mut self, instance: &ListInstance, v: NodeId, bit: bool) {
        let split = self.split(instance, v);
        let boundary = self.lo[v] + split.k0;
        if bit {
            assert!(
                split.k1 > 0,
                "node {v} extended into an empty candidate set"
            );
            self.lo[v] = boundary;
        } else {
            assert!(
                split.k0 > 0,
                "node {v} extended into an empty candidate set"
            );
            self.hi[v] = boundary;
        }
        self.prefix[v] = (self.prefix[v] << 1) | u64::from(bit);
    }

    /// Remaining bits still to be fixed.
    pub fn remaining_bits(&self) -> u32 {
        self.c_bits - self.prefix_len
    }

    /// Candidate counts per `width`-bit digit value (length `2^width`):
    /// entry `d` is the number of candidate colors whose next `width` bits
    /// equal `d`. Generalizes [`PrefixState::split`] (CONGESTED CLIQUE
    /// batching, Theorem 1.3).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `width` bits remain or `v` is inactive.
    pub fn split_digits(&self, instance: &ListInstance, v: NodeId, width: u32) -> Vec<usize> {
        assert!(
            width >= 1 && width <= self.remaining_bits(),
            "digit width out of range"
        );
        assert!(self.active[v], "split queried for inactive node {v}");
        let shift = self.c_bits - self.prefix_len - width;
        let list = instance.list(v);
        let range = &list[self.lo[v]..self.hi[v]];
        let mask = (1u64 << width) - 1;
        let mut counts = vec![0usize; 1 << width];
        let mut start = 0usize;
        for d in 0..(1u64 << width) {
            let end = range.partition_point(|&c| (c >> shift) & mask <= d);
            counts[d as usize] = end - start;
            start = end;
        }
        counts
    }

    /// Extends `v`'s prefix by the `width`-bit value `digit`.
    ///
    /// # Panics
    ///
    /// Panics if the chosen digit class is empty.
    pub fn extend_digit(&mut self, instance: &ListInstance, v: NodeId, width: u32, digit: u64) {
        assert!(
            width >= 1 && width <= self.remaining_bits(),
            "digit width out of range"
        );
        let shift = self.c_bits - self.prefix_len - width;
        let list = instance.list(v);
        let range = &list[self.lo[v]..self.hi[v]];
        let mask = (1u64 << width) - 1;
        let start = range.partition_point(|&c| (c >> shift) & mask < digit);
        let end = range.partition_point(|&c| (c >> shift) & mask <= digit);
        assert!(end > start, "node {v} extended into an empty candidate set");
        self.hi[v] = self.lo[v] + end;
        self.lo[v] += start;
        self.prefix[v] = (self.prefix[v] << width) | digit;
    }

    /// Marks the phase finished and drops conflict edges whose endpoints
    /// chose different bits (the callers are responsible for charging the
    /// one exchange round on their network).
    pub fn finish_phase(&mut self) {
        self.finish_phase_digits(1);
    }

    /// Multi-bit variant of [`PrefixState::finish_phase`].
    pub fn finish_phase_digits(&mut self, width: u32) {
        self.prefix_len += width;
        let prefix = &self.prefix;
        let active = &self.active;
        for v in 0..self.conflict_adj.len() {
            if active[v] {
                let pv = prefix[v];
                self.conflict_adj[v].retain(|&u| prefix[u] == pv);
            }
        }
    }

    /// Conflict-graph neighbors of `v` (current `G_ℓ`).
    pub fn conflict_neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.conflict_adj[v]
    }

    /// Conflict degree `deg_ℓ(v)`.
    pub fn conflict_degree(&self, v: NodeId) -> usize {
        self.conflict_adj[v].len()
    }

    /// All conflict edges `(u, v)` with `u < v` between active nodes.
    pub fn conflict_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges = Vec::new();
        for v in 0..self.conflict_adj.len() {
            if self.active[v] {
                for &u in &self.conflict_adj[v] {
                    if v < u {
                        edges.push((v, u));
                    }
                }
            }
        }
        edges
    }

    /// The potential `Φ_ℓ(v) = deg_ℓ(v) / |L_ℓ(v)|`.
    pub fn potential(&self, v: NodeId) -> f64 {
        self.conflict_degree(v) as f64 / self.candidate_count(v) as f64
    }

    /// The global potential `Σ_v Φ_ℓ(v)` over active nodes.
    pub fn total_potential(&self) -> f64 {
        (0..self.active.len())
            .filter(|&v| self.active[v])
            .map(|v| self.potential(v))
            .sum()
    }

    /// The single candidate color after all phases.
    ///
    /// # Panics
    ///
    /// Panics if the process is incomplete, the node is inactive, or the
    /// candidate set is not a singleton (cannot happen when every phase went
    /// through [`PrefixState::extend`]).
    pub fn candidate_color(&self, instance: &ListInstance, v: NodeId) -> u64 {
        assert!(self.is_complete(), "prefix selection still running");
        assert!(
            self.active[v],
            "candidate color queried for inactive node {v}"
        );
        assert_eq!(
            self.candidate_count(v),
            1,
            "candidate set of node {v} is not a singleton"
        );
        instance.list(v)[self.lo[v]]
    }
}

/// One phase of Algorithm 1 with *fully independent* exact-probability coins
/// (`p_u = k₁(u)/|L_{ℓ-1}(u)|`, realized exactly via `Rng::gen_ratio`).
/// Used for the Lemma 2.2 experiments and as the randomized reference.
///
/// Returns the potential before and after the phase.
pub fn randomized_one_bit_step<R: Rng>(
    state: &mut PrefixState,
    instance: &ListInstance,
    rng: &mut R,
) -> (f64, f64) {
    let before = state.total_potential();
    let n = instance.graph().n();
    for v in 0..n {
        if !state.is_active(v) {
            continue;
        }
        let split = state.split(instance, v);
        let total = split.k0 + split.k1;
        let bit = rng.gen_ratio(split.k1 as u32, total as u32);
        state.extend(instance, v, bit);
    }
    state.finish_phase();
    (before, state.total_potential())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_instance() -> ListInstance {
        let g = generators::ring(6);
        ListInstance::degree_plus_one(g)
    }

    #[test]
    fn initial_state_has_full_lists_and_graph_conflicts() {
        let inst = small_instance();
        let state = PrefixState::new(&inst, &[true; 6]);
        assert_eq!(state.total_phases(), 2); // C = 3 → 2 bits
        for v in 0..6 {
            assert_eq!(state.candidate_count(v), 3);
            assert_eq!(state.conflict_degree(v), 2);
        }
        // Φ_0 = 2/3 per node.
        assert!((state.total_potential() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn split_partitions_by_bit() {
        let inst = small_instance(); // lists {0,1,2}, 2 bits: 00, 01, 10
        let state = PrefixState::new(&inst, &[true; 6]);
        let s = state.split(&inst, 0);
        // First bit (MSB): colors {0,1} have 0, color {2} has 1.
        assert_eq!(s, Split { k0: 2, k1: 1 });
    }

    #[test]
    fn extend_narrows_range_and_tracks_prefix() {
        let inst = small_instance();
        let mut state = PrefixState::new(&inst, &[true; 6]);
        state.extend(&inst, 0, false); // candidates {0, 1}
        assert_eq!(state.candidate_count(0), 2);
        for v in 1..6 {
            state.extend(&inst, v, true); // candidates {2}
            assert_eq!(state.candidate_count(v), 1);
        }
        state.finish_phase();
        // Node 0 chose bit 0, all others bit 1 → node 0 has no conflicts.
        assert_eq!(state.conflict_degree(0), 0);
        // Nodes 1..6 all kept each other where adjacent.
        assert_eq!(state.conflict_degree(2), 2);
    }

    #[test]
    #[should_panic(expected = "empty candidate set")]
    fn extend_into_empty_side_panics() {
        let g = generators::path(2);
        // Lists {0,1} over C=4 (2 bits): both colors have MSB 0.
        let inst = ListInstance::new(g, 4, vec![vec![0, 1], vec![0, 1]]).unwrap();
        let mut state = PrefixState::new(&inst, &[true; 2]);
        state.extend(&inst, 0, true);
    }

    #[test]
    fn candidate_color_after_all_phases() {
        let g = generators::path(2);
        let inst = ListInstance::new(g, 4, vec![vec![1, 2], vec![0, 3]]).unwrap();
        let mut state = PrefixState::new(&inst, &[true; 2]);
        // Node 0: bits of 1 = 01, of 2 = 10. Choose 1 → color 2.
        state.extend(&inst, 0, true);
        // Node 1: bits of 0 = 00, of 3 = 11. Choose 0 → color 0.
        state.extend(&inst, 1, false);
        state.finish_phase();
        state.extend(&inst, 0, false);
        state.extend(&inst, 1, false);
        state.finish_phase();
        assert!(state.is_complete());
        assert_eq!(state.candidate_color(&inst, 0), 2);
        assert_eq!(state.candidate_color(&inst, 1), 0);
    }

    #[test]
    fn conflict_edges_symmetric_subset_of_graph() {
        let g = generators::gnp(20, 0.3, 5);
        let inst = ListInstance::degree_plus_one(g);
        let mut state = PrefixState::new(&inst, &[true; 20]);
        let mut rng = StdRng::seed_from_u64(1);
        while !state.is_complete() {
            randomized_one_bit_step(&mut state, &inst, &mut rng);
        }
        for (u, v) in state.conflict_edges() {
            assert!(inst.graph().has_edge(u, v));
        }
    }

    #[test]
    fn randomized_steps_preserve_nonempty_candidates() {
        for seed in 0..10 {
            let g = generators::gnp(24, 0.25, seed);
            let inst = ListInstance::degree_plus_one(g);
            let mut state = PrefixState::new(&inst, &[true; 24]);
            let mut rng = StdRng::seed_from_u64(seed);
            while !state.is_complete() {
                randomized_one_bit_step(&mut state, &inst, &mut rng);
            }
            for v in 0..24 {
                assert_eq!(state.candidate_count(v), 1);
                // The candidate is a real list color.
                let c = state.candidate_color(&inst, v);
                assert!(inst.list(v).contains(&c));
            }
        }
    }

    #[test]
    fn expected_potential_does_not_increase_on_average() {
        // Statistical check of Lemma 2.2: averaged over many runs the
        // potential after one phase is at most the potential before
        // (up to sampling noise).
        let g = generators::gnp(30, 0.2, 3);
        let inst = ListInstance::degree_plus_one(g);
        let base = PrefixState::new(&inst, &[true; 30]);
        let before = base.total_potential();
        let trials = 400;
        let mut sum_after = 0.0;
        for t in 0..trials {
            let mut state = base.clone();
            let mut rng = StdRng::seed_from_u64(t);
            let (_, after) = randomized_one_bit_step(&mut state, &inst, &mut rng);
            sum_after += after;
        }
        let mean_after = sum_after / trials as f64;
        assert!(
            mean_after <= before * 1.05,
            "mean potential after ({mean_after}) should not exceed before ({before})"
        );
    }

    #[test]
    fn inactive_nodes_are_ignored() {
        let inst = small_instance();
        let mut active = vec![true; 6];
        active[3] = false;
        let state = PrefixState::new(&inst, &active);
        assert!(!state.is_active(3));
        assert!(!state.conflict_neighbors(2).contains(&3));
        assert!(!state.conflict_neighbors(4).contains(&3));
    }
}

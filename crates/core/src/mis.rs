//! Maximal independent set on bounded-degree subgraphs.
//!
//! The partial coloring of Lemma 2.1 finishes by computing an MIS on the
//! conflict graph induced by the nodes with fewer than 4 conflicting
//! neighbors — a graph of maximum degree 3. As in the paper, we first reduce
//! the given `K`-coloring to an `O(Δ_ℓ²)` palette with Linial's algorithm
//! (`O(log* K)` rounds) and then sweep the color classes: class by class,
//! every unblocked node of the class joins the set and blocks its neighbors
//! (one round per class).

use crate::linial::linial_coloring;
use dcl_congest::network::Network;
use dcl_graphs::NodeId;

/// Result of [`mis_bounded_degree`].
#[derive(Debug, Clone)]
pub struct MisOutcome {
    /// Membership mask (only meaningful for active nodes).
    pub in_set: Vec<bool>,
    /// Palette size after the Linial reduction (= number of sweep rounds).
    pub sweep_classes: u64,
}

/// Computes an MIS of the subgraph `(active, adj)` given a proper input
/// coloring with palette `input_palette`.
///
/// Round cost: Linial steps + one round per final color class.
///
/// # Panics
///
/// Panics if vector lengths differ from `n` or the input coloring is not
/// proper on the subgraph (checked inside the Linial reduction).
pub fn mis_bounded_degree(
    net: &mut Network<'_>,
    adj: &[Vec<NodeId>],
    active: &[bool],
    input_colors: &[u64],
    input_palette: u64,
) -> MisOutcome {
    let n = net.graph().n();
    assert_eq!(adj.len(), n, "adjacency length must equal n");
    assert_eq!(active.len(), n, "mask length must equal n");
    let reduced = linial_coloring(net, adj, active, input_colors, input_palette);
    let mut in_set = vec![false; n];
    let mut blocked = vec![false; n];
    for class in 0..reduced.palette {
        // One round: this class's unblocked nodes join and announce.
        let joining: Vec<bool> = (0..n)
            .map(|v| active[v] && !blocked[v] && !in_set[v] && reduced.colors[v] == class)
            .collect();
        let inboxes = net.fragmented_broadcast_round(|v| if joining[v] { Some(1u8) } else { None });
        for v in 0..n {
            if joining[v] {
                in_set[v] = true;
            }
        }
        for v in 0..n {
            if active[v] && !in_set[v] {
                let blocked_now = inboxes[v]
                    .iter()
                    .any(|(u, _)| adj[v].contains(u) && joining[*u]);
                if blocked_now {
                    blocked[v] = true;
                }
            }
        }
    }
    MisOutcome {
        in_set,
        sweep_classes: reduced.palette,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::validation::check_mis;
    use dcl_graphs::{generators, Graph};

    fn full_adj(g: &Graph) -> Vec<Vec<NodeId>> {
        (0..g.n()).map(|v| g.neighbors(v).to_vec()).collect()
    }

    fn run_full(g: &Graph) -> MisOutcome {
        let mut net = Network::with_default_cap(g, 64);
        let adj = full_adj(g);
        let ids: Vec<u64> = (0..g.n() as u64).collect();
        mis_bounded_degree(&mut net, &adj, &vec![true; g.n()], &ids, g.n() as u64)
    }

    #[test]
    fn mis_on_paths_and_rings() {
        for g in [
            generators::path(11),
            generators::ring(12),
            generators::ring(13),
        ] {
            let out = run_full(&g);
            assert_eq!(check_mis(&g, &out.in_set), None);
        }
    }

    #[test]
    fn mis_on_random_bounded_degree_graphs() {
        for seed in 0..6 {
            let g = generators::random_regular(60, 3, seed);
            let out = run_full(&g);
            assert_eq!(check_mis(&g, &out.in_set), None, "seed {seed}");
            // Max degree 3 ⇒ the MIS covers at least a quarter of the nodes.
            let size = out.in_set.iter().filter(|&&x| x).count();
            assert!(size * 4 >= 60, "MIS too small: {size}");
        }
    }

    #[test]
    fn mis_respects_subgraph() {
        // The communication graph is a clique, but the MIS runs on a ring
        // subgraph over half the nodes.
        let g = generators::complete(10);
        let active: Vec<bool> = (0..10).map(|v| v < 6).collect();
        let mut adj = vec![Vec::new(); 10];
        for i in 0..6usize {
            let j = (i + 1) % 6;
            adj[i].push(j);
            adj[j].push(i);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        let ids: Vec<u64> = (0..10).collect();
        let mut net = Network::with_default_cap(&g, 64);
        let out = mis_bounded_degree(&mut net, &adj, &active, &ids, 10);
        // Check independence and maximality on the ring subgraph.
        for i in 0..6usize {
            let j = (i + 1) % 6;
            assert!(
                !(out.in_set[i] && out.in_set[j]),
                "adjacent {i},{j} both in set"
            );
        }
        for i in 0..6usize {
            if !out.in_set[i] {
                let has_set_neighbor = adj[i].iter().any(|&u| out.in_set[u]);
                assert!(has_set_neighbor, "node {i} not dominated");
            }
        }
        // Inactive nodes never join.
        assert!(!out.in_set[7]);
    }

    #[test]
    fn sweep_count_matches_reduced_palette() {
        let g = generators::ring(40);
        let mut net = Network::with_default_cap(&g, 64);
        let adj = full_adj(&g);
        let ids: Vec<u64> = (0..40).collect();
        let before = net.rounds();
        let out = mis_bounded_degree(&mut net, &adj, &[true; 40], &ids, 40);
        // Rounds = Linial steps + palette sweeps; sweeps dominate.
        assert!(net.rounds() - before >= out.sweep_classes);
        assert!(out.sweep_classes <= 121);
    }

    #[test]
    fn empty_subgraph_everyone_joins() {
        let g = generators::path(5);
        let adj = vec![Vec::new(); 5];
        let ids: Vec<u64> = (0..5).collect();
        let mut net = Network::with_default_cap(&g, 64);
        let out = mis_bounded_degree(&mut net, &adj, &[true; 5], &ids, 5);
        assert!(out.in_set.iter().all(|&x| x));
    }
}

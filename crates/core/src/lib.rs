//! The paper's primary contribution: deterministic distributed
//! `(degree+1)`-list coloring with small bandwidth.
//!
//! Implements, module by module (see `DESIGN.md` for the full map):
//!
//! - [`instance`] — `(degree+1)`-list-coloring instances over a color space
//!   `[C]` (Section 2 preliminaries);
//! - [`potential`] — the potential function `Φ_ℓ(u) = deg_ℓ(u) / |L_ℓ(u)|`;
//! - [`prefix`] — bitwise candidate-color selection state and the randomized
//!   one-bit prefix extension (Algorithm 1; Lemmas 2.2 and 2.3);
//! - [`derand_step`] — the derandomized one-bit extension via the method of
//!   conditional expectations over a BFS forest (Lemma 2.6);
//! - [`partial`] — the partial coloring that permanently colors at least a
//!   1/8 fraction of the nodes (Lemma 2.1);
//! - [`congest_coloring`] — the full CONGEST algorithm (Theorem 1.1);
//! - [`linial`] — Linial's `O(Δ²)`-coloring in `O(log* n)` rounds;
//! - [`mis`] — maximal independent set on bounded-degree subgraphs by
//!   sweeping the color classes of a Linial coloring;
//! - [`baselines`] — randomized (Johansson-style) and sequential greedy
//!   baselines used by the experiment harness.
//!
//! # Quickstart
//!
//! ```
//! use dcl_graphs::generators;
//! use dcl_graphs::validation::check_proper;
//! use dcl_coloring::congest_coloring::{color_degree_plus_one, CongestColoringConfig};
//!
//! let g = generators::gnp(48, 0.12, 7);
//! let result = color_degree_plus_one(&g, &CongestColoringConfig::default());
//! assert!(check_proper(&g, &result.colors).is_none());
//! ```

#![forbid(unsafe_code)]
// Node ids double as indices into per-node state vectors throughout the
// simulators; indexed loops over `0..n` are the clearest expression of
// "for every node" here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod baselines;
pub mod congest_coloring;
pub mod derand_step;
pub mod instance;
pub mod linial;
pub mod mis;
pub mod partial;
pub mod potential;
pub mod prefix;
pub mod scenario;

pub use congest_coloring::{color_degree_plus_one, color_list_instance, CongestColoringConfig};
pub use instance::ListInstance;
pub use scenario::CongestScenario;

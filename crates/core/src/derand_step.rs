//! The derandomized one-bit prefix extension (Lemma 2.6).
//!
//! One phase fixes the next bit of every node's color prefix such that
//!
//! ```text
//! Σ_u Φ_ℓ(u)  ≤  Σ_u Φ_{ℓ-1}(u) + n/⌈log C⌉            (Equation 5)
//! ```
//!
//! and no candidate set becomes empty. The phase derandomizes the biased-coin
//! process of Lemma 2.3 with the method of conditional expectations: the
//! shared seed of the coin family is fixed bit by bit; for each seed bit,
//! every node computes the conditional expectation of its potential for both
//! candidate values (`x⁰_v`, `x¹_v` in the paper), the two sums are
//! aggregated over the BFS tree toward the leader, the leader picks the
//! smaller side and broadcasts the chosen bit. One seed bit therefore costs
//! `O(D)` rounds; a whole phase costs `O(D · seed_len)` plus two real
//! neighbor-exchange rounds.
//!
//! Per the substitution documented in `DESIGN.md` §2.1, the coin family is
//! the slice-independent inner-product family with seed length
//! `b · (⌈log₂ K⌉ + 1)` (the paper's Theorem 2.4 family achieves
//! `2 · max{log K, b}` but has no efficiently computable conditional
//! expectations); all potential invariants are preserved with
//! `ε = 2^{-b}`.

use crate::instance::ListInstance;
use crate::prefix::PrefixState;
use dcl_congest::bfs::BfsForest;
use dcl_congest::network::Network;
use dcl_congest::tree::{aggregate_vec_forest_charged, broadcast_forest_charged};
use dcl_derand::seed::PartialSeed;
use dcl_derand::slice::{coin_threshold, BitForm, SliceFamily};
use dcl_kernels::digit_dp::EdgeDpCache;

/// Outcome of one derandomized phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// `Σ Φ` before the phase.
    pub potential_before: f64,
    /// `Σ Φ` after the phase.
    pub potential_after: f64,
    /// Seed length used (bits fixed by conditional expectations).
    pub seed_len: usize,
}

/// Conditional expectations of one conflict edge for one seed bit:
/// `[x⁰ share of u, x⁰ share of v, x¹ share of u, x¹ share of v]`.
///
/// This is the dominant work of the whole algorithm (every conflict edge ×
/// every seed bit × both candidate values). In the real CONGEST network each
/// *node* evaluates its incident edges locally and simultaneously, so the
/// simulator farms the per-edge evaluations out to the backend's pool; the
/// caller replays the returned contributions in edge order on one thread,
/// which keeps the float association — and hence every leader decision
/// downstream — bit-identical to the sequential backend.
///
/// The numeric work lives in `dcl_kernels::digit_dp::edge_shares_cached`
/// (the arch-dispatched tier of this function); here we only resolve the
/// seed layout: the candidate-value overrides for position `slice` of each
/// endpoint's form vector. `cache` is this edge's persistent DP prefix
/// state — the seed bits `j` arrive in index order, which is exactly the
/// monotone schedule the incremental tier's cache contract requires (see
/// `dcl_derand::slice` module docs); under a forced non-incremental tier
/// the cache is ignored and that tier's stateless evaluator runs.
#[allow(clippy::too_many_arguments)]
#[inline]
fn edge_shares(
    family: &SliceFamily,
    forms: &[Vec<BitForm>],
    psi: &[u64],
    thresholds: &[u64],
    k0_inv: &[f64],
    k1_inv: &[f64],
    j: usize,
    slice: usize,
    u: usize,
    v: usize,
    cache: &mut EdgeDpCache,
) -> [f64; 4] {
    let fu = &forms[u];
    let fv = &forms[v];
    let over_u = [
        family.form_with_fix(fu[slice], psi[u], j, false),
        family.form_with_fix(fu[slice], psi[u], j, true),
    ];
    let over_v = [
        family.form_with_fix(fv[slice], psi[v], j, false),
        family.form_with_fix(fv[slice], psi[v], j, true),
    ];
    dcl_kernels::digit_dp::edge_shares_cached(
        cache,
        fu,
        over_u,
        thresholds[u],
        k0_inv[u],
        k1_inv[u],
        fv,
        over_v,
        thresholds[v],
        k0_inv[v],
        k1_inv[v],
        slice,
    )
}

/// Per-conflict-edge scratch that survives the whole phase: the
/// incremental tier's DP prefix cache plus the share slot the parallel
/// path writes results into (a flat buffer instead of per-chunk `Vec`
/// churn — the same fix the aggregation `vectors` buffer got).
struct EdgeScratch {
    cache: EdgeDpCache,
    share: [f64; 4],
}

/// Accuracy parameter `b` such that `ε = 2^{-b} ≤ 1/(10 · Δ · ⌈log C⌉ ·
/// extra)`; `extra = Δ+1` is the MIS-avoidance variant of Section 4.
#[must_use]
pub fn accuracy_bits(max_degree: usize, color_bits: u32, extra: u64) -> u32 {
    let target = 10u64
        .saturating_mul(max_degree.max(1) as u64)
        .saturating_mul(u64::from(color_bits.max(1)))
        .saturating_mul(extra.max(1));
    let b = 64 - (target - 1).leading_zeros();
    assert!(
        b <= 48,
        "accuracy parameter b = {b} unreasonably large; check instance parameters"
    );
    b.max(1)
}

/// Runs one derandomized prefix-extension phase for all active nodes.
///
/// `psi` must be a proper coloring of the instance graph restricted to the
/// active nodes (the symmetry-breaking input of Lemma 2.1) with values below
/// `psi_palette`; `b` is the coin accuracy from [`accuracy_bits`].
///
/// # Panics
///
/// Panics if called on a completed [`PrefixState`] or if `psi` values exceed
/// the palette.
pub fn derandomized_phase(
    net: &mut Network<'_>,
    forest: &BfsForest,
    instance: &ListInstance,
    state: &mut PrefixState,
    psi: &[u64],
    psi_palette: u64,
    b: u32,
) -> PhaseOutcome {
    let n = instance.graph().n();
    let potential_before = state.total_potential();
    let m = (64 - psi_palette.saturating_sub(1).leading_zeros()).max(1);
    let family = SliceFamily::new(m, b);
    let seed_len = family.seed_len();

    // --- Local setup: k0/k1 splits and coin thresholds. -------------------
    // Inactive nodes keep k = 0, which `recip_batch` maps to 0.0 — the same
    // no-share sentinel the per-node branch produced.
    let mut k0 = vec![0usize; n];
    let mut k1 = vec![0usize; n];
    let mut thresholds = vec![0u64; n];
    for v in 0..n {
        if !state.is_active(v) {
            continue;
        }
        assert!(psi[v] < psi_palette, "psi value out of palette at node {v}");
        let split = state.split(instance, v);
        let total = (split.k0 + split.k1) as u64;
        thresholds[v] = coin_threshold(split.k1 as u64, total, b);
        k0[v] = split.k0;
        k1[v] = split.k1;
    }
    let mut k0_inv = vec![0.0f64; n];
    let mut k1_inv = vec![0.0f64; n];
    dcl_kernels::ratio::recip_batch(&k0, &mut k0_inv);
    dcl_kernels::ratio::recip_batch(&k1, &mut k1_inv);

    // One real round: neighbors learn (k1, |L|) — everything they need to
    // evaluate the survival probability of the shared edge (they already
    // know ψ of their neighbors from the setup round of the partial
    // coloring).
    let _ = net.fragmented_broadcast_round(|v| {
        if state.is_active(v) {
            Some((thresholds[v], state.candidate_count(v) as u64))
        } else {
            None
        }
    });

    // --- Method of conditional expectations over the seed bits. -----------
    let trees = forest.trees.len();
    let mut seeds: Vec<PartialSeed> = (0..trees).map(|_| PartialSeed::new(seed_len)).collect();
    // Cached affine forms per node (all start identical per ψ; we keep them
    // per node for branch-free updates).
    let mut forms: Vec<Vec<BitForm>> = (0..n)
        .map(|v| {
            if state.is_active(v) {
                family.forms_for(&seeds[forest.component[v]], psi[v])
            } else {
                Vec::new()
            }
        })
        .collect();
    let edges = state.conflict_edges();
    // Per-edge scratch allocated once per phase. The caches make each
    // seed-bit evaluation replay only the current slice's digits (the
    // tentpole speedup); the share slots give the parallel path a flat
    // output buffer. `map_chunks_with` hands each worker exclusive access
    // to its chunk of scratch at the same deterministic boundaries as
    // `map_chunks`, so results stay independent of the worker count.
    let mut scratch: Vec<EdgeScratch> = edges
        .iter()
        .map(|_| EdgeScratch {
            cache: EdgeDpCache::new(),
            share: [0.0; 4],
        })
        .collect();

    let mut x0 = vec![0.0f64; n];
    let mut x1 = vec![0.0f64; n];
    // Reused aggregation buffer: rebuilding n two-element vectors per seed
    // bit costs ~10⁹ allocations on a 10⁵-node run and dominates RSS via
    // allocator churn.
    let mut vectors: Vec<Vec<f64>> = (0..n).map(|_| vec![0.0, 0.0]).collect();
    // Reused per-tree decision buffer (same churn argument, one per bit).
    let mut choices = vec![false; trees];
    for j in 0..seed_len {
        x0.iter_mut().for_each(|x| *x = 0.0);
        x1.iter_mut().for_each(|x| *x = 0.0);
        let slice = family.slice_of_seed_bit(j) as usize;
        match net.pool() {
            Some(pool) => {
                pool.map_chunks_with(&mut scratch, |range, chunk| {
                    for (e, sc) in range.zip(chunk.iter_mut()) {
                        let (u, v) = edges[e];
                        sc.share = edge_shares(
                            &family,
                            &forms,
                            psi,
                            &thresholds,
                            &k0_inv,
                            &k1_inv,
                            j,
                            slice,
                            u,
                            v,
                            &mut sc.cache,
                        );
                    }
                });
                // Replay in edge order on one thread: float association —
                // and every leader decision downstream — stays bit-identical
                // to the sequential backend.
                for (&(u, v), sc) in edges.iter().zip(&scratch) {
                    x0[u] += sc.share[0];
                    x0[v] += sc.share[1];
                    x1[u] += sc.share[2];
                    x1[v] += sc.share[3];
                }
            }
            None => {
                for (&(u, v), sc) in edges.iter().zip(scratch.iter_mut()) {
                    let s = edge_shares(
                        &family,
                        &forms,
                        psi,
                        &thresholds,
                        &k0_inv,
                        &k1_inv,
                        j,
                        slice,
                        u,
                        v,
                        &mut sc.cache,
                    );
                    x0[u] += s[0];
                    x0[v] += s[1];
                    x1[u] += s[2];
                    x1[v] += s[3];
                }
            }
        }
        // Aggregate [Σ x⁰, Σ x¹] per component over the BFS forest, pick the
        // smaller side at each leader, broadcast the chosen bit back.
        for v in 0..n {
            vectors[v][0] = x0[v];
            vectors[v][1] = x1[v];
        }
        let sums = aggregate_vec_forest_charged(net, forest, &vectors, 2);
        for (c, s) in choices.iter_mut().zip(sums.iter()) {
            *c = s[1] < s[0];
        }
        let delivered = broadcast_forest_charged(net, forest, &choices);
        for (t, &bit) in choices.iter().enumerate() {
            seeds[t].fix(j, bit);
        }
        for v in 0..n {
            if state.is_active(v) {
                let bit = delivered[v];
                family.update_forms_on_fix(&mut forms[v], psi[v], j, bit);
            }
        }
    }

    // --- Apply the fully derandomized coins. -------------------------------
    for v in 0..n {
        if !state.is_active(v) {
            continue;
        }
        let mut z = 0u64;
        for (i, form) in forms[v].iter().enumerate() {
            debug_assert!(form.is_known(), "seed fully fixed implies known forms");
            z |= u64::from(form.offset) << i;
        }
        let bit = z < thresholds[v];
        state.extend(instance, v, bit);
    }
    // One real round: exchange the chosen bit so both endpoints of every
    // conflict edge learn whether the edge survived.
    let _ = net.fragmented_broadcast_round(|v| if state.is_active(v) { Some(1u8) } else { None });
    state.finish_phase();

    PhaseOutcome {
        potential_before,
        potential_after: state.total_potential(),
        seed_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial::linial_from_ids;
    use dcl_congest::bfs::build_bfs_forest;
    use dcl_graphs::generators;

    /// Runs all phases on a fresh degree+1 instance; returns (state, traces).
    fn run_all_phases(g: dcl_graphs::Graph) -> (ListInstance, PrefixState, Vec<PhaseOutcome>, u64) {
        let n = g.n();
        let inst = ListInstance::degree_plus_one(g);
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let lin = linial_from_ids(&mut net);
        let mut state = PrefixState::new(&inst, &vec![true; n]);
        let b = accuracy_bits(inst.graph().max_degree(), inst.color_bits(), 1);
        let mut outcomes = Vec::new();
        for _ in 0..inst.color_bits() {
            outcomes.push(derandomized_phase(
                &mut net,
                &forest,
                &inst,
                &mut state,
                &lin.colors,
                lin.palette,
                b,
            ));
        }
        let rounds = net.rounds();
        (inst, state, outcomes, rounds)
    }

    #[test]
    fn accuracy_bits_formula() {
        // 10·4·3 = 120 → b = 7 (2^7 = 128 ≥ 120).
        assert_eq!(accuracy_bits(4, 3, 1), 7);
        // MIS-avoidance adds the (Δ+1) factor: 10·4·3·5 = 600 → b = 10.
        assert_eq!(accuracy_bits(4, 3, 5), 10);
        // Degenerate inputs are guarded.
        assert_eq!(accuracy_bits(0, 0, 0), 4); // 10 → 2^4
    }

    #[test]
    fn each_phase_respects_the_potential_budget() {
        for seed in 0..4 {
            let g = generators::gnp(28, 0.2, seed);
            let n = g.n();
            let (inst, _, outcomes, _) = run_all_phases(g);
            let budget = n as f64 / f64::from(inst.color_bits());
            for (i, o) in outcomes.iter().enumerate() {
                assert!(
                    o.potential_after <= o.potential_before + budget + 1e-6,
                    "seed {seed} phase {i}: {} -> {} exceeds budget {budget}",
                    o.potential_before,
                    o.potential_after
                );
            }
        }
    }

    #[test]
    fn final_potential_at_most_two_n() {
        for seed in 0..4 {
            let g = generators::gnp(26, 0.25, seed + 10);
            let n = g.n();
            let (_, state, _, _) = run_all_phases(g);
            assert!(
                state.total_potential() <= 2.0 * n as f64 + 1e-6,
                "seed {seed}: final potential {}",
                state.total_potential()
            );
        }
    }

    #[test]
    fn candidate_sets_never_empty_and_all_bits_fixed() {
        let g = generators::random_regular(30, 4, 3);
        let (inst, state, _, _) = run_all_phases(g);
        assert!(state.is_complete());
        for v in 0..30 {
            assert_eq!(state.candidate_count(v), 1);
            let c = state.candidate_color(&inst, v);
            assert!(inst.list(v).contains(&c));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let g1 = generators::gnp(24, 0.3, 7);
        let g2 = generators::gnp(24, 0.3, 7);
        let (inst1, state1, _, rounds1) = run_all_phases(g1);
        let (_, state2, _, rounds2) = run_all_phases(g2);
        for v in 0..24 {
            assert_eq!(
                state1.candidate_color(&inst1, v),
                state2.candidate_color(&inst1, v),
                "node {v} diverged"
            );
        }
        assert_eq!(rounds1, rounds2);
    }

    #[test]
    fn round_cost_scales_with_seed_and_tree_height() {
        // Path graph: D = n-1 dominates. One phase ≈ seed_len·(2·height+1).
        let g = generators::path(16);
        let inst = ListInstance::degree_plus_one(g);
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let lin = linial_from_ids(&mut net);
        let mut state = PrefixState::new(&inst, &[true; 16]);
        let b = accuracy_bits(2, inst.color_bits(), 1);
        let before = net.rounds();
        let out = derandomized_phase(
            &mut net,
            &forest,
            &inst,
            &mut state,
            &lin.colors,
            lin.palette,
            b,
        );
        let used = net.rounds() - before;
        let height = u64::from(forest.max_height());
        let expected = out.seed_len as u64 * (2 * height + 1) + 2;
        assert_eq!(used, expected);
    }

    #[test]
    fn works_on_disconnected_graphs() {
        let g = dcl_graphs::Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).unwrap();
        let (inst, state, outcomes, _) = run_all_phases(g);
        assert!(state.is_complete());
        for o in &outcomes {
            assert!(o.potential_after <= o.potential_before + 6.0 / 2.0 + 1e-9);
        }
        for v in 0..6 {
            let c = state.candidate_color(&inst, v);
            assert!(inst.list(v).contains(&c));
        }
    }
}

//! List-coloring instances (Section 2 preliminaries).
//!
//! A `(degree+1)`-list-coloring instance consists of a graph `G = (V, E)`, a
//! color space `[C] = {0, …, C−1}`, and a list `L(v) ⊆ [C]` per node with
//! `|L(v)| ≥ deg(v) + 1`. Every algorithm in the workspace consumes this
//! type; the residual-instance update of Theorem 1.1's proof (colored
//! neighbors remove their color from the list) is provided as
//! [`ListInstance::remove_color`].

use dcl_graphs::{Graph, NodeId};
use std::fmt;

/// Error constructing a [`ListInstance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstanceError {
    /// A list is shorter than `deg(v) + 1`.
    ListTooShort {
        /// The offending node.
        node: NodeId,
        /// Its list length.
        len: usize,
        /// Its degree.
        degree: usize,
    },
    /// A list contains a color `≥ C`.
    ColorOutOfSpace {
        /// The offending node.
        node: NodeId,
        /// The offending color.
        color: u64,
    },
    /// A list contains a duplicate color.
    DuplicateColor {
        /// The offending node.
        node: NodeId,
        /// The duplicated color.
        color: u64,
    },
    /// The number of lists does not match the number of nodes.
    WrongListCount {
        /// Number of lists provided.
        got: usize,
        /// Number of nodes.
        expected: usize,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::ListTooShort { node, len, degree } => write!(
                f,
                "list of node {node} has {len} colors but degree {degree} requires {}",
                degree + 1
            ),
            InstanceError::ColorOutOfSpace { node, color } => {
                write!(f, "node {node} lists color {color} outside the color space")
            }
            InstanceError::DuplicateColor { node, color } => {
                write!(f, "node {node} lists color {color} twice")
            }
            InstanceError::WrongListCount { got, expected } => {
                write!(f, "got {got} lists for {expected} nodes")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A list-coloring instance with `|L(v)| ≥ deg(v) + 1`.
///
/// Lists are stored sorted; the bitwise prefix machinery of Section 2 relies
/// on the fact that the colors sharing a binary prefix form a contiguous
/// range of a sorted list.
///
/// # Examples
///
/// ```
/// use dcl_graphs::generators;
/// use dcl_coloring::instance::ListInstance;
///
/// let g = generators::ring(5);
/// // The canonical (Δ+1)-coloring instance: every list is {0, …, deg(v)}.
/// let inst = ListInstance::degree_plus_one(g);
/// assert_eq!(inst.color_space(), 3);
/// assert_eq!(inst.list(0), &[0, 1, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct ListInstance {
    graph: Graph,
    color_space: u64,
    lists: Vec<Vec<u64>>,
}

impl ListInstance {
    /// Creates an instance after validating every list.
    ///
    /// Lists are sorted internally; the input order is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`InstanceError`] if a list is shorter than `deg(v) + 1`,
    /// contains duplicates, or contains a color `≥ color_space`.
    pub fn new(
        graph: Graph,
        color_space: u64,
        mut lists: Vec<Vec<u64>>,
    ) -> Result<Self, InstanceError> {
        if lists.len() != graph.n() {
            return Err(InstanceError::WrongListCount {
                got: lists.len(),
                expected: graph.n(),
            });
        }
        for (v, list) in lists.iter_mut().enumerate() {
            list.sort_unstable();
            if let Some(w) = list.windows(2).find(|w| w[0] == w[1]) {
                return Err(InstanceError::DuplicateColor {
                    node: v,
                    color: w[0],
                });
            }
            if let Some(&c) = list.iter().find(|&&c| c >= color_space) {
                return Err(InstanceError::ColorOutOfSpace { node: v, color: c });
            }
            if list.len() < graph.degree(v) + 1 {
                return Err(InstanceError::ListTooShort {
                    node: v,
                    len: list.len(),
                    degree: graph.degree(v),
                });
            }
        }
        Ok(ListInstance {
            graph,
            color_space,
            lists,
        })
    }

    /// The canonical `(Δ+1)`-coloring instance: node `v` gets the list
    /// `{0, …, deg(v)}` over the color space `[Δ+1]` (Observation 4.1).
    pub fn degree_plus_one(graph: Graph) -> Self {
        let color_space = graph.max_degree() as u64 + 1;
        let lists = graph
            .nodes()
            .map(|v| (0..=graph.degree(v) as u64).collect())
            .collect();
        ListInstance {
            graph,
            color_space,
            lists,
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The color space bound `C` (colors are `0..C`).
    pub fn color_space(&self) -> u64 {
        self.color_space
    }

    /// `⌈log₂ C⌉`, the number of prefix-extension phases (at least 1).
    pub fn color_bits(&self) -> u32 {
        let c = self.color_space.max(2);
        64 - (c - 1).leading_zeros()
    }

    /// The sorted list of node `v`.
    pub fn list(&self, v: NodeId) -> &[u64] {
        &self.lists[v]
    }

    /// All lists (sorted), indexed by node.
    pub fn lists(&self) -> &[Vec<u64>] {
        &self.lists
    }

    /// Removes `color` from `v`'s list if present (the residual-instance
    /// update when a neighbor of `v` gets permanently colored). Returns
    /// whether the color was present.
    pub fn remove_color(&mut self, v: NodeId, color: u64) -> bool {
        match self.lists[v].binary_search(&color) {
            Ok(i) => {
                self.lists[v].remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// Truncates `v`'s list to its first `len` colors (used by the MPC
    /// algorithms to maintain `|L(v)| ≤ Δ + 1`, see "How to Avoid MIS").
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the current list length or `len == 0`.
    pub fn truncate_list(&mut self, v: NodeId, len: usize) {
        assert!(len >= 1, "lists must stay nonempty");
        assert!(
            len <= self.lists[v].len(),
            "cannot grow a list by truncation"
        );
        self.lists[v].truncate(len);
    }

    /// Checks that the `(degree+1)` slack holds for the subgraph induced by
    /// `active` (where degrees count only active neighbors): for every active
    /// `v`, `|L(v)| ≥ deg_active(v) + 1`.
    pub fn slack_holds(&self, active: &[bool]) -> bool {
        assert_eq!(active.len(), self.graph.n(), "mask length must equal n");
        self.graph.nodes().filter(|&v| active[v]).all(|v| {
            let deg = self
                .graph
                .neighbors(v)
                .iter()
                .filter(|&&u| active[u])
                .count();
            self.lists[v].len() > deg
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn degree_plus_one_lists() {
        let g = generators::star(4);
        let inst = ListInstance::degree_plus_one(g);
        assert_eq!(inst.color_space(), 4);
        assert_eq!(inst.list(0), &[0, 1, 2, 3]);
        assert_eq!(inst.list(1), &[0, 1]);
    }

    #[test]
    fn new_validates_length() {
        let g = generators::path(2);
        let err = ListInstance::new(g, 4, vec![vec![0, 1], vec![3]]).unwrap_err();
        assert_eq!(
            err,
            InstanceError::ListTooShort {
                node: 1,
                len: 1,
                degree: 1
            }
        );
    }

    #[test]
    fn new_validates_color_space() {
        let g = generators::path(2);
        let err = ListInstance::new(g, 3, vec![vec![0, 3], vec![1, 2]]).unwrap_err();
        assert_eq!(err, InstanceError::ColorOutOfSpace { node: 0, color: 3 });
    }

    #[test]
    fn new_rejects_duplicates() {
        let g = generators::path(2);
        let err = ListInstance::new(g, 4, vec![vec![1, 1], vec![0, 2]]).unwrap_err();
        assert_eq!(err, InstanceError::DuplicateColor { node: 0, color: 1 });
    }

    #[test]
    fn new_sorts_lists() {
        let g = generators::path(2);
        let inst = ListInstance::new(g, 8, vec![vec![5, 1], vec![7, 0]]).unwrap();
        assert_eq!(inst.list(0), &[1, 5]);
        assert_eq!(inst.list(1), &[0, 7]);
    }

    #[test]
    fn color_bits_rounds_up() {
        let g = Graph::empty(1);
        let mk = |c| {
            ListInstance::new(g.clone(), c, vec![vec![0]])
                .unwrap()
                .color_bits()
        };
        assert_eq!(mk(2), 1);
        assert_eq!(mk(3), 2);
        assert_eq!(mk(4), 2);
        assert_eq!(mk(5), 3);
        assert_eq!(mk(1024), 10);
    }

    use dcl_graphs::Graph;

    #[test]
    fn remove_color_updates_list() {
        let g = generators::path(2);
        let mut inst = ListInstance::new(g, 4, vec![vec![0, 1, 2], vec![1, 3]]).unwrap();
        assert!(inst.remove_color(0, 1));
        assert!(!inst.remove_color(0, 1));
        assert_eq!(inst.list(0), &[0, 2]);
    }

    #[test]
    fn slack_respects_active_mask() {
        let g = generators::path(3);
        let mut inst =
            ListInstance::new(g, 4, vec![vec![0, 1], vec![0, 1, 2], vec![1, 2]]).unwrap();
        assert!(inst.slack_holds(&[true, true, true]));
        // Color node 1; nodes 0 and 2 lose a color but also a neighbor.
        inst.remove_color(0, 0);
        inst.remove_color(2, 2);
        assert!(inst.slack_holds(&[true, false, true]));
        // With node 1 still active the slack is violated for node 0.
        assert!(!inst.slack_holds(&[true, true, true]));
    }

    #[test]
    fn truncate_list_shrinks() {
        let g = Graph::empty(1);
        let mut inst = ListInstance::new(g, 8, vec![vec![2, 4, 6]]).unwrap();
        inst.truncate_list(0, 2);
        assert_eq!(inst.list(0), &[2, 4]);
    }
}

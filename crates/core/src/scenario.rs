//! The Theorem 1.1 pipeline as a [`dcl_runner::Scenario`].
//!
//! Thin adapter over [`color_list_instance`] (which stays public): the
//! scenario colors the canonical `(degree+1)` instance of the input graph
//! under the `ExecConfig` handed in by the runner. Custom list instances
//! keep using the underlying entry point directly.
//!
//! The full `ExecConfig` is honored, transport tier included: the same
//! cell re-run on `TransportSpec::Channel` or `TransportSpec::Tcp` ships
//! its rounds through real byte streams and still produces a bit-identical
//! `Report` (pinned by `tests/transport_oracle.rs` at the workspace root).

use crate::congest_coloring::{color_list_instance, CongestColoringConfig};
use crate::instance::ListInstance;
use dcl_graphs::Graph;
use dcl_runner::{Model, Report, RunError, Scenario};
use dcl_sim::ExecConfig;

/// The CONGEST `(degree+1)`-list coloring of Theorem 1.1 as a runnable
/// scenario (name `"congest"`).
///
/// # Examples
///
/// ```
/// use dcl_coloring::scenario::CongestScenario;
/// use dcl_graphs::generators;
/// use dcl_runner::Scenario;
/// use dcl_sim::ExecConfig;
///
/// let g = generators::gnp(48, 0.12, 7);
/// let report = CongestScenario::default()
///     .run(&g, &ExecConfig::default())
///     .unwrap();
/// assert!(report.valid());
/// assert_eq!(report.palette, g.max_degree() as u64 + 1);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CongestScenario {
    /// Driver knobs; the runner's `ExecConfig` replaces `config.exec` per
    /// cell.
    pub config: CongestColoringConfig,
}

impl CongestScenario {
    /// A scenario with explicit driver knobs.
    pub fn with_config(config: CongestColoringConfig) -> Self {
        CongestScenario { config }
    }
}

impl Scenario for CongestScenario {
    fn name(&self) -> &str {
        "congest"
    }

    fn model(&self) -> Model {
        Model::Congest
    }

    fn run(&self, graph: &Graph, exec: &ExecConfig) -> Result<Report, RunError> {
        let instance = ListInstance::degree_plus_one(graph.clone());
        let result = color_list_instance(&instance, &self.config.with_exec(*exec));
        let palette = graph.max_degree() as u64 + 1;
        Ok(Report::build(
            self.name(),
            self.model(),
            graph,
            palette,
            result.colors,
            result.metrics,
        )
        .with_extra("iterations", result.iterations as u64)
        .with_extra("linial_palette", result.linial_palette))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::congest_coloring::color_degree_plus_one;
    use dcl_graphs::generators;

    #[test]
    fn scenario_matches_the_direct_entry_point() {
        let g = generators::random_regular(40, 5, 3);
        let report = CongestScenario::default()
            .run(&g, &ExecConfig::default())
            .unwrap();
        let direct = color_degree_plus_one(&g, &CongestColoringConfig::default());
        assert_eq!(report.colors, direct.colors);
        assert_eq!(report.metrics, direct.metrics);
        assert_eq!(report.extra("iterations"), Some(direct.iterations as u64));
        assert_eq!(report.extra("linial_palette"), Some(direct.linial_palette));
        assert!(report.valid());
    }

    #[test]
    fn scenario_metadata_is_stable() {
        let s = CongestScenario::default();
        assert_eq!(s.name(), "congest");
        assert_eq!(s.model(), Model::Congest);
    }
}

//! The partial coloring of Lemma 2.1: permanently list-color at least a 1/8
//! fraction of the active nodes.
//!
//! Pipeline (exactly the paper's):
//! 1. run `⌈log C⌉` derandomized prefix-extension phases (Lemma 2.6), after
//!    which every node holds a single candidate color and
//!    `Σ Φ ≤ 2·n_active`;
//! 2. let `V₍₄₎` be the active nodes with at most 3 conflicting neighbors
//!    (at least half of the active nodes by Markov);
//! 3. compute an MIS of the conflict graph induced by `V₍₄₎`
//!    (maximum degree 3) via Linial + color-class sweeps;
//! 4. MIS nodes keep their candidate color permanently — at least
//!    `|V₍₄₎|/4 ≥ n_active/8` nodes.
//!
//! The *MIS-avoidance* variant of Section 4 ("How to Avoid MIS") is also
//! implemented: with coins a factor `(Δ+1)` more accurate, `Σ Φ < n_active`
//! after the phases, at least half of the active nodes have at most one
//! conflict, and the induced conflict graph is a matching — resolved in one
//! round by keeping the larger id.

use crate::derand_step::{accuracy_bits, derandomized_phase};
use crate::instance::ListInstance;
use crate::mis::mis_bounded_degree;
use crate::potential::PotentialTrace;
use crate::prefix::PrefixState;
use dcl_congest::bfs::BfsForest;
use dcl_congest::network::Network;
use dcl_graphs::NodeId;

/// Conflict-resolution strategy for the final step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictResolution {
    /// Paper default (Lemma 2.1): MIS on the `≤ 3`-conflict nodes.
    #[default]
    Mis,
    /// Section 4 variant: extra coin accuracy, `≤ 1`-conflict nodes, larger
    /// id wins (no MIS computation).
    AvoidMis,
}

/// Configuration of one partial-coloring invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PartialConfig {
    /// How final conflicts are resolved.
    pub resolution: ConflictResolution,
    /// Extra accuracy bits added to `b` (ablation knob; 0 = paper setting).
    pub extra_accuracy_bits: u32,
}

/// Outcome of one partial-coloring invocation.
#[derive(Debug, Clone)]
pub struct PartialOutcome {
    /// Nodes permanently colored in this invocation, with their colors.
    pub colored: Vec<(NodeId, u64)>,
    /// Potential after each phase (`values[0]` = initial).
    pub trace: PotentialTrace,
    /// Number of active nodes the invocation started with.
    pub active_count: usize,
    /// Number of active nodes with few (≤3 or ≤1) conflicts after all
    /// phases.
    pub eligible_count: usize,
    /// Coin accuracy `b` used.
    pub accuracy_bits: u32,
    /// Seed length per phase.
    pub seed_len: usize,
}

/// Runs Lemma 2.1 on the nodes marked `active`.
///
/// `psi` must be a proper coloring (palette `psi_palette`) of the instance
/// graph restricted to active nodes. Includes one setup round in which nodes
/// exchange ψ values.
///
/// # Panics
///
/// Panics if the instance slack `|L(v)| ≥ deg_active(v)+1` is violated.
pub fn partial_coloring(
    net: &mut Network<'_>,
    forest: &BfsForest,
    instance: &ListInstance,
    active: &[bool],
    psi: &[u64],
    psi_palette: u64,
    config: PartialConfig,
) -> PartialOutcome {
    let n = instance.graph().n();
    let active_count = active.iter().filter(|&&a| a).count();
    if active_count == 0 {
        return PartialOutcome {
            colored: Vec::new(),
            trace: PotentialTrace::default(),
            active_count: 0,
            eligible_count: 0,
            accuracy_bits: 0,
            seed_len: 0,
        };
    }
    assert!(
        instance.slack_holds(active),
        "instance violates the (degree+1) slack"
    );

    // Setup round: neighbors learn each other's ψ (used throughout the
    // phases to derive each other's coins from the shared seed).
    let _ = net.fragmented_broadcast_round(|v| if active[v] { Some(psi[v]) } else { None });

    let max_deg = instance
        .graph()
        .nodes()
        .filter(|&v| active[v])
        .map(|v| {
            instance
                .graph()
                .neighbors(v)
                .iter()
                .filter(|&&u| active[u])
                .count()
        })
        .max()
        .unwrap_or(0);
    let extra = match config.resolution {
        ConflictResolution::Mis => 1,
        ConflictResolution::AvoidMis => max_deg as u64 + 1,
    };
    let b = accuracy_bits(max_deg, instance.color_bits(), extra) + config.extra_accuracy_bits;

    let mut state = PrefixState::new(instance, active);
    let mut trace = PotentialTrace::start(&state);
    let mut seed_len = 0;
    for _ in 0..instance.color_bits() {
        let outcome = derandomized_phase(net, forest, instance, &mut state, psi, psi_palette, b);
        seed_len = outcome.seed_len;
        trace.record(&state);
    }

    // Conflict counts: |L_ℓ(v)| = 1, so Φ(v) = number of same-candidate
    // neighbors = conflict degree.
    let max_conflicts = match config.resolution {
        ConflictResolution::Mis => 3,
        ConflictResolution::AvoidMis => 1,
    };
    let eligible: Vec<bool> = (0..n)
        .map(|v| active[v] && state.conflict_degree(v) <= max_conflicts)
        .collect();
    let eligible_count = eligible.iter().filter(|&&e| e).count();

    let keeps: Vec<bool> = match config.resolution {
        ConflictResolution::Mis => {
            // Conflict adjacency restricted to eligible nodes.
            let adj: Vec<Vec<NodeId>> = (0..n)
                .map(|v| {
                    if eligible[v] {
                        state
                            .conflict_neighbors(v)
                            .iter()
                            .copied()
                            .filter(|&u| eligible[u])
                            .collect()
                    } else {
                        Vec::new()
                    }
                })
                .collect();
            let mis = mis_bounded_degree(net, &adj, &eligible, psi, psi_palette);
            mis.in_set
        }
        ConflictResolution::AvoidMis => {
            // One round: conflict pairs resolve by id (the induced conflict
            // graph on eligible nodes is a matching).
            let _ = net.fragmented_broadcast_round(|v| if eligible[v] { Some(1u8) } else { None });
            (0..n)
                .map(|v| {
                    if !eligible[v] {
                        return false;
                    }
                    match state.conflict_neighbors(v) {
                        [] => true,
                        [w] => !eligible[*w] || v > *w,
                        _ => false,
                    }
                })
                .collect()
        }
    };

    let colored: Vec<(NodeId, u64)> = (0..n)
        .filter(|&v| keeps[v])
        .map(|v| (v, state.candidate_color(instance, v)))
        .collect();

    PartialOutcome {
        colored,
        trace,
        active_count,
        eligible_count,
        accuracy_bits: b,
        seed_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linial::linial_from_ids;
    use dcl_congest::bfs::build_bfs_forest;
    use dcl_graphs::{generators, validation};

    fn run(g: dcl_graphs::Graph, config: PartialConfig) -> (ListInstance, PartialOutcome) {
        let n = g.n();
        let inst = ListInstance::degree_plus_one(g);
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let lin = linial_from_ids(&mut net);
        let out = partial_coloring(
            &mut net,
            &forest,
            &inst,
            &vec![true; n],
            &lin.colors,
            lin.palette,
            config,
        );
        (inst, out)
    }

    #[test]
    fn colors_at_least_an_eighth() {
        for seed in 0..5 {
            let g = generators::gnp(32, 0.2, seed);
            let n = g.n();
            let (_, out) = run(g, PartialConfig::default());
            assert!(
                out.colored.len() * 8 >= n,
                "seed {seed}: colored only {}/{n}",
                out.colored.len()
            );
        }
    }

    #[test]
    fn colored_nodes_form_proper_partial_list_coloring() {
        for seed in 0..5 {
            let g = generators::random_regular(36, 5, seed);
            let (inst, out) = run(g, PartialConfig::default());
            let mut colors = vec![None; 36];
            for &(v, c) in &out.colored {
                assert!(inst.list(v).contains(&c), "node {v} got a non-list color");
                colors[v] = Some(c);
            }
            assert_eq!(
                validation::check_proper_partial(inst.graph(), &colors),
                None
            );
        }
    }

    #[test]
    fn half_of_nodes_have_few_conflicts() {
        for seed in 0..4 {
            let g = generators::gnp(30, 0.3, seed);
            let (_, out) = run(g, PartialConfig::default());
            assert!(
                out.eligible_count * 2 >= out.active_count,
                "seed {seed}: only {}/{} eligible",
                out.eligible_count,
                out.active_count
            );
        }
    }

    #[test]
    fn potential_ends_below_two_n() {
        let g = generators::gnp(34, 0.25, 11);
        let (_, out) = run(g, PartialConfig::default());
        let last = *out.trace.values.last().unwrap();
        assert!(last <= 2.0 * 34.0 + 1e-6, "final potential {last}");
    }

    #[test]
    fn avoid_mis_variant_colors_and_stays_proper() {
        for seed in 0..4 {
            let g = generators::gnp(30, 0.2, seed + 50);
            let (inst, out) = run(
                g,
                PartialConfig {
                    resolution: ConflictResolution::AvoidMis,
                    extra_accuracy_bits: 0,
                },
            );
            let mut colors = vec![None; 30];
            for &(v, c) in &out.colored {
                colors[v] = Some(c);
            }
            assert_eq!(
                validation::check_proper_partial(inst.graph(), &colors),
                None
            );
            // Stronger accuracy ⇒ Σ Φ < n ⇒ at least half eligible, a
            // quarter colored (matching: each pair keeps one node).
            assert!(out.colored.len() * 4 >= out.active_count, "seed {seed}");
        }
    }

    #[test]
    fn avoid_mis_uses_more_accuracy_bits() {
        let g1 = generators::gnp(24, 0.3, 1);
        let g2 = generators::gnp(24, 0.3, 1);
        let (_, mis) = run(g1, PartialConfig::default());
        let (_, avoid) = run(
            g2,
            PartialConfig {
                resolution: ConflictResolution::AvoidMis,
                extra_accuracy_bits: 0,
            },
        );
        assert!(avoid.accuracy_bits > mis.accuracy_bits);
    }

    #[test]
    fn empty_active_set_is_a_noop() {
        let g = generators::path(4);
        let inst = ListInstance::degree_plus_one(g);
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let out = partial_coloring(
            &mut net,
            &forest,
            &inst,
            &[false; 4],
            &[0, 0, 0, 0],
            1,
            PartialConfig::default(),
        );
        assert!(out.colored.is_empty());
        assert_eq!(out.active_count, 0);
    }

    #[test]
    fn edgeless_graph_colors_everyone_in_one_shot() {
        let g = dcl_graphs::Graph::empty(7);
        let (_, out) = run(g, PartialConfig::default());
        assert_eq!(out.colored.len(), 7);
    }
}

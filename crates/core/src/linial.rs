//! Linial's color reduction: from any proper `m`-coloring to an
//! `O(Δ² log² m)`-ish coloring in one round per step, `O(log* m)` steps
//! \[Lin92\].
//!
//! We use the algebraic formulation: a color `c ∈ [m]` written in base `q`
//! (for a prime `q`) with `d` digits is a polynomial `p_c` of degree `< d`
//! over `F_q`. If `q > Δ·d`, every node can pick an evaluation point
//! `x ∈ F_q` at which its polynomial differs from all of its neighbors'
//! polynomials (two distinct polynomials of degree `< d` agree on fewer than
//! `d` points, so at most `Δ·(d−1) < q` points are "bad"). The pair
//! `(x, p_c(x)) ∈ [q²]` is then a proper coloring with `q²` colors. The step
//! iterates while it strictly shrinks the palette.
//!
//! The routine operates on an arbitrary *subgraph* given by an explicit
//! (symmetric) adjacency restricted to `active` nodes; communication is
//! metered on the enclosing CONGEST [`Network`] (the subgraph's edges are a
//! subset of the communication graph's).

use dcl_congest::network::Network;
use dcl_derand::kwise::next_prime;
use dcl_graphs::NodeId;

/// Result of [`linial_coloring`].
#[derive(Debug, Clone)]
pub struct LinialOutcome {
    /// The computed proper coloring (only meaningful for active nodes).
    pub colors: Vec<u64>,
    /// Size of the final palette (colors are `< palette`).
    pub palette: u64,
    /// Number of reduction steps (= communication rounds) used.
    pub steps: u32,
}

/// Chooses the step parameters for palette size `m` and max degree `delta`:
/// the smallest prime `q` with `q > delta · d` where `d = max(2, digits of
/// m−1 in base q)`; `d ≥ 2` keeps `q = Θ(Δ log_Δ m)` and guarantees
/// progress.
fn step_parameters(palette: u64, delta: u64) -> (u64, u32) {
    let mut q = 2u64;
    loop {
        q = next_prime(q);
        let d = digits(palette, q).max(2);
        if q > delta * u64::from(d) {
            return (q, d);
        }
        q += 1;
    }
}

/// Number of base-`q` digits needed for values in `[palette]` (at least 1).
fn digits(palette: u64, q: u64) -> u32 {
    let mut d = 1u32;
    let mut span = q;
    while span < palette {
        span = span.saturating_mul(q);
        d += 1;
    }
    d
}

/// Evaluates the polynomial whose coefficients are the base-`q` digits of
/// `color` at point `x`, over `F_q`.
fn poly_eval(color: u64, q: u64, x: u64) -> u64 {
    let mut c = color;
    let mut acc = 0u64;
    let mut power = 1u64;
    while c > 0 || power == 1 {
        let digit = c % q;
        acc = (acc + digit * power) % q;
        c /= q;
        power = power * x % q;
        if c == 0 {
            break;
        }
    }
    acc
}

/// Runs Linial color reduction on the subgraph `(active, adj)` starting from
/// the proper coloring `input_colors` with palette `input_palette`, until the
/// palette stops shrinking.
///
/// Costs one communication round per step.
///
/// # Panics
///
/// Panics if `adj`/`active`/`input_colors` lengths differ from `n`, or if
/// the input coloring is not proper on the subgraph.
pub fn linial_coloring(
    net: &mut Network<'_>,
    adj: &[Vec<NodeId>],
    active: &[bool],
    input_colors: &[u64],
    input_palette: u64,
) -> LinialOutcome {
    let n = net.graph().n();
    assert_eq!(adj.len(), n, "adjacency length must equal n");
    assert_eq!(active.len(), n, "mask length must equal n");
    assert_eq!(input_colors.len(), n, "color vector length must equal n");
    for v in 0..n {
        if active[v] {
            for &u in &adj[v] {
                assert!(
                    !active[u] || input_colors[u] != input_colors[v],
                    "input coloring not proper: nodes {u} and {v} share color"
                );
            }
        }
    }
    let delta = (0..n)
        .filter(|&v| active[v])
        .map(|v| adj[v].iter().filter(|&&u| active[u]).count())
        .max()
        .unwrap_or(0) as u64;

    let mut colors = input_colors.to_vec();
    let mut palette = input_palette;
    let mut steps = 0u32;

    if delta == 0 {
        // No edges: a single color class suffices; no communication needed.
        for v in 0..n {
            if active[v] {
                colors[v] = 0;
            }
        }
        return LinialOutcome {
            colors,
            palette: 1,
            steps: 0,
        };
    }

    loop {
        let (q, d) = step_parameters(palette, delta);
        if q * q >= palette {
            break; // no further progress possible
        }
        // One round: everyone announces its current color.
        let inboxes =
            net.fragmented_broadcast_round(|v| if active[v] { Some(colors[v]) } else { None });
        let mut next = colors.clone();
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let neighbor_colors: Vec<u64> = inboxes[v]
                .iter()
                .filter(|(u, _)| adj[v].contains(u) && active[*u])
                .map(|&(_, c)| c)
                .collect();
            // Find an evaluation point where v's polynomial differs from
            // every neighbor's. Fewer than Δ·d points are bad, and q > Δ·d.
            let x = (0..q)
                .find(|&x| {
                    let own = poly_eval(colors[v], q, x);
                    neighbor_colors.iter().all(|&c| poly_eval(c, q, x) != own)
                })
                .expect("q > delta*d guarantees a good evaluation point");
            next[v] = x * q + poly_eval(colors[v], q, x);
        }
        colors = next;
        palette = q * q;
        steps += 1;
        debug_assert!(d >= 1);
    }
    LinialOutcome {
        colors,
        palette,
        steps,
    }
}

/// Convenience: Linial coloring of the whole communication graph starting
/// from the unique node ids (`ψ(v) = v`, palette `n`).
pub fn linial_from_ids(net: &mut Network<'_>) -> LinialOutcome {
    let g = net.graph();
    let n = g.n();
    let adj: Vec<Vec<NodeId>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
    let ids: Vec<u64> = (0..n as u64).collect();
    linial_coloring(net, &adj, &vec![true; n], &ids, n.max(1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::validation::check_proper;
    use dcl_graphs::{generators, Graph};

    fn full_adj(g: &Graph) -> Vec<Vec<NodeId>> {
        (0..g.n()).map(|v| g.neighbors(v).to_vec()).collect()
    }

    fn proper_on_subgraph(adj: &[Vec<NodeId>], active: &[bool], colors: &[u64]) -> bool {
        (0..adj.len()).filter(|&v| active[v]).all(|v| {
            adj[v]
                .iter()
                .filter(|&&u| active[u])
                .all(|&u| colors[u] != colors[v])
        })
    }

    #[test]
    fn digits_and_poly_eval() {
        assert_eq!(digits(8, 2), 3);
        assert_eq!(digits(9, 2), 4);
        assert_eq!(digits(5, 5), 1);
        assert_eq!(digits(26, 5), 3);
        // color 11 = 2·5 + 1 base 5 → p(x) = 1 + 2x; p(3) = 7 mod 5 = 2.
        assert_eq!(poly_eval(11, 5, 3), 2);
        assert_eq!(poly_eval(0, 5, 4), 0);
    }

    #[test]
    fn reduces_palette_and_stays_proper() {
        for seed in 0..5 {
            let g = generators::gnp(60, 0.08, seed);
            let mut net = Network::with_default_cap(&g, 64);
            let out = linial_from_ids(&mut net);
            assert!(check_proper(&g, &out.colors).is_none(), "seed {seed}");
            assert!(out.palette < 60 || g.max_degree() * g.max_degree() >= 30);
            assert!(out.colors.iter().all(|&c| c < out.palette));
        }
    }

    #[test]
    fn palette_is_poly_delta() {
        // On a bounded-degree graph the final palette must not depend on n
        // (once n exceeds the fixpoint palette).
        let mid = generators::ring(500);
        let large = generators::ring(2000);
        let mut net_m = Network::with_default_cap(&mid, 64);
        let mut net_l = Network::with_default_cap(&large, 64);
        let pal_m = linial_from_ids(&mut net_m).palette;
        let pal_l = linial_from_ids(&mut net_l).palette;
        assert_eq!(pal_m, pal_l, "palette should depend on Δ only");
        assert!(pal_l <= 121, "Δ=2 palette should be small, got {pal_l}");
    }

    #[test]
    fn steps_grow_very_slowly() {
        // log*-type behavior: going from n=16 to n=4096 adds at most a
        // couple of steps.
        let g1 = generators::random_regular(16, 3, 1);
        let g2 = generators::random_regular(4096, 3, 1);
        let mut n1 = Network::with_default_cap(&g1, 64);
        let mut n2 = Network::with_default_cap(&g2, 64);
        let s1 = linial_from_ids(&mut n1).steps;
        let s2 = linial_from_ids(&mut n2).steps;
        assert!(s2 <= s1 + 3, "steps grew too fast: {s1} -> {s2}");
    }

    #[test]
    fn respects_active_mask_and_sub_adjacency() {
        let g = generators::complete(8);
        // Subgraph: only even nodes, and only a ring among them.
        let active: Vec<bool> = (0..8).map(|v| v % 2 == 0).collect();
        let mut adj = vec![Vec::new(); 8];
        let evens = [0usize, 2, 4, 6];
        for i in 0..4 {
            let (a, b) = (evens[i], evens[(i + 1) % 4]);
            adj[a].push(b);
            adj[b].push(a);
        }
        let ids: Vec<u64> = (0..8).collect();
        let mut net = Network::with_default_cap(&g, 64);
        let out = linial_coloring(&mut net, &adj, &active, &ids, 8);
        assert!(proper_on_subgraph(&adj, &active, &out.colors));
        // Inactive nodes keep their input colors untouched.
        assert_eq!(out.colors[1], 1);
    }

    #[test]
    fn isolated_subgraph_collapses_to_one_color() {
        let g = generators::path(5);
        let adj = vec![Vec::new(); 5];
        let ids: Vec<u64> = (0..5).collect();
        let mut net = Network::with_default_cap(&g, 64);
        let out = linial_coloring(&mut net, &adj, &[true; 5], &ids, 5);
        assert_eq!(out.palette, 1);
        assert_eq!(out.steps, 0);
        assert!(out.colors.iter().all(|&c| c == 0));
    }

    #[test]
    #[should_panic(expected = "not proper")]
    fn rejects_improper_input() {
        let g = generators::path(2);
        let adj = full_adj(&g);
        let mut net = Network::with_default_cap(&g, 64);
        let _ = linial_coloring(&mut net, &adj, &[true; 2], &[3, 3], 8);
    }

    #[test]
    fn round_cost_equals_steps() {
        let g = generators::random_regular(100, 4, 2);
        let mut net = Network::with_default_cap(&g, 64);
        let before = net.rounds();
        let out = linial_from_ids(&mut net);
        assert_eq!(net.rounds() - before, u64::from(out.steps));
    }
}

//! The potential function `Φ_ℓ(u) = deg_ℓ(u) / |L_ℓ(u)|` (Section 2).
//!
//! The potential measures, per node, the conflict pressure of the current
//! prefix assignment: it starts below 1 (`deg(v)/|L(v)| < 1` by the
//! `(degree+1)` slack), the randomized one-bit extension does not increase
//! its sum in expectation (Lemma 2.2), ε-inaccurate coins add at most
//! `10·ε·Δ·n` (Lemma 2.3), and once all bits are fixed `Φ(u)` equals the
//! number of neighbors sharing `u`'s candidate color.

use crate::instance::ListInstance;
use crate::prefix::PrefixState;

/// Exact potential of a single node given conflict degree and candidate
/// count.
///
/// # Panics
///
/// Panics if `candidates == 0` (candidate sets never become empty; an empty
/// set indicates a bug in the prefix machinery).
#[must_use]
pub fn node_potential(conflict_degree: usize, candidates: usize) -> f64 {
    assert!(candidates > 0, "candidate set must be nonempty");
    dcl_kernels::ratio::ratio(conflict_degree, candidates)
}

/// Upper bound on the initial potential: `Σ_v deg(v)/|L(v)| < n_active`.
#[must_use]
pub fn initial_potential_bound(active_nodes: usize) -> f64 {
    active_nodes as f64
}

/// The per-phase potential budget of Lemma 2.6:
/// `n_active / ⌈log₂ C⌉`.
#[must_use]
pub fn phase_budget(active_nodes: usize, color_bits: u32) -> f64 {
    active_nodes as f64 / f64::from(color_bits.max(1))
}

/// Snapshot of the potential trajectory across the `⌈log₂ C⌉` phases of one
/// partial-coloring attempt, recorded by the experiment harness.
#[derive(Debug, Clone, Default)]
pub struct PotentialTrace {
    /// `values[ℓ]` = `Σ_v Φ_ℓ(v)` after phase `ℓ` (`values[0]` is initial).
    pub values: Vec<f64>,
}

impl PotentialTrace {
    /// Starts a trace from the initial state.
    pub fn start(state: &PrefixState) -> Self {
        PotentialTrace {
            values: vec![state.total_potential()],
        }
    }

    /// Records the potential after a phase.
    pub fn record(&mut self, state: &PrefixState) {
        self.values.push(state.total_potential());
    }

    /// Largest single-phase increase observed (0 if non-increasing).
    pub fn max_increase(&self) -> f64 {
        self.values
            .windows(2)
            .map(|w| w[1] - w[0])
            .fold(0.0, f64::max)
    }

    /// Final minus initial potential.
    pub fn total_increase(&self) -> f64 {
        match (self.values.first(), self.values.last()) {
            (Some(a), Some(b)) => b - a,
            _ => 0.0,
        }
    }
}

/// Verifies the invariant chain of Lemma 2.6 on a finished trace: every
/// phase increased the potential by at most `budget + slack`.
pub fn phases_within_budget(trace: &PotentialTrace, budget: f64, slack: f64) -> bool {
    trace
        .values
        .windows(2)
        .all(|w| w[1] - w[0] <= budget + slack)
}

/// Initial total potential of an instance restricted to `active` nodes
/// (`Σ deg_active(v) / |L(v)|`).
///
/// The divisions run through `dcl_kernels::ratio::ratio_batch`; the sum
/// folds the per-node ratios in node order, matching the sequential
/// `map(...).sum()` this replaced bit for bit (division is correctly
/// rounded, so batching cannot change any term).
pub fn instance_potential(instance: &ListInstance, active: &[bool]) -> f64 {
    let g = instance.graph();
    let (degs, lens): (Vec<usize>, Vec<usize>) = g
        .nodes()
        .filter(|&v| active[v])
        .map(|v| {
            let deg = g.neighbors(v).iter().filter(|&&u| active[u]).count();
            let candidates = instance.list(v).len();
            assert!(candidates > 0, "candidate set must be nonempty");
            (deg, candidates)
        })
        .unzip();
    let mut ratios = vec![0.0f64; degs.len()];
    dcl_kernels::ratio::ratio_batch(&degs, &lens, &mut ratios);
    ratios.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn node_potential_is_ratio() {
        assert_eq!(node_potential(3, 4), 0.75);
        assert_eq!(node_potential(0, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn zero_candidates_panics() {
        let _ = node_potential(1, 0);
    }

    #[test]
    fn initial_instance_potential_below_n() {
        for seed in 0..5 {
            let g = generators::gnp(30, 0.2, seed);
            let inst = ListInstance::degree_plus_one(g);
            let phi = instance_potential(&inst, &[true; 30]);
            assert!(phi < 30.0, "Φ₀ = {phi} must be below n");
        }
    }

    #[test]
    fn trace_records_increases() {
        let mut trace = PotentialTrace { values: vec![10.0] };
        trace.values.push(9.0);
        trace.values.push(9.5);
        assert!((trace.max_increase() - 0.5).abs() < 1e-12);
        assert!((trace.total_increase() + 0.5).abs() < 1e-12);
        assert!(phases_within_budget(&trace, 0.5, 1e-9));
        assert!(!phases_within_budget(&trace, 0.4, 1e-9));
    }

    #[test]
    fn phase_budget_formula() {
        assert_eq!(phase_budget(100, 4), 25.0);
        assert_eq!(phase_budget(100, 0), 100.0);
    }
}

//! Pins the committed `BENCH_experiments.json` against the runner-backed
//! harness: the JSON schema (machine-profile header + per-experiment rows)
//! must stay exactly what PR 4 committed.
//!
//! Two layers:
//!
//! - (debug + release) the committed file parses, carries the
//!   `bench_experiments/v1` schema with the machine-profile header, and
//!   lists exactly the registered experiment ids with rectangular rows;
//! - (release only — the full table set takes minutes unoptimized) every
//!   table produced by [`dcl_bench::experiment_defs`] matches the committed
//!   titles, headers and rows bit for bit, so a drift in any pipeline or in
//!   the `Runner` sweep harness fails CI before it reaches the baseline.

use std::path::PathBuf;

/// One experiment entry of the committed baseline.
#[derive(Debug, PartialEq)]
struct CommittedTable {
    id: String,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

fn committed_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_experiments.json")
}

/// Splits a JSON array-of-strings line (`["a", "b"],`) into its cells. The
/// emitter escapes only `\` and `"`, so unescaping those is lossless.
fn parse_string_array(line: &str) -> Vec<String> {
    let start = line.find('[').expect("array open bracket");
    let end = line.rfind(']').expect("array close bracket");
    let body = &line[start + 1..end];
    let mut cells = Vec::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '"' {
            continue; // separators and whitespace between cells
        }
        let mut cell = String::new();
        loop {
            match chars.next().expect("unterminated string") {
                '\\' => cell.push(chars.next().expect("dangling escape")),
                '"' => break,
                other => cell.push(other),
            }
        }
        cells.push(cell);
    }
    cells
}

/// Extracts the string value of a `"key": "value",` line.
fn parse_string_field(line: &str, key: &str) -> String {
    let rest = line
        .split_once(&format!("\"{key}\": \""))
        .unwrap_or_else(|| panic!("line {line:?} has no string field {key:?}"))
        .1;
    let mut value = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next().expect("unterminated value") {
            '\\' => value.push(chars.next().expect("dangling escape")),
            '"' => break,
            other => value.push(other),
        }
    }
    value
}

/// Parses the committed baseline (the exact layout
/// `dcl_runner::baseline_json` emits — this test owns both sides).
fn parse_committed() -> (String, String, Vec<CommittedTable>) {
    let text = std::fs::read_to_string(committed_path()).expect("committed baseline exists");
    let mut schema = String::new();
    let mut machine = String::new();
    let mut tables: Vec<CommittedTable> = Vec::new();
    let mut in_rows = false;
    for line in text.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("\"schema\":") {
            schema = parse_string_field(line, "schema");
        } else if trimmed.starts_with("\"machine\":") {
            machine = trimmed.trim_end_matches(',').to_string();
        } else if trimmed.starts_with("\"id\":") {
            in_rows = false;
            tables.push(CommittedTable {
                id: parse_string_field(line, "id"),
                title: String::new(),
                headers: Vec::new(),
                rows: Vec::new(),
            });
        } else if trimmed.starts_with("\"title\":") {
            tables.last_mut().unwrap().title = parse_string_field(line, "title");
        } else if trimmed.starts_with("\"headers\":") {
            tables.last_mut().unwrap().headers = parse_string_array(line);
        } else if trimmed.starts_with("\"rows\":") {
            in_rows = true;
        } else if in_rows && trimmed.starts_with('[') {
            let t = tables.last_mut().unwrap();
            t.rows.push(parse_string_array(line));
        } else if in_rows && trimmed.starts_with(']') {
            in_rows = false;
        }
    }
    (schema, machine, tables)
}

#[test]
fn committed_baseline_has_the_pr4_schema() {
    let (schema, machine, tables) = parse_committed();
    assert_eq!(schema, "bench_experiments/v1");
    for key in ["\"hardware_threads\":", "\"os\":", "\"arch\":"] {
        assert!(
            machine.contains(key),
            "machine profile misses {key}: {machine}"
        );
    }
    let ids: Vec<&str> = tables.iter().map(|t| t.id.as_str()).collect();
    let expected: Vec<&str> = dcl_bench::experiment_defs().iter().map(|d| d.id).collect();
    assert_eq!(
        ids, expected,
        "committed experiment ids drifted from the registry"
    );
    for table in &tables {
        assert!(
            table.title.starts_with(&table.id),
            "{}: id must lead the title {:?}",
            table.id,
            table.title
        );
        assert!(!table.headers.is_empty(), "{}: empty headers", table.id);
        assert!(!table.rows.is_empty(), "{}: empty rows", table.id);
        for row in &table.rows {
            assert_eq!(
                row.len(),
                table.headers.len(),
                "{}: ragged row {row:?}",
                table.id
            );
        }
    }
}

/// Release-only: rerun every experiment through the runner-backed registry
/// and compare bit for bit with the committed rows.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full experiment set; run with cargo test --release"
)]
fn regenerated_tables_match_the_committed_rows_bit_for_bit() {
    let (_, _, committed) = parse_committed();
    let defs = dcl_bench::experiment_defs();
    assert_eq!(committed.len(), defs.len());
    for (expected, def) in committed.iter().zip(&defs) {
        let table = (def.run)();
        assert_eq!(expected.id, def.id);
        assert_eq!(expected.title, table.title, "{}: title drifted", def.id);
        assert_eq!(
            expected.headers, table.headers,
            "{}: headers drifted",
            def.id
        );
        assert_eq!(expected.rows, table.rows, "{}: rows drifted", def.id);
    }
}

//! E9: wall-clock of the baselines (randomized trial coloring, greedy) for
//! context next to the deterministic algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_bench::gnp_instance;
use dcl_coloring::baselines;

fn baselines_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(20);
    for n in [96usize, 192] {
        let inst = gnp_instance(n, 8.0 / n as f64, 11);
        group.bench_with_input(BenchmarkId::new("johansson", n), &inst, |b, inst| {
            b.iter(|| baselines::johansson(inst, 7))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &inst, |b, inst| {
            b.iter(|| baselines::greedy(inst))
        });
    }
    group.finish();
}

criterion_group!(benches, baselines_bench);
criterion_main!(benches);

//! E6: wall-clock of the Theorem 1.3 CONGESTED CLIQUE coloring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_bench::gnp_instance;
use dcl_clique::coloring::{clique_color, CliqueColoringConfig};

fn clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_1_3");
    group.sample_size(10);
    for n in [32usize, 64, 96] {
        let inst = gnp_instance(n, 8.0 / n as f64, 4);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| clique_color(inst, &CliqueColoringConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, clique);
criterion_main!(benches);

//! E4: wall-clock of the full Theorem 1.1 CONGEST coloring across the
//! n-sweep and D-sweep workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_bench::regular_instance;
use dcl_coloring::congest_coloring::{color_list_instance, CongestColoringConfig};
use dcl_coloring::instance::ListInstance;
use dcl_graphs::generators;

fn theorem_11(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_1_1");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let inst = regular_instance(n, 6, 5);
        group.bench_with_input(BenchmarkId::new("n_sweep", n), &inst, |b, inst| {
            b.iter(|| color_list_instance(inst, &CongestColoringConfig::default()))
        });
    }
    for (name, g) in [
        ("ring64", generators::ring(64)),
        ("hcube6", generators::hypercube(6)),
    ] {
        let inst = ListInstance::degree_plus_one(g);
        group.bench_with_input(BenchmarkId::new("d_sweep", name), &inst, |b, inst| {
            b.iter(|| color_list_instance(inst, &CongestColoringConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, theorem_11);
criterion_main!(benches);

//! Micro-benchmarks of the arch-dispatched kernel tiers: every family
//! (Lemma 2.6 digit DP, argmin, bit accounting) timed under each of the
//! four tiers (`reference` / `scalar` / `simd` / `incremental`), on the
//! same workloads the committed `BENCH_bench.json` records. The
//! incremental `edge_shares` row is the warm-cache `edge_shares_cached`
//! path — the steady state of the Lemma 2.6 drivers.
//!
//! The digit-DP fixture matches `bench_derand`, so
//! `kernels/digit_dp/joint_coin_probs/reference` reproduces the historical
//! `joint_coin_probs` number and the scalar/simd rows read as speedups
//! over it.

use criterion::{criterion_group, criterion_main, Criterion};
use dcl_derand::seed::PartialSeed;
use dcl_derand::slice::SliceFamily;
use dcl_kernels::KernelTier;

fn kernel_tiers(c: &mut Criterion) {
    let fam = SliceFamily::new(10, 14);
    let mut seed = PartialSeed::new(fam.seed_len());
    for i in (0..fam.seed_len()).step_by(2) {
        seed.fix(i, i % 4 == 0);
    }
    let (x, y) = (0b1011001101u64, 0b0111010010u64);
    let fx = fam.forms_for(&seed, x);
    let fy = fam.forms_for(&seed, y);
    let over_u = [
        fam.form_with_fix(fx[3], x, 35, false),
        fam.form_with_fix(fx[3], x, 35, true),
    ];
    let over_v = [
        fam.form_with_fix(fy[3], y, 35, false),
        fam.form_with_fix(fy[3], y, 35, true),
    ];
    let scores: Vec<f64> = (0..4096u64)
        .map(|i| (i.wrapping_mul(2_654_435_761) % 100_000) as f64 / 3.0)
        .collect();
    let vals: Vec<u64> = (0..4096u64)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let mut lens = vec![0u32; vals.len()];

    for tier in KernelTier::all() {
        dcl_kernels::set_active_tier(tier);
        c.bench_function(
            &format!("kernels/digit_dp/joint_coin_probs/{}", tier.name()),
            |b| b.iter(|| dcl_kernels::digit_dp::joint_coin_probs(&fx, 9000, &fy, 4000)),
        );
        let es_id = format!("kernels/digit_dp/edge_shares/{}", tier.name());
        if tier == KernelTier::Incremental {
            let mut cache = dcl_kernels::digit_dp::EdgeDpCache::new();
            c.bench_function(&es_id, |b| {
                b.iter(|| {
                    dcl_kernels::digit_dp::edge_shares_cached(
                        &mut cache, &fx, over_u, 9000, 0.2, 0.25, &fy, over_v, 4000, 0.125, 0.5, 3,
                    )
                })
            });
        } else {
            c.bench_function(&es_id, |b| {
                b.iter(|| {
                    dcl_kernels::digit_dp::edge_shares(
                        &fx, over_u, 9000, 0.2, 0.25, &fy, over_v, 4000, 0.125, 0.5, 3,
                    )
                })
            });
        }
        c.bench_function(&format!("kernels/argmin/4096/{}", tier.name()), |b| {
            b.iter(|| dcl_kernels::argmin::argmin_f64(&scores))
        });
        c.bench_function(
            &format!("kernels/bit_len_batch/4096/{}", tier.name()),
            |b| b.iter(|| dcl_kernels::bits::bit_len_batch(&vals, &mut lens)),
        );
    }
    dcl_kernels::clear_active_tier();
}

criterion_group!(benches, kernel_tiers);
criterion_main!(benches);

//! E2/E3: wall-clock of one Lemma 2.1 partial coloring (the derandomized
//! core) at increasing sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_bench::gnp_instance;
use dcl_coloring::linial::linial_from_ids;
use dcl_coloring::partial::{partial_coloring, PartialConfig};
use dcl_congest::bfs::build_bfs_forest;
use dcl_congest::network::Network;

fn partial(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma_2_1");
    group.sample_size(10);
    for n in [48usize, 96, 192] {
        let inst = gnp_instance(n, 8.0 / n as f64, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let n = inst.graph().n();
                let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
                let forest = build_bfs_forest(&mut net);
                let lin = linial_from_ids(&mut net);
                partial_coloring(
                    &mut net,
                    &forest,
                    inst,
                    &vec![true; n],
                    &lin.colors,
                    lin.palette,
                    PartialConfig::default(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, partial);
criterion_main!(benches);

//! Scale-tier benchmarks: generator throughput at 10⁵ nodes, parallel vs
//! sequential round execution, and the coloring pipeline on bounded-degree
//! scale instances. The committed baseline lives in `BENCH_scale.json`
//! (produced by the `scale_baseline` binary); this criterion suite is the
//! interactive view of the same workloads.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_coloring::congest_coloring::{color_degree_plus_one, CongestColoringConfig};
use dcl_congest::network::Network;
use dcl_congest::Backend;
use dcl_graphs::generators;

const SCALE_N: usize = 100_000;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators_scale");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("gnp", SCALE_N), &SCALE_N, |b, &n| {
        b.iter(|| black_box(generators::gnp(n, 8.0 / n as f64, 1)))
    });
    group.bench_with_input(BenchmarkId::new("power_law", SCALE_N), &SCALE_N, |b, &n| {
        b.iter(|| black_box(generators::power_law(n, 2.5, 4.0, 7)))
    });
    group.bench_with_input(BenchmarkId::new("expander", SCALE_N), &SCALE_N, |b, &n| {
        b.iter(|| black_box(generators::expander(n, 8, 1)))
    });
    group.finish();
}

fn bench_round_execution(c: &mut Criterion) {
    let g = generators::power_law(SCALE_N, 2.5, 4.0, 7);
    let sender = |v: usize| -> Vec<(usize, u64)> {
        g.neighbors(v)
            .iter()
            .map(|&u| (u, (v ^ u) as u64))
            .collect()
    };
    let mut group = c.benchmark_group("round_scale");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("power_law_round", "sequential"),
        &(),
        |b, _| {
            let mut net = Network::with_default_cap(&g, SCALE_N as u64);
            b.iter(|| black_box(net.round(sender)))
        },
    );
    group.bench_with_input(
        BenchmarkId::new("power_law_round", "parallel"),
        &(),
        |b, _| {
            let mut net = Network::with_backend(&g, 128, Backend::Parallel(0));
            b.iter(|| black_box(net.round(sender)))
        },
    );
    group.finish();
}

fn bench_coloring_scale(c: &mut Criterion) {
    // Bounded-degree scale instance: Δ = 8 keeps the seed length small, so
    // one full coloring fits a bench iteration.
    let g = generators::expander(10_000, 8, 1);
    let mut group = c.benchmark_group("coloring_scale");
    group.sample_size(10);
    for (label, backend) in [
        ("sequential", Backend::Sequential),
        ("parallel", Backend::Parallel(0)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("expander_10k_d8", label),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    black_box(color_degree_plus_one(
                        &g,
                        &CongestColoringConfig::default()
                            .with_exec(dcl_sim::ExecConfig::default().with_backend(backend)),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_delta_scale(c: &mut Criterion) {
    // The Δ-coloring scenario on the same bounded-degree scale instance:
    // Theorem 1.1 phase plus the Kempe overflow elimination.
    let g = generators::expander(10_000, 8, 1);
    let mut group = c.benchmark_group("delta_scale");
    group.sample_size(10);
    for (label, backend) in [
        ("sequential", Backend::Sequential),
        ("parallel", Backend::Parallel(0)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("expander_10k_d8", label),
            &backend,
            |b, &backend| {
                b.iter(|| {
                    black_box(
                        dcl_delta::delta_color(
                            &g,
                            &dcl_delta::DeltaColoringConfig::default()
                                .with_exec(dcl_sim::ExecConfig::default().with_backend(backend)),
                        )
                        .expect("expander is not a Brooks obstruction"),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_round_execution,
    bench_coloring_scale,
    bench_delta_scale
);
criterion_main!(benches);

//! E7/E8: wall-clock of the MPC colorings (linear and sublinear memory).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_bench::regular_instance;
use dcl_mpc::coloring::{mpc_color_linear, mpc_color_sublinear};

fn mpc(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem_1_4_linear");
    group.sample_size(10);
    for d in [4usize, 8] {
        let inst = regular_instance(48, d, 6);
        group.bench_with_input(BenchmarkId::from_parameter(d), &inst, |b, inst| {
            b.iter(|| mpc_color_linear(inst))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("theorem_1_5_sublinear");
    group.sample_size(10);
    for alpha in [0.5f64, 0.7] {
        let inst = regular_instance(48, 4, 6);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{alpha:.1}")),
            &inst,
            |b, inst| b.iter(|| mpc_color_sublinear(inst, alpha)),
        );
    }
    group.finish();
}

criterion_group!(benches, mpc);
criterion_main!(benches);

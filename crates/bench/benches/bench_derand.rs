//! E10 support: micro-benchmarks of the derandomization machinery — the
//! conditional-probability digit DP and the incremental form updates that
//! dominate the inner loop of Lemma 2.6.

use criterion::{criterion_group, criterion_main, Criterion};
use dcl_derand::seed::PartialSeed;
use dcl_derand::slice::SliceFamily;

fn derand_core(c: &mut Criterion) {
    let fam = SliceFamily::new(10, 14);
    let mut seed = PartialSeed::new(fam.seed_len());
    for i in (0..fam.seed_len()).step_by(2) {
        seed.fix(i, i % 4 == 0);
    }
    let fx = fam.forms_for(&seed, 0b1011001101);
    let fy = fam.forms_for(&seed, 0b0111010010);

    c.bench_function("joint_coin_probs", |b| {
        b.iter(|| fam.joint_coin_probs_forms(&fx, 9000, &fy, 4000))
    });
    c.bench_function("prob_lt", |b| b.iter(|| fam.prob_lt_forms(&fx, 9000)));
    c.bench_function("forms_for", |b| {
        b.iter(|| fam.forms_for(&seed, 0b1011001101))
    });
}

criterion_group!(benches, derand_core);
criterion_main!(benches);

//! E5: wall-clock of the network decomposition construction and of the full
//! Corollary 1.2 coloring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_coloring::instance::ListInstance;
use dcl_congest::network::Network;
use dcl_decomp::coloring::{color_via_decomposition, DecompColoringConfig};
use dcl_decomp::rg::{decompose, RgConfig};
use dcl_graphs::generators;

fn decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("rg_decomposition");
    group.sample_size(10);
    for n in [64usize, 128, 256] {
        let g = generators::gnp(n, 6.0 / n as f64, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let mut net = Network::with_default_cap(g, 64);
                decompose(&mut net, &RgConfig::default())
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("corollary_1_2");
    group.sample_size(10);
    for k in [8usize, 16] {
        let g = generators::cluster_chain(k, 8, 0.5, 2);
        let inst = ListInstance::degree_plus_one(g);
        group.bench_with_input(BenchmarkId::from_parameter(k), &inst, |b, inst| {
            b.iter(|| color_via_decomposition(inst, &DecompColoringConfig::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, decomposition);
criterion_main!(benches);

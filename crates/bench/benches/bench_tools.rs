//! E11: wall-clock of the Section 5 MPC toolbox (sort, prefix sums, set
//! difference).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcl_mpc::machine::Mpc;
use dcl_mpc::tools;

fn mpc_tools(c: &mut Criterion) {
    let mut group = c.benchmark_group("section_5_tools");
    group.sample_size(10);
    for n in [500usize, 2000] {
        let items: Vec<u64> = (0..n as u64)
            .map(|i| (i * 2_654_435_761) % 99_991)
            .collect();
        group.bench_with_input(BenchmarkId::new("sort", n), &items, |b, items| {
            b.iter(|| {
                let mut mpc = Mpc::new(8, 512);
                tools::sort(&mut mpc, tools::scatter(8, items))
            })
        });
        group.bench_with_input(BenchmarkId::new("prefix", n), &items, |b, items| {
            b.iter(|| {
                let mut mpc = Mpc::new(8, 512);
                let dist = tools::scatter(8, items);
                tools::prefix_sums(&mut mpc, &dist, |a, b| a.wrapping_add(*b))
            })
        });
        // 101 distinct keys: set_difference partitions by key, so the key
        // space must be wide enough that no machine's receive volume breaks
        // the enforced O(S)-word budget at n = 2000.
        let a: Vec<(u64, u64)> = items.iter().map(|&x| (x % 101, x % 300)).collect();
        let bset: Vec<(u64, u64)> = items.iter().map(|&x| (x % 101, (x / 7) % 300)).collect();
        // set_difference sorts 2n three-word triples, so the per-machine
        // memory must scale with the input (S = O(total/machines)) or the
        // enforced send/receive budgets trip at the larger sizes.
        let s = (6 * n / 8).max(512);
        group.bench_with_input(
            BenchmarkId::new("set_difference", n),
            &(a, bset),
            |b, input| {
                b.iter(|| {
                    let mut mpc = Mpc::new(8, s);
                    tools::set_difference(
                        &mut mpc,
                        &tools::scatter(8, &input.0),
                        &tools::scatter(8, &input.1),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, mpc_tools);
criterion_main!(benches);

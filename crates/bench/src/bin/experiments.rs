//! Prints every registered experiment table (E1–E13). Run with:
//!
//! ```text
//! cargo run -p dcl-bench --bin experiments --release
//! ```
//!
//! Optional arguments select experiments by registry id:
//!
//! ```text
//! cargo run -p dcl-bench --bin experiments --release -- E12 E13
//! ```

fn main() {
    let wanted: Vec<String> = std::env::args().skip(1).collect();
    if wanted.is_empty() {
        print!("{}", dcl_bench::run_all_experiments());
        return;
    }
    let defs = dcl_bench::experiment_defs();
    let unknown: Vec<&String> = wanted
        .iter()
        .filter(|w| !defs.iter().any(|d| d.id == w.as_str()))
        .collect();
    if !unknown.is_empty() {
        let known: Vec<&str> = defs.iter().map(|d| d.id).collect();
        eprintln!("unknown experiment id(s) {unknown:?}; known ids: {known:?}");
        std::process::exit(2);
    }
    for def in defs {
        if wanted.iter().any(|w| w == def.id) {
            println!("{}", (def.run)().render());
        }
    }
}

//! Prints every experiment table (E1–E13). Run with:
//!
//! ```text
//! cargo run -p dcl-bench --bin experiments --release
//! ```

fn main() {
    print!("{}", dcl_bench::run_all_experiments());
}

//! CSV sweeps for plotting the round-complexity scalings (finer-grained
//! than the `experiments` tables). Each series prints `series,x,rounds`
//! rows to stdout.
//!
//! ```text
//! cargo run -p dcl-bench --bin sweep --release > sweeps.csv
//! ```

use dcl_coloring::congest_coloring::{color_list_instance, CongestColoringConfig};
use dcl_coloring::instance::ListInstance;
use dcl_graphs::generators;

fn main() {
    println!("series,x,rounds,iterations");
    // Rounds vs n at fixed degree (D grows slowly).
    for n in [24usize, 32, 48, 64, 96, 128, 192, 256] {
        let g = generators::random_regular(n, 6, 5);
        let inst = ListInstance::degree_plus_one(g);
        let r = color_list_instance(&inst, &CongestColoringConfig::default());
        println!("rounds_vs_n,{n},{},{}", r.metrics.rounds, r.iterations);
    }
    // Rounds vs Δ at fixed n.
    for d in [2usize, 3, 4, 6, 8, 12, 16, 24] {
        let g = generators::random_regular(96, d, 5);
        let inst = ListInstance::degree_plus_one(g);
        let r = color_list_instance(&inst, &CongestColoringConfig::default());
        println!("rounds_vs_delta,{d},{},{}", r.metrics.rounds, r.iterations);
    }
    // Rounds vs D: rings of growing length (n = D·2, Δ = 2 fixed).
    for n in [16usize, 32, 64, 128, 192] {
        let g = generators::ring(n);
        let inst = ListInstance::degree_plus_one(g);
        let r = color_list_instance(&inst, &CongestColoringConfig::default());
        println!(
            "rounds_vs_D,{},{},{}",
            n / 2,
            r.metrics.rounds,
            r.iterations
        );
    }
}

//! CSV sweeps for plotting the round-complexity scalings (finer-grained
//! than the `experiments` tables). Each series prints `series,x,rounds`
//! rows to stdout; the series are declarative [`Runner`] programs over the
//! CONGEST scenario.
//!
//! ```text
//! cargo run -p dcl-bench --bin sweep --release > sweeps.csv
//! ```

use dcl_coloring::scenario::CongestScenario;
use dcl_runner::{GraphSpec, Runner};

/// Prints one CSV series: `x` values paired with the sweep's cells.
fn print_series(series: &str, xs: &[usize], graphs: Vec<GraphSpec>) {
    let sweep = Runner::new(&CongestScenario::default())
        .graphs(graphs)
        .run();
    assert_eq!(xs.len(), sweep.cells.len());
    for (x, cell) in xs.iter().zip(&sweep.cells) {
        let r = cell.report();
        println!(
            "{series},{x},{},{}",
            r.metrics.rounds,
            r.extra("iterations").expect("congest publishes iterations")
        );
    }
}

fn main() {
    println!("series,x,rounds,iterations");
    // Rounds vs n at fixed degree (D grows slowly).
    let ns = [24usize, 32, 48, 64, 96, 128, 192, 256];
    print_series(
        "rounds_vs_n",
        &ns,
        ns.iter().map(|&n| GraphSpec::regular(n, 6, 5)).collect(),
    );
    // Rounds vs Δ at fixed n.
    let ds = [2usize, 3, 4, 6, 8, 12, 16, 24];
    print_series(
        "rounds_vs_delta",
        &ds,
        ds.iter().map(|&d| GraphSpec::regular(96, d, 5)).collect(),
    );
    // Rounds vs D: rings of growing length (D = n/2, Δ = 2 fixed).
    let ring_ns = [16usize, 32, 64, 128, 192];
    let diameters: Vec<usize> = ring_ns.iter().map(|&n| n / 2).collect();
    print_series(
        "rounds_vs_D",
        &diameters,
        ring_ns.iter().map(|&n| GraphSpec::ring(n)).collect(),
    );
}

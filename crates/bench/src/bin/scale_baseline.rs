//! Produces the committed scale baseline `BENCH_scale.json`: generator
//! throughput at 10⁵–10⁶ nodes, sequential-vs-parallel round execution, the
//! full Theorem 1.1 coloring on scale instances, and the `dcl_delta`
//! Δ-coloring on the 10⁴-node expander (the `delta_scale` criterion group),
//! with the machine profile needed to interpret the numbers (on a
//! single-core runner the parallel backend can only tie the sequential one;
//! the baseline records whatever was measured).
//!
//! ```text
//! cargo run -p dcl_bench --bin scale_baseline --release -- [out.json] [--quick]
//! ```
//!
//! `--quick` skips the long power-law coloring (for PR-gating CI runs); the
//! committed baseline is produced by a full run.

use dcl_coloring::congest_coloring::{color_degree_plus_one, CongestColoringConfig};
use dcl_congest::network::Network;
use dcl_congest::Backend;
use dcl_graphs::{generators, validation, Graph};
use std::fmt::Write as _;
use std::time::Instant;

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

struct GenRow {
    name: &'static str,
    n: usize,
    m: usize,
    max_degree: usize,
    ms: f64,
}

struct PairRow {
    workload: String,
    sequential_ms: f64,
    parallel_ms: f64,
    congest_rounds: u64,
    identical: bool,
}

fn time_generator(name: &'static str, n: usize, f: impl Fn() -> Graph) -> GenRow {
    let t = Instant::now();
    let g = f();
    GenRow {
        name,
        n,
        m: g.m(),
        max_degree: g.max_degree(),
        ms: ms(t),
    }
}

fn time_coloring(workload: String, g: &Graph, threads: usize) -> PairRow {
    let t = Instant::now();
    let seq = color_degree_plus_one(g, &CongestColoringConfig::default());
    let sequential_ms = ms(t);
    let t = Instant::now();
    let par = color_degree_plus_one(
        g,
        &CongestColoringConfig::default()
            .with_exec(dcl_sim::ExecConfig::default().with_backend(Backend::Parallel(threads))),
    );
    let parallel_ms = ms(t);
    assert_eq!(validation::check_proper(g, &seq.colors), None);
    PairRow {
        workload,
        sequential_ms,
        parallel_ms,
        congest_rounds: seq.metrics.rounds,
        identical: seq.colors == par.colors && seq.metrics == par.metrics,
    }
}

/// Times the `dcl_delta` Δ-coloring on both backends (the committed row for
/// the `delta_scale` group of `benches/bench_scale.rs`).
fn time_delta(workload: String, g: &Graph, threads: usize) -> PairRow {
    use dcl_delta::{delta_color, DeltaColoringConfig};
    let t = Instant::now();
    let seq = delta_color(g, &DeltaColoringConfig::default()).expect("no Brooks obstruction");
    let sequential_ms = ms(t);
    let t = Instant::now();
    let par = delta_color(
        g,
        &DeltaColoringConfig::default()
            .with_exec(dcl_sim::ExecConfig::default().with_backend(Backend::Parallel(threads))),
    )
    .expect("no Brooks obstruction");
    let parallel_ms = ms(t);
    assert_eq!(validation::check_proper(g, &seq.colors), None);
    assert!(seq.colors.iter().all(|&c| c < g.max_degree() as u64));
    PairRow {
        workload,
        sequential_ms,
        parallel_ms,
        congest_rounds: seq.metrics.rounds,
        identical: seq == par,
    }
}

fn main() {
    let mut out_path = String::from("BENCH_scale.json");
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if arg == "--quick" {
            quick = true;
        } else {
            out_path = arg;
        }
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("scale_baseline: {threads} hardware threads, quick = {quick}");

    // --- Generator throughput. -------------------------------------------
    let mut gens = Vec::new();
    for n in [100_000usize, 1_000_000] {
        gens.push(time_generator("gnp", n, || {
            generators::gnp(n, 8.0 / n as f64, 1)
        }));
        gens.push(time_generator("power_law", n, || {
            generators::power_law(n, 2.5, 4.0, 7)
        }));
        gens.push(time_generator("expander", n, || {
            generators::expander(n, 8, 1)
        }));
        eprintln!("generators at n = {n} done");
    }

    // --- Round execution, sequential vs parallel. ------------------------
    let g = generators::power_law(100_000, 2.5, 4.0, 7);
    let sender = |v: usize| -> Vec<(usize, u64)> {
        g.neighbors(v)
            .iter()
            .map(|&u| (u, (v ^ u) as u64))
            .collect()
    };
    const ROUNDS: usize = 10;
    let mut seq_net = Network::with_default_cap(&g, 100_000);
    let t = Instant::now();
    let mut last_seq = None;
    for _ in 0..ROUNDS {
        last_seq = Some(seq_net.round(sender));
    }
    let seq_ms = ms(t);
    let mut par_net = Network::with_backend(&g, seq_net.cap_bits(), Backend::Parallel(threads));
    let t = Instant::now();
    let mut last_par = None;
    for _ in 0..ROUNDS {
        last_par = Some(par_net.round(sender));
    }
    let par_ms = ms(t);
    let rounds_row = PairRow {
        workload: format!("{ROUNDS} full-fan-out rounds on power_law(100000, 2.5, 4)"),
        sequential_ms: seq_ms,
        parallel_ms: par_ms,
        congest_rounds: ROUNDS as u64,
        identical: last_seq == last_par && seq_net.metrics() == par_net.metrics(),
    };
    eprintln!("round execution done (seq {seq_ms:.0} ms, par {par_ms:.0} ms)");

    // --- Full colorings. --------------------------------------------------
    let mut colorings = Vec::new();
    let ex = generators::expander(100_000, 8, 1);
    colorings.push(time_coloring("expander(100000, 8)".into(), &ex, threads));
    eprintln!("expander coloring done");
    let dg = generators::expander(10_000, 8, 1);
    colorings.push(time_delta("delta: expander(10000, 8)".into(), &dg, threads));
    eprintln!("delta coloring done");
    if !quick {
        let pl = generators::power_law(100_000, 2.5, 4.0, 7);
        colorings.push(time_coloring(
            "power_law(100000, 2.5, 4)".into(),
            &pl,
            threads,
        ));
        eprintln!("power-law coloring done");
    }

    // --- Emit JSON. -------------------------------------------------------
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench_scale/v1\",");
    let _ = writeln!(
        j,
        "  \"machine\": {},",
        dcl_runner::MachineProfile::current().json_object()
    );
    let _ = writeln!(j, "  \"generators\": [");
    for (i, r) in gens.iter().enumerate() {
        let comma = if i + 1 < gens.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"name\": \"{}\", \"n\": {}, \"m\": {}, \"max_degree\": {}, \"ms\": {:.1} }}{comma}",
            r.name, r.n, r.m, r.max_degree, r.ms
        );
    }
    let _ = writeln!(j, "  ],");
    let pair = |r: &PairRow| {
        format!(
            "{{ \"workload\": \"{}\", \"sequential_ms\": {:.1}, \"parallel_ms\": {:.1}, \"speedup\": {:.3}, \"congest_rounds\": {}, \"bit_identical\": {} }}",
            r.workload,
            r.sequential_ms,
            r.parallel_ms,
            r.sequential_ms / r.parallel_ms,
            r.congest_rounds,
            r.identical
        )
    };
    let _ = writeln!(j, "  \"round_execution\": [");
    let _ = writeln!(j, "    {}", pair(&rounds_row));
    let _ = writeln!(j, "  ],");
    let _ = writeln!(j, "  \"coloring\": [");
    for (i, r) in colorings.iter().enumerate() {
        let comma = if i + 1 < colorings.len() { "," } else { "" };
        let _ = writeln!(j, "    {}{comma}", pair(r));
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&out_path, &j).expect("write baseline json");
    println!("{j}");
    eprintln!("wrote {out_path}");
}

//! Records the remaining criterion suites — everything except the scale
//! tier, which `scale_baseline` already covers in `BENCH_scale.json` — to a
//! machine-readable committed baseline, `BENCH_bench.json`, with the same
//! machine-profile header as the other `BENCH_*.json` files.
//!
//! ```text
//! cargo run -p dcl_bench --bin bench_baseline --release -- [out.json]
//! cargo run -p dcl_bench --bin bench_baseline --release -- --check[-warn] [baseline.json]
//! ```
//!
//! Each entry re-times one representative workload of a criterion suite in
//! `benches/` (same instance parameters, same driver calls) with the shim's
//! calibration strategy: one warm-up call sizes a batch of roughly 20 ms,
//! and the batch average is recorded. Wall-clock numbers are only
//! comparable within one machine profile; the profile header says which.
//!
//! `--check` re-times everything and compares row by row against the
//! committed baseline (default `BENCH_bench.json`) instead of writing:
//! a row slower than `CHECK_TOLERANCE`× its committed value is reported,
//! and the process exits non-zero. `--check-warn` is the CI-friendly
//! variant — same report, exit 0 — because shared runners are noisy enough
//! that a hard gate on wall-clock would flake.

use dcl_bench::{gnp_instance, regular_instance};
use std::fmt::Write as _;
use std::time::Instant;

/// `--check` flags a row when `new > CHECK_TOLERANCE × committed`.
/// Generous on purpose: the committed numbers come from one quiet machine,
/// and the check exists to catch order-of-magnitude dispatch mistakes
/// (a tier accidentally demoted to reference), not percent-level noise.
const CHECK_TOLERANCE: f64 = 3.0;

struct BenchRow {
    suite: &'static str,
    id: String,
    ns_per_iter: f64,
    iters: u64,
}

/// Calibrated timing: one warm-up call, then a batch sized to ~20 ms
/// (capped at 1000 iterations), averaged.
fn time_bench<O, F: FnMut() -> O>(
    suite: &'static str,
    id: impl Into<String>,
    mut f: F,
) -> BenchRow {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once = t0.elapsed().max(std::time::Duration::from_nanos(20));
    let iters = (20_000_000u128 / once.as_nanos()).clamp(1, 1000) as u64;
    let t1 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    BenchRow {
        suite,
        id: id.into(),
        ns_per_iter: t1.elapsed().as_nanos() as f64 / iters as f64,
        iters,
    }
}

/// Parses `id -> ns_per_iter` out of a committed baseline. The committed
/// layout is one row object per line, so line-oriented matching suffices —
/// the same approach `dcl_kernels/tests/family_dispatch.rs` pins.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(id_at) = line.find("\"id\": \"") else {
            continue;
        };
        let id = &line[id_at + 7..];
        let Some(id_end) = id.find('"') else { continue };
        let Some(ns_at) = line.find("\"ns_per_iter\": ") else {
            continue;
        };
        let ns = &line[ns_at + 15..];
        let Some(ns_end) = ns.find(',') else { continue };
        if let Ok(v) = ns[..ns_end].trim().parse::<f64>() {
            rows.push((id[..id_end].to_string(), v));
        }
    }
    rows
}

/// Compares freshly timed rows against the committed baseline. Returns the
/// number of regressions (rows slower than [`CHECK_TOLERANCE`]× committed).
fn check_against(rows: &[BenchRow], baseline_path: &str) -> usize {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read committed baseline {baseline_path}: {e}"));
    let committed = parse_baseline(&text);
    let mut regressions = 0;
    let mut missing = 0;
    for row in rows {
        match committed.iter().find(|(id, _)| *id == row.id) {
            Some((_, old)) => {
                let ratio = row.ns_per_iter / old;
                let verdict = if ratio > CHECK_TOLERANCE {
                    regressions += 1;
                    "REGRESSION"
                } else {
                    "ok"
                };
                println!(
                    "{verdict:>10}  {:<50} {:>12.1} ns committed, {:>12.1} ns now ({:.2}x)",
                    row.id, old, row.ns_per_iter, ratio
                );
            }
            None => {
                missing += 1;
                println!(
                    "{:>10}  {:<50} {:>12} committed, {:>12.1} ns now",
                    "NEW", row.id, "-", row.ns_per_iter
                );
            }
        }
    }
    println!(
        "checked {} rows against {baseline_path}: {} regression(s) over {CHECK_TOLERANCE}x, {} new",
        rows.len(),
        regressions,
        missing
    );
    regressions
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let check_warn = args.iter().any(|a| a == "--check-warn");
    let path_arg = args.iter().find(|a| !a.starts_with("--")).cloned();
    let started = Instant::now();
    let mut rows: Vec<BenchRow> = Vec::new();

    // --- bench_baselines ---------------------------------------------------
    {
        use dcl_coloring::baselines;
        let inst = gnp_instance(96, 8.0 / 96.0, 11);
        rows.push(time_bench(
            "bench_baselines",
            "baselines/johansson/96",
            || baselines::johansson(&inst, 7),
        ));
        rows.push(time_bench("bench_baselines", "baselines/greedy/96", || {
            baselines::greedy(&inst)
        }));
    }

    // --- bench_congest -----------------------------------------------------
    {
        use dcl_coloring::congest_coloring::{color_list_instance, CongestColoringConfig};
        use dcl_coloring::instance::ListInstance;
        use dcl_graphs::generators;
        let inst = regular_instance(64, 6, 5);
        rows.push(time_bench(
            "bench_congest",
            "theorem_1_1/n_sweep/64",
            || color_list_instance(&inst, &CongestColoringConfig::default()),
        ));
        let hcube = ListInstance::degree_plus_one(generators::hypercube(6));
        rows.push(time_bench(
            "bench_congest",
            "theorem_1_1/d_sweep/hcube6",
            || color_list_instance(&hcube, &CongestColoringConfig::default()),
        ));
        // Before/after pair for the incremental digit DP at the system
        // level: the same Theorem 1.1 run forced to the reference tier and
        // to the prefix-cached tier. The unforced row above is the shipped
        // per-family default.
        for tier in [
            dcl_kernels::KernelTier::Reference,
            dcl_kernels::KernelTier::Incremental,
        ] {
            dcl_kernels::set_active_tier(tier);
            rows.push(time_bench(
                "bench_congest",
                format!("theorem_1_1/n_sweep/64/{}", tier.name()),
                || color_list_instance(&inst, &CongestColoringConfig::default()),
            ));
        }
        dcl_kernels::clear_active_tier();
    }

    // --- bench_partial -----------------------------------------------------
    {
        use dcl_coloring::linial::linial_from_ids;
        use dcl_coloring::partial::{partial_coloring, PartialConfig};
        use dcl_congest::bfs::build_bfs_forest;
        use dcl_congest::network::Network;
        let inst = gnp_instance(96, 8.0 / 96.0, 1);
        rows.push(time_bench("bench_partial", "lemma_2_1/96", || {
            let n = inst.graph().n();
            let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
            let forest = build_bfs_forest(&mut net);
            let lin = linial_from_ids(&mut net);
            partial_coloring(
                &mut net,
                &forest,
                &inst,
                &vec![true; n],
                &lin.colors,
                lin.palette,
                PartialConfig::default(),
            )
        }));
    }

    // --- bench_derand ------------------------------------------------------
    {
        use dcl_derand::seed::PartialSeed;
        use dcl_derand::slice::SliceFamily;
        let fam = SliceFamily::new(10, 14);
        let mut seed = PartialSeed::new(fam.seed_len());
        for i in (0..fam.seed_len()).step_by(2) {
            seed.fix(i, i % 4 == 0);
        }
        let fx = fam.forms_for(&seed, 0b1011001101);
        let fy = fam.forms_for(&seed, 0b0111010010);
        rows.push(time_bench("bench_derand", "joint_coin_probs", || {
            fam.joint_coin_probs_forms(&fx, 9000, &fy, 4000)
        }));
        rows.push(time_bench("bench_derand", "prob_lt", || {
            fam.prob_lt_forms(&fx, 9000)
        }));
        rows.push(time_bench("bench_derand", "forms_for", || {
            fam.forms_for(&seed, 0b1011001101)
        }));
    }

    // --- bench_decomp ------------------------------------------------------
    {
        use dcl_coloring::instance::ListInstance;
        use dcl_congest::network::Network;
        use dcl_decomp::coloring::{color_via_decomposition, DecompColoringConfig};
        use dcl_decomp::rg::{decompose, RgConfig};
        use dcl_graphs::generators;
        let g = generators::gnp(128, 6.0 / 128.0, 2);
        rows.push(time_bench("bench_decomp", "rg_decomposition/128", || {
            let mut net = Network::with_default_cap(&g, 64);
            decompose(&mut net, &RgConfig::default())
        }));
        let inst = ListInstance::degree_plus_one(generators::cluster_chain(8, 8, 0.5, 2));
        rows.push(time_bench("bench_decomp", "corollary_1_2/8", || {
            color_via_decomposition(&inst, &DecompColoringConfig::default())
        }));
    }

    // --- bench_clique ------------------------------------------------------
    {
        use dcl_clique::coloring::{clique_color, CliqueColoringConfig};
        let inst = gnp_instance(64, 8.0 / 64.0, 4);
        rows.push(time_bench("bench_clique", "theorem_1_3/64", || {
            clique_color(&inst, &CliqueColoringConfig::default())
        }));
    }

    // --- bench_mpc ---------------------------------------------------------
    {
        use dcl_mpc::coloring::{mpc_color_linear, mpc_color_sublinear};
        let inst = regular_instance(48, 4, 6);
        rows.push(time_bench("bench_mpc", "theorem_1_4_linear/4", || {
            mpc_color_linear(&inst)
        }));
        rows.push(time_bench("bench_mpc", "theorem_1_5_sublinear/0.5", || {
            mpc_color_sublinear(&inst, 0.5)
        }));
    }

    // --- bench_tools -------------------------------------------------------
    {
        use dcl_mpc::machine::Mpc;
        use dcl_mpc::tools;
        let items: Vec<u64> = (0..500u64).map(|i| (i * 2_654_435_761) % 99_991).collect();
        rows.push(time_bench(
            "bench_tools",
            "section_5_tools/sort/500",
            || {
                let mut mpc = Mpc::new(8, 512);
                tools::sort(&mut mpc, tools::scatter(8, &items))
            },
        ));
        rows.push(time_bench(
            "bench_tools",
            "section_5_tools/prefix/500",
            || {
                let mut mpc = Mpc::new(8, 512);
                let dist = tools::scatter(8, &items);
                tools::prefix_sums(&mut mpc, &dist, |a, b| a.wrapping_add(*b))
            },
        ));
        let a: Vec<(u64, u64)> = items.iter().map(|&x| (x % 101, x % 300)).collect();
        let bset: Vec<(u64, u64)> = items.iter().map(|&x| (x % 101, (x / 7) % 300)).collect();
        rows.push(time_bench(
            "bench_tools",
            "section_5_tools/set_difference/500",
            || {
                let mut mpc = Mpc::new(8, 512);
                tools::set_difference(&mut mpc, &tools::scatter(8, &a), &tools::scatter(8, &bset))
            },
        ));
    }

    // --- bench_kernels ------------------------------------------------------
    // Each kernel family timed once per tier (reference / scalar / simd /
    // incremental), so the committed baseline records the tier speedups on
    // this machine — `default_family_tier` is pinned against these rows by
    // `dcl_kernels/tests/family_dispatch.rs`. The digit-DP workload matches
    // the bench_derand rows above, making
    // "kernels/digit_dp/joint_coin_probs/reference" directly comparable to
    // "bench_derand joint_coin_probs". The edge_shares row of the
    // incremental tier is the warm-cache path (`edge_shares_cached` with a
    // persistent `EdgeDpCache`) — the steady state of the Lemma 2.6 drivers,
    // which evaluate each edge (m+1)×2 times per slice against one cache.
    {
        use dcl_derand::seed::PartialSeed;
        use dcl_derand::slice::SliceFamily;
        use dcl_kernels::KernelTier;
        let fam = SliceFamily::new(10, 14);
        let mut seed = PartialSeed::new(fam.seed_len());
        for i in (0..fam.seed_len()).step_by(2) {
            seed.fix(i, i % 4 == 0);
        }
        let (x, y) = (0b1011001101u64, 0b0111010010u64);
        let fx = fam.forms_for(&seed, x);
        let fy = fam.forms_for(&seed, y);
        // Candidate forms for free seed bit 35 (slice 3), as the Lemma 2.6
        // driver builds them for edge_shares.
        let over_u = [
            fam.form_with_fix(fx[3], x, 35, false),
            fam.form_with_fix(fx[3], x, 35, true),
        ];
        let over_v = [
            fam.form_with_fix(fy[3], y, 35, false),
            fam.form_with_fix(fy[3], y, 35, true),
        ];
        let scores: Vec<f64> = (0..4096u64)
            .map(|i| (i.wrapping_mul(2_654_435_761) % 100_000) as f64 / 3.0)
            .collect();
        let vals: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect();
        let mut lens = vec![0u32; vals.len()];
        for tier in KernelTier::all() {
            dcl_kernels::set_active_tier(tier);
            let name = tier.name();
            rows.push(time_bench(
                "bench_kernels",
                format!("kernels/digit_dp/joint_coin_probs/{name}"),
                || dcl_kernels::digit_dp::joint_coin_probs(&fx, 9000, &fy, 4000),
            ));
            let es_id = format!("kernels/digit_dp/edge_shares/{name}");
            if tier == KernelTier::Incremental {
                let mut cache = dcl_kernels::digit_dp::EdgeDpCache::new();
                rows.push(time_bench("bench_kernels", es_id, || {
                    dcl_kernels::digit_dp::edge_shares_cached(
                        &mut cache, &fx, over_u, 9000, 0.2, 0.25, &fy, over_v, 4000, 0.125, 0.5, 3,
                    )
                }));
            } else {
                rows.push(time_bench("bench_kernels", es_id, || {
                    dcl_kernels::digit_dp::edge_shares(
                        &fx, over_u, 9000, 0.2, 0.25, &fy, over_v, 4000, 0.125, 0.5, 3,
                    )
                }));
            }
            rows.push(time_bench(
                "bench_kernels",
                format!("kernels/argmin/4096/{name}"),
                || dcl_kernels::argmin::argmin_f64(&scores),
            ));
            rows.push(time_bench(
                "bench_kernels",
                format!("kernels/bit_len_batch/4096/{name}"),
                || dcl_kernels::bits::bit_len_batch(&vals, &mut lens),
            ));
        }
        dcl_kernels::clear_active_tier();
    }

    // The scale-tier suite (bench_scale, including its delta_scale group) is
    // covered by `scale_baseline` / BENCH_scale.json, not here.

    // --- Check mode: compare, report, exit — nothing is (over)written. -----
    if check || check_warn {
        let baseline = path_arg.unwrap_or_else(|| String::from("BENCH_bench.json"));
        let regressions = check_against(&rows, &baseline);
        if regressions > 0 && check {
            std::process::exit(1);
        }
        return;
    }

    // --- Emit JSON. --------------------------------------------------------
    let out_path = path_arg.unwrap_or_else(|| String::from("BENCH_bench.json"));
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench_bench/v1\",");
    let _ = writeln!(
        j,
        "  \"machine\": {},",
        dcl_runner::MachineProfile::current().json_object()
    );
    let _ = writeln!(
        j,
        "  \"total_ms\": {:.1},",
        started.elapsed().as_secs_f64() * 1e3
    );
    let _ = writeln!(j, "  \"benches\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            j,
            "    {{ \"suite\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {} }}{comma}",
            r.suite, r.id, r.ns_per_iter, r.iters
        );
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&out_path, &j).expect("write bench baseline json");
    println!("{j}");
    eprintln!("wrote {out_path}");
}

//! Records the experiment tables (E1–E14) to a machine-readable committed
//! baseline, `BENCH_experiments.json`, with the same machine-profile header
//! as `BENCH_scale.json` — so a future profile (e.g. a multi-core runner)
//! can be diffed row by row against the committed one.
//!
//! ```text
//! cargo run -p dcl_bench --bin experiments_baseline --release -- [out.json]
//! ```
//!
//! The experiment list comes from [`dcl_bench::experiment_defs`] (the
//! runner-backed registry) and the JSON from
//! [`dcl_runner::baseline_json`], so this bin is pure plumbing. The
//! experiments are deterministic (fixed seeds, derandomized algorithms), so
//! everything except the wall-clock header is reproducible bit for bit on
//! any machine; `tests/experiments_schema.rs` pins the rows against the
//! committed file.

use dcl_runner::{baseline_json, MachineProfile, Table};
use std::time::Instant;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| String::from("BENCH_experiments.json"));
    let started = Instant::now();
    let mut tables: Vec<(Table, f64)> = Vec::new();
    for def in dcl_bench::experiment_defs() {
        let t = Instant::now();
        let table = (def.run)();
        tables.push((table, t.elapsed().as_secs_f64() * 1e3));
    }
    let j = baseline_json(
        "bench_experiments/v1",
        &MachineProfile::current(),
        started.elapsed().as_secs_f64() * 1e3,
        &tables,
    );
    std::fs::write(&out_path, &j).expect("write experiments baseline json");
    println!("{j}");
    eprintln!("wrote {out_path}");
}

//! Records the experiment tables (E1–E13) to a machine-readable committed
//! baseline, `BENCH_experiments.json`, with the same machine-profile header
//! as `BENCH_scale.json` — so a future profile (e.g. a multi-core runner)
//! can be diffed row by row against the committed one.
//!
//! ```text
//! cargo run -p dcl_bench --bin experiments_baseline --release -- [out.json]
//! ```
//!
//! The experiments are deterministic (fixed seeds, derandomized
//! algorithms), so everything except the wall-clock header is reproducible
//! bit for bit on any machine.

use dcl_bench::Table;
use std::fmt::Write as _;
use std::time::Instant;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn table_json(out: &mut String, table: &Table, ms: f64, last: bool) {
    // The experiment id is the leading token of the title ("E4b (Theorem...").
    let id = table
        .title
        .split_whitespace()
        .next()
        .unwrap_or("?")
        .trim_end_matches(':');
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"id\": \"{}\",", json_escape(id));
    let _ = writeln!(out, "      \"title\": \"{}\",", json_escape(&table.title));
    let _ = writeln!(out, "      \"ms\": {ms:.1},");
    let cells = |row: &[String]| -> String {
        row.iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "      \"headers\": [{}],", cells(&table.headers));
    let _ = writeln!(out, "      \"rows\": [");
    for (i, row) in table.rows.iter().enumerate() {
        let comma = if i + 1 < table.rows.len() { "," } else { "" };
        let _ = writeln!(out, "        [{}]{comma}", cells(row));
    }
    let _ = writeln!(out, "      ]");
    let _ = writeln!(out, "    }}{}", if last { "" } else { "," });
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| String::from("BENCH_experiments.json"));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let started = Instant::now();
    let runs: Vec<fn() -> Table> = vec![
        || dcl_bench::e1_randomized_potential(300),
        dcl_bench::e2_phase_budget,
        dcl_bench::e3_partial_coloring,
        dcl_bench::e4_theorem_11,
        dcl_bench::e4b_color_space,
        dcl_bench::e5_decomposition,
        dcl_bench::e6_clique,
        dcl_bench::e7_mpc_linear,
        dcl_bench::e8_mpc_sublinear,
        dcl_bench::e9_baselines,
        dcl_bench::e10_ablation,
        dcl_bench::e11_mpc_tools,
        dcl_bench::e12_bandwidth_sweep,
        dcl_bench::e13_delta_coloring,
    ];
    let mut tables: Vec<(Table, f64)> = Vec::with_capacity(runs.len());
    for run in runs {
        let t = Instant::now();
        let table = run();
        tables.push((table, t.elapsed().as_secs_f64() * 1e3));
    }

    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"bench_experiments/v1\",");
    let _ = writeln!(
        j,
        "  \"machine\": {{ \"hardware_threads\": {threads}, \"os\": \"{}\", \"arch\": \"{}\" }},",
        std::env::consts::OS,
        std::env::consts::ARCH
    );
    let _ = writeln!(
        j,
        "  \"total_ms\": {:.1},",
        started.elapsed().as_secs_f64() * 1e3
    );
    let _ = writeln!(j, "  \"experiments\": [");
    let count = tables.len();
    for (i, (table, ms)) in tables.iter().enumerate() {
        table_json(&mut j, table, *ms, i + 1 == count);
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    std::fs::write(&out_path, &j).expect("write experiments baseline json");
    println!("{j}");
    eprintln!("wrote {out_path}");
}

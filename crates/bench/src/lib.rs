//! Experiment harness: workloads and the experiment implementations (E1–E15
//! of `DESIGN.md` §4, including the E12/E13 bandwidth sweeps enabled by
//! `dcl_sim::ExecConfig`, the E14 transport-tier overhead table, and the
//! E15 service-tier overhead table).
//!
//! The paper is a theory paper without an empirical section, so every
//! quantitative claim (potential invariants, progress guarantees, round
//! bounds, memory bounds) is turned into an experiment here. The
//! `experiments` binary prints one table per experiment; `EXPERIMENTS.md`
//! records paper-claim vs. measured. Criterion benches in `benches/` reuse
//! the same workloads for wall-clock tracking.
//!
//! The pipeline-level experiments (E4–E9, E12, E13) are declarative
//! [`dcl_runner::Runner`] programs over the [`dcl_runner::Scenario`]
//! adapters; the lemma-level experiments (E1–E3, E4b, E10, E11) probe
//! algorithm internals below the scenario surface and keep calling those
//! entry points directly. [`Table`] (and the baseline JSON it serializes
//! to) lives in `dcl_runner::table` and is re-exported here; row content is
//! bit-identical to the pre-runner harness, pinned against the committed
//! `BENCH_experiments.json` by `tests/experiments_schema.rs`.
//!
//! # Profiling recipe
//!
//! The hot loops live in `dcl_kernels` (`DESIGN.md` §8); to see where a
//! pipeline spends its time and how the kernel tiers move the needle:
//!
//! ```text
//! # Per-tier wall clock (shim criterion; same fixtures as BENCH_bench.json):
//! cargo bench -p dcl_bench --bench bench_kernels
//! DCL_KERNEL_TIER=reference cargo bench -p dcl_bench --bench bench_congest
//!
//! # Sampling profile of a real workload (needs samply or flamegraph
//! # installed; debug symbols stay on in the release profile):
//! cargo build --release -p dcl_bench --bin experiments
//! samply record ./target/release/experiments       # or:
//! flamegraph -- ./target/release/experiments
//!
//! # Let the autovectorizer use the recording machine's full ISA — useful
//! # for judging how much headroom the explicit-SIMD tier still has:
//! RUSTFLAGS=-Ctarget-cpu=native cargo bench -p dcl_bench --bench bench_kernels
//! ```
//!
//! Numbers are only comparable within one machine profile; the committed
//! `BENCH_*.json` headers record `hardware_threads`/`os`/`arch` plus the
//! active `kernel_tier` and detected `target_features` for exactly that
//! reason.

#![forbid(unsafe_code)]

use dcl_clique::scenario::CliqueScenario;
use dcl_coloring::baselines;
use dcl_coloring::congest_coloring::{color_list_instance, CongestColoringConfig};
use dcl_coloring::derand_step::accuracy_bits;
use dcl_coloring::instance::ListInstance;
use dcl_coloring::linial::linial_from_ids;
use dcl_coloring::partial::{partial_coloring, ConflictResolution, PartialConfig};
use dcl_coloring::prefix::{randomized_one_bit_step, PrefixState};
use dcl_coloring::scenario::CongestScenario;
use dcl_congest::bfs::build_bfs_forest;
use dcl_congest::network::Network;
use dcl_decomp::scenario::DecompScenario;
use dcl_delta::scenario::DeltaScenario;
use dcl_graphs::{generators, metrics, validation, Graph};
use dcl_mpc::scenario::{MpcLinearScenario, MpcSublinearScenario};
use dcl_runner::{CapSpec, GraphSpec, Runner};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use dcl_runner::Table;

/// Standard experiment instance: G(n,p) with (Δ+1) lists.
pub fn gnp_instance(n: usize, p: f64, seed: u64) -> ListInstance {
    ListInstance::degree_plus_one(generators::gnp(n, p, seed))
}

/// Standard experiment instance: near-d-regular with (Δ+1) lists.
pub fn regular_instance(n: usize, d: usize, seed: u64) -> ListInstance {
    ListInstance::degree_plus_one(generators::random_regular(n, d, seed))
}

fn f(x: f64) -> String {
    format!("{x:.3}")
}

fn diameter_str(g: &Graph) -> String {
    metrics::diameter(g)
        .map(|x| x.to_string())
        .unwrap_or_else(|| "-".into())
}

/// Looks up a required extra of a report, panicking with the key on absence
/// (the scenario adapters publish fixed extra sets, so a miss is a bug).
fn extra(report: &dcl_runner::Report, key: &str) -> u64 {
    report
        .extra(key)
        .unwrap_or_else(|| panic!("scenario '{}' has no extra '{key}'", report.scenario))
}

/// E1 — Lemma 2.2: the randomized one-bit extension does not increase the
/// expected potential (exact coins, fully independent randomness).
pub fn e1_randomized_potential(trials: u64) -> Table {
    let mut t = Table::new(
        "E1 (Lemma 2.2): randomized one-bit step, E[sum Phi] non-increasing",
        &[
            "graph",
            "n",
            "Phi_before",
            "mean_Phi_after",
            "max_seen",
            "trials",
        ],
    );
    for (name, g) in [
        ("gnp(96,0.08)", generators::gnp(96, 0.08, 3)),
        ("regular(96,6)", generators::random_regular(96, 6, 3)),
        ("ring(96)", generators::ring(96)),
    ] {
        let inst = ListInstance::degree_plus_one(g);
        let n = inst.graph().n();
        let base = PrefixState::new(&inst, &vec![true; n]);
        let before = base.total_potential();
        let mut sum = 0.0;
        let mut max_seen = f64::MIN;
        for tr in 0..trials {
            let mut state = base.clone();
            let mut rng = StdRng::seed_from_u64(tr);
            let (_, after) = randomized_one_bit_step(&mut state, &inst, &mut rng);
            sum += after;
            max_seen = max_seen.max(after);
        }
        t.row(vec![
            name.to_string(),
            n.to_string(),
            f(before),
            f(sum / trials as f64),
            f(max_seen),
            trials.to_string(),
        ]);
    }
    t
}

/// E2 — Lemma 2.3 / Lemma 2.6: each derandomized phase increases the
/// potential by at most `n/⌈log C⌉` (driven by ε = 2^{-b}).
pub fn e2_phase_budget() -> Table {
    let mut t = Table::new(
        "E2 (Lemmas 2.3+2.6): per-phase potential increase vs budget n/ceil(logC)",
        &[
            "graph",
            "n",
            "b_bits",
            "budget",
            "max_phase_increase",
            "final_Phi",
            "2n",
        ],
    );
    for (name, g) in [
        ("gnp(80,0.1)", generators::gnp(80, 0.1, 7)),
        ("regular(80,8)", generators::random_regular(80, 8, 7)),
    ] {
        let inst = ListInstance::degree_plus_one(g);
        let n = inst.graph().n();
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let lin = linial_from_ids(&mut net);
        let out = partial_coloring(
            &mut net,
            &forest,
            &inst,
            &vec![true; n],
            &lin.colors,
            lin.palette,
            PartialConfig::default(),
        );
        let budget = n as f64 / f64::from(inst.color_bits());
        t.row(vec![
            name.to_string(),
            n.to_string(),
            out.accuracy_bits.to_string(),
            f(budget),
            f(out.trace.max_increase()),
            f(*out.trace.values.last().unwrap()),
            f(2.0 * n as f64),
        ]);
    }
    t
}

/// E3 — Lemma 2.1: at least 1/8 of the nodes get colored; rounds scale with
/// `D · log C · seed_len`.
pub fn e3_partial_coloring() -> Table {
    let mut t = Table::new(
        "E3 (Lemma 2.1): fraction colored per invocation and round cost",
        &[
            "graph",
            "n",
            "D",
            "colored",
            "fraction",
            "rounds",
            "seed_bits",
            "eligible",
        ],
    );
    for (name, g) in [
        ("gnp(64,0.1)", generators::gnp(64, 0.1, 1)),
        ("gnp(128,0.06)", generators::gnp(128, 0.06, 1)),
        ("regular(128,6)", generators::random_regular(128, 6, 1)),
        ("grid(8x16)", generators::grid(8, 16)),
    ] {
        let inst = ListInstance::degree_plus_one(g.clone());
        let n = inst.graph().n();
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let lin = linial_from_ids(&mut net);
        let before = net.rounds();
        let out = partial_coloring(
            &mut net,
            &forest,
            &inst,
            &vec![true; n],
            &lin.colors,
            lin.palette,
            PartialConfig::default(),
        );
        let d = metrics::diameter(&g)
            .map(|x| x.to_string())
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            name.to_string(),
            n.to_string(),
            d,
            out.colored.len().to_string(),
            f(out.colored.len() as f64 / n as f64),
            (net.rounds() - before).to_string(),
            out.seed_len.to_string(),
            out.eligible_count.to_string(),
        ]);
    }
    t
}

/// E4 — Theorem 1.1: full coloring; scaling in n, Δ, D; `O(log n)`
/// iterations. Three declarative `Runner` sweeps (one per series) over the
/// CONGEST scenario.
pub fn e4_theorem_11() -> Table {
    let mut t = Table::new(
        "E4 (Theorem 1.1): CONGEST (degree+1)-list coloring -- scaling",
        &[
            "series", "graph", "n", "Delta", "D", "rounds", "iters", "proper",
        ],
    );
    let congest = CongestScenario::default();
    let mut push_series = |series: &str, graphs: Vec<GraphSpec>| {
        let sweep = Runner::new(&congest).graphs(graphs).run();
        for (spec, cell) in sweep.iter() {
            let r = cell.report();
            t.row(vec![
                series.to_string(),
                spec.label.clone(),
                spec.graph.n().to_string(),
                spec.graph.max_degree().to_string(),
                diameter_str(&spec.graph),
                r.metrics.rounds.to_string(),
                extra(r, "iterations").to_string(),
                r.proper.to_string(),
            ]);
        }
    };
    push_series(
        "n-sweep",
        [32usize, 64, 128, 256]
            .into_iter()
            .map(|n| GraphSpec::regular(n, 6, 5))
            .collect(),
    );
    push_series(
        "Delta-sweep",
        [3usize, 6, 12, 24]
            .into_iter()
            .map(|d| GraphSpec::regular(96, d, 5))
            .collect(),
    );
    push_series(
        "D-sweep",
        vec![
            GraphSpec::ring(128),
            GraphSpec::grid(8, 16),
            GraphSpec::hypercube(7),
        ],
    );
    t
}

/// E4b — Theorem 1.1 with custom color spaces: scaling in C.
pub fn e4b_color_space() -> Table {
    let mut t = Table::new(
        "E4b (Theorem 1.1): scaling in the color space C (same graph)",
        &["C", "log2C", "rounds", "iters", "proper"],
    );
    let g = generators::random_regular(96, 6, 9);
    for shift in [0u64, 3, 6, 9] {
        // Lists spread over a larger space: color i -> i << shift.
        let lists: Vec<Vec<u64>> = g
            .nodes()
            .map(|v| (0..=g.degree(v) as u64).map(|i| i << shift).collect())
            .collect();
        let c = ((g.max_degree() as u64) << shift) + 1;
        let inst = ListInstance::new(g.clone(), c, lists.clone()).unwrap();
        let r = color_list_instance(&inst, &CongestColoringConfig::default());
        let ok = validation::check_list_coloring(&g, &lists, &r.colors).is_none();
        t.row(vec![
            c.to_string(),
            inst.color_bits().to_string(),
            r.metrics.rounds.to_string(),
            r.iterations.to_string(),
            ok.to_string(),
        ]);
    }
    t
}

/// E5 — Theorem 3.1 + Corollary 1.2: decomposition quality and the
/// decomposition-based coloring on large-diameter graphs. Two parallel
/// `Runner` sweeps (decomposition scenario + Theorem 1.1 reference) over
/// the same graph specs, zipped per cell.
pub fn e5_decomposition() -> Table {
    let mut t = Table::new(
        "E5 (Thm 3.1 + Cor 1.2): decomposition (alpha,beta,kappa) and rounds vs Theorem 1.1",
        &[
            "graph",
            "n",
            "D",
            "alpha",
            "beta",
            "kappa",
            "decomp_rounds",
            "color_rounds",
            "thm11_rounds",
        ],
    );
    let graphs = || {
        vec![
            GraphSpec::cluster_chain(12, 8, 0.5, 2),
            GraphSpec::cluster_chain(24, 8, 0.5, 2),
            GraphSpec::gnp(96, 0.07, 2),
            GraphSpec::ring(128),
        ]
    };
    let decomp = Runner::new(&DecompScenario::default())
        .graphs(graphs())
        .run();
    let congest = Runner::new(&CongestScenario::default())
        .graphs(graphs())
        .run();
    for ((spec, dec_cell), ref_cell) in decomp.iter().zip(&congest.cells) {
        let dec = dec_cell.report();
        assert!(
            dec.proper,
            "{}: decomposition coloring must be proper",
            spec.label
        );
        t.row(vec![
            spec.label.clone(),
            spec.graph.n().to_string(),
            diameter_str(&spec.graph),
            extra(dec, "alpha").to_string(),
            extra(dec, "beta").to_string(),
            extra(dec, "kappa").to_string(),
            extra(dec, "decomposition_rounds").to_string(),
            extra(dec, "coloring_rounds").to_string(),
            ref_cell.report().metrics.rounds.to_string(),
        ]);
    }
    t
}

/// E6 — Theorem 1.3: clique rounds are diameter-free and far below CONGEST
/// on high-diameter graphs. Clique and CONGEST `Runner` sweeps over the
/// same graph specs, zipped per cell.
pub fn e6_clique() -> Table {
    let mut t = Table::new(
        "E6 (Theorem 1.3): CONGESTED CLIQUE vs CONGEST rounds",
        &[
            "graph",
            "n",
            "Delta",
            "D",
            "clique_rounds",
            "iters",
            "collected",
            "congest_rounds",
        ],
    );
    let graphs = || {
        vec![
            GraphSpec::ring(48),
            GraphSpec::ring(96),
            GraphSpec::gnp(48, 0.15, 4),
            GraphSpec::gnp(96, 0.08, 4),
            GraphSpec::regular(96, 8, 4),
        ]
    };
    let clique = Runner::new(&CliqueScenario::default())
        .graphs(graphs())
        .run();
    let congest = Runner::new(&CongestScenario::default())
        .graphs(graphs())
        .run();
    for ((spec, cl_cell), ref_cell) in clique.iter().zip(&congest.cells) {
        let cl = cl_cell.report();
        assert!(cl.proper, "{}: clique coloring must be proper", spec.label);
        t.row(vec![
            spec.label.clone(),
            spec.graph.n().to_string(),
            spec.graph.max_degree().to_string(),
            diameter_str(&spec.graph),
            cl.metrics.rounds.to_string(),
            extra(cl, "iterations").to_string(),
            extra(cl, "collected_nodes").to_string(),
            ref_cell.report().metrics.rounds.to_string(),
        ]);
    }
    t
}

/// E7 — Theorem 1.4: MPC linear memory — rounds vs Δ, memory compliance.
/// One `Runner` sweep of the linear-memory scenario over the Δ series.
pub fn e7_mpc_linear() -> Table {
    let mut t = Table::new(
        "E7 (Theorem 1.4): MPC linear memory -- rounds and memory",
        &[
            "graph",
            "n",
            "Delta",
            "rounds",
            "iters",
            "machines",
            "S_words",
            "max_storage",
        ],
    );
    let sweep = Runner::new(&MpcLinearScenario)
        .graphs(
            [3usize, 6, 12]
                .into_iter()
                .map(|d| GraphSpec::regular(64, d, 6)),
        )
        .run();
    for (spec, cell) in sweep.iter() {
        let r = cell.report();
        assert!(r.proper, "{}: MPC coloring must be proper", spec.label);
        t.row(vec![
            spec.label.clone(),
            spec.graph.n().to_string(),
            spec.graph.max_degree().to_string(),
            r.metrics.rounds.to_string(),
            extra(r, "iterations").to_string(),
            extra(r, "machines").to_string(),
            extra(r, "memory_words").to_string(),
            extra(r, "max_storage_words").to_string(),
        ]);
    }
    t
}

/// E8 — Theorem 1.5 + Lemma 4.2: MPC sublinear memory — α sweep. One
/// single-cell `Runner` per α (the memory exponent is a scenario parameter,
/// not a sweep axis).
pub fn e8_mpc_sublinear() -> Table {
    let mut t = Table::new(
        "E8 (Theorem 1.5 + Lemma 4.2): MPC sublinear memory -- alpha sweep",
        &[
            "graph",
            "alpha",
            "rounds",
            "iters",
            "finisher_iters",
            "machines",
            "S_words",
            "max_storage",
        ],
    );
    for alpha in [0.4f64, 0.5, 0.6, 0.8] {
        let scenario = MpcSublinearScenario::new(alpha);
        let sweep = Runner::new(&scenario)
            .graph(GraphSpec::gnp(64, 0.1, 8))
            .run();
        let (spec, cell) = sweep.iter().next().expect("one cell");
        let r = cell.report();
        assert!(r.proper, "alpha {alpha}: MPC coloring must be proper");
        t.row(vec![
            spec.label.clone(),
            format!("{alpha:.1}"),
            r.metrics.rounds.to_string(),
            extra(r, "iterations").to_string(),
            extra(r, "finisher_iterations").to_string(),
            extra(r, "machines").to_string(),
            extra(r, "memory_words").to_string(),
            extra(r, "max_storage_words").to_string(),
        ]);
    }
    t
}

/// E9 — deterministic (ours) vs randomized (Johansson) baseline. The
/// deterministic side is a `Runner` sweep; the randomized/greedy baselines
/// are not scenarios (they are comparison oracles) and run directly on the
/// per-cell graphs.
pub fn e9_baselines() -> Table {
    let mut t = Table::new(
        "E9: deterministic Theorem 1.1 vs randomized trial coloring [Joh99]",
        &[
            "graph",
            "n",
            "det_rounds",
            "det_iters",
            "rand_rounds",
            "rand_iters",
            "greedy_colors",
        ],
    );
    let sweep = Runner::new(&CongestScenario::default())
        .graphs([
            GraphSpec::gnp(96, 0.08, 11),
            GraphSpec::regular(128, 6, 11),
            GraphSpec::grid(8, 12),
        ])
        .run();
    for (spec, cell) in sweep.iter() {
        let det = cell.report();
        assert!(
            det.proper,
            "{}: Theorem 1.1 coloring must be proper",
            spec.label
        );
        let inst = ListInstance::degree_plus_one(spec.graph.clone());
        let rand = baselines::johansson(&inst, 99);
        let greedy = baselines::greedy(&inst);
        assert_eq!(validation::check_proper(&spec.graph, &rand.colors), None);
        t.row(vec![
            spec.label.clone(),
            spec.graph.n().to_string(),
            det.metrics.rounds.to_string(),
            extra(det, "iterations").to_string(),
            rand.metrics.rounds.to_string(),
            rand.iterations.to_string(),
            validation::count_colors(&greedy).to_string(),
        ]);
    }
    t
}

/// E10 — ablations: coin accuracy, MIS vs MIS-avoidance, seed length vs
/// the paper's Theorem 2.4 bound.
pub fn e10_ablation() -> Table {
    let mut t = Table::new(
        "E10: ablations -- accuracy bits, conflict resolution, seed length",
        &[
            "variant",
            "b_bits",
            "seed_bits",
            "paper_seed_bound",
            "colored_frac",
            "max_phase_inc",
            "budget",
        ],
    );
    let g = generators::gnp(80, 0.1, 13);
    let inst = ListInstance::degree_plus_one(g.clone());
    let n = inst.graph().n();
    for (variant, resolution, extra) in [
        ("MIS (paper)", ConflictResolution::Mis, 0u32),
        ("MIS, b+3", ConflictResolution::Mis, 3),
        ("AvoidMIS (Sec. 4)", ConflictResolution::AvoidMis, 0),
    ] {
        let mut net = Network::with_default_cap(inst.graph(), inst.color_space());
        let forest = build_bfs_forest(&mut net);
        let lin = linial_from_ids(&mut net);
        let out = partial_coloring(
            &mut net,
            &forest,
            &inst,
            &vec![true; n],
            &lin.colors,
            lin.palette,
            PartialConfig {
                resolution,
                extra_accuracy_bits: extra,
            },
        );
        // The paper's Theorem 2.4 seed bound: 2·max(log K, b).
        let log_k = 64 - lin.palette.saturating_sub(1).leading_zeros();
        let paper = 2 * log_k.max(out.accuracy_bits);
        let budget = n as f64 / f64::from(inst.color_bits());
        t.row(vec![
            variant.to_string(),
            out.accuracy_bits.to_string(),
            out.seed_len.to_string(),
            paper.to_string(),
            f(out.colored.len() as f64 / n as f64),
            f(out.trace.max_increase()),
            f(budget),
        ]);
    }
    let b_required = accuracy_bits(inst.graph().max_degree(), inst.color_bits(), 1);
    t.row(vec![
        "required b (ref)".to_string(),
        b_required.to_string(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    t
}

/// E12 — the paper's headline axis: Theorem 1.1 (CONGEST) and Theorem 1.3
/// (CONGESTED CLIQUE) round/bit counts as a function of the bandwidth cap,
/// swept over `cap_bits ∈ {⌈log₂ n⌉, …, 8·⌈log₂ n⌉}`. Below the default
/// two-word cap, word-sized payloads (conditional-expectation shares,
/// routed records) fragment and the round counts grow; total bits stay
/// essentially flat because fragmentation moves the same payload in more,
/// smaller messages.
pub fn e12_bandwidth_sweep() -> Table {
    let mut t = Table::new(
        "E12 (Thms 1.1+1.3): rounds and bits vs bandwidth cap (n=96, Delta=6)",
        &[
            "cap_bits",
            "x_log_n",
            "congest_rounds",
            "congest_msgs",
            "congest_bits",
            "clique_rounds",
            "clique_bits",
            "proper",
        ],
    );
    // ⌈log₂ 96⌉ = 7 — CapSpec::LogN resolves to {7, 14, 28, 56} bits.
    let congest = Runner::new(&CongestScenario::default())
        .graph(GraphSpec::regular(96, 6, 5))
        .caps(CapSpec::log_n_sweep())
        .run();
    let clique = Runner::new(&CliqueScenario::default())
        .graph(GraphSpec::regular(96, 6, 5))
        .caps(CapSpec::log_n_sweep())
        .run();
    for (congest_cell, clique_cell) in congest.cells.iter().zip(&clique.cells) {
        let co = congest_cell.report();
        let cl = clique_cell.report();
        t.row(vec![
            congest_cell.cap_bits.expect("swept cap").to_string(),
            congest_cell.cap.to_string(),
            co.metrics.rounds.to_string(),
            co.metrics.messages.to_string(),
            co.metrics.bits.to_string(),
            cl.metrics.rounds.to_string(),
            cl.metrics.bits.to_string(),
            (co.proper && cl.proper).to_string(),
        ]);
    }
    t
}

/// E13 — Δ-coloring under bandwidth limits (the Halldórsson–Maus regime,
/// `dcl_delta`): rounds/messages/bits of the full pipeline — obstruction
/// detection, Theorem 1.1 phase, Kempe overflow elimination — as a function
/// of the cap, on the same instance as the E12 sweep. One Δ-regular and one
/// expander workload; the latter exercises the chain-flip path.
pub fn e13_delta_coloring() -> Table {
    let mut t = Table::new(
        "E13 (Delta-coloring, HM24): rounds and bits vs bandwidth cap (Delta colors)",
        &[
            "graph",
            "cap_bits",
            "x_log_n",
            "rounds",
            "messages",
            "bits",
            "overflow",
            "kempe_flips",
            "valid",
        ],
    );
    let sweep = Runner::new(&DeltaScenario::default())
        .graphs([GraphSpec::regular(96, 6, 5), GraphSpec::expander(64, 4, 1)])
        .caps(CapSpec::log_n_sweep())
        .run();
    for (spec, cell) in sweep.iter() {
        // Generator graphs are not Brooks obstructions; cell.report()
        // panics with the cell coordinates if one ever were.
        let r = cell.report();
        t.row(vec![
            spec.label.clone(),
            cell.cap_bits.expect("swept cap").to_string(),
            cell.cap.to_string(),
            r.metrics.rounds.to_string(),
            r.metrics.messages.to_string(),
            r.metrics.bits.to_string(),
            extra(r, "overflow_nodes").to_string(),
            extra(r, "kempe_flips").to_string(),
            r.valid().to_string(),
        ]);
    }
    t
}

/// E14 — transport-tier overhead: the identical CONGEST conversation
/// shipped through each transport tier (in-memory reference, channel
/// matrix, real localhost sockets). Model observables — inboxes, rounds,
/// messages, bits — are bit-identical per the determinism contract
/// (`DESIGN.md` §7); what varies is the physical layer the byte tiers
/// meter: frames, payload bytes, wire bytes (headers plus the socket
/// tier's handshakes and end-of-round markers), and MTU-sized packets at
/// the model cap.
pub fn e14_transport_overhead() -> Table {
    use dcl_sim::TransportSpec;

    let mut t = Table::new(
        "E14 (transport tier): byte overhead per tier -- identical model observables",
        &[
            "graph",
            "transport",
            "rounds",
            "messages",
            "model_bits",
            "frames",
            "payload_bytes",
            "wire_bytes",
            "packets",
            "matches_local",
        ],
    );

    /// Per-round inboxes of one scripted conversation.
    type History = Vec<Vec<Vec<(usize, u64)>>>;

    /// Three unicast rounds plus one broadcast over `spec`, returning every
    /// inbox plus the accumulated metrics and byte-level statistics.
    fn conversation(
        g: &Graph,
        spec: dcl_sim::TransportSpec,
    ) -> (
        History,
        dcl_congest::Metrics,
        Option<dcl_sim::TransportStats>,
    ) {
        let exec = dcl_sim::ExecConfig::default().with_transport(spec);
        let mut net = Network::from_exec(g, 100, &exec);
        let mut history = Vec::new();
        for r in 0..3u64 {
            history.push(net.round(|v| {
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| !(v as u64 + u as u64 + r).is_multiple_of(3))
                    .map(|&u| (u, (v as u64 * 131 + u as u64 + r) % 97))
                    .collect::<Vec<_>>()
            }));
        }
        history.push(net.broadcast_round(|v| (v % 4 != 0).then_some(v as u64)));
        (history, net.metrics(), net.transport_stats().copied())
    }

    for (label, g) in [
        ("regular(96,6)", generators::random_regular(96, 6, 5)),
        ("expander(64,4)", generators::expander(64, 4, 1)),
    ] {
        let (ref_history, ref_metrics, ref_stats) = conversation(&g, TransportSpec::Local);
        assert!(ref_stats.is_none(), "the local tier has no byte layer");
        for spec in TransportSpec::all() {
            let (history, metrics, stats) = conversation(&g, spec);
            let matches_local = history == ref_history && metrics == ref_metrics;
            let (frames, payload_bytes, wire_bytes, packets) = match stats {
                Some(s) => (
                    s.frames.to_string(),
                    s.payload_bytes.to_string(),
                    s.wire_bytes.to_string(),
                    s.packets.to_string(),
                ),
                None => {
                    let dash = || "-".to_string();
                    (dash(), dash(), dash(), dash())
                }
            };
            t.row(vec![
                label.to_string(),
                spec.to_string(),
                metrics.rounds.to_string(),
                metrics.messages.to_string(),
                metrics.bits.to_string(),
                frames,
                payload_bytes,
                wire_bytes,
                packets,
                matches_local.to_string(),
            ]);
        }
    }
    t
}

/// E15 — service-tier overhead: every registered scenario shipped through
/// the `dcl_service` request/response protocol over real localhost TCP,
/// against direct `run_protected` calls. The served outcomes are
/// bit-identical to direct execution at every worker count (the
/// `matches_direct` column — the service determinism contract, `DESIGN.md`
/// §10); what the service adds is the byte overhead metered here: request
/// bytes up (graph edge list + knobs, framing included), response bytes
/// down (the full `Report` wire form), per-request averages. Byte totals
/// are exact deterministic counts — both sides' encoders are — so the rows
/// recompute bit-identically like every other committed table.
pub fn e15_service_overhead() -> Table {
    use dcl_service::{
        build_scenario, outcome_matches_direct, scenario_names, Server, ServiceClient,
        ServiceConfig,
    };

    let mut t = Table::new(
        "E15 (service tier): request/response byte overhead -- served results bit-identical to direct runs",
        &[
            "graph",
            "n",
            "m",
            "workers",
            "requests",
            "req_bytes",
            "resp_bytes",
            "req_bytes/req",
            "resp_bytes/req",
            "matches_direct",
        ],
    );
    for (label, g) in [
        ("gnp(48,0.15)", generators::gnp(48, 0.15, 7)),
        ("regular(96,6)", generators::random_regular(96, 6, 5)),
        ("gnp(192,0.05)", generators::gnp(192, 0.05, 7)),
    ] {
        for workers in [1usize, 2, 4] {
            let server = Server::bind(ServiceConfig::default().with_workers(workers))
                .expect("bind loopback");
            let addr = server.local_addr().expect("bound address");
            let mut handle = server.start();
            let mut client = ServiceClient::connect(addr).expect("connect");
            let exec = dcl_sim::ExecConfig::default();
            let ids: Vec<(u64, &str)> = scenario_names()
                .into_iter()
                .map(|name| (client.submit(name, &g, &exec).expect("submit"), name))
                .collect();
            let mut matches_direct = true;
            for (id, name) in ids {
                let served = client.wait(id);
                let scenario = build_scenario(name).expect("registered");
                let direct = dcl_runner::run_protected(scenario.as_ref(), &g, &exec);
                matches_direct &= outcome_matches_direct(&served, &direct);
            }
            // Counters snapshot *before* close, so the goodbye exchange
            // (whose read timing is up to the scheduler) never shifts a row.
            let stats = client.stats();
            client.close().expect("clean drain");
            handle.shutdown();
            let requests = stats.requests;
            t.row(vec![
                label.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                workers.to_string(),
                requests.to_string(),
                stats.bytes_sent.to_string(),
                stats.bytes_received.to_string(),
                (stats.bytes_sent / requests).to_string(),
                (stats.bytes_received / requests).to_string(),
                matches_direct.to_string(),
            ]);
        }
    }
    t
}

/// E11 — Section 5 toolbox: constant-round sort/prefix/set-difference.
pub fn e11_mpc_tools() -> Table {
    use dcl_mpc::machine::Mpc;
    use dcl_mpc::tools;
    let mut t = Table::new(
        "E11 (Section 5): sort / prefix sums / set difference -- rounds at scale",
        &[
            "N",
            "machines",
            "S_words",
            "sort_rounds",
            "prefix_rounds",
            "setdiff_rounds",
        ],
    );
    for (n_items, machines, s) in [(200usize, 4usize, 128usize), (800, 8, 256), (3200, 16, 512)] {
        let items: Vec<u64> = (0..n_items as u64)
            .map(|i| (i * 2_654_435_761) % 100_000)
            .collect();
        let mut mpc = Mpc::new(machines, s);
        let _ = tools::sort(&mut mpc, tools::scatter(machines, &items));
        let sort_rounds = mpc.rounds();

        let mut mpc2 = Mpc::new(machines, s);
        let dist = tools::scatter(machines, &items);
        let _ = tools::prefix_sums(&mut mpc2, &dist, |a, b| a.wrapping_add(*b));
        let prefix_rounds = mpc2.rounds();

        let mut mpc3 = Mpc::new(machines, s);
        let a: Vec<(u64, u64)> = items.iter().map(|&x| (x % 7, x % 500)).collect();
        let b: Vec<(u64, u64)> = items.iter().map(|&x| (x % 7, (x / 3) % 500)).collect();
        let _ = tools::set_difference(
            &mut mpc3,
            &tools::scatter(machines, &a),
            &tools::scatter(machines, &b),
        );
        let setdiff_rounds = mpc3.rounds();

        t.row(vec![
            n_items.to_string(),
            machines.to_string(),
            s.to_string(),
            sort_rounds.to_string(),
            prefix_rounds.to_string(),
            setdiff_rounds.to_string(),
        ]);
    }
    t
}

/// One registered experiment: the id every tool addresses it by (matching
/// the `"id"` field of `BENCH_experiments.json`) and its table function.
pub struct ExperimentDef {
    /// Stable experiment id (`"E1"` … `"E14"`, with `"E4b"`).
    pub id: &'static str,
    /// Runs the experiment and returns its table.
    pub run: fn() -> Table,
}

/// The registry of all experiments, in report order. The `experiments` and
/// `experiments_baseline` bins and `run_all_experiments` all iterate this
/// one list, so registering a new experiment (e.g. for a new scenario) is a
/// single entry here.
pub fn experiment_defs() -> Vec<ExperimentDef> {
    vec![
        ExperimentDef {
            id: "E1",
            run: || e1_randomized_potential(300),
        },
        ExperimentDef {
            id: "E2",
            run: e2_phase_budget,
        },
        ExperimentDef {
            id: "E3",
            run: e3_partial_coloring,
        },
        ExperimentDef {
            id: "E4",
            run: e4_theorem_11,
        },
        ExperimentDef {
            id: "E4b",
            run: e4b_color_space,
        },
        ExperimentDef {
            id: "E5",
            run: e5_decomposition,
        },
        ExperimentDef {
            id: "E6",
            run: e6_clique,
        },
        ExperimentDef {
            id: "E7",
            run: e7_mpc_linear,
        },
        ExperimentDef {
            id: "E8",
            run: e8_mpc_sublinear,
        },
        ExperimentDef {
            id: "E9",
            run: e9_baselines,
        },
        ExperimentDef {
            id: "E10",
            run: e10_ablation,
        },
        ExperimentDef {
            id: "E11",
            run: e11_mpc_tools,
        },
        ExperimentDef {
            id: "E12",
            run: e12_bandwidth_sweep,
        },
        ExperimentDef {
            id: "E13",
            run: e13_delta_coloring,
        },
        ExperimentDef {
            id: "E14",
            run: e14_transport_overhead,
        },
        ExperimentDef {
            id: "E15",
            run: e15_service_overhead,
        },
    ]
}

/// Runs every registered experiment and returns the rendered report.
pub fn run_all_experiments() -> String {
    let mut out = String::new();
    out.push_str("# Experiment report — deterministic distributed coloring reproduction\n\n");
    for def in experiment_defs() {
        out.push_str(&(def.run)().render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_stable_and_match_their_titles() {
        let defs = experiment_defs();
        let ids: Vec<&str> = defs.iter().map(|d| d.id).collect();
        assert_eq!(
            ids,
            vec![
                "E1", "E2", "E3", "E4", "E4b", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12",
                "E13", "E14", "E15"
            ]
        );
        // The baseline JSON derives each id from the table title's leading
        // token; spot-check that the registry agrees on a cheap experiment.
        let e11 = defs.iter().find(|d| d.id == "E11").unwrap();
        let title = (e11.run)().title;
        assert_eq!(title.split_whitespace().next(), Some("E11"));
    }

    #[test]
    fn e1_runs_and_shows_non_increase() {
        let t = e1_randomized_potential(50);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let before: f64 = row[2].parse().unwrap();
            let after: f64 = row[3].parse().unwrap();
            assert!(after <= before * 1.10, "{before} -> {after}");
        }
    }

    #[test]
    fn e12_smaller_caps_cost_more_rounds_never_correctness() {
        let t = e12_bandwidth_sweep();
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert_eq!(row[7], "true", "coloring must stay proper at every cap");
        }
        // Rounds are non-increasing as the cap widens, strictly cheaper from
        // the tightest cap to the widest, in both models.
        let congest: Vec<u64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let clique: Vec<u64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        for w in congest.windows(2) {
            assert!(
                w[0] >= w[1],
                "congest rounds increased with the cap: {congest:?}"
            );
        }
        for w in clique.windows(2) {
            assert!(
                w[0] >= w[1],
                "clique rounds increased with the cap: {clique:?}"
            );
        }
        assert!(
            congest[0] > congest[3],
            "sweep should show a bandwidth cost"
        );
        assert!(clique[0] > clique[3], "sweep should show a bandwidth cost");
    }

    #[test]
    fn e13_delta_coloring_stays_valid_and_monotone_in_the_cap() {
        let t = e13_delta_coloring();
        assert_eq!(t.rows.len(), 8, "two graphs x four caps");
        for row in &t.rows {
            assert_eq!(row[8], "true", "Δ-coloring must stay valid at every cap");
        }
        for graph_rows in t.rows.chunks(4) {
            let rounds: Vec<u64> = graph_rows.iter().map(|r| r[3].parse().unwrap()).collect();
            for w in rounds.windows(2) {
                assert!(w[0] >= w[1], "rounds increased with the cap: {rounds:?}");
            }
            assert!(
                rounds[0] > rounds[3],
                "sweep should show a bandwidth cost: {rounds:?}"
            );
        }
    }

    #[test]
    fn e11_rounds_do_not_grow_with_n() {
        let t = e11_mpc_tools();
        let first: u64 = t.rows[0][3].parse().unwrap();
        let last: u64 = t.rows[t.rows.len() - 1][3].parse().unwrap();
        assert!(last <= 4 * first, "sort rounds grew: {first} -> {last}");
    }
}

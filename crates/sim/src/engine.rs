//! The backend-aware round engine shared by every simulator.
//!
//! One generic fan-out owns everything the three models used to duplicate:
//! evaluating the per-node `sender` closures (inline or on the
//! [`dcl_par::Pool`]), per-worker scratch for the stamp-mark duplicate-send
//! check, per-worker [`SimMetrics`] accumulators reduced in chunk order,
//! deterministic panic propagation (via the pool's lowest-index rule), and
//! the sender-order merge into per-recipient inboxes. A simulator is the
//! engine plus a [`Topology`] policy plus whatever cost
//! events its model charges — ~100 lines of policy instead of a hand-rolled
//! runtime.

use crate::cap::BandwidthCap;
use crate::metrics::SimMetrics;
use crate::topology::{validate_sends, NeighborTopology, Topology};
use crate::transport::{Frame, RoundLimits, Transport, TransportSpec, TransportStats};
use crate::wire::Wire;
use dcl_par::{Backend, Pool};

/// Per-endpoint inboxes produced by a communication round: `inboxes[v]`
/// holds `(sender, payload)` pairs in sender order.
pub type Inboxes<M> = Vec<Vec<(usize, M)>>;

/// How a round treats payloads wider than the bandwidth cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPolicy {
    /// Oversized payloads are model violations and panic. The round costs
    /// exactly one round. This is the contract of the raw `round()` APIs.
    Strict,
    /// Oversized payloads fragment into `⌈bits / cap⌉` physical messages and
    /// the round stretches to the largest fragment count among its messages
    /// (the synchronous schedule: every link finishes before the next
    /// logical round starts). At a cap that fits every payload this is
    /// exactly [`SendPolicy::Strict`] — same costs, bit for bit — which is
    /// what lets algorithm drivers run unchanged under swept caps.
    Fragment,
}

/// Backend-aware round executor: a [`Backend`] knob plus the worker pool it
/// implies, and a [`TransportSpec`] knob selecting which transport tier
/// carries each round's messages (in-memory reference, channel matrix, or
/// localhost sockets — results are bit-identical across tiers).
#[derive(Debug)]
pub struct RoundEngine {
    backend: Backend,
    /// Worker pool, present only when `backend` is effectively parallel.
    pool: Option<Pool>,
    transport_spec: TransportSpec,
    /// The built transport, created lazily on the first shipped round
    /// (so [`TransportSpec::Local`]'s zero-copy fast path never pays for
    /// socket setup).
    transport: Option<Box<dyn Transport>>,
}

impl RoundEngine {
    /// An engine with the given round-execution backend (on the
    /// [`TransportSpec::Local`] reference transport).
    #[must_use]
    pub fn new(backend: Backend) -> Self {
        let mut engine = RoundEngine {
            backend: Backend::Sequential,
            pool: None,
            transport_spec: TransportSpec::default(),
            transport: None,
        };
        engine.set_backend(backend);
        engine
    }

    /// Switches the round-execution backend. Results (inboxes, metrics,
    /// panics) are bit-identical across backends; only wall-clock changes.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        self.pool = backend.is_parallel().then(|| Pool::new(backend.threads()));
    }

    /// The active round-execution backend.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Switches the transport tier. Results (inboxes, metrics, intentional
    /// panics) are bit-identical across tiers; only the physical layer —
    /// and the [`TransportStats`] it meters — changes. Any previously built
    /// transport is dropped (closing its sockets).
    pub fn set_transport(&mut self, spec: TransportSpec) {
        self.transport_spec = spec;
        self.transport = None;
    }

    /// The active transport tier.
    #[must_use]
    pub fn transport_spec(&self) -> TransportSpec {
        self.transport_spec
    }

    /// Physical-layer counters of the built transport. `None` until a round
    /// has shipped (and always `None` on [`TransportSpec::Local`], whose
    /// fast path bypasses the transport object entirely).
    #[must_use]
    pub fn transport_stats(&self) -> Option<&TransportStats> {
        self.transport.as_deref().map(Transport::stats)
    }

    /// Fault injection for tests: tears down endpoint `v` on the built
    /// transport (building it first if need be), so subsequent rounds
    /// touching `v` raise a typed
    /// [`TransportError`](crate::transport::TransportError). `n` is the
    /// endpoint count used if the transport must be built.
    pub fn close_transport_endpoint(&mut self, n: usize, v: usize) {
        self.ensure_transport(n);
        if let Some(transport) = self.transport.as_deref_mut() {
            transport.close_endpoint(v);
        }
    }

    /// Builds (or rebuilds, on an endpoint-count mismatch) the transport
    /// for `n` endpoints. No-op on [`TransportSpec::Local`].
    fn ensure_transport(&mut self, n: usize) {
        if self.transport_spec == TransportSpec::Local {
            return;
        }
        let stale = self
            .transport
            .as_deref()
            .is_none_or(|transport| transport.len() != n);
        if stale {
            self.transport = Some(self.transport_spec.build(n));
        }
    }

    /// Ships one round of already-validated outgoing messages over the
    /// active transport and returns the per-recipient inboxes. On
    /// [`TransportSpec::Local`] this is the zero-copy sender-order
    /// [`deliver`] merge; on the byte tiers every payload crosses the
    /// `Wire` codec inside a length-prefixed frame and the transport's
    /// sorted-by-sender/per-link-FIFO delivery reproduces the same order
    /// bit for bit.
    ///
    /// Transport failures (broken peer, protocol violation, undecodable
    /// payload) raise the typed
    /// [`TransportError`](crate::transport::TransportError) via
    /// `std::panic::panic_any`, which `dcl_runner::run_protected` re-catches
    /// losslessly as `RunError::Transport` — the round APIs themselves stay
    /// infallible.
    pub fn ship<M>(
        &mut self,
        n: usize,
        model: &'static str,
        cap: Option<BandwidthCap>,
        policy: SendPolicy,
        outgoing: Vec<Vec<(usize, M)>>,
    ) -> Inboxes<M>
    where
        M: Wire,
    {
        if self.transport_spec == TransportSpec::Local {
            return deliver(n, outgoing);
        }
        self.ensure_transport(n);
        let transport = self
            .transport
            .as_deref_mut()
            .expect("ensure_transport builds non-local transports");
        transport.begin_round(&RoundLimits { cap, policy, model });
        for (u, msgs) in outgoing.into_iter().enumerate() {
            for (v, msg) in msgs {
                let mut payload = Vec::new();
                msg.wire_encode(&mut payload);
                let frame = Frame {
                    declared_bits: msg.wire_bits(),
                    payload,
                };
                if let Err(e) = transport.send(u, v, frame) {
                    std::panic::panic_any(e);
                }
            }
        }
        let frames = match transport.finish_round() {
            Ok(frames) => frames,
            Err(e) => std::panic::panic_any(e),
        };
        frames
            .into_iter()
            .map(|inbox| {
                inbox
                    .into_iter()
                    .map(|(from, frame)| {
                        let mut buf = frame.payload.as_slice();
                        let msg = M::wire_decode(&mut buf).unwrap_or_else(|| {
                            std::panic::panic_any(crate::transport::TransportError::Protocol {
                                detail: format!(
                                    "undecodable {}-bit payload from endpoint {from}",
                                    frame.declared_bits
                                ),
                            })
                        });
                        if !buf.is_empty() {
                            std::panic::panic_any(crate::transport::TransportError::Protocol {
                                detail: format!(
                                    "{} trailing payload bytes from endpoint {from}",
                                    buf.len()
                                ),
                            });
                        }
                        (from, msg)
                    })
                    .collect()
            })
            .collect()
    }

    /// The worker pool of a parallel backend (`None` under
    /// [`Backend::Sequential`]). Algorithm drivers may use it to parallelize
    /// *local* per-node computation between rounds — work that in the real
    /// distributed system every node performs simultaneously for free, and
    /// that therefore should scale with the same knob as the round execution
    /// itself.
    #[must_use]
    pub fn pool(&self) -> Option<&Pool> {
        self.pool.as_ref()
    }

    /// Evaluates `produce(i)` for every `i in 0..n` — on the pool when the
    /// backend is parallel, inline otherwise — running `validate` over each
    /// item with per-worker mark scratch and a per-worker [`SimMetrics`]
    /// accumulator. Accumulators are reduced into `metrics` in chunk order;
    /// items come back in index order. Returns the items and the maximum
    /// value `validate` returned (used as the fragment-stretched round cost;
    /// 1 when `n == 0`).
    ///
    /// This is the single pool fan-out under all three simulators; panics
    /// inside `produce`/`validate` propagate deterministically (the pool
    /// re-raises the lowest-indexed panicking job).
    pub fn fan_out<T, F, V>(
        &self,
        n: usize,
        marks_len: usize,
        metrics: &mut SimMetrics,
        produce: F,
        validate: V,
    ) -> (Vec<T>, u32)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        V: Fn(usize, &T, &mut [usize], &mut SimMetrics) -> u32 + Sync,
    {
        let mut round_cost = 1u32;
        let items = match &self.pool {
            Some(pool) => {
                let chunks = pool.map_chunks(n, |range| {
                    let mut local = SimMetrics::default();
                    let mut marks = vec![usize::MAX; marks_len];
                    let mut max_cost = 1u32;
                    let mut out = Vec::with_capacity(range.len());
                    for u in range {
                        let item = produce(u);
                        max_cost = max_cost.max(validate(u, &item, &mut marks, &mut local));
                        out.push(item);
                    }
                    (out, local, max_cost)
                });
                let mut items = Vec::with_capacity(n);
                for (out, local, max_cost) in chunks {
                    metrics.absorb(local);
                    round_cost = round_cost.max(max_cost);
                    items.extend(out);
                }
                items
            }
            None => {
                let mut local = SimMetrics::default();
                let mut marks = vec![usize::MAX; marks_len];
                let mut out = Vec::with_capacity(n);
                for u in 0..n {
                    let item = produce(u);
                    round_cost = round_cost.max(validate(u, &item, &mut marks, &mut local));
                    out.push(item);
                }
                metrics.absorb(local);
                out
            }
        };
        (items, round_cost)
    }

    /// Runs one synchronous unicast round over `topo`: `sender(u)` returns
    /// the messages endpoint `u` sends as `(recipient, payload)` pairs.
    /// Validation (addressing, duplicate sends, cap) and cost accounting
    /// happen in per-worker accumulators reduced in chunk order; messages
    /// merge into the inboxes in sender order — bit-identical across
    /// backends.
    ///
    /// # Panics
    ///
    /// Panics if a message violates `topo`'s addressing, if an endpoint
    /// sends twice to the same recipient in one round (when `topo` enables
    /// the duplicate check), or — under [`SendPolicy::Strict`] — if a
    /// payload exceeds `cap`. After a panic the metrics are unspecified.
    pub fn message_round<M, T, F>(
        &mut self,
        topo: &T,
        cap: BandwidthCap,
        policy: SendPolicy,
        metrics: &mut SimMetrics,
        sender: F,
    ) -> Inboxes<M>
    where
        M: Wire + Send,
        T: Topology,
        F: Fn(usize) -> Vec<(usize, M)> + Sync,
    {
        let n = topo.len();
        let (outgoing, round_cost) = self.fan_out(
            n,
            topo.marks_len(),
            metrics,
            &sender,
            |u, msgs: &Vec<(usize, M)>, marks, local| {
                validate_sends(topo, cap, policy, u, msgs, marks, local)
            },
        );
        metrics.rounds += u64::from(round_cost);
        self.ship(n, topo.model(), Some(cap), policy, outgoing)
    }

    /// Runs one broadcast round over a [`NeighborTopology`]: every node
    /// sends the *same* payload to all of its neighbors (or stays silent
    /// with `None`). Nodes without neighbors are not charged (and, under
    /// [`SendPolicy::Strict`], not cap-checked), matching per-delivery
    /// accounting.
    ///
    /// # Panics
    ///
    /// Under [`SendPolicy::Strict`], panics if a payload exceeds `cap`.
    pub fn broadcast_round<M, F>(
        &mut self,
        topo: &NeighborTopology<'_>,
        cap: BandwidthCap,
        policy: SendPolicy,
        metrics: &mut SimMetrics,
        f: F,
    ) -> Inboxes<M>
    where
        M: Wire + Clone + Send,
        F: Fn(usize) -> Option<M> + Sync,
    {
        let n = topo.len();
        let graph = topo.graph();
        let (payloads, round_cost) = self.fan_out(
            n,
            0,
            metrics,
            &f,
            |u, payload: &Option<M>, _marks, local| {
                let Some(msg) = payload else { return 1 };
                let deg = graph.degree(u) as u64;
                if deg == 0 {
                    return 1;
                }
                let bits = msg.wire_bits();
                match policy {
                    SendPolicy::Strict => {
                        assert!(
                            cap.fits(bits),
                            "message of {bits} bits exceeds {} cap of {} bits",
                            topo.model(),
                            cap.bits()
                        );
                        local.messages += deg;
                        local.bits += deg * u64::from(bits);
                        local.max_message_bits = local.max_message_bits.max(bits);
                        1
                    }
                    SendPolicy::Fragment => {
                        let fragments = cap.fragments(bits);
                        local.messages += deg * u64::from(fragments);
                        local.bits += deg * u64::from(bits);
                        local.max_message_bits = local.max_message_bits.max(bits.min(cap.bits()));
                        fragments
                    }
                }
            },
        );
        metrics.rounds += u64::from(round_cost);
        // Expanding the broadcast into per-neighbor unicasts (in neighbor
        // order) reproduces the direct inbox build exactly, so the same
        // ship path serves every transport tier.
        let outgoing: Vec<Vec<(usize, M)>> = payloads
            .into_iter()
            .enumerate()
            .map(|(u, payload)| match payload {
                Some(msg) => graph
                    .neighbors(u)
                    .iter()
                    .map(|&v| (v, msg.clone()))
                    .collect(),
                None => Vec::new(),
            })
            .collect();
        self.ship(n, topo.model(), Some(cap), policy, outgoing)
    }
}

/// Merges per-sender outgoing message lists into per-recipient inboxes, in
/// sender order (the order the sequential loop uses).
pub fn deliver<M>(n: usize, outgoing: Vec<Vec<(usize, M)>>) -> Inboxes<M> {
    let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
    for (u, msgs) in outgoing.into_iter().enumerate() {
        for (v, msg) in msgs {
            inboxes[v].push((u, msg));
        }
    }
    inboxes
}

/// Evaluates `f(i)` for every `i in 0..jobs` across the pool — one job per
/// index, unlike [`Pool::map_chunks`]'s 64-item chunking, so it parallelizes
/// small batches of *expensive* jobs (e.g. the `2^λ` candidate evaluations
/// of a seed segment) — and returns the results in index order.
pub fn par_map_jobs<R, F>(pool: &Pool, jobs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let slots: Vec<std::sync::Mutex<Option<R>>> =
        (0..jobs).map(|_| std::sync::Mutex::new(None)).collect();
    pool.run(jobs, &|i| {
        *slots[i].lock().unwrap() = Some(f(i));
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("run() returns only after every job completed")
        })
        .collect()
}

/// Evaluates `f(i)` for every `i in 0..n` — chunked across `pool` when one
/// is given, inline otherwise — and returns the results in index order.
/// This is the backend dispatch for drivers' *local* per-node computation
/// (e.g. assembling routing records): results are position-for-position
/// identical to the sequential loop, so flattening them preserves the
/// sequential emission order.
pub fn map_indexed<R, F>(pool: Option<&Pool>, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match pool {
        Some(pool) => pool
            .map_chunks(n, |range| range.map(&f).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect(),
        None => (0..n).map(f).collect(),
    }
}

/// Deterministic parallel argmin: evaluates `score(i)` for `i in 0..count`
/// (on `pool` when given, inline otherwise) and returns `(best_score,
/// best_index)` under strict `<` — the lowest index wins ties, exactly like
/// the sequential loop `for i { if score < best }`. Each score is computed
/// by a single worker with the same float-operation order as the sequential
/// evaluation, and the reduction scans indices in order, so the winner is
/// bit-identical across backends.
///
/// Returns `(f64::INFINITY, 0)` when `count == 0`.
///
/// The reduction itself is `dcl_kernels::argmin::argmin_f64` — an
/// arch-dispatched kernel whose every tier is proven equal to the
/// first-minimum scan (see the contract tests in `tests/argmin_contract.rs`
/// and in `dcl_kernels`), so the winner is also identical across
/// `DCL_KERNEL_TIER` settings.
pub fn argmin_f64<F>(pool: Option<&Pool>, count: usize, score: F) -> (f64, usize)
where
    F: Fn(usize) -> f64 + Sync,
{
    let scores = match pool {
        Some(pool) if count > 1 => par_map_jobs(pool, count, &score),
        _ => (0..count).map(score).collect(),
    };
    dcl_kernels::argmin::argmin_f64(&scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::AllPairsTopology;
    use dcl_graphs::generators;

    #[test]
    fn message_round_delivers_and_meters() {
        let topo = AllPairsTopology::new(3);
        let mut engine = RoundEngine::new(Backend::Sequential);
        let mut metrics = SimMetrics::default();
        let inboxes = engine.message_round(
            &topo,
            BandwidthCap::two_words(),
            SendPolicy::Strict,
            &mut metrics,
            |v| match v {
                0 => vec![(1, 10u32), (2, 20u32)],
                1 => vec![(2, 30u32)],
                _ => vec![],
            },
        );
        assert_eq!(inboxes[1], vec![(0, 10)]);
        assert_eq!(inboxes[2], vec![(0, 20), (1, 30)]);
        assert_eq!(metrics.rounds, 1);
        assert_eq!(metrics.messages, 3);
    }

    #[test]
    fn parallel_fan_out_is_bit_identical() {
        let topo = AllPairsTopology::new(90);
        let sender = |v: usize| -> Vec<(usize, u64)> {
            (0..90usize)
                .filter(|&u| u != v && (u + v).is_multiple_of(3))
                .map(|u| (u, (v * 100 + u) as u64))
                .collect()
        };
        let mut seq_engine = RoundEngine::new(Backend::Sequential);
        let mut par_engine = RoundEngine::new(Backend::Parallel(4));
        let cap = BandwidthCap::two_words();
        let mut seq = SimMetrics::default();
        let mut par = SimMetrics::default();
        for _ in 0..3 {
            let a = seq_engine.message_round(&topo, cap, SendPolicy::Strict, &mut seq, sender);
            let b = par_engine.message_round(&topo, cap, SendPolicy::Strict, &mut par, sender);
            assert_eq!(a, b);
        }
        assert_eq!(seq, par);
    }

    #[test]
    fn fragmented_round_stretches_to_widest_message() {
        let g = generators::path(3);
        let topo = NeighborTopology::new(&g);
        let mut engine = RoundEngine::new(Backend::Sequential);
        let cap = BandwidthCap::new(7);
        let mut metrics = SimMetrics::default();
        // Node 0 sends a 20-bit payload (3 fragments at 7 bits).
        let inboxes = engine.message_round(&topo, cap, SendPolicy::Fragment, &mut metrics, |v| {
            if v == 0 {
                vec![(1usize, 0xF_FFFFu32)]
            } else {
                vec![]
            }
        });
        assert_eq!(inboxes[1], vec![(0, 0xF_FFFF)]);
        assert_eq!(metrics.rounds, 3, "20 bits at cap 7 = 3 sub-rounds");
        assert_eq!(metrics.messages, 3);
        assert_eq!(metrics.bits, 20);
        assert_eq!(metrics.max_message_bits, 7);
    }

    #[test]
    fn fragment_policy_matches_strict_when_everything_fits() {
        let g = generators::gnp(40, 0.2, 3);
        let cap = BandwidthCap::default_for(40, 41);
        let sender = |v: usize| -> Vec<(usize, u64)> {
            g.neighbors(v)
                .iter()
                .map(|&u| (u, (v + u) as u64))
                .collect()
        };
        let mut engine = RoundEngine::new(Backend::Sequential);
        let topo = NeighborTopology::new(&g);
        let mut strict = SimMetrics::default();
        let mut frag = SimMetrics::default();
        let a = engine.message_round(&topo, cap, SendPolicy::Strict, &mut strict, sender);
        let b = engine.message_round(&topo, cap, SendPolicy::Fragment, &mut frag, sender);
        assert_eq!(a, b);
        assert_eq!(strict, frag);
        let a = engine.broadcast_round(&topo, cap, SendPolicy::Strict, &mut strict, |v| {
            (v % 2 == 0).then_some(v as u32)
        });
        let b = engine.broadcast_round(&topo, cap, SendPolicy::Fragment, &mut frag, |v| {
            (v % 2 == 0).then_some(v as u32)
        });
        assert_eq!(a, b);
        assert_eq!(strict, frag);
    }

    #[test]
    fn empty_round_still_costs_one_round() {
        let topo = AllPairsTopology::new(0);
        let mut engine = RoundEngine::new(Backend::Sequential);
        let mut metrics = SimMetrics::default();
        let inboxes: Inboxes<u32> = engine.message_round(
            &topo,
            BandwidthCap::two_words(),
            SendPolicy::Strict,
            &mut metrics,
            |_| vec![],
        );
        assert!(inboxes.is_empty());
        assert_eq!(metrics.rounds, 1);
    }

    #[test]
    fn argmin_is_identical_across_backends_and_breaks_ties_low() {
        let scores = [3.0f64, 1.0, 1.0, 2.0, 1.0];
        let seq = argmin_f64(None, scores.len(), |i| scores[i]);
        let pool = Pool::new(4);
        let par = argmin_f64(Some(&pool), scores.len(), |i| scores[i]);
        assert_eq!(seq, (1.0, 1));
        assert_eq!(seq, par);
        assert_eq!(argmin_f64(None, 0, |_| 0.0), (f64::INFINITY, 0));
    }

    #[test]
    fn par_map_jobs_returns_in_index_order() {
        let pool = Pool::new(3);
        let out = par_map_jobs(&pool, 10, |i| i * i);
        assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_indexed_matches_sequential_order_with_and_without_pool() {
        let f = |i: usize| vec![i, i + 100];
        let seq = map_indexed(None, 200, f);
        let pool = Pool::new(4);
        let par = map_indexed(Some(&pool), 200, f);
        assert_eq!(seq, par);
        assert_eq!(seq[7], vec![7, 107]);
    }
}

//! Shared simulator runtime under the CONGEST, CONGESTED CLIQUE and MPC
//! simulators.
//!
//! The paper's subject is what deterministic coloring costs *as a function
//! of bandwidth*, so the bandwidth machinery lives here once instead of
//! three times (`DESIGN.md` §2.2a):
//!
//! - [`wire`] — the [`Wire`] message-size accounting every payload
//!   implements;
//! - [`cap`] — [`BandwidthCap`]: the per-message bit cap with the paper's
//!   default formula and the fragmentation rule for swept (small) caps;
//! - [`metrics`] — [`SimMetrics`]: rounds / messages / bits /
//!   max-message-width counters with the chunk-ordered parallel reduction;
//! - [`topology`] — the [`Topology`] policy trait (neighbor-only delivery
//!   vs. all-pairs unicast vs. machine-addressed) with the
//!   sorted-adjacency/stamp-mark duplicate-send validation;
//! - [`engine`] — the [`RoundEngine`]: one generic backend-aware fan-out
//!   owning pool execution, per-worker validation/accounting, deterministic
//!   panic propagation and the sender-order inbox merge, plus the
//!   deterministic [`argmin_f64`] used by the drivers' central loops;
//! - [`deadline`] — [`Deadline`]/[`deadline::park_tick`]: the workspace's
//!   single audited wall-clock site, shared by every socket liveness
//!   timeout (the TCP transport and the `dcl_service` server/client);
//! - [`transport`] — the pluggable [`Transport`] tier under the engine:
//!   in-memory reference, `mpsc` channel matrix, and localhost TCP sockets
//!   shipping length-prefixed [`Wire`]-encoded frames, proven bit-identical
//!   by the cross-transport determinism suites (`DESIGN.md` §7);
//! - [`exec`] — [`ExecConfig`]: the `{backend, cap, transport}` knob every
//!   driver config embeds.
//!
//! Each model crate (`dcl_congest`, `dcl_clique`, `dcl_mpc`) is a thin
//! policy on top: a [`Topology`], the model's default cap, and its charged
//! cost events.
//!
//! # Examples
//!
//! ```
//! use dcl_par::Backend;
//! use dcl_sim::{AllPairsTopology, BandwidthCap, RoundEngine, SendPolicy, SimMetrics};
//!
//! // Three endpoints, all-pairs unicast, two-word cap.
//! let topo = AllPairsTopology::new(3);
//! let mut engine = RoundEngine::new(Backend::Sequential);
//! let mut metrics = SimMetrics::default();
//! let inboxes = engine.message_round(
//!     &topo,
//!     BandwidthCap::two_words(),
//!     SendPolicy::Strict,
//!     &mut metrics,
//!     |v| if v == 0 { vec![(2usize, 7u32)] } else { vec![] },
//! );
//! assert_eq!(inboxes[2], vec![(0, 7u32)]);
//! assert_eq!(metrics.rounds, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cap;
pub mod deadline;
pub mod engine;
pub mod exec;
pub mod metrics;
pub mod topology;
pub mod transport;
pub mod wire;

#[cfg(feature = "test-util")]
pub mod test_util;

pub use cap::BandwidthCap;
pub use dcl_par::{Backend, Pool};
pub use deadline::Deadline;
pub use engine::{
    argmin_f64, deliver, map_indexed, par_map_jobs, Inboxes, RoundEngine, SendPolicy,
};
pub use exec::ExecConfig;
pub use metrics::SimMetrics;
pub use topology::{AllPairsTopology, MachineTopology, NeighborTopology, Topology};
pub use transport::{
    ChannelTransport, Frame, FrameReader, LocalTransport, RoundLimits, TcpTransport, Transport,
    TransportError, TransportSpec, TransportStats,
};
pub use wire::{bit_len, Wire};

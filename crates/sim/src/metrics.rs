//! Unified cost counters for every simulated model.

use crate::cap::BandwidthCap;
use crate::wire::Wire;

/// Cost counters accumulated by a simulator.
///
/// All three models meter the same quantities; only the *unit* of `bits`
/// differs (literal bits in CONGEST and the clique; machine words in MPC,
/// where `dcl_mpc` converts on read-out). Counters combine with `+` and
/// `max`, which are associative and commutative, so the per-worker
/// accumulators of a parallel round reduce in chunk order to exactly the
/// sequential totals (the determinism contract of `DESIGN.md` §5.1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Number of synchronous rounds elapsed.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of bits delivered (words in MPC).
    pub bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: u32,
}

impl SimMetrics {
    /// Folds another counter into this one (sums plus max). Used to reduce
    /// the per-worker accumulators of a parallel round in chunk order; since
    /// `+` and `max` are commutative and associative, the reduction is
    /// bit-identical to sequential accounting.
    pub fn absorb(&mut self, other: SimMetrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }

    /// Accounts one message of `bits` bits under the model's cap.
    ///
    /// # Panics
    ///
    /// Panics if `bits` exceeds the cap; `model` names the model in the
    /// message ("CONGEST", "clique", …).
    pub fn account(&mut self, cap: BandwidthCap, bits: u32, model: &str) {
        assert!(
            cap.fits(bits),
            "message of {bits} bits exceeds {model} cap of {} bits",
            cap.bits()
        );
        self.messages += 1;
        self.bits += u64::from(bits);
        self.max_message_bits = self.max_message_bits.max(bits);
    }

    /// Accounts one logical payload of `bits` bits, fragmenting it into
    /// `⌈bits / cap⌉` physical messages if it exceeds the cap. Returns the
    /// fragment count (the number of sub-rounds the payload occupies on its
    /// link). For payloads that fit the cap this is exactly [`account`].
    ///
    /// [`account`]: SimMetrics::account
    pub fn account_fragmented(&mut self, cap: BandwidthCap, bits: u32) -> u32 {
        self.account_fragmented_many(cap, 1, bits)
    }

    /// Bulk form of [`account_fragmented`]: accounts `count` logical
    /// payloads of `bits_each` bits in `O(1)` (charged collectives call
    /// this with edge counts in the hundreds of thousands per seed bit).
    /// Returns the per-payload fragment count; both forms share this one
    /// implementation, so stepped and charged metering cannot drift apart.
    ///
    /// [`account_fragmented`]: SimMetrics::account_fragmented
    pub fn account_fragmented_many(
        &mut self,
        cap: BandwidthCap,
        count: u64,
        bits_each: u32,
    ) -> u32 {
        let fragments = cap.fragments(bits_each);
        self.messages += count * u64::from(fragments);
        self.bits += count * u64::from(bits_each);
        if count > 0 {
            self.max_message_bits = self.max_message_bits.max(bits_each.min(cap.bits()));
        }
        fragments
    }
}

/// Metrics cross the wire as their four counters in declaration order, so a
/// served `Report` carries the same rounds/messages/bits accounting a local
/// run would produce (`dcl_service` relies on this for its bit-identical
/// service-vs-direct pins).
impl Wire for SimMetrics {
    fn wire_bits(&self) -> u32 {
        self.rounds.wire_bits()
            + self.messages.wire_bits()
            + self.bits.wire_bits()
            + self.max_message_bits.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.rounds.wire_encode(out);
        self.messages.wire_encode(out);
        self.bits.wire_encode(out);
        self.max_message_bits.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some(SimMetrics {
            rounds: u64::wire_decode(buf)?,
            messages: u64::wire_decode(buf)?,
            bits: u64::wire_decode(buf)?,
            max_message_bits: u32::wire_decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_wire_impl_roundtrips() {
        let m = SimMetrics {
            rounds: 7,
            messages: 1 << 40,
            bits: u64::MAX,
            max_message_bits: 4096,
        };
        let mut bytes = Vec::new();
        m.wire_encode(&mut bytes);
        let mut view = bytes.as_slice();
        assert_eq!(SimMetrics::wire_decode(&mut view), Some(m));
        assert!(view.is_empty());
        // Truncation surfaces as a typed decode failure, not a panic.
        assert_eq!(
            SimMetrics::wire_decode(&mut &bytes[..bytes.len() - 1]),
            None
        );
    }

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = SimMetrics {
            rounds: 1,
            messages: 2,
            bits: 30,
            max_message_bits: 12,
        };
        a.absorb(SimMetrics {
            rounds: 3,
            messages: 4,
            bits: 5,
            max_message_bits: 9,
        });
        assert_eq!(a.rounds, 4);
        assert_eq!(a.messages, 6);
        assert_eq!(a.bits, 35);
        assert_eq!(a.max_message_bits, 12);
    }

    #[test]
    fn account_meters_and_enforces() {
        let cap = BandwidthCap::new(16);
        let mut m = SimMetrics::default();
        m.account(cap, 10, "test");
        m.account(cap, 16, "test");
        assert_eq!(m.messages, 2);
        assert_eq!(m.bits, 26);
        assert_eq!(m.max_message_bits, 16);
    }

    #[test]
    #[should_panic(expected = "exceeds demo cap")]
    fn account_panics_over_cap() {
        let mut m = SimMetrics::default();
        m.account(BandwidthCap::new(4), 5, "demo");
    }

    #[test]
    fn fragmented_accounting_matches_plain_when_fitting() {
        let cap = BandwidthCap::new(64);
        let mut plain = SimMetrics::default();
        let mut frag = SimMetrics::default();
        plain.account(cap, 40, "x");
        assert_eq!(frag.account_fragmented(cap, 40), 1);
        assert_eq!(plain, frag);
    }

    #[test]
    fn fragmented_accounting_splits_oversized_payloads() {
        let cap = BandwidthCap::new(7);
        let mut m = SimMetrics::default();
        assert_eq!(m.account_fragmented(cap, 17), 3);
        assert_eq!(m.messages, 3);
        assert_eq!(m.bits, 17);
        assert_eq!(m.max_message_bits, 7);
    }

    #[test]
    fn bulk_fragmented_accounting_equals_repeated_single_payloads() {
        let cap = BandwidthCap::new(7);
        let mut bulk = SimMetrics::default();
        let mut single = SimMetrics::default();
        assert_eq!(bulk.account_fragmented_many(cap, 5, 17), 3);
        for _ in 0..5 {
            single.account_fragmented(cap, 17);
        }
        assert_eq!(bulk, single);
        // A zero-count charge leaves everything untouched.
        let before = bulk;
        bulk.account_fragmented_many(cap, 0, 1000);
        assert_eq!(bulk, before);
    }
}

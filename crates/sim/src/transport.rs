//! The pluggable transport tier under [`RoundEngine`](crate::RoundEngine).
//!
//! A [`Transport`] moves length-prefixed [`Frame`]s between the `n`
//! endpoints of one simulated network, one round at a time. Three tiers
//! implement the contract (`DESIGN.md` §7):
//!
//! - [`LocalTransport`] — in-memory per-recipient frame queues, the
//!   reference tier (the engine additionally short-circuits the
//!   [`TransportSpec::Local`] spec to its zero-copy inbox merge, so real
//!   Local runs never serialize at all);
//! - [`ChannelTransport`] — a mock multiparty channel matrix of
//!   `std::sync::mpsc` duplex pairs, one per ordered endpoint pair, with
//!   every frame crossing the byte codec;
//! - [`TcpTransport`] — real localhost sockets with length-prefixed
//!   framing, lazy dialing, and end-of-round markers.
//!
//! The determinism contract across tiers: after a round of `send` calls in
//! sender order, [`Transport::finish_round`] returns per-recipient frame
//! lists *sorted by sender with per-link FIFO order* — exactly the order of
//! the engine's sequential inbox merge — and under
//! [`SendPolicy::Strict`] every tier enforces the [`BandwidthCap`] on the
//! frame's *declared model bits* with the simulated tier's exact assertion
//! wording, so an oversend classifies as the same typed budget error no
//! matter which tier caught it. Actual bytes on the wire are *metered* (in
//! [`TransportStats`]) rather than gated: any self-delimiting codec pays
//! `O(1)` bits of overhead per value over the information-theoretic widths
//! the cost model charges, so gating physical bytes would panic where the
//! simulated tier does not and break the oracle.

use crate::cap::BandwidthCap;
use crate::deadline::{park_tick, Deadline};
use crate::engine::SendPolicy;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::time::Duration;

/// Which transport tier a round engine ships frames over.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum TransportSpec {
    /// In-memory inboxes — the reference tier and the default.
    #[default]
    Local,
    /// An in-process matrix of `std::sync::mpsc` channels, one duplex pair
    /// per ordered endpoint pair; frames cross the byte codec.
    Channel,
    /// Real localhost TCP sockets with length-prefixed framing.
    Tcp,
}

impl TransportSpec {
    /// Stable lower-case name ("local" / "channel" / "tcp") used in sweep
    /// tables and CI artifacts.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TransportSpec::Local => "local",
            TransportSpec::Channel => "channel",
            TransportSpec::Tcp => "tcp",
        }
    }

    /// All three tiers, Local first (the reference).
    #[must_use]
    pub fn all() -> [TransportSpec; 3] {
        [
            TransportSpec::Local,
            TransportSpec::Channel,
            TransportSpec::Tcp,
        ]
    }

    /// Builds the transport for an `n`-endpoint network.
    ///
    /// # Panics
    ///
    /// Panics if a [`TransportSpec::Tcp`] transport cannot bind its
    /// localhost listeners.
    #[must_use]
    pub fn build(self, n: usize) -> Box<dyn Transport> {
        match self {
            TransportSpec::Local => Box::new(LocalTransport::new(n)),
            TransportSpec::Channel => Box::new(ChannelTransport::new(n)),
            TransportSpec::Tcp => Box::new(TcpTransport::new(n)),
        }
    }
}

impl std::fmt::Display for TransportSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed transport failure. Raised out of the engine's infallible round
/// APIs via `std::panic::panic_any` and re-caught losslessly by
/// `dcl_runner::run_protected` as `RunError::Transport`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A peer is gone: dialing failed, a stream broke mid-round, or a read
    /// deadline expired. When the far peer's identity is unknown (an accept
    /// that never arrived), `from` and `to` both name the local endpoint.
    Disconnected {
        /// Sending endpoint of the broken link.
        from: usize,
        /// Receiving endpoint of the broken link.
        to: usize,
        /// Human-readable cause (OS error, timeout, …).
        detail: String,
    },
    /// The byte stream violated the framing protocol (bad frame kind,
    /// oversized length prefix, undecodable payload).
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Disconnected { from, to, detail } => {
                write!(f, "transport link {from} -> {to} disconnected: {detail}")
            }
            TransportError::Protocol { detail } => {
                write!(f, "transport protocol violation: {detail}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// The per-round limits a transport enforces and meters against.
#[derive(Debug, Clone, Copy)]
pub struct RoundLimits {
    /// Per-message bandwidth cap, if the model has one this round.
    pub cap: Option<BandwidthCap>,
    /// Whether oversized payloads are violations ([`SendPolicy::Strict`])
    /// or fragment logically ([`SendPolicy::Fragment`]).
    pub policy: SendPolicy,
    /// Model name used in the budget assertion ("CONGEST", "clique", …).
    pub model: &'static str,
}

impl Default for RoundLimits {
    fn default() -> Self {
        RoundLimits {
            cap: None,
            policy: SendPolicy::Strict,
            model: "transport",
        }
    }
}

/// One transported message: the payload's byte encoding plus the model
/// bit-width the cost tier charged for it (the quantity the cap gates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// `Wire::wire_bits` of the payload — what the bandwidth cap meters.
    pub declared_bits: u32,
    /// The payload's `Wire::wire_encode` bytes.
    pub payload: Vec<u8>,
}

/// Physical-layer counters a transport accumulates across its lifetime.
///
/// `frames`, `payload_bytes` and `packets` are tier-independent (the
/// equivalence suites pin them identical across Channel and Tcp);
/// `wire_bytes` additionally counts tier-specific framing overhead (frame
/// headers everywhere, plus hello/end-of-round marker frames on TCP), so it
/// legitimately differs between tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Data frames sent.
    pub frames: u64,
    /// Payload bytes sent (codec output, excluding frame headers).
    pub payload_bytes: u64,
    /// Total bytes handed to the wire, including framing overhead.
    pub wire_bytes: u64,
    /// MTU-sized packets the payloads occupy, where the MTU is the cap
    /// rounded up to whole bytes (one packet per frame when uncapped) —
    /// the physical analogue of the cost model's fragment count.
    pub packets: u64,
}

/// Byte length of a frame header: `[len: u32][kind: u8][sender: u32]
/// [declared_bits: u32]` (the length prefix counts the bytes after itself).
pub const FRAME_HEADER_BYTES: usize = 4 + 1 + 4 + 4;

/// Frames larger than this are a protocol violation — a corrupt length
/// prefix must not trigger an unbounded allocation.
const MAX_FRAME_BYTES: usize = 1 << 26;

/// Frame discriminator on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An application payload.
    Data,
    /// End-of-round marker: the sender has no more frames this round.
    EndRound,
    /// Link handshake: announces the dialing endpoint's index.
    Hello,
}

impl FrameKind {
    fn as_u8(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::EndRound => 1,
            FrameKind::Hello => 2,
        }
    }

    fn from_u8(byte: u8) -> Option<FrameKind> {
        match byte {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::EndRound),
            2 => Some(FrameKind::Hello),
            _ => None,
        }
    }
}

/// A decoded wire frame, header fields included.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Frame discriminator.
    pub kind: FrameKind,
    /// Index of the sending endpoint.
    pub sender: usize,
    /// Declared model bit-width of the payload.
    pub declared_bits: u32,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// Appends the wire encoding of one frame to `out`:
/// `[len: u32 LE][kind: u8][sender: u32 LE][declared_bits: u32 LE][payload]`.
pub fn encode_frame(
    kind: FrameKind,
    sender: usize,
    declared_bits: u32,
    payload: &[u8],
    out: &mut Vec<u8>,
) {
    let len = (1 + 4 + 4 + payload.len()) as u32;
    out.extend_from_slice(&len.to_le_bytes());
    out.push(kind.as_u8());
    out.extend_from_slice(&(sender as u32).to_le_bytes());
    out.extend_from_slice(&declared_bits.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Incremental frame parser: bytes go in at arbitrary split boundaries
/// (partial reads, coalesced TCP segments), whole frames come out. The
/// reassembly identity — `encode → split anywhere → push → next_frame` is
/// lossless — is property-tested in `crates/sim/tests/proptest_wire.rs`.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameReader {
    /// A reader with an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes received from the wire.
    pub fn push(&mut self, bytes: &[u8]) {
        // Drop the consumed prefix before it grows unboundedly.
        if self.pos > 4096 && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-parsed bytes.
    #[must_use]
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame, or `Ok(None)` if more bytes are
    /// needed. A malformed header (unknown kind, oversized or undersized
    /// length prefix) is a [`TransportError::Protocol`].
    pub fn next_frame(&mut self) -> Result<Option<RawFrame>, TransportError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().expect("4 bytes checked")) as usize;
        if !(9..=MAX_FRAME_BYTES).contains(&len) {
            return Err(TransportError::Protocol {
                detail: format!("frame length prefix {len} outside [9, {MAX_FRAME_BYTES}]"),
            });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let body = &avail[4..4 + len];
        let kind = FrameKind::from_u8(body[0]).ok_or_else(|| TransportError::Protocol {
            detail: format!("unknown frame kind {}", body[0]),
        })?;
        let sender = u32::from_le_bytes(body[1..5].try_into().expect("4 bytes")) as usize;
        let declared_bits = u32::from_le_bytes(body[5..9].try_into().expect("4 bytes"));
        let payload = body[9..].to_vec();
        self.pos += 4 + len;
        Ok(Some(RawFrame {
            kind,
            sender,
            declared_bits,
            payload,
        }))
    }
}

/// A round-synchronous frame mover between `n` endpoints.
///
/// Contract (pinned by `crates/sim/tests/transport_equivalence.rs`):
///
/// 1. A round is `begin_round`, then any number of `send(from, to, frame)`
///    calls, then one `finish_round`.
/// 2. `finish_round` returns one frame list per recipient, **sorted by
///    sender with per-link FIFO order** — the order of the engine's
///    sequential inbox merge, making delivery bit-identical to the
///    [`LocalTransport`] reference.
/// 3. Under [`SendPolicy::Strict`] with a cap, `send` enforces the cap on
///    the frame's `declared_bits` with the simulated tier's exact
///    assertion wording (so the failure classifies as the same typed
///    budget error); physical bytes are metered in [`TransportStats`],
///    never gated.
/// 4. A broken or closed peer surfaces as `Err(TransportError)` — never a
///    hang (socket reads and accepts carry deadlines).
pub trait Transport: std::fmt::Debug {
    /// The tier's stable name ("local" / "channel" / "tcp").
    fn name(&self) -> &'static str;

    /// Number of endpoints.
    fn len(&self) -> usize;

    /// Whether the network has no endpoints.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Starts a round under the given limits.
    fn begin_round(&mut self, limits: &RoundLimits);

    /// Ships one frame from endpoint `from` to endpoint `to`.
    ///
    /// # Panics
    ///
    /// Panics with the model's budget assertion if the frame's declared
    /// bits exceed the round's cap under [`SendPolicy::Strict`].
    fn send(&mut self, from: usize, to: usize, frame: Frame) -> Result<(), TransportError>;

    /// Completes the round and returns the per-recipient `(sender, frame)`
    /// lists, sorted by sender with per-link FIFO order.
    fn finish_round(&mut self) -> Result<Vec<Vec<(usize, Frame)>>, TransportError>;

    /// Lifetime physical-layer counters.
    fn stats(&self) -> &TransportStats;

    /// Fault injection: tears down endpoint `v` (drops its listener and
    /// every link touching it), so subsequent traffic involving `v` fails
    /// with [`TransportError::Disconnected`]. No-op on tiers without
    /// teardown semantics.
    fn close_endpoint(&mut self, _v: usize) {}
}

/// Enforces the round's cap on declared bits (Strict only, identical
/// wording to `SimMetrics::account`) and meters the frame. Shared by every
/// tier so enforcement and metering cannot drift apart.
fn meter_send(stats: &mut TransportStats, limits: &RoundLimits, frame: &Frame) {
    if limits.policy == SendPolicy::Strict {
        if let Some(cap) = limits.cap {
            let bits = frame.declared_bits;
            assert!(
                cap.fits(bits),
                "message of {bits} bits exceeds {} cap of {} bits",
                limits.model,
                cap.bits()
            );
        }
    }
    let mtu = limits
        .cap
        .map(|cap| (cap.bits() as usize).div_ceil(8).max(1));
    let packets = match mtu {
        Some(mtu) => frame.payload.len().div_ceil(mtu).max(1),
        None => 1,
    };
    stats.frames += 1;
    stats.payload_bytes += frame.payload.len() as u64;
    stats.wire_bytes += (FRAME_HEADER_BYTES + frame.payload.len()) as u64;
    stats.packets += packets as u64;
}

/// The in-memory reference tier: frames queue per recipient and are
/// stably sorted by sender at `finish_round`. No serialization happens —
/// payload bytes pass through untouched.
#[derive(Debug)]
pub struct LocalTransport {
    n: usize,
    limits: RoundLimits,
    queues: Vec<Vec<(usize, Frame)>>,
    stats: TransportStats,
}

impl LocalTransport {
    /// A local transport for `n` endpoints.
    #[must_use]
    pub fn new(n: usize) -> Self {
        LocalTransport {
            n,
            limits: RoundLimits::default(),
            queues: (0..n).map(|_| Vec::new()).collect(),
            stats: TransportStats::default(),
        }
    }
}

impl Transport for LocalTransport {
    fn name(&self) -> &'static str {
        "local"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn begin_round(&mut self, limits: &RoundLimits) {
        self.limits = *limits;
    }

    fn send(&mut self, from: usize, to: usize, frame: Frame) -> Result<(), TransportError> {
        assert!(to < self.n, "recipient {to} out of range");
        meter_send(&mut self.stats, &self.limits, &frame);
        self.queues[to].push((from, frame));
        Ok(())
    }

    fn finish_round(&mut self) -> Result<Vec<Vec<(usize, Frame)>>, TransportError> {
        let mut out: Vec<Vec<(usize, Frame)>> = (0..self.n).map(|_| Vec::new()).collect();
        std::mem::swap(&mut out, &mut self.queues);
        for inbox in &mut out {
            // Stable: per-link FIFO order is preserved within each sender.
            inbox.sort_by_key(|(from, _)| *from);
        }
        Ok(out)
    }

    fn stats(&self) -> &TransportStats {
        &self.stats
    }
}

/// The mock multiparty tier: an `n × n` matrix of `std::sync::mpsc`
/// channels, one per ordered endpoint pair. Every frame crosses the full
/// byte codec (encode at `send`, [`FrameReader`] reassembly at
/// `finish_round`), exercising exactly the framing the socket tier uses.
#[derive(Debug)]
pub struct ChannelTransport {
    n: usize,
    limits: RoundLimits,
    /// `senders[from][to]` is the tx half of the `from -> to` link.
    senders: Vec<Vec<mpsc::Sender<Vec<u8>>>>,
    /// `receivers[to][from]` is the rx half of the `from -> to` link.
    receivers: Vec<Vec<mpsc::Receiver<Vec<u8>>>>,
    /// `readers[to][from]` reassembles the `from -> to` byte stream.
    readers: Vec<Vec<FrameReader>>,
    stats: TransportStats,
}

impl ChannelTransport {
    /// A channel-matrix transport for `n` endpoints.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut senders: Vec<Vec<mpsc::Sender<Vec<u8>>>> =
            (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut receivers: Vec<Vec<mpsc::Receiver<Vec<u8>>>> =
            (0..n).map(|_| Vec::with_capacity(n)).collect();
        // Outer loop over senders, inner over recipients: `senders[from]`
        // fills in ascending `to` order and `receivers[to]` in ascending
        // `from` order, so both sides index as [first][second] directly.
        for sender_row in &mut senders {
            for receiver_row in &mut receivers {
                let (tx, rx) = mpsc::channel();
                sender_row.push(tx);
                receiver_row.push(rx);
            }
        }
        ChannelTransport {
            n,
            limits: RoundLimits::default(),
            senders,
            receivers,
            readers: (0..n)
                .map(|_| (0..n).map(|_| FrameReader::new()).collect())
                .collect(),
            stats: TransportStats::default(),
        }
    }
}

impl Transport for ChannelTransport {
    fn name(&self) -> &'static str {
        "channel"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn begin_round(&mut self, limits: &RoundLimits) {
        self.limits = *limits;
    }

    fn send(&mut self, from: usize, to: usize, frame: Frame) -> Result<(), TransportError> {
        assert!(to < self.n, "recipient {to} out of range");
        meter_send(&mut self.stats, &self.limits, &frame);
        let mut bytes = Vec::with_capacity(FRAME_HEADER_BYTES + frame.payload.len());
        encode_frame(
            FrameKind::Data,
            from,
            frame.declared_bits,
            &frame.payload,
            &mut bytes,
        );
        self.senders[from][to]
            .send(bytes)
            .map_err(|_| TransportError::Disconnected {
                from,
                to,
                detail: "channel closed".to_string(),
            })
    }

    fn finish_round(&mut self) -> Result<Vec<Vec<(usize, Frame)>>, TransportError> {
        let mut out: Vec<Vec<(usize, Frame)>> = (0..self.n).map(|_| Vec::new()).collect();
        for (to, inbox) in out.iter_mut().enumerate() {
            // Draining links in ascending sender order gives the contract's
            // sorted-by-sender, per-link-FIFO delivery directly.
            for from in 0..self.n {
                let reader = &mut self.readers[to][from];
                while let Ok(bytes) = self.receivers[to][from].try_recv() {
                    reader.push(&bytes);
                }
                while let Some(raw) = reader.next_frame()? {
                    if raw.kind != FrameKind::Data {
                        return Err(TransportError::Protocol {
                            detail: format!("unexpected {:?} frame on channel link", raw.kind),
                        });
                    }
                    if raw.sender != from {
                        return Err(TransportError::Protocol {
                            detail: format!(
                                "frame from sender {} on the {from} -> {to} link",
                                raw.sender
                            ),
                        });
                    }
                    inbox.push((
                        from,
                        Frame {
                            declared_bits: raw.declared_bits,
                            payload: raw.payload,
                        },
                    ));
                }
                if reader.pending_bytes() > 0 {
                    return Err(TransportError::Protocol {
                        detail: format!(
                            "{} trailing bytes on the {from} -> {to} link at end of round",
                            reader.pending_bytes()
                        ),
                    });
                }
            }
        }
        Ok(out)
    }

    fn stats(&self) -> &TransportStats {
        &self.stats
    }
}

/// How long socket accepts and reads may block before the transport gives
/// up and reports [`TransportError::Disconnected`] — the "never a hang"
/// half of the fault contract.
const TCP_DEADLINE: Duration = Duration::from_secs(10);

/// The socket tier: one localhost listener per endpoint, links dialed
/// lazily on first use (announced by a [`FrameKind::Hello`] frame), and a
/// [`FrameKind::EndRound`] marker on every established link each round so
/// receivers know when a link is drained without global knowledge.
#[derive(Debug)]
pub struct TcpTransport {
    n: usize,
    limits: RoundLimits,
    addrs: Vec<SocketAddr>,
    listeners: Vec<Option<TcpListener>>,
    /// `outgoing[from]` maps recipient -> established stream.
    outgoing: Vec<BTreeMap<usize, TcpStream>>,
    /// `incoming[to]` maps sender -> (stream, reassembler); `BTreeMap`
    /// iteration gives the sorted-by-sender delivery order for free.
    incoming: Vec<BTreeMap<usize, (TcpStream, FrameReader)>>,
    /// Dials issued but not yet accepted, per dialed endpoint.
    pending_accepts: Vec<usize>,
    dead: Vec<bool>,
    stats: TransportStats,
}

impl TcpTransport {
    /// Binds `n` localhost listeners (ephemeral ports).
    ///
    /// # Panics
    ///
    /// Panics if a listener cannot bind — the loopback interface is a
    /// precondition of the socket tier.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let mut addrs = Vec::with_capacity(n);
        let mut listeners = Vec::with_capacity(n);
        for v in 0..n {
            let listener = TcpListener::bind("127.0.0.1:0")
                .unwrap_or_else(|e| panic!("binding listener for endpoint {v}: {e}"));
            listener
                .set_nonblocking(true)
                .expect("nonblocking accept mode");
            addrs.push(
                listener
                    .local_addr()
                    .expect("bound listener has an address"),
            );
            listeners.push(Some(listener));
        }
        TcpTransport {
            n,
            limits: RoundLimits::default(),
            addrs,
            listeners,
            outgoing: (0..n).map(|_| BTreeMap::new()).collect(),
            incoming: (0..n).map(|_| BTreeMap::new()).collect(),
            pending_accepts: vec![0; n],
            dead: vec![false; n],
            stats: TransportStats::default(),
        }
    }

    /// Establishes the `from -> to` stream if it does not exist yet,
    /// sending the hello handshake and registering the pending accept.
    fn ensure_link(&mut self, from: usize, to: usize) -> Result<(), TransportError> {
        if self.outgoing[from].contains_key(&to) {
            return Ok(());
        }
        let stream =
            TcpStream::connect(self.addrs[to]).map_err(|e| TransportError::Disconnected {
                from,
                to,
                detail: format!("dial failed: {e}"),
            })?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(TCP_DEADLINE))
            .expect("read timeout is supported on TCP streams");
        let mut hello = Vec::with_capacity(FRAME_HEADER_BYTES);
        encode_frame(FrameKind::Hello, from, 0, &[], &mut hello);
        let mut stream = stream;
        stream
            .write_all(&hello)
            .map_err(|e| TransportError::Disconnected {
                from,
                to,
                detail: format!("hello write failed: {e}"),
            })?;
        self.stats.wire_bytes += hello.len() as u64;
        self.outgoing[from].insert(to, stream);
        self.pending_accepts[to] += 1;
        Ok(())
    }

    /// Accepts every pending dial, learning each link's sender from its
    /// hello frame. Bounded by [`TCP_DEADLINE`] per endpoint.
    fn accept_pending(&mut self) -> Result<(), TransportError> {
        for to in 0..self.n {
            while self.pending_accepts[to] > 0 {
                let listener =
                    self.listeners[to]
                        .as_ref()
                        .ok_or_else(|| TransportError::Disconnected {
                            from: to,
                            to,
                            detail: "listener closed with dials pending".to_string(),
                        })?;
                let deadline = Deadline::after(TCP_DEADLINE);
                let stream = loop {
                    match listener.accept() {
                        Ok((stream, _)) => break stream,
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if deadline.expired() {
                                return Err(TransportError::Disconnected {
                                    from: to,
                                    to,
                                    detail: "accept deadline expired".to_string(),
                                });
                            }
                            park_tick();
                        }
                        Err(e) => {
                            return Err(TransportError::Disconnected {
                                from: to,
                                to,
                                detail: format!("accept failed: {e}"),
                            });
                        }
                    }
                };
                stream
                    .set_nonblocking(false)
                    .expect("accepted stream supports blocking mode");
                stream
                    .set_read_timeout(Some(TCP_DEADLINE))
                    .expect("read timeout is supported on TCP streams");
                let mut reader = FrameReader::new();
                let mut stream = stream;
                let hello = read_one_frame(&mut stream, &mut reader, to, to)?;
                if hello.kind != FrameKind::Hello {
                    return Err(TransportError::Protocol {
                        detail: format!("expected hello on new link, got {:?}", hello.kind),
                    });
                }
                let from = hello.sender;
                if from >= self.n {
                    return Err(TransportError::Protocol {
                        detail: format!("hello announces out-of-range sender {from}"),
                    });
                }
                self.incoming[to].insert(from, (stream, reader));
                self.pending_accepts[to] -= 1;
            }
        }
        Ok(())
    }
}

/// Blocks (up to the stream's read timeout) until one complete frame is
/// available on `stream`, reassembling across partial reads.
fn read_one_frame(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    from: usize,
    to: usize,
) -> Result<RawFrame, TransportError> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = reader.next_frame()? {
            return Ok(frame);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return Err(TransportError::Disconnected {
                    from,
                    to,
                    detail: "peer closed the stream".to_string(),
                });
            }
            Ok(k) => reader.push(&chunk[..k]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return Err(TransportError::Disconnected {
                    from,
                    to,
                    detail: "read deadline expired".to_string(),
                });
            }
            Err(e) => {
                return Err(TransportError::Disconnected {
                    from,
                    to,
                    detail: format!("read failed: {e}"),
                });
            }
        }
    }
}

impl Transport for TcpTransport {
    fn name(&self) -> &'static str {
        "tcp"
    }

    fn len(&self) -> usize {
        self.n
    }

    fn begin_round(&mut self, limits: &RoundLimits) {
        self.limits = *limits;
    }

    fn send(&mut self, from: usize, to: usize, frame: Frame) -> Result<(), TransportError> {
        assert!(to < self.n, "recipient {to} out of range");
        if self.dead[from] || self.dead[to] {
            let closed = if self.dead[from] { from } else { to };
            return Err(TransportError::Disconnected {
                from,
                to,
                detail: format!("endpoint {closed} is closed"),
            });
        }
        self.ensure_link(from, to)?;
        meter_send(&mut self.stats, &self.limits, &frame);
        let mut bytes = Vec::with_capacity(FRAME_HEADER_BYTES + frame.payload.len());
        encode_frame(
            FrameKind::Data,
            from,
            frame.declared_bits,
            &frame.payload,
            &mut bytes,
        );
        let stream = self.outgoing[from]
            .get_mut(&to)
            .expect("link established above");
        stream
            .write_all(&bytes)
            .map_err(|e| TransportError::Disconnected {
                from,
                to,
                detail: format!("write failed: {e}"),
            })
    }

    fn finish_round(&mut self) -> Result<Vec<Vec<(usize, Frame)>>, TransportError> {
        // End-of-round markers on every established link, after all data
        // writes — receivers drain each link up to its marker.
        for from in 0..self.n {
            if self.dead[from] {
                continue;
            }
            let mut marker = Vec::with_capacity(FRAME_HEADER_BYTES);
            encode_frame(FrameKind::EndRound, from, 0, &[], &mut marker);
            for (&to, stream) in &mut self.outgoing[from] {
                stream
                    .write_all(&marker)
                    .map_err(|e| TransportError::Disconnected {
                        from,
                        to,
                        detail: format!("end-of-round write failed: {e}"),
                    })?;
                self.stats.wire_bytes += marker.len() as u64;
            }
        }
        self.accept_pending()?;
        let mut out: Vec<Vec<(usize, Frame)>> = (0..self.n).map(|_| Vec::new()).collect();
        for (to, inbox) in out.iter_mut().enumerate() {
            // BTreeMap iteration is sender-ascending: the contract's order.
            for (&from, (stream, reader)) in &mut self.incoming[to] {
                loop {
                    let raw = read_one_frame(stream, reader, from, to)?;
                    match raw.kind {
                        FrameKind::EndRound => break,
                        FrameKind::Data => {
                            if raw.sender != from {
                                return Err(TransportError::Protocol {
                                    detail: format!(
                                        "frame from sender {} on the {from} -> {to} link",
                                        raw.sender
                                    ),
                                });
                            }
                            inbox.push((
                                from,
                                Frame {
                                    declared_bits: raw.declared_bits,
                                    payload: raw.payload,
                                },
                            ));
                        }
                        FrameKind::Hello => {
                            return Err(TransportError::Protocol {
                                detail: "hello frame on an established link".to_string(),
                            });
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn stats(&self) -> &TransportStats {
        &self.stats
    }

    fn close_endpoint(&mut self, v: usize) {
        self.dead[v] = true;
        self.listeners[v] = None;
        self.outgoing[v].clear();
        self.incoming[v].clear();
        self.pending_accepts[v] = 0;
        for links in &mut self.outgoing {
            links.remove(&v);
        }
        for links in &mut self.incoming {
            links.remove(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(bits: u32, payload: &[u8]) -> Frame {
        Frame {
            declared_bits: bits,
            payload: payload.to_vec(),
        }
    }

    fn drive_round(transport: &mut dyn Transport) -> Vec<Vec<(usize, Frame)>> {
        transport.begin_round(&RoundLimits {
            cap: Some(BandwidthCap::new(16)),
            policy: SendPolicy::Strict,
            model: "test",
        });
        // Deliberately out of sender order: 2 before 0.
        transport.send(2, 1, frame(8, &[0xAA])).unwrap();
        transport.send(0, 1, frame(4, &[0x01])).unwrap();
        transport.send(0, 1, frame(5, &[0x02])).unwrap();
        transport.send(1, 0, frame(16, &[0x10, 0x20])).unwrap();
        transport.finish_round().unwrap()
    }

    fn expected_inboxes() -> Vec<Vec<(usize, Frame)>> {
        vec![
            vec![(1, frame(16, &[0x10, 0x20]))],
            vec![
                (0, frame(4, &[0x01])),
                (0, frame(5, &[0x02])),
                (2, frame(8, &[0xAA])),
            ],
            vec![],
        ]
    }

    #[test]
    fn all_tiers_deliver_sorted_by_sender_with_link_fifo() {
        for spec in TransportSpec::all() {
            let mut transport = spec.build(3);
            assert_eq!(
                drive_round(transport.as_mut()),
                expected_inboxes(),
                "{spec}"
            );
            // Tier-independent counters agree across tiers.
            let stats = transport.stats();
            assert_eq!(stats.frames, 4, "{spec}");
            assert_eq!(stats.payload_bytes, 5, "{spec}");
            assert_eq!(stats.packets, 4, "{spec}");
        }
    }

    #[test]
    fn empty_rounds_and_multiple_rounds_work() {
        for spec in TransportSpec::all() {
            let mut transport = spec.build(2);
            for round in 0..3 {
                transport.begin_round(&RoundLimits::default());
                if round == 1 {
                    transport.send(0, 1, frame(3, &[round])).unwrap();
                }
                let inboxes = transport.finish_round().unwrap();
                if round == 1 {
                    assert_eq!(inboxes[1], vec![(0, frame(3, &[1]))], "{spec}");
                } else {
                    assert!(inboxes.iter().all(Vec::is_empty), "{spec}");
                }
            }
        }
    }

    #[test]
    fn strict_cap_violation_uses_the_budget_wording_on_every_tier() {
        for spec in TransportSpec::all() {
            let mut transport = spec.build(2);
            transport.begin_round(&RoundLimits {
                cap: Some(BandwidthCap::new(8)),
                policy: SendPolicy::Strict,
                model: "CONGEST",
            });
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = transport.send(0, 1, frame(9, &[0xFF, 0x01]));
            }))
            .unwrap_err();
            let message = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert_eq!(
                message, "message of 9 bits exceeds CONGEST cap of 8 bits",
                "{spec}"
            );
        }
    }

    #[test]
    fn fragment_policy_ships_oversized_frames_and_meters_packets() {
        for spec in [TransportSpec::Channel, TransportSpec::Tcp] {
            let mut transport = spec.build(2);
            transport.begin_round(&RoundLimits {
                cap: Some(BandwidthCap::new(8)),
                policy: SendPolicy::Fragment,
                model: "CONGEST",
            });
            // 24 declared bits at an 8-bit cap: 3 logical fragments; the
            // 3-byte payload at a 1-byte MTU: 3 physical packets.
            transport.send(0, 1, frame(24, &[1, 2, 3])).unwrap();
            let inboxes = transport.finish_round().unwrap();
            assert_eq!(inboxes[1], vec![(0, frame(24, &[1, 2, 3]))], "{spec}");
            assert_eq!(transport.stats().packets, 3, "{spec}");
        }
    }

    #[test]
    fn tcp_closed_endpoint_errors_instead_of_hanging() {
        let mut transport = TcpTransport::new(3);
        transport.begin_round(&RoundLimits::default());
        transport.send(0, 1, frame(1, &[0])).unwrap();
        let _ = transport.finish_round().unwrap();
        transport.close_endpoint(1);
        transport.begin_round(&RoundLimits::default());
        // Sending to the closed endpoint fails fast and typed.
        let err = transport.send(0, 1, frame(1, &[0])).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Disconnected { from: 0, to: 1, .. }
        ));
        // Sending from the closed endpoint fails too.
        let err = transport.send(1, 2, frame(1, &[0])).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { .. }));
        // A fresh dial to the dropped listener is refused, not hung.
        let mut other = TcpTransport::new(2);
        other.begin_round(&RoundLimits::default());
        other.addrs[1] = transport.addrs[1];
        let err = other.send(0, 1, frame(1, &[0])).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected { .. }), "{err}");
    }

    #[test]
    fn frame_reader_handles_arbitrary_split_boundaries() {
        let mut bytes = Vec::new();
        encode_frame(FrameKind::Data, 7, 12, &[1, 2, 3, 4], &mut bytes);
        encode_frame(FrameKind::EndRound, 7, 0, &[], &mut bytes);
        for split in 0..=bytes.len() {
            let mut reader = FrameReader::new();
            reader.push(&bytes[..split]);
            let mut frames = Vec::new();
            while let Some(f) = reader.next_frame().unwrap() {
                frames.push(f);
            }
            reader.push(&bytes[split..]);
            while let Some(f) = reader.next_frame().unwrap() {
                frames.push(f);
            }
            assert_eq!(frames.len(), 2, "split at {split}");
            assert_eq!(frames[0].kind, FrameKind::Data);
            assert_eq!(frames[0].sender, 7);
            assert_eq!(frames[0].declared_bits, 12);
            assert_eq!(frames[0].payload, vec![1, 2, 3, 4]);
            assert_eq!(frames[1].kind, FrameKind::EndRound);
            assert_eq!(reader.pending_bytes(), 0);
        }
    }

    #[test]
    fn frame_reader_rejects_corrupt_headers() {
        // Undersized length prefix.
        let mut reader = FrameReader::new();
        reader.push(&3u32.to_le_bytes());
        assert!(matches!(
            reader.next_frame(),
            Err(TransportError::Protocol { .. })
        ));
        // Unknown frame kind.
        let mut reader = FrameReader::new();
        let mut bytes = Vec::new();
        encode_frame(FrameKind::Data, 0, 0, &[], &mut bytes);
        bytes[4] = 99;
        reader.push(&bytes);
        assert!(matches!(
            reader.next_frame(),
            Err(TransportError::Protocol { .. })
        ));
        // Oversized length prefix.
        let mut reader = FrameReader::new();
        reader.push(&u32::MAX.to_le_bytes());
        assert!(matches!(
            reader.next_frame(),
            Err(TransportError::Protocol { .. })
        ));
    }

    #[test]
    fn spec_round_trips_names_and_default() {
        assert_eq!(TransportSpec::default(), TransportSpec::Local);
        for spec in TransportSpec::all() {
            assert_eq!(spec.to_string(), spec.name());
            assert_eq!(spec.build(2).name(), spec.name());
        }
    }

    #[test]
    fn transport_error_displays_and_sources() {
        let err = TransportError::Disconnected {
            from: 1,
            to: 2,
            detail: "gone".to_string(),
        };
        assert_eq!(err.to_string(), "transport link 1 -> 2 disconnected: gone");
        let err: Box<dyn std::error::Error> = Box::new(TransportError::Protocol {
            detail: "bad".to_string(),
        });
        assert_eq!(err.to_string(), "transport protocol violation: bad");
    }
}

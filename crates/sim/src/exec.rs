//! The unified execution knob shared by every coloring driver.

use crate::cap::BandwidthCap;
use dcl_par::Backend;

/// Simulator execution configuration: which backend runs the rounds and
/// which bandwidth cap the model enforces.
///
/// Every driver config (`CongestColoringConfig`, `DecompColoringConfig`,
/// `CliqueColoringConfig`, the `mpc_color_*_with` entry points) embeds one
/// of these instead of ad-hoc `backend`/cap fields, so a bandwidth sweep or
/// a backend switch is the same one-liner everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecConfig {
    /// Round-execution backend (results are bit-identical across backends;
    /// only wall-clock changes).
    pub backend: Backend,
    /// Per-message bandwidth cap override; `None` uses the model's default
    /// (`2·max(64, ⌈log₂ n⌉, ⌈log₂ C⌉)` bits in CONGEST, two words in the
    /// clique). Ignored by MPC, whose bandwidth role is played by the
    /// per-machine word budget `S`.
    pub cap: Option<BandwidthCap>,
}

impl ExecConfig {
    /// A config selecting `backend` with the model's default cap.
    #[must_use]
    pub fn with_backend(backend: Backend) -> Self {
        ExecConfig {
            backend,
            ..Default::default()
        }
    }

    /// A config overriding the bandwidth cap on the sequential backend.
    #[must_use]
    pub fn with_cap(cap: BandwidthCap) -> Self {
        ExecConfig {
            cap: Some(cap),
            ..Default::default()
        }
    }

    /// The cap to use: the override if set, else `default`.
    #[must_use]
    pub fn cap_or(&self, default: BandwidthCap) -> BandwidthCap {
        self.cap.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential_with_model_cap() {
        let exec = ExecConfig::default();
        assert_eq!(exec.backend, Backend::Sequential);
        assert_eq!(exec.cap, None);
        assert_eq!(exec.cap_or(BandwidthCap::new(99)).bits(), 99);
    }

    #[test]
    fn builders_set_one_knob_each() {
        assert_eq!(
            ExecConfig::with_backend(Backend::Parallel(2)).backend,
            Backend::Parallel(2)
        );
        let exec = ExecConfig::with_cap(BandwidthCap::new(16));
        assert_eq!(exec.cap_or(BandwidthCap::new(99)).bits(), 16);
        assert_eq!(exec.backend, Backend::Sequential);
    }
}

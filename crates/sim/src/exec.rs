//! The unified execution knob shared by every coloring driver.

use crate::cap::BandwidthCap;
use crate::transport::TransportSpec;
use dcl_par::Backend;

/// Simulator execution configuration: which backend runs the rounds, which
/// bandwidth cap the model enforces, and which transport tier carries the
/// messages.
///
/// Every driver config (`CongestColoringConfig`, `DecompColoringConfig`,
/// `CliqueColoringConfig`, `DeltaColoringConfig`, the `mpc_color_*_with`
/// entry points) embeds one of these instead of ad-hoc `backend`/cap
/// fields, so a bandwidth sweep or a backend switch is the same one-liner
/// everywhere.
///
/// The struct is `#[non_exhaustive]`: build it with [`Default`] plus the
/// `with_*` setters (`ExecConfig::default().with_backend(...)
/// .with_cap(...)`), so future knobs are not semver breaks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ExecConfig {
    /// Round-execution backend (results are bit-identical across backends;
    /// only wall-clock changes).
    pub backend: Backend,
    /// Per-message bandwidth cap override; `None` uses the model's default
    /// (`2·max(64, ⌈log₂ n⌉, ⌈log₂ C⌉)` bits in CONGEST, two words in the
    /// clique). Ignored by MPC, whose bandwidth role is played by the
    /// per-machine word budget `S`.
    pub cap: Option<BandwidthCap>,
    /// Transport tier carrying each round's messages (results are
    /// bit-identical across tiers; only the physical layer changes).
    pub transport: TransportSpec,
}

impl ExecConfig {
    /// Selects the round-execution backend (builder style).
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Overrides the bandwidth cap (builder style).
    #[must_use]
    pub fn with_cap(mut self, cap: BandwidthCap) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Sets or clears the cap override (builder style); `None` restores the
    /// model default.
    #[must_use]
    pub fn with_cap_opt(mut self, cap: Option<BandwidthCap>) -> Self {
        self.cap = cap;
        self
    }

    /// Selects the transport tier (builder style).
    #[must_use]
    pub fn with_transport(mut self, transport: TransportSpec) -> Self {
        self.transport = transport;
        self
    }

    /// The cap to use: the override if set, else `default`.
    #[must_use]
    pub fn cap_or(&self, default: BandwidthCap) -> BandwidthCap {
        self.cap.unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential_with_model_cap() {
        let exec = ExecConfig::default();
        assert_eq!(exec.backend, Backend::Sequential);
        assert_eq!(exec.cap, None);
        assert_eq!(exec.transport, TransportSpec::Local);
        assert_eq!(exec.cap_or(BandwidthCap::new(99)).bits(), 99);
    }

    #[test]
    fn transport_knob_composes_with_the_others() {
        let exec = ExecConfig::default()
            .with_transport(TransportSpec::Tcp)
            .with_backend(Backend::Parallel(2))
            .with_cap(BandwidthCap::new(16));
        assert_eq!(exec.transport, TransportSpec::Tcp);
        assert_eq!(exec.backend, Backend::Parallel(2));
        assert_eq!(exec.cap, Some(BandwidthCap::new(16)));
    }

    #[test]
    fn builders_set_one_knob_each() {
        assert_eq!(
            ExecConfig::default()
                .with_backend(Backend::Parallel(2))
                .backend,
            Backend::Parallel(2)
        );
        let exec = ExecConfig::default().with_cap(BandwidthCap::new(16));
        assert_eq!(exec.cap_or(BandwidthCap::new(99)).bits(), 16);
        assert_eq!(exec.backend, Backend::Sequential);
        let cleared = exec.with_cap_opt(None);
        assert_eq!(cleared.cap, None);
        assert_eq!(
            exec.with_cap_opt(Some(BandwidthCap::new(7))).cap,
            Some(BandwidthCap::new(7))
        );
    }

    #[test]
    fn setters_chain_without_clobbering_each_other() {
        let exec = ExecConfig::default()
            .with_backend(Backend::Parallel(4))
            .with_cap(BandwidthCap::new(32));
        assert_eq!(exec.backend, Backend::Parallel(4));
        assert_eq!(exec.cap, Some(BandwidthCap::new(32)));
    }
}

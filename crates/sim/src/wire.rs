//! Message size accounting and the byte codec of the transport tier.
//!
//! Every payload sent through the simulator implements [`Wire`], reporting
//! the number of bits its encoding occupies on an edge. Integer payloads are
//! charged their *value's* bit length (the standard convention: a value in
//! `[C]` fits in `⌈log₂ C⌉` bits), floats are charged one 64-bit word, and
//! composite payloads are charged the sum of their parts.
//!
//! Since the transport tier (`DESIGN.md` §7), `Wire` is also the *codec*:
//! [`Wire::wire_encode`] / [`Wire::wire_decode`] turn a payload into the
//! self-delimiting byte string the byte transports
//! ([`crate::transport::ChannelTransport`], [`crate::transport::TcpTransport`])
//! ship inside length-prefixed frames. The encoding is deterministic and
//! round-trips exactly (`decode(encode(x)) == x`, property-tested in
//! `crates/sim/tests/proptest_wire.rs`). Integers use LEB128 varints, so the
//! physical width tracks the value's [`Wire::wire_bits`] width up to the
//! `O(1)`-bit-per-value overhead any self-delimiting code must pay over the
//! information-theoretic widths the cost model charges.

/// Number of bits a message payload occupies on the wire, plus the byte
/// codec used when the payload crosses a real transport link.
pub trait Wire {
    /// Encoded width of `self` in bits (at least 1) — the quantity the cost
    /// model charges against the bandwidth cap.
    fn wire_bits(&self) -> u32;

    /// Appends the deterministic, self-delimiting byte encoding of `self`
    /// to `out` (the payload of a transport frame).
    fn wire_encode(&self, out: &mut Vec<u8>);

    /// Decodes one value from the front of `buf`, advancing it past the
    /// consumed bytes. Returns `None` on malformed or truncated input
    /// (never panics): transports surface that as a typed framing error.
    fn wire_decode(buf: &mut &[u8]) -> Option<Self>
    where
        Self: Sized;
}

/// Bit length of a `u64` value (at least 1, so that the value 0 still
/// occupies a bit on the wire). Re-exported from `dcl_kernels::bits`, where
/// the batch variant and the SIMD tier live.
pub use dcl_kernels::bits::bit_len;

/// Appends the LEB128 varint encoding of `v` (1–10 bytes) to `out`.
pub fn encode_varint(v: u64, out: &mut Vec<u8>) {
    let mut v = v;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes a LEB128 varint from the front of `buf`, advancing it. Returns
/// `None` on truncation or a value wider than 64 bits.
pub fn decode_varint(buf: &mut &[u8]) -> Option<u64> {
    let mut v = 0u64;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= 10 || (i == 9 && byte > 1) {
            return None; // wider than u64
        }
        v |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            *buf = &buf[i + 1..];
            return Some(v);
        }
    }
    None // truncated
}

macro_rules! impl_wire_uint {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            fn wire_bits(&self) -> u32 {
                bit_len(*self as u64)
            }
            fn wire_encode(&self, out: &mut Vec<u8>) {
                encode_varint(*self as u64, out);
            }
            fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
                <$t>::try_from(decode_varint(buf)?).ok()
            }
        })*
    };
}

impl_wire_uint!(u8, u16, u32, u64, usize);

impl Wire for bool {
    fn wire_bits(&self) -> u32 {
        1
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Wire for f64 {
    fn wire_bits(&self) -> u32 {
        64
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        let bytes: [u8; 8] = buf.get(..8)?.try_into().ok()?;
        *buf = &buf[8..];
        Some(f64::from_bits(u64::from_le_bytes(bytes)))
    }
}

impl Wire for () {
    fn wire_bits(&self) -> u32 {
        1
    }
    fn wire_encode(&self, _out: &mut Vec<u8>) {}
    fn wire_decode(_buf: &mut &[u8]) -> Option<Self> {
        Some(())
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_bits(&self) -> u32 {
        self.0.wire_bits() + self.1.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some((A::wire_decode(buf)?, B::wire_decode(buf)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn wire_bits(&self) -> u32 {
        self.0.wire_bits() + self.1.wire_bits() + self.2.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
        self.2.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::wire_decode(buf)?,
            B::wire_decode(buf)?,
            C::wire_decode(buf)?,
        ))
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn wire_bits(&self) -> u32 {
        self.0.wire_bits() + self.1.wire_bits() + self.2.wire_bits() + self.3.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.0.wire_encode(out);
        self.1.wire_encode(out);
        self.2.wire_encode(out);
        self.3.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some((
            A::wire_decode(buf)?,
            B::wire_decode(buf)?,
            C::wire_decode(buf)?,
            D::wire_decode(buf)?,
        ))
    }
}

/// Strings cross the wire as a length-prefixed UTF-8 byte run (scenario
/// names and error details in the `dcl_service` protocol). Charged the
/// length prefix plus 8 bits per byte; decode validates UTF-8 and rejects
/// length prefixes promising more bytes than remain, like `Vec<T>`.
impl Wire for String {
    fn wire_bits(&self) -> u32 {
        bit_len(self.len() as u64) + 8 * self.len() as u32
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        encode_varint(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(decode_varint(buf)?).ok()?;
        if len > buf.len() {
            return None; // corrupt prefix must not trigger a huge allocation
        }
        let text = std::str::from_utf8(&buf[..len]).ok()?.to_string();
        *buf = &buf[len..];
        Some(text)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_bits(&self) -> u32 {
        1 + self.as_ref().map_or(0, Wire::wire_bits)
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_encode(out);
            }
        }
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(None),
            1 => Some(Some(T::wire_decode(buf)?)),
            _ => None,
        }
    }
}

/// Variable-length payloads (e.g. an adjacency list shipped during the
/// `dcl_delta` obstruction detection) are charged a length prefix of
/// `bit_len(len)` bits plus the sum of their elements' widths. Lists wider
/// than the cap rely on the `fragmented_*` round variants.
impl<T: Wire> Wire for Vec<T> {
    fn wire_bits(&self) -> u32 {
        bit_len(self.len() as u64) + self.iter().map(Wire::wire_bits).sum::<u32>()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        encode_varint(self.len() as u64, out);
        for item in self {
            item.wire_encode(out);
        }
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        let len = usize::try_from(decode_varint(buf)?).ok()?;
        // A length prefix can never promise more elements than there are
        // bytes left (every element encodes to at least one byte except
        // `()`, which has no reason to travel in bulk) — reject early so a
        // corrupt prefix cannot trigger a huge allocation.
        if len > buf.len() && std::mem::size_of::<T>() > 0 {
            return None;
        }
        let mut out = Vec::with_capacity(len.min(buf.len().max(1)));
        for _ in 0..len {
            out.push(T::wire_decode(buf)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_len_basics() {
        assert_eq!(bit_len(0), 1);
        assert_eq!(bit_len(1), 1);
        assert_eq!(bit_len(2), 2);
        assert_eq!(bit_len(255), 8);
        assert_eq!(bit_len(256), 9);
        assert_eq!(bit_len(u64::MAX), 64);
    }

    #[test]
    fn composite_widths_sum() {
        assert_eq!((3u32, 4u32).wire_bits(), 2 + 3);
        assert_eq!((true, 1u8, 7u16).wire_bits(), 1 + 1 + 3);
        assert_eq!(Some(3u32).wire_bits(), 1 + 2);
        assert_eq!(None::<u32>.wire_bits(), 1);
    }

    #[test]
    fn float_is_one_word() {
        assert_eq!(1.5f64.wire_bits(), 64);
    }

    #[test]
    fn vec_is_length_prefixed_sum() {
        assert_eq!(Vec::<u32>::new().wire_bits(), 1);
        assert_eq!(vec![3u32, 4u32].wire_bits(), 2 + 2 + 3);
        assert_eq!(vec![0u8; 5].wire_bits(), 3 + 5);
    }

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let mut bytes = Vec::new();
        value.wire_encode(&mut bytes);
        let mut buf = bytes.as_slice();
        assert_eq!(T::wire_decode(&mut buf), Some(value));
        assert!(buf.is_empty(), "decode must consume the whole encoding");
    }

    #[test]
    fn string_wire_impl_roundtrips_and_rejects_corruption() {
        roundtrip(String::new());
        roundtrip(String::from("mpc-sublinear"));
        roundtrip(String::from("Δ-coloring — ünïcode"));
        assert_eq!("ab".to_string().wire_bits(), 2 + 16);
        // Length prefix promising more bytes than remain.
        let mut bytes = Vec::new();
        encode_varint(100, &mut bytes);
        bytes.push(b'x');
        assert_eq!(String::wire_decode(&mut bytes.as_slice()), None);
        // Invalid UTF-8 payload.
        let mut bytes = Vec::new();
        encode_varint(2, &mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(String::wire_decode(&mut bytes.as_slice()), None);
    }

    #[test]
    fn encode_decode_roundtrips() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(127u8);
        roundtrip(128u16);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(());
        roundtrip(-1.5f64);
        roundtrip((3u32, 4u64));
        roundtrip((1u8, 2u16, 3u32));
        roundtrip((1u8, 2u16, 3u32, 4u64));
        roundtrip(Some(vec![(7u64, 9u64)]));
        roundtrip(None::<u32>);
        roundtrip(vec![0u64, 1, u64::MAX]);
        roundtrip(Vec::<bool>::new());
    }

    #[test]
    fn varints_are_minimal_and_reject_garbage() {
        let mut out = Vec::new();
        encode_varint(300, &mut out);
        assert_eq!(out, vec![0xac, 0x02]);
        let mut buf = out.as_slice();
        assert_eq!(decode_varint(&mut buf), Some(300));
        // Truncated input.
        let mut buf: &[u8] = &[0x80];
        assert_eq!(decode_varint(&mut buf), None);
        // 11-byte varint (wider than u64).
        let mut buf: &[u8] = &[0x80; 11];
        assert_eq!(decode_varint(&mut buf), None);
    }

    #[test]
    fn decode_rejects_out_of_range_and_corrupt_values() {
        // 300 does not fit u8.
        let mut bytes = Vec::new();
        encode_varint(300, &mut bytes);
        assert_eq!(u8::wire_decode(&mut bytes.as_slice()), None);
        // bool must be 0 or 1.
        assert_eq!(bool::wire_decode(&mut [7u8].as_slice()), None);
        // Option tag must be 0 or 1.
        assert_eq!(Option::<u8>::wire_decode(&mut [9u8].as_slice()), None);
        // A Vec length prefix promising more elements than bytes remain.
        let mut bytes = Vec::new();
        encode_varint(1000, &mut bytes);
        assert_eq!(Vec::<u64>::wire_decode(&mut bytes.as_slice()), None);
        // Truncated f64.
        assert_eq!(f64::wire_decode(&mut [0u8; 4].as_slice()), None);
    }
}

//! Message size accounting.
//!
//! Every payload sent through the simulator implements [`Wire`], reporting
//! the number of bits its encoding occupies on an edge. Integer payloads are
//! charged their *value's* bit length (the standard convention: a value in
//! `[C]` fits in `⌈log₂ C⌉` bits), floats are charged one 64-bit word, and
//! composite payloads are charged the sum of their parts.

/// Number of bits a message payload occupies on the wire.
pub trait Wire {
    /// Encoded width of `self` in bits (at least 1).
    fn wire_bits(&self) -> u32;
}

/// Bit length of a `u64` value (at least 1, so that the value 0 still
/// occupies a bit on the wire).
#[must_use]
pub fn bit_len(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

macro_rules! impl_wire_uint {
    ($($t:ty),*) => {
        $(impl Wire for $t {
            fn wire_bits(&self) -> u32 {
                bit_len(*self as u64)
            }
        })*
    };
}

impl_wire_uint!(u8, u16, u32, u64, usize);

impl Wire for bool {
    fn wire_bits(&self) -> u32 {
        1
    }
}

impl Wire for f64 {
    fn wire_bits(&self) -> u32 {
        64
    }
}

impl Wire for () {
    fn wire_bits(&self) -> u32 {
        1
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn wire_bits(&self) -> u32 {
        self.0.wire_bits() + self.1.wire_bits()
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn wire_bits(&self) -> u32 {
        self.0.wire_bits() + self.1.wire_bits() + self.2.wire_bits()
    }
}

impl<A: Wire, B: Wire, C: Wire, D: Wire> Wire for (A, B, C, D) {
    fn wire_bits(&self) -> u32 {
        self.0.wire_bits() + self.1.wire_bits() + self.2.wire_bits() + self.3.wire_bits()
    }
}

impl<T: Wire> Wire for Option<T> {
    fn wire_bits(&self) -> u32 {
        1 + self.as_ref().map_or(0, Wire::wire_bits)
    }
}

/// Variable-length payloads (e.g. an adjacency list shipped during the
/// `dcl_delta` obstruction detection) are charged a length prefix of
/// `bit_len(len)` bits plus the sum of their elements' widths. Lists wider
/// than the cap rely on the `fragmented_*` round variants.
impl<T: Wire> Wire for Vec<T> {
    fn wire_bits(&self) -> u32 {
        bit_len(self.len() as u64) + self.iter().map(Wire::wire_bits).sum::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_len_basics() {
        assert_eq!(bit_len(0), 1);
        assert_eq!(bit_len(1), 1);
        assert_eq!(bit_len(2), 2);
        assert_eq!(bit_len(255), 8);
        assert_eq!(bit_len(256), 9);
        assert_eq!(bit_len(u64::MAX), 64);
    }

    #[test]
    fn composite_widths_sum() {
        assert_eq!((3u32, 4u32).wire_bits(), 2 + 3);
        assert_eq!((true, 1u8, 7u16).wire_bits(), 1 + 1 + 3);
        assert_eq!(Some(3u32).wire_bits(), 1 + 2);
        assert_eq!(None::<u32>.wire_bits(), 1);
    }

    #[test]
    fn float_is_one_word() {
        assert_eq!(1.5f64.wire_bits(), 64);
    }

    #[test]
    fn vec_is_length_prefixed_sum() {
        assert_eq!(Vec::<u32>::new().wire_bits(), 1);
        assert_eq!(vec![3u32, 4u32].wire_bits(), 2 + 2 + 3);
        assert_eq!(vec![0u8; 5].wire_bits(), 3 + 5);
    }
}

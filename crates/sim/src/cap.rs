//! Per-message bandwidth caps.
//!
//! The bandwidth cap is the defining parameter of the paper's models — the
//! entire question of *Efficient Deterministic Distributed Coloring with
//! Small Bandwidth* is what coloring costs as a function of it. [`BandwidthCap`]
//! makes it a first-class value: every simulator stores one, every charged
//! collective consults it, and the experiment harness sweeps it
//! (`dcl_bench::e12_bandwidth_sweep`).

use crate::wire::bit_len;

/// A per-message bandwidth cap in bits (always positive).
///
/// Beyond the plain bound, the cap knows how *oversized logical payloads*
/// fragment: a `W`-bit payload occupies [`BandwidthCap::fragments`]` = ⌈W /
/// cap⌉` physical messages, and a synchronous round that carries such a
/// payload stretches to that many sub-rounds. The fragment-aware round and
/// charge APIs (`Network::fragmented_round`, the `*_charged` tree
/// collectives) use this to stay *runnable* at small caps — at any cap that
/// already fits every message, fragmentation is the identity and all costs
/// are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BandwidthCap {
    bits: u32,
}

impl BandwidthCap {
    /// A cap of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`.
    #[must_use]
    pub fn new(bits: u32) -> Self {
        assert!(bits > 0, "bandwidth cap must be positive");
        BandwidthCap { bits }
    }

    /// The paper's default cap for `n` nodes and color space `[C]`:
    /// `2 · max(64, ⌈log₂ n⌉, ⌈log₂ C⌉)` bits — two machine words of
    /// `O(log max(n, C))` bits, matching the assumption that a color name
    /// fits in `O(1)` messages (`DESIGN.md` §2.2).
    #[must_use]
    pub fn default_for(n: usize, color_space: u64) -> Self {
        BandwidthCap::new(2 * 64u32.max(bit_len(n as u64)).max(bit_len(color_space)))
    }

    /// The default CONGESTED CLIQUE / word-model cap: two 64-bit words.
    #[must_use]
    pub fn two_words() -> Self {
        BandwidthCap::new(128)
    }

    /// The cap in bits.
    #[must_use]
    pub const fn bits(self) -> u32 {
        self.bits
    }

    /// Whether a `bits`-bit payload fits in one message.
    #[must_use]
    pub const fn fits(self, bits: u32) -> bool {
        bits <= self.bits
    }

    /// Number of cap-sized physical messages a `bits`-bit logical payload
    /// occupies (at least 1 — even zero-width payloads take a message).
    /// The arithmetic lives in [`dcl_kernels::bits::fragments`] (exact
    /// integer formula, shared by every kernel tier).
    #[must_use]
    pub const fn fragments(self, bits: u32) -> u32 {
        dcl_kernels::bits::fragments(self.bits, bits)
    }
}

impl std::fmt::Display for BandwidthCap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} bits", self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cap_is_two_words_for_word_sized_parameters() {
        // Pins the DESIGN.md §2.2 formula: for every u64-representable n and
        // C the dominant term is the 64-bit machine word.
        assert_eq!(BandwidthCap::default_for(8, 8).bits(), 128);
        assert_eq!(BandwidthCap::default_for(1 << 20, 1 << 40).bits(), 128);
        assert_eq!(BandwidthCap::default_for(8, u64::MAX).bits(), 128);
        assert_eq!(BandwidthCap::two_words().bits(), 128);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_cap_rejected() {
        let _ = BandwidthCap::new(0);
    }

    #[test]
    fn fragments_round_up() {
        let cap = BandwidthCap::new(7);
        assert_eq!(cap.fragments(1), 1);
        assert_eq!(cap.fragments(7), 1);
        assert_eq!(cap.fragments(8), 2);
        assert_eq!(cap.fragments(64), 10);
        assert_eq!(cap.fragments(0), 1);
        assert!(cap.fits(7));
        assert!(!cap.fits(8));
    }

    #[test]
    fn display_formats_bits() {
        assert_eq!(BandwidthCap::new(12).to_string(), "12 bits");
    }
}

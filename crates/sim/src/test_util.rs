//! Backend-equivalence property-test helpers (feature `test-util`).
//!
//! The three per-model `tests/backend_equivalence.rs` suites assert the same
//! contract — the parallel backend produces bit-identical results to the
//! sequential one — over model-specific runners. These helpers hold the
//! shared assertion scaffolding; each model's suite shrinks to the runner
//! closures plus the instance strategies.
//!
//! Helpers return `Result<(), String>` rather than panicking so the
//! `proptest!` suites can surface the generated inputs on failure
//! (`.map_err(TestCaseError::Fail)`).

use dcl_par::Backend;
use std::fmt::Debug;

/// Runs `run` under the sequential backend and under `Parallel(threads)` and
/// asserts the outputs are identical (the determinism contract of
/// `DESIGN.md` §5.1). Returns the sequential output for follow-up checks
/// (e.g. proper-coloring validation).
pub fn assert_backend_equivalent<R, F>(threads: usize, run: F) -> Result<R, String>
where
    R: PartialEq + Debug,
    F: Fn(Backend) -> R,
{
    let seq = run(Backend::Sequential);
    let par = run(Backend::Parallel(threads));
    if seq != par {
        return Err(format!(
            "parallel backend ({threads} threads) diverged from sequential:\n  seq: {seq:?}\n  par: {par:?}"
        ));
    }
    Ok(seq)
}

/// Drives `rounds` paired simulator rounds via `step` (which must execute
/// one round on the sequential simulator and one on the parallel simulator
/// and return both inbox sets), asserting the inboxes match each round.
/// Compare final metrics afterwards with [`assert_eq_sides`].
pub fn assert_round_equivalence<I, S>(rounds: usize, mut step: S) -> Result<(), String>
where
    I: PartialEq + Debug,
    S: FnMut() -> (I, I),
{
    for r in 0..rounds {
        let (seq, par) = step();
        if seq != par {
            return Err(format!("round {r}: inboxes diverged between backends"));
        }
    }
    Ok(())
}

/// Asserts one paired observation (metrics, final inboxes, …) matches
/// between the sequential and parallel sides.
pub fn assert_eq_sides<T>(label: &str, seq: T, par: T) -> Result<(), String>
where
    T: PartialEq + Debug,
{
    if seq != par {
        return Err(format!(
            "{label} diverged between backends:\n  seq: {seq:?}\n  par: {par:?}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalent_runs_pass_and_return_the_sequential_result() {
        let out = assert_backend_equivalent(3, |b| b.threads() >= 1).unwrap();
        assert!(out);
    }

    #[test]
    fn divergent_runs_report_both_sides() {
        let err = assert_backend_equivalent(2, |b| b.threads()).unwrap_err();
        assert!(err.contains("seq: 1"));
        assert!(err.contains("par: 2"));
    }

    #[test]
    fn round_equivalence_flags_the_failing_round() {
        let mut n = 0u32;
        let err = assert_round_equivalence(3, || {
            n += 1;
            (n, if n == 2 { 99 } else { n })
        })
        .unwrap_err();
        assert!(err.contains("round 1"));
    }

    #[test]
    fn eq_sides_labels_the_divergence() {
        assert!(assert_eq_sides("metrics", 1, 1).is_ok());
        let err = assert_eq_sides("metrics", 1, 2).unwrap_err();
        assert!(err.contains("metrics diverged"));
    }
}

//! Delivery-policy trait: who may send to whom in one round.
//!
//! Each simulated model is, from the runtime's point of view, just an
//! addressing discipline: CONGEST delivers along graph edges only, the
//! CONGESTED CLIQUE unicasts between arbitrary distinct pairs, MPC addresses
//! machines with volume budgets instead of per-pair constraints. The
//! [`Topology`] trait captures exactly that discipline so the round engine
//! ([`crate::engine::RoundEngine`]) can own everything else — backend
//! fan-out, duplicate-send marking, cap enforcement, metrics — once.

use crate::cap::BandwidthCap;
use crate::metrics::SimMetrics;
use crate::wire::Wire;
use dcl_graphs::Graph;

/// Addressing discipline of a simulated model.
///
/// Implementations validate a single `(sender, recipient)` pair and expose
/// the scratch geometry for the stamp-mark duplicate-send check (see
/// `DESIGN.md` §5.3): [`route`](Topology::route) returns a *mark slot* — an
/// index into a scratch array of [`marks_len`](Topology::marks_len) entries —
/// and the engine stamps the slot with the sender id, so sending twice over
/// the same (sender, slot) pair in one round is caught in `O(1)`–`O(log
/// deg)` per message with no per-sender clearing.
///
/// # Adding a new model
///
/// A new communication model plugs into the shared runtime by implementing
/// this trait and delegating its round loop to the engine. A hypothetical
/// *broadcast-tree* model in which node 0 may message everyone and everyone
/// may message node 0:
///
/// ```
/// use dcl_sim::{BandwidthCap, RoundEngine, SendPolicy, SimMetrics, Topology};
/// use dcl_par::Backend;
///
/// struct StarTopology {
///     n: usize,
/// }
///
/// impl Topology for StarTopology {
///     fn len(&self) -> usize {
///         self.n
///     }
///     fn marks_len(&self) -> usize {
///         self.n // one duplicate-mark slot per possible recipient
///     }
///     fn route(&self, u: usize, v: usize) -> usize {
///         assert!(v < self.n, "recipient {v} out of range");
///         assert!(u == 0 || v == 0, "node {u} may only talk to the hub");
///         v
///     }
///     fn model(&self) -> &'static str {
///         "star"
///     }
/// }
///
/// // The model's simulator is now ~20 lines: hold an engine + metrics and
/// // forward rounds.
/// let topo = StarTopology { n: 5 };
/// let mut engine = RoundEngine::new(Backend::Sequential);
/// let mut metrics = SimMetrics::default();
/// let inboxes = engine.message_round(
///     &topo,
///     BandwidthCap::two_words(),
///     SendPolicy::Strict,
///     &mut metrics,
///     |v| if v == 0 { vec![(3usize, 9u32)] } else { vec![] },
/// );
/// assert_eq!(inboxes[3], vec![(0, 9u32)]);
/// assert_eq!(metrics.rounds, 1);
/// ```
pub trait Topology: Sync {
    /// Number of endpoints (nodes or machines) in the model.
    fn len(&self) -> usize;

    /// Whether the model has no endpoints.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Length of the per-worker duplicate-send mark scratch. `0` disables
    /// the duplicate check (models that allow repeated sends per pair).
    fn marks_len(&self) -> usize;

    /// Validates that `u` may address `v` this round and returns the mark
    /// slot for the duplicate-send check (ignored when
    /// [`marks_len`](Topology::marks_len) is 0).
    ///
    /// # Panics
    ///
    /// Panics on a model violation (wrong recipient for this topology).
    /// Violations are simulation bugs, never silently tolerated.
    fn route(&self, u: usize, v: usize) -> usize;

    /// Model name used in cap-violation panic messages ("CONGEST",
    /// "clique", …).
    fn model(&self) -> &'static str;
}

/// CONGEST addressing: messages travel along graph edges only. The mark
/// slot is the recipient's position in the sender's sorted adjacency list
/// (one binary search per message).
#[derive(Debug, Clone, Copy)]
pub struct NeighborTopology<'g> {
    graph: &'g Graph,
    /// Cached Δ of `graph` (scratch sizing for the duplicate-edge marks).
    max_deg: usize,
}

impl<'g> NeighborTopology<'g> {
    /// Wraps a graph as a neighbor-only delivery policy.
    pub fn new(graph: &'g Graph) -> Self {
        NeighborTopology {
            graph,
            max_deg: graph.max_degree(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }
}

impl Topology for NeighborTopology<'_> {
    fn len(&self) -> usize {
        self.graph.n()
    }

    fn marks_len(&self) -> usize {
        self.max_deg
    }

    fn route(&self, u: usize, v: usize) -> usize {
        self.graph
            .neighbors(u)
            .binary_search(&v)
            .unwrap_or_else(|_| panic!("node {u} attempted to send to non-neighbor {v}"))
    }

    fn model(&self) -> &'static str {
        "CONGEST"
    }
}

/// CONGESTED CLIQUE addressing: every ordered pair of *distinct* nodes may
/// exchange one message per round. The mark slot is the recipient id.
#[derive(Debug, Clone, Copy)]
pub struct AllPairsTopology {
    n: usize,
}

impl AllPairsTopology {
    /// An all-pairs unicast policy over `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        AllPairsTopology { n }
    }
}

impl Topology for AllPairsTopology {
    fn len(&self) -> usize {
        self.n
    }

    fn marks_len(&self) -> usize {
        self.n
    }

    fn route(&self, u: usize, v: usize) -> usize {
        assert!(v < self.n, "recipient {v} out of range");
        assert_ne!(u, v, "node {u} sent a message to itself");
        v
    }

    fn model(&self) -> &'static str {
        "clique"
    }
}

/// MPC addressing: any machine may message any machine, repeatedly — the
/// model bounds per-machine send/receive *volume*, not pair multiplicity, so
/// the duplicate check is disabled and the volume budgets are enforced by
/// the model's merge step (`dcl_mpc::Mpc::round`).
#[derive(Debug, Clone, Copy)]
pub struct MachineTopology {
    machines: usize,
}

impl MachineTopology {
    /// A machine-addressed policy over `machines` machines.
    #[must_use]
    pub fn new(machines: usize) -> Self {
        MachineTopology { machines }
    }
}

impl Topology for MachineTopology {
    fn len(&self) -> usize {
        self.machines
    }

    fn marks_len(&self) -> usize {
        0
    }

    fn route(&self, _u: usize, v: usize) -> usize {
        assert!(v < self.machines, "machine {v} out of range");
        0
    }

    fn model(&self) -> &'static str {
        "MPC"
    }
}

/// Validates one node's outgoing messages for a message round and accounts
/// them into `metrics`. Returns the largest fragment count among the
/// messages (always 1 under [`SendPolicy::Strict`]).
///
/// The duplicate check stamps `marks[topo.route(u, v)]` with the sender id —
/// slots written by other senders hold a different id, so the scratch needs
/// no clearing between senders (see `DESIGN.md` §5.3).
pub(crate) fn validate_sends<M: Wire, T: Topology + ?Sized>(
    topo: &T,
    cap: BandwidthCap,
    policy: crate::engine::SendPolicy,
    u: usize,
    msgs: &[(usize, M)],
    marks: &mut [usize],
    metrics: &mut SimMetrics,
) -> u32 {
    let dedup = !marks.is_empty();
    let mut max_fragments = 1u32;
    for (v, msg) in msgs {
        let slot = topo.route(u, *v);
        if dedup {
            assert!(
                marks[slot] != u,
                "node {u} sent two messages to {v} in one round"
            );
            marks[slot] = u;
        }
        let bits = msg.wire_bits();
        match policy {
            crate::engine::SendPolicy::Strict => metrics.account(cap, bits, topo.model()),
            crate::engine::SendPolicy::Fragment => {
                max_fragments = max_fragments.max(metrics.account_fragmented(cap, bits));
            }
        }
    }
    max_fragments
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn neighbor_topology_routes_by_adjacency_position() {
        let g = generators::star(4);
        let topo = NeighborTopology::new(&g);
        assert_eq!(topo.len(), 4);
        assert_eq!(topo.marks_len(), 3);
        assert_eq!(topo.route(0, 2), 1); // neighbors of 0 are [1, 2, 3]
        assert_eq!(topo.route(3, 0), 0);
        assert_eq!(topo.model(), "CONGEST");
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn neighbor_topology_rejects_non_edges() {
        let g = generators::path(3);
        NeighborTopology::new(&g).route(0, 2);
    }

    #[test]
    fn all_pairs_topology_routes_by_recipient() {
        let topo = AllPairsTopology::new(5);
        assert_eq!(topo.route(1, 4), 4);
        assert_eq!(topo.marks_len(), 5);
        assert_eq!(topo.model(), "clique");
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn all_pairs_topology_rejects_self_sends() {
        AllPairsTopology::new(3).route(2, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn all_pairs_topology_rejects_out_of_range() {
        AllPairsTopology::new(3).route(0, 3);
    }

    #[test]
    fn machine_topology_allows_repeats() {
        let topo = MachineTopology::new(4);
        assert_eq!(topo.marks_len(), 0, "volume-budgeted models skip dedup");
        assert_eq!(topo.route(0, 3), 0);
        assert_eq!(topo.route(0, 3), 0);
    }

    #[test]
    #[should_panic(expected = "machine 9 out of range")]
    fn machine_topology_rejects_out_of_range() {
        MachineTopology::new(4).route(0, 9);
    }
}

//! The workspace's single audited wall-clock module.
//!
//! The determinism contract (`DESIGN.md` §9, `no-wall-clock`) bans
//! `Instant`/`SystemTime` from metered code: round and bit counters are the
//! only time source an algorithm may observe. Real sockets still need
//! *liveness* timeouts — an accept or read that never completes must surface
//! as a typed error instead of hanging — and those timeouts are pure fault
//! detection: they never feed metered state, influence a coloring, or appear
//! in a report row. This module is where that one legitimate wall-clock use
//! lives, so the lint rule can exempt exactly this file (the same
//! module-confinement pattern as `std::arch` in `crates/kernels/`) and every
//! socket consumer — [`crate::transport::TcpTransport`], the `dcl_service`
//! server and client — shares one audited implementation instead of carrying
//! per-site waivers.
//!
//! # Examples
//!
//! ```
//! use dcl_sim::deadline::{park_tick, Deadline};
//! use std::time::Duration;
//!
//! let deadline = Deadline::after(Duration::from_millis(50));
//! while !deadline.expired() {
//!     // poll a non-blocking resource …
//!     park_tick();
//! }
//! assert!(deadline.expired());
//! ```

use std::time::Duration;
use std::time::Instant;

/// A monotonic liveness deadline: "give up after this much time".
///
/// Wraps the one `Instant` read the workspace's socket paths are allowed;
/// everything else observes time only through [`Deadline::expired`] /
/// [`Deadline::remaining`], which cannot leak into metered state (they
/// gate error returns, never data).
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    /// `None` = never expires (a `timeout` too large to represent as an
    /// `Instant`, e.g. `--timeout-ms u64::MAX`).
    end: Option<Instant>,
}

impl Deadline {
    /// A deadline expiring `timeout` from now. A zero `timeout` is already
    /// expired — the deterministic always-times-out configuration the
    /// service tests use. A `timeout` that overflows `Instant` saturates
    /// to "never expires" instead of panicking.
    #[must_use]
    pub fn after(timeout: Duration) -> Self {
        Deadline {
            end: Instant::now().checked_add(timeout),
        }
    }

    /// Whether the deadline has passed.
    #[must_use]
    pub fn expired(&self) -> bool {
        self.end.is_some_and(|end| Instant::now() >= end)
    }

    /// Time left before expiry (zero once expired, [`Duration::MAX`] for a
    /// never-expiring deadline).
    #[must_use]
    pub fn remaining(&self) -> Duration {
        match self.end {
            Some(end) => end.saturating_duration_since(Instant::now()),
            None => Duration::MAX,
        }
    }
}

/// One scheduling tick of a polling loop: sleeps 1 ms, long enough to yield
/// the core, short enough that accept/shutdown latency stays invisible.
/// Every busy-wait in the socket paths parks through this one function so
/// the polling granularity is a single auditable constant.
pub fn park_tick() {
    std::thread::sleep(Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_timeout_is_already_expired() {
        let d = Deadline::after(Duration::ZERO);
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
    }

    #[test]
    fn generous_timeout_is_not_expired_and_ticks_do_not_expire_it() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        park_tick();
        assert!(!d.expired());
        assert!(d.remaining() > Duration::from_secs(3000));
    }

    #[test]
    fn overflowing_timeout_saturates_to_never_expires() {
        // `--timeout-ms u64::MAX` must not panic at admission: the sum
        // overflows `Instant`, which means "never expires".
        let d = Deadline::after(Duration::MAX);
        assert!(!d.expired());
        assert_eq!(d.remaining(), Duration::MAX);
    }

    #[test]
    fn deadline_expires_after_its_timeout() {
        let d = Deadline::after(Duration::from_millis(2));
        while !d.expired() {
            park_tick();
        }
        assert!(d.expired());
    }
}

//! Cross-transport determinism properties: for every [`Topology`] policy,
//! a scripted multi-round conversation produces bit-identical inboxes and
//! [`SimMetrics`] whether the messages travel through the in-memory
//! reference ([`TransportSpec::Local`]), the channel matrix
//! ([`TransportSpec::Channel`]), or real localhost sockets
//! ([`TransportSpec::Tcp`]) — on the sequential and the parallel backend,
//! with caps swept down to `⌈log₂ n⌉` bits. Intentional cap-violation
//! panics carry the identical payload on every tier.

use dcl_graphs::{generators, Graph};
use dcl_par::Backend;
use dcl_sim::{
    AllPairsTopology, BandwidthCap, Inboxes, MachineTopology, NeighborTopology, RoundEngine,
    SendPolicy, SimMetrics, Topology, TransportSpec, TransportStats,
};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One scripted run: `rounds` unicast rounds over `topo` (each endpoint
/// messages a deterministic, `salt`-dependent subset of its peers), then —
/// on neighbor topologies — one broadcast round. Returns every inbox and
/// the accumulated metrics plus the transport's byte-level statistics.
#[allow(clippy::too_many_arguments)]
fn scripted_run<T: Topology>(
    spec: TransportSpec,
    backend: Backend,
    topo: &T,
    peers_of: &(dyn Fn(usize) -> Vec<usize> + Sync),
    cap: BandwidthCap,
    policy: SendPolicy,
    rounds: usize,
    salt: u64,
) -> (Vec<Inboxes<u64>>, SimMetrics, Option<TransportStats>) {
    let mut engine = RoundEngine::new(backend);
    engine.set_transport(spec);
    let mut metrics = SimMetrics::default();
    let mut history = Vec::new();
    for r in 0..rounds {
        let inboxes = engine.message_round(topo, cap, policy, &mut metrics, |u| {
            peers_of(u)
                .into_iter()
                .filter(|&v| !(u + v + r).is_multiple_of(3))
                .map(|v| (v, ((u as u64) * 131 + v as u64 + salt + r as u64) % 7 + 1))
                .collect::<Vec<(usize, u64)>>()
        });
        history.push(inboxes);
    }
    let stats = engine.transport_stats().copied();
    (history, metrics, stats)
}

/// The (spec, backend) grid every property sweeps, with the local
/// sequential run as the reference cell.
fn grid() -> Vec<(TransportSpec, Backend)> {
    let mut cells = Vec::new();
    for spec in TransportSpec::all() {
        for backend in [Backend::Sequential, Backend::Parallel(3)] {
            cells.push((spec, backend));
        }
    }
    cells
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// CONGEST (neighbor) topology: inboxes and metrics are bit-identical
    /// on every (transport, backend) cell, at caps down to `⌈log₂ n⌉`.
    #[test]
    fn neighbor_rounds_are_transport_identical(
        n in 6usize..28,
        p in 0.1f64..0.5,
        seed in any::<u64>(),
        salt in any::<u64>(),
        cap_mult in 1u32..4,
    ) {
        let g = generators::gnp(n, p, seed);
        let topo = NeighborTopology::new(&g);
        let log_n = (usize::BITS - (n - 1).leading_zeros()).max(1);
        let cap = BandwidthCap::new(cap_mult * log_n);
        let peers = |u: usize| g.neighbors(u).to_vec();
        let (reference, ref_metrics, ref_stats) = scripted_run(
            TransportSpec::Local, Backend::Sequential, &topo, &peers,
            cap, SendPolicy::Strict, 3, salt,
        );
        prop_assert!(ref_stats.is_none(), "the local tier has no byte layer");
        let mut channel_stats = None;
        let mut tcp_stats = None;
        for (spec, backend) in grid() {
            let (history, metrics, stats) = scripted_run(
                spec, backend, &topo, &peers, cap, SendPolicy::Strict, 3, salt,
            );
            prop_assert_eq!(&history, &reference, "inboxes diverged on {}/{:?}", spec, backend);
            prop_assert_eq!(&metrics, &ref_metrics, "metrics diverged on {}/{:?}", spec, backend);
            match spec {
                TransportSpec::Local => prop_assert!(stats.is_none()),
                TransportSpec::Channel => channel_stats = stats,
                TransportSpec::Tcp => tcp_stats = stats,
            }
        }
        // The byte tiers agree on everything above the physical layer; only
        // wire_bytes (TCP handshakes and end-of-round markers) may differ.
        let (ch, tcp) = (channel_stats.unwrap(), tcp_stats.unwrap());
        prop_assert_eq!(ch.frames, tcp.frames);
        prop_assert_eq!(ch.payload_bytes, tcp.payload_bytes);
        prop_assert_eq!(ch.packets, tcp.packets);
        prop_assert_eq!(ch.frames, ref_metrics.messages, "one frame per logical message");
    }

    /// Clique (all-pairs) topology under the fragmenting policy: wide
    /// payloads fragment identically on every tier.
    #[test]
    fn clique_fragmentation_is_transport_identical(
        n in 4usize..16,
        salt in any::<u64>(),
        cap_bits in 3u32..10,
    ) {
        let topo = AllPairsTopology::new(n);
        let cap = BandwidthCap::new(cap_bits);
        let peers = |u: usize| (0..n).filter(|&v| v != u).collect::<Vec<_>>();
        let (reference, ref_metrics, _) = scripted_run(
            TransportSpec::Local, Backend::Sequential, &topo, &peers,
            cap, SendPolicy::Fragment, 2, salt,
        );
        for (spec, backend) in grid() {
            let (history, metrics, _) = scripted_run(
                spec, backend, &topo, &peers, cap, SendPolicy::Fragment, 2, salt,
            );
            prop_assert_eq!(&history, &reference, "inboxes diverged on {}/{:?}", spec, backend);
            prop_assert_eq!(&metrics, &ref_metrics, "metrics diverged on {}/{:?}", spec, backend);
        }
    }

    /// MPC (machine) topology: any-to-any rounds are transport-identical.
    #[test]
    fn machine_rounds_are_transport_identical(
        machines in 2usize..12,
        salt in any::<u64>(),
    ) {
        let topo = MachineTopology::new(machines);
        let cap = BandwidthCap::new(64);
        let peers = |u: usize| (0..machines).filter(|&v| v != u).collect::<Vec<_>>();
        let (reference, ref_metrics, _) = scripted_run(
            TransportSpec::Local, Backend::Sequential, &topo, &peers,
            cap, SendPolicy::Strict, 2, salt,
        );
        for (spec, backend) in grid() {
            let (history, metrics, _) = scripted_run(
                spec, backend, &topo, &peers, cap, SendPolicy::Strict, 2, salt,
            );
            prop_assert_eq!(&history, &reference, "inboxes diverged on {}/{:?}", spec, backend);
            prop_assert_eq!(&metrics, &ref_metrics, "metrics diverged on {}/{:?}", spec, backend);
        }
    }
}

/// A strict-policy cap violation panics with the identical, byte-for-byte
/// assertion message whether the round ships through memory, channels, or
/// sockets — the panic fires at validation time, before any tier-specific
/// code runs.
#[test]
fn cap_violation_panics_identically_on_every_tier() {
    let g: Graph = generators::ring(8);
    let cap = BandwidthCap::new(4);
    let mut payloads = Vec::new();
    for spec in TransportSpec::all() {
        let topo = NeighborTopology::new(&g);
        let mut engine = RoundEngine::new(Backend::Sequential);
        engine.set_transport(spec);
        let mut metrics = SimMetrics::default();
        let result = catch_unwind(AssertUnwindSafe(|| {
            engine.message_round(&topo, cap, SendPolicy::Strict, &mut metrics, |u| {
                g.neighbors(u)
                    .iter()
                    .map(|&v| (v, u64::MAX))
                    .collect::<Vec<(usize, u64)>>()
            });
        }));
        let payload = result
            .expect_err("a 64-bit payload must violate the 4-bit cap")
            .downcast_ref::<String>()
            .cloned()
            .expect("cap assertions carry String payloads");
        payloads.push(payload);
    }
    assert_eq!(
        payloads[0],
        "message of 64 bits exceeds CONGEST cap of 4 bits"
    );
    assert!(
        payloads.windows(2).all(|w| w[0] == w[1]),
        "tiers disagreed on the violation payload: {payloads:?}"
    );
}

//! The `argmin_f64` contract, pinned as tests.
//!
//! Every driver's candidate-selection loop (CONGEST seed bits, CONGESTED
//! CLIQUE colors, MPC colors) funnels through [`dcl_sim::argmin_f64`], so
//! its exact semantics are part of the cross-model determinism story:
//!
//! 1. the **lowest index wins ties** — candidate order is significant and
//!    must not depend on backend or kernel tier;
//! 2. **NaN never wins** — a poisoned score must not hijack the schedule;
//! 3. the result is **identical across `Backend::{Sequential, Parallel}`**
//!    and across all four kernel tiers, for arbitrary score vectors.

use dcl_kernels::{clear_active_tier, set_active_tier, KernelTier};
use dcl_par::Pool;
use dcl_sim::argmin_f64;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Tier forcing mutates one process-global; serialize around it.
fn lock_tier() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` once per tier and restores the default dispatch afterwards.
fn per_tier<T>(mut f: impl FnMut() -> T) -> [T; 4] {
    let _guard = lock_tier();
    let out = KernelTier::all().map(|tier| {
        set_active_tier(tier);
        f()
    });
    clear_active_tier();
    out
}

#[test]
fn lowest_index_wins_ties() {
    let scores = [5.0, 2.0, 2.0, 7.0, 2.0];
    for tier_result in per_tier(|| argmin_f64(None, scores.len(), |i| scores[i])) {
        assert_eq!(tier_result, (2.0, 1));
    }
}

#[test]
fn nan_never_wins() {
    // NaN-only input keeps the (INFINITY, 0) identity; mixed input skips
    // the NaNs entirely, wherever they sit.
    for tier_result in per_tier(|| {
        let all_nan = argmin_f64(None, 3, |_| f64::NAN);
        let nan_first = [f64::NAN, 4.0, 3.0];
        let nan_mid = [3.0, f64::NAN, 4.0];
        (
            all_nan,
            argmin_f64(None, 3, |i| nan_first[i]),
            argmin_f64(None, 3, |i| nan_mid[i]),
        )
    }) {
        let (all_nan, first, mid) = tier_result;
        assert_eq!(
            (all_nan.0.to_bits(), all_nan.1),
            (f64::INFINITY.to_bits(), 0)
        );
        assert_eq!(first, (3.0, 2));
        assert_eq!(mid, (3.0, 0));
    }
}

#[test]
fn empty_input_is_the_infinity_identity() {
    for (m, i) in per_tier(|| argmin_f64(None, 0, |_| 0.0)) {
        assert_eq!((m.to_bits(), i), (f64::INFINITY.to_bits(), 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sequential and parallel backends agree bit for bit, under every
    /// kernel tier, on adversarial score vectors (exact ties via
    /// quantization, NaN, infinities, signed zeros).
    #[test]
    fn backends_and_tiers_agree(
        raw in collection::vec((0u8..8, 0.0f64..1.0), 0..64),
        threads in 2usize..=4,
    ) {
        let scores: Vec<f64> = raw
            .iter()
            .map(|&(code, v)| match code {
                4 => f64::NAN,
                5 => f64::INFINITY,
                6 => 0.0,
                7 => -0.0,
                _ => (v * 8.0).floor() / 8.0,
            })
            .collect();
        let pool = Pool::new(threads);

        let results = per_tier(|| {
            let seq = argmin_f64(None, scores.len(), |i| scores[i]);
            let par = argmin_f64(Some(&pool), scores.len(), |i| scores[i]);
            ((seq.0.to_bits(), seq.1), (par.0.to_bits(), par.1))
        });
        for (tier, (seq, par)) in KernelTier::all().iter().zip(&results) {
            prop_assert_eq!(seq, par, "backend divergence under tier {}", tier.name());
        }
        let anchor = results[0];
        for r in &results {
            prop_assert_eq!(*r, anchor, "tier divergence");
        }

        // The winner is a real argmin: no score is strictly smaller, and
        // no earlier index achieves the same minimum. (With no score below
        // the INFINITY identity the fold never moves and idx stays 0.)
        let (min, idx) = results[0].0;
        let min = f64::from_bits(min);
        if scores.iter().any(|&s| s < f64::INFINITY) {
            prop_assert!(scores.iter().all(|&s| s.is_nan() || s >= min));
            prop_assert!(scores[..idx].iter().all(|&s| s.is_nan() || s > min));
            prop_assert!(scores[idx] == min);
        } else {
            prop_assert_eq!((min.to_bits(), idx), (f64::INFINITY.to_bits(), 0));
        }
    }
}

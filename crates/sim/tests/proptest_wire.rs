//! Wire-codec and frame-reassembly fuzz: for every [`Wire`] impl, the full
//! physical path — `wire_encode` → [`encode_frame`] → split the byte stream
//! at arbitrary boundaries (modelling partial reads and coalesced TCP
//! segments) → [`FrameReader`] reassembly → `wire_decode` — is the
//! identity. This is the property the cross-transport determinism contract
//! rests on: if any codec or the framing layer lost a bit, the socket tier
//! could not be bit-identical to the in-memory reference.

use dcl_sim::transport::{encode_frame, FrameKind, FRAME_HEADER_BYTES};
use dcl_sim::{FrameReader, Wire};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Encodes each value into its own `Data` frame, splits the concatenated
/// stream at the given cut points, feeds the chunks through a
/// [`FrameReader`], and decodes every reassembled frame; returns the decoded
/// values after checking header integrity and full payload consumption.
fn reassemble<T: Wire + std::fmt::Debug>(
    values: &[T],
    sender: usize,
    cuts: &[usize],
) -> Result<Vec<T>, TestCaseError> {
    let mut stream = Vec::new();
    for v in values {
        let mut payload = Vec::new();
        v.wire_encode(&mut payload);
        let before = stream.len();
        encode_frame(
            FrameKind::Data,
            sender,
            v.wire_bits(),
            &payload,
            &mut stream,
        );
        prop_assert_eq!(
            stream.len() - before,
            FRAME_HEADER_BYTES + payload.len(),
            "frame overhead is exactly the fixed header"
        );
    }
    let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
    boundaries.push(stream.len());
    boundaries.sort_unstable();

    let mut reader = FrameReader::new();
    let mut decoded = Vec::new();
    let mut pos = 0;
    for b in boundaries {
        reader.push(&stream[pos..b]);
        pos = b;
        while let Some(frame) = reader
            .next_frame()
            .map_err(|e| TestCaseError::Fail(format!("reader rejected a valid stream: {e}")))?
        {
            prop_assert_eq!(frame.kind, FrameKind::Data);
            prop_assert_eq!(frame.sender, sender);
            let mut buf = frame.payload.as_slice();
            let value = T::wire_decode(&mut buf)
                .ok_or_else(|| TestCaseError::Fail("payload failed to decode".into()))?;
            prop_assert_eq!(
                frame.declared_bits,
                value.wire_bits(),
                "declared bit-width survives the frame header"
            );
            prop_assert!(
                buf.is_empty(),
                "decode must consume the whole payload, {} bytes left",
                buf.len()
            );
            decoded.push(value);
        }
    }
    prop_assert_eq!(
        reader.pending_bytes(),
        0,
        "no trailing bytes after the last frame"
    );
    Ok(decoded)
}

/// Runs the identity check for one value type.
fn check_identity<T: Wire + PartialEq + Clone + std::fmt::Debug>(
    values: Vec<T>,
    sender: usize,
    cuts: &[usize],
) -> Result<(), TestCaseError> {
    let decoded = reassemble(&values, sender, cuts)?;
    prop_assert_eq!(decoded, values);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unsigned integers of every width, through every split pattern.
    #[test]
    fn uints_survive_framing(
        a in proptest::collection::vec(any::<u64>(), 0..12),
        b in proptest::collection::vec(any::<u32>(), 0..12),
        c in proptest::collection::vec(any::<u8>(), 0..12),
        sender in 0usize..1024,
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        check_identity(a, sender, &cuts)?;
        check_identity(b, sender, &cuts)?;
        check_identity(c, sender, &cuts)?;
    }

    /// Tuples, options, bools, and floats — the compound scalar impls.
    #[test]
    fn compound_scalars_survive_framing(
        pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..10),
        triples in proptest::collection::vec(
            (any::<u64>(), any::<u32>(), any::<bool>()), 0..10),
        options in proptest::collection::vec(
            (any::<bool>(), any::<u32>()).prop_map(|(some, v)| some.then_some(v)), 0..10),
        floats in proptest::collection::vec(any::<f64>(), 0..10),
        sender in 0usize..1024,
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        check_identity(pairs, sender, &cuts)?;
        check_identity(triples, sender, &cuts)?;
        check_identity(options, sender, &cuts)?;
        // NaN breaks PartialEq-based comparison; compare through to_bits.
        let decoded = reassemble(&floats, sender, &cuts)?;
        let as_bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(as_bits(&decoded), as_bits(&floats));
    }

    /// Variable-length payloads: vectors, nested vectors, vectors of tuples.
    #[test]
    fn vectors_survive_framing(
        flat in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..16), 0..6),
        keyed in proptest::collection::vec(
            proptest::collection::vec((any::<u64>(), any::<u64>()), 0..8), 0..6),
        sender in 0usize..1024,
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        check_identity(flat, sender, &cuts)?;
        check_identity(keyed, sender, &cuts)?;
    }

    /// Byte-at-a-time delivery — the most adversarial split — reassembles a
    /// mixed stream identically to one-shot delivery.
    #[test]
    fn byte_at_a_time_equals_one_shot(
        values in proptest::collection::vec(
            (any::<u64>(),
             (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v))),
            1..8),
        sender in 0usize..64,
    ) {
        let every_byte: Vec<usize> = (0..4096).collect();
        let one_shot = reassemble(&values, sender, &[])?;
        let trickled = reassemble(&values, sender, &every_byte)?;
        prop_assert_eq!(&one_shot, &values);
        prop_assert_eq!(one_shot, trickled);
    }
}

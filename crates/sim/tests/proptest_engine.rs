//! Engine-level backend-equivalence properties: the model-violation panics
//! raised by [`NeighborTopology`]'s addressing check fire with the identical
//! payload under `Backend::Sequential` and `Backend::Parallel` (the pool
//! re-raises the lowest-indexed panicking job, so the observed message is
//! deterministic — `DESIGN.md` §5.1).

use dcl_graphs::generators;
use dcl_par::Backend;
use dcl_sim::{BandwidthCap, NeighborTopology, RoundEngine, SendPolicy, SimMetrics};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs one round in which `sender_node` messages `target` (plus every node
/// messaging its real neighbors, so the parallel fan-out has genuine work on
/// every chunk) and returns the panic message, if any.
fn round_panic_message(
    backend: Backend,
    g: &dcl_graphs::Graph,
    sender_node: usize,
    target: usize,
) -> Option<String> {
    let topo = NeighborTopology::new(g);
    let mut engine = RoundEngine::new(backend);
    let mut metrics = SimMetrics::default();
    let result = catch_unwind(AssertUnwindSafe(|| {
        engine.message_round(
            &topo,
            BandwidthCap::two_words(),
            SendPolicy::Strict,
            &mut metrics,
            |v| {
                let mut msgs: Vec<(usize, u64)> = g
                    .neighbors(v)
                    .iter()
                    .map(|&u| (u, (v + u) as u64))
                    .collect();
                if v == sender_node {
                    msgs.push((target, 7));
                }
                msgs
            },
        )
    }));
    result.err().map(|payload| {
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| {
                payload
                    .downcast_ref::<&'static str>()
                    .map(|s| s.to_string())
            })
            .unwrap_or_else(|| "<non-string panic payload>".into())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A send to a non-neighbor panics with the identical message under both
    /// backends; the same round without the violation delivers identical
    /// inboxes and metrics.
    #[test]
    fn non_neighbor_rejection_is_backend_identical(
        n in 6usize..80,
        p in 0.05f64..0.4,
        seed in any::<u64>(),
        threads in 2usize..6,
        pick in any::<u64>(),
    ) {
        let g = generators::gnp(n, p, seed);
        // Deterministically pick a non-adjacent ordered pair (u, w).
        let mut non_edge = None;
        'outer: for off in 0..n {
            let u = (pick as usize + off) % n;
            for w in 0..n {
                if w != u && !g.has_edge(u, w) {
                    non_edge = Some((u, w));
                    break 'outer;
                }
            }
        }
        prop_assume!(non_edge.is_some()); // complete graphs have no non-edge
        let (u, w) = non_edge.unwrap();

        let seq = round_panic_message(Backend::Sequential, &g, u, w);
        let par = round_panic_message(Backend::Parallel(threads), &g, u, w);
        let expected = format!("node {u} attempted to send to non-neighbor {w}");
        prop_assert_eq!(seq.as_deref(), Some(expected.as_str()));
        prop_assert_eq!(seq, par, "backends observed different rejection payloads");

        // Control: the violation-free round is bit-identical across backends.
        let topo = NeighborTopology::new(&g);
        let clean = |v: usize| -> Vec<(usize, u64)> {
            g.neighbors(v).iter().map(|&x| (x, (v * n + x) as u64)).collect()
        };
        let mut seq_engine = RoundEngine::new(Backend::Sequential);
        let mut par_engine = RoundEngine::new(Backend::Parallel(threads));
        let mut seq_metrics = SimMetrics::default();
        let mut par_metrics = SimMetrics::default();
        let cap = BandwidthCap::two_words();
        let a = seq_engine.message_round(&topo, cap, SendPolicy::Strict, &mut seq_metrics, clean);
        let b = par_engine.message_round(&topo, cap, SendPolicy::Strict, &mut par_metrics, clean);
        if a != b || seq_metrics != par_metrics {
            return Err(TestCaseError::Fail(
                "clean round diverged between backends".into(),
            ));
        }
    }
}

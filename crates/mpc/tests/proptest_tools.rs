//! Property-based tests for the Section 5 MPC toolbox against centralized
//! reference implementations.

use dcl_mpc::machine::Mpc;
use dcl_mpc::tools;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Distributed sort equals the centralized sort, for arbitrary machine
    /// counts and memory sizes (including the bitonic fallback regime).
    #[test]
    fn sort_matches_reference(
        items in prop::collection::vec(0u64..1000, 0..200),
        machines in 2usize..12,
        s in 16usize..128,
    ) {
        // The input must fit the cluster: N items of <= 2 words (plus the
        // sort's tiebreak word) over `machines` memories of `s` words.
        prop_assume!(items.len() * 3 <= machines * s);
        let mut mpc = Mpc::new(machines, s);
        let sorted = tools::sort(&mut mpc, tools::scatter(machines, &items));
        let flat = tools::gather(&sorted);
        let mut expect = items.clone();
        expect.sort_unstable();
        prop_assert_eq!(flat, expect);
        // Blocks are contiguous rank ranges: non-decreasing across blocks.
        let mut last: Option<u64> = None;
        for block in &sorted {
            for &x in block {
                if let Some(prev) = last {
                    prop_assert!(prev <= x);
                }
                last = Some(x);
            }
        }
    }

    /// Prefix sums with addition match the running total.
    #[test]
    fn prefix_sums_match_reference(
        items in prop::collection::vec(0u64..1000, 0..150),
        machines in 2usize..10,
    ) {
        let mut mpc = Mpc::new(machines, 64);
        let dist = tools::scatter(machines, &items);
        let scanned = tools::prefix_sums(&mut mpc, &dist, |a, b| a + b);
        let order = tools::gather(&dist);
        let flat = tools::gather(&scanned);
        let mut acc = 0u64;
        for (x, s) in order.iter().zip(flat.iter()) {
            acc += x;
            prop_assert_eq!(*s, acc);
        }
    }

    /// Set difference agrees with a HashSet reference.
    #[test]
    fn set_difference_matches_reference(
        a in prop::collection::vec((0u64..5, 0u64..30), 0..80),
        b in prop::collection::vec((0u64..5, 0u64..30), 0..80),
        machines in 2usize..8,
    ) {
        let reference: std::collections::HashSet<(u64, u64)> = b.iter().copied().collect();
        let mut mpc = Mpc::new(machines, 96);
        let result = tools::set_difference(
            &mut mpc,
            &tools::scatter(machines, &a),
            &tools::scatter(machines, &b),
        );
        let mut seen = 0usize;
        for block in &result {
            for &((s, v), in_b) in block {
                prop_assert_eq!(in_b, reference.contains(&(s, v)));
                seen += 1;
            }
        }
        prop_assert_eq!(seen, a.len());
    }

    /// Ranks agree with per-set sorting.
    #[test]
    fn ranks_match_reference(
        raw in prop::collection::btree_set((0u64..4, 0u64..50), 0..60),
        machines in 2usize..8,
    ) {
        let a: Vec<(u64, u64)> = raw.into_iter().collect();
        let mut mpc = Mpc::new(machines, 96);
        let result = tools::ranks(&mut mpc, &tools::scatter(machines, &a));
        for block in &result {
            for &((s, v), r) in block {
                let expected = a.iter().filter(|&&(s2, v2)| s2 == s && v2 < v).count() as u64;
                prop_assert_eq!(r, expected);
            }
        }
    }
}

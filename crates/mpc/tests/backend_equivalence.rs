//! Parallel vs sequential backend equivalence for the MPC simulator and the
//! Theorem 1.4/1.5 colorings.

use dcl_coloring::instance::ListInstance;
use dcl_graphs::{generators, validation};
use dcl_mpc::machine::Mpc;
use dcl_mpc::{
    mpc_color_linear, mpc_color_linear_with_backend, mpc_color_sublinear,
    mpc_color_sublinear_with_backend,
};
use dcl_par::Backend;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Linear-memory MPC coloring is identical per backend.
    #[test]
    fn mpc_linear_equivalence(n in 6usize..26, p in 0.1f64..0.35, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let seq = mpc_color_linear(&inst);
        let par = mpc_color_linear_with_backend(&inst, Backend::Parallel(3));
        prop_assert_eq!(&seq.colors, &par.colors);
        prop_assert_eq!(seq.metrics, par.metrics);
        prop_assert_eq!(validation::check_proper(&g, &seq.colors), None);
    }

    /// Sublinear-memory MPC coloring is identical per backend.
    #[test]
    fn mpc_sublinear_equivalence(n in 8usize..22, seed in any::<u64>()) {
        let g = generators::gnp(n, 0.25, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let seq = mpc_color_sublinear(&inst, 0.6);
        let par = mpc_color_sublinear_with_backend(&inst, 0.6, Backend::Parallel(4));
        prop_assert_eq!(&seq.colors, &par.colors);
        prop_assert_eq!(seq.metrics, par.metrics);
    }

    /// Raw MPC rounds deliver identical inboxes and metrics per backend.
    #[test]
    fn mpc_round_equivalence(machines in 2usize..50, seed in any::<u64>(), threads in 2usize..6) {
        let sender = |i: usize| -> Vec<(usize, u64)> {
            (0..machines)
                .filter(|&d| d != i && (d + i + seed as usize) % 4 == 0)
                .map(|d| (d, (i * machines + d) as u64))
                .collect()
        };
        let mut seq = Mpc::new(machines, 4 * machines.max(4));
        let mut par = Mpc::with_backend(machines, 4 * machines.max(4), Backend::Parallel(threads));
        for _ in 0..2 {
            prop_assert_eq!(seq.round(sender), par.round(sender));
        }
        prop_assert_eq!(seq.metrics(), par.metrics());
    }
}

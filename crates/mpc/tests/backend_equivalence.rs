//! Parallel vs sequential backend equivalence for the MPC simulator and the
//! Theorem 1.4/1.5 colorings, via the shared `dcl_sim::test_util` helpers
//! (this file only contributes the MPC runners).

use dcl_coloring::instance::ListInstance;
use dcl_graphs::{generators, validation};
use dcl_mpc::machine::Mpc;
use dcl_mpc::{mpc_color_linear_with, mpc_color_sublinear_with};
use dcl_par::Backend;
use dcl_sim::test_util::{assert_backend_equivalent, assert_eq_sides, assert_round_equivalence};
use dcl_sim::ExecConfig;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Linear-memory MPC coloring is identical per backend.
    #[test]
    fn mpc_linear_equivalence(n in 6usize..26, p in 0.1f64..0.35, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let seq = assert_backend_equivalent(3, |backend| {
            let r = mpc_color_linear_with(&inst, &ExecConfig::default().with_backend(backend));
            (r.colors, r.metrics)
        })
        .map_err(TestCaseError::Fail)?;
        prop_assert_eq!(validation::check_proper(&g, &seq.0), None);
    }

    /// Sublinear-memory MPC coloring is identical per backend.
    #[test]
    fn mpc_sublinear_equivalence(n in 8usize..22, seed in any::<u64>()) {
        let g = generators::gnp(n, 0.25, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        assert_backend_equivalent(4, |backend| {
            let r = mpc_color_sublinear_with(&inst, 0.6, &ExecConfig::default().with_backend(backend));
            (r.colors, r.metrics)
        })
        .map_err(TestCaseError::Fail)?;
    }

    /// Raw MPC rounds deliver identical inboxes and metrics per backend.
    #[test]
    fn mpc_round_equivalence(machines in 2usize..50, seed in any::<u64>(), threads in 2usize..6) {
        let sender = |i: usize| -> Vec<(usize, u64)> {
            (0..machines)
                .filter(|&d| d != i && (d + i + seed as usize).is_multiple_of(4))
                .map(|d| (d, (i * machines + d) as u64))
                .collect()
        };
        let mut seq = Mpc::new(machines, 4 * machines.max(4));
        let mut par = Mpc::with_backend(machines, 4 * machines.max(4), Backend::Parallel(threads));
        assert_round_equivalence(2, || (seq.round(sender), par.round(sender)))
            .map_err(TestCaseError::Fail)?;
        assert_eq_sides("metrics", seq.metrics(), par.metrics()).map_err(TestCaseError::Fail)?;
    }
}

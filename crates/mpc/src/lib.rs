//! MPC (Massively Parallel Computation) model: simulator, the Section 5
//! toolbox, and the deterministic coloring algorithms of Theorems 1.4/1.5.
//!
//! - [`machine`] — the simulator: machines with `S`-word memories; per-round
//!   send and receive volumes and resident storage are capped at `O(S)`
//!   words and enforced;
//! - [`tools`] — Section 5 primitives built on the simulator: constant-time
//!   sorting (deterministic regular sampling), prefix sums w.r.t. any
//!   associative operator (Definition 5.2), segmented scans, the set
//!   difference of Definition 5.3, and within-set ranks (Corollary 5.2);
//! - [`coloring`] — Observation 4.1 ((Δ+1) → (degree+1) lists), the
//!   MIS-avoidance conflict resolution, Theorem 1.4 (linear memory,
//!   `O(log Δ · log C)` rounds), Theorem 1.5 (sublinear memory,
//!   `O(log Δ · log C + log n)` rounds) and the Lemma 4.2 finisher.

#![forbid(unsafe_code)]
// Node ids double as indices into per-node state vectors throughout the
// simulators; indexed loops over `0..n` are the clearest expression of
// "for every node" here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod coloring;
pub mod instance;
pub mod machine;
pub mod scenario;
pub mod tools;

pub use coloring::{
    mpc_color_linear, mpc_color_linear_with, mpc_color_sublinear, mpc_color_sublinear_with,
    MpcColoringResult,
};
pub use machine::{Mpc, MpcMetrics};
pub use scenario::{MpcLinearScenario, MpcSublinearScenario};

//! The MPC simulator.
//!
//! `M = O((n + m)/S)` machines, each with a memory of `S` words (a word is
//! `O(log n)` bits). Per round, every machine may send and receive at most
//! `O(S)` words; local computation is free. The simulator enforces the send
//! and receive budgets on every [`Mpc::round`] and offers
//! [`Mpc::assert_storage`] for algorithms to declare their resident state
//! (checked against the memory bound).

use dcl_par::{Backend, Pool};

/// Word size of message payloads.
pub trait WordSized {
    /// Number of machine words the value occupies.
    fn words(&self) -> usize;
}

impl WordSized for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for f64 {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for (u64, u64) {
    fn words(&self) -> usize {
        2
    }
}

impl WordSized for (u64, u64, u64) {
    fn words(&self) -> usize {
        3
    }
}

impl<T: WordSized> WordSized for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(WordSized::words).sum::<usize>() + 1
    }
}

/// Cost counters of an [`Mpc`] cluster.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpcMetrics {
    /// Synchronous rounds elapsed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Words moved.
    pub words: u64,
    /// Largest per-machine storage declared via
    /// [`Mpc::assert_storage`].
    pub max_storage_words: usize,
}

/// An MPC cluster.
///
/// # Examples
///
/// ```
/// use dcl_mpc::machine::Mpc;
///
/// let mut mpc = Mpc::new(4, 100);
/// let inboxes = mpc.round(|machine| {
///     if machine == 0 { vec![(2usize, 42u64)] } else { vec![] }
/// });
/// assert_eq!(inboxes[2], vec![(0, 42)]);
/// assert_eq!(mpc.metrics().rounds, 1);
/// ```
#[derive(Debug)]
pub struct Mpc {
    machines: usize,
    memory_words: usize,
    /// Budget slack constant: per-round send/receive and storage may reach
    /// `slack · S` (the model's `O(S)`).
    slack: usize,
    metrics: MpcMetrics,
    backend: Backend,
    /// Worker pool, present only when `backend` is effectively parallel.
    pool: Option<Pool>,
}

/// Per-machine inboxes: `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(usize, M)>>;

impl Mpc {
    /// Creates a cluster of `machines` machines with `memory_words`-word
    /// memories (slack constant 4).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(machines: usize, memory_words: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(memory_words > 0, "memory must be positive");
        Mpc {
            machines,
            memory_words,
            slack: 4,
            metrics: MpcMetrics::default(),
            backend: Backend::Sequential,
            pool: None,
        }
    }

    /// Creates a cluster with an explicit round-execution backend.
    pub fn with_backend(machines: usize, memory_words: usize, backend: Backend) -> Self {
        let mut mpc = Mpc::new(machines, memory_words);
        mpc.set_backend(backend);
        mpc
    }

    /// Switches the round-execution backend. Results are bit-identical
    /// across backends; only wall-clock changes.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        self.pool = backend.is_parallel().then(|| Pool::new(backend.threads()));
    }

    /// The active round-execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// Memory size `S` in words.
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> MpcMetrics {
        self.metrics
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// One synchronous round; `sender(i)` lists machine `i`'s outgoing
    /// `(recipient, payload)` messages.
    ///
    /// # Panics
    ///
    /// Panics if a machine sends or receives more than `O(S)` words or
    /// addresses an unknown machine.
    /// Under [`Backend::Parallel`] the `sender` closures (and the per-message
    /// [`WordSized::words`] sizing) are evaluated on the worker pool; the
    /// send/receive budget checks are then replayed message-by-message in
    /// machine order on the calling thread, so budgets, panics, metrics and
    /// inboxes are bit-identical to the sequential backend.
    pub fn round<M, F>(&mut self, sender: F) -> Inboxes<M>
    where
        M: WordSized + Send,
        F: Fn(usize) -> Vec<(usize, M)> + Sync,
    {
        self.metrics.rounds += 1;
        let budget = self.slack * self.memory_words;
        let outgoing: Vec<Vec<(usize, usize, M)>> = match &self.pool {
            Some(pool) => pool
                .map_chunks(self.machines, |range| {
                    range
                        .map(|i| {
                            sender(i)
                                .into_iter()
                                .map(|(dst, msg)| (dst, msg.words(), msg))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                })
                .into_iter()
                .flatten()
                .collect(),
            None => (0..self.machines)
                .map(|i| {
                    sender(i)
                        .into_iter()
                        .map(|(dst, msg)| (dst, msg.words(), msg))
                        .collect()
                })
                .collect(),
        };
        let mut received = vec![0usize; self.machines];
        let mut inboxes: Inboxes<M> = (0..self.machines).map(|_| Vec::new()).collect();
        for (i, msgs) in outgoing.into_iter().enumerate() {
            let mut sent = 0usize;
            for (dst, w, msg) in msgs {
                assert!(dst < self.machines, "machine {dst} out of range");
                sent += w;
                received[dst] += w;
                assert!(
                    sent <= budget,
                    "machine {i} exceeded its send budget of {budget} words"
                );
                assert!(
                    received[dst] <= budget,
                    "machine {dst} exceeded its receive budget of {budget} words"
                );
                self.metrics.messages += 1;
                self.metrics.words += w as u64;
                inboxes[dst].push((i, msg));
            }
        }
        inboxes
    }

    /// Declares machine `i`'s resident storage; panics if it exceeds the
    /// memory bound `O(S)`.
    pub fn assert_storage(&mut self, machine: usize, words: usize) {
        let budget = self.slack * self.memory_words;
        assert!(
            words <= budget,
            "machine {machine} stores {words} words, exceeding its memory of {budget}"
        );
        self.metrics.max_storage_words = self.metrics.max_storage_words.max(words);
    }

    /// Charges `rounds` rounds without traffic (schedule steps whose cost is
    /// a closed formula).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }

    /// Charges `words` words of traffic (for formula-cost collectives),
    /// split across `messages` messages.
    pub fn charge_traffic(&mut self, messages: u64, words: u64) {
        self.metrics.messages += messages;
        self.metrics.words += words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_delivers() {
        let mut mpc = Mpc::new(3, 10);
        let inboxes = mpc.round(|i| match i {
            0 => vec![(1, 5u64)],
            1 => vec![(2, 6u64), (0, 7u64)],
            _ => vec![],
        });
        assert_eq!(inboxes[0], vec![(1, 7)]);
        assert_eq!(inboxes[1], vec![(0, 5)]);
        assert_eq!(inboxes[2], vec![(1, 6)]);
        assert_eq!(mpc.metrics().words, 3);
    }

    #[test]
    fn parallel_backend_matches_sequential_bit_for_bit() {
        let sender = |i: usize| -> Vec<(usize, u64)> {
            (0..100usize)
                .filter(|&d| d != i && (d + i) % 7 == 0)
                .map(|d| (d, (i * 1000 + d) as u64))
                .collect()
        };
        let mut seq = Mpc::new(100, 400);
        let mut par = Mpc::with_backend(100, 400, dcl_par::Backend::Parallel(4));
        for _ in 0..3 {
            assert_eq!(seq.round(sender), par.round(sender));
        }
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "receive budget")]
    fn parallel_receive_budget_enforced() {
        let mut mpc = Mpc::with_backend(100, 2, dcl_par::Backend::Parallel(3));
        // Many senders within their own budgets flood machine 99
        // (budget = slack 4 × S 2 = 8 words; the ninth word trips it).
        let _ = mpc.round(|i| if i < 9 { vec![(99usize, 1u64)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "send budget")]
    fn send_budget_enforced() {
        let mut mpc = Mpc::new(2, 2);
        // Budget = 8 words; send 9 single-word messages.
        let _ = mpc.round(|i| {
            if i == 0 {
                (0..9).map(|_| (1usize, 1u64)).collect()
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "receive budget")]
    fn receive_budget_enforced() {
        let mut mpc = Mpc::new(3, 2);
        // Two senders each within budget, but the receiver is flooded.
        let _ = mpc.round(|i| {
            if i < 2 {
                (0..5).map(|_| (2usize, 1u64)).collect()
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeding its memory")]
    fn storage_bound_enforced() {
        let mut mpc = Mpc::new(2, 10);
        mpc.assert_storage(0, 41);
    }

    #[test]
    fn storage_highwater_recorded() {
        let mut mpc = Mpc::new(2, 100);
        mpc.assert_storage(0, 50);
        mpc.assert_storage(1, 80);
        assert_eq!(mpc.metrics().max_storage_words, 80);
    }

    #[test]
    fn word_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!((1u64, 2u64).words(), 2);
        assert_eq!(vec![1u64, 2, 3].words(), 4);
    }
}

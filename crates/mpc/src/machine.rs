//! The MPC simulator.
//!
//! `M = O((n + m)/S)` machines, each with a memory of `S` words (a word is
//! `O(log n)` bits). Per round, every machine may send and receive at most
//! `O(S)` words; local computation is free. The simulator enforces the send
//! and receive budgets on every [`Mpc::round`] and offers
//! [`Mpc::assert_storage`] for algorithms to declare their resident state
//! (checked against the memory bound).
//!
//! The backend fan-out runs through the shared [`dcl_sim`] round engine
//! ([`dcl_sim::MachineTopology`] is the addressing policy: any machine may
//! message any machine, repeatedly); the volume budgets are MPC-specific
//! and are replayed message-by-message in machine order on the calling
//! thread, since receive budgets couple different senders.

use dcl_par::{Backend, Pool};
use dcl_sim::{
    ExecConfig, MachineTopology, RoundEngine, SendPolicy, SimMetrics, Topology, TransportSpec,
    TransportStats, Wire,
};

/// Word size of message payloads.
///
/// Every MPC payload is also [`Wire`] (all the impls below have blanket
/// `Wire` coverage in `dcl_sim`), which is what lets [`Mpc::round`] ship
/// over the byte transports of the transport tier.
pub trait WordSized {
    /// Number of machine words the value occupies.
    fn words(&self) -> usize;
}

impl WordSized for u64 {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for f64 {
    fn words(&self) -> usize {
        1
    }
}

impl WordSized for (u64, u64) {
    fn words(&self) -> usize {
        2
    }
}

impl WordSized for (u64, u64, u64) {
    fn words(&self) -> usize {
        3
    }
}

impl<T: WordSized> WordSized for Vec<T> {
    fn words(&self) -> usize {
        self.iter().map(WordSized::words).sum::<usize>() + 1
    }
}

/// Cost counters of an [`Mpc`] cluster.
///
/// Internally the cluster meters through the shared [`SimMetrics`] (with
/// words playing the role of bits); this read-out struct keeps the
/// MPC-native field names plus the storage high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MpcMetrics {
    /// Synchronous rounds elapsed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Words moved.
    pub words: u64,
    /// Largest per-machine storage declared via
    /// [`Mpc::assert_storage`].
    pub max_storage_words: usize,
}

impl From<MpcMetrics> for SimMetrics {
    /// The unified read-out used by the `dcl_runner` front door: `bits`
    /// carries the word count (MPC's accounting unit). Per-message size
    /// maxima are not tracked in this model — the storage high-water mark
    /// plays that role — so `max_message_bits` reads 0.
    fn from(m: MpcMetrics) -> Self {
        SimMetrics {
            rounds: m.rounds,
            messages: m.messages,
            bits: m.words,
            max_message_bits: 0,
        }
    }
}

/// An MPC cluster.
///
/// # Examples
///
/// ```
/// use dcl_mpc::machine::Mpc;
///
/// let mut mpc = Mpc::new(4, 100);
/// let inboxes = mpc.round(|machine| {
///     if machine == 0 { vec![(2usize, 42u64)] } else { vec![] }
/// });
/// assert_eq!(inboxes[2], vec![(0, 42)]);
/// assert_eq!(mpc.metrics().rounds, 1);
/// ```
#[derive(Debug)]
pub struct Mpc {
    topo: MachineTopology,
    memory_words: usize,
    /// Budget slack constant: per-round send/receive and storage may reach
    /// `slack · S` (the model's `O(S)`).
    slack: usize,
    /// Shared counters; `bits` counts *words* in this model.
    metrics: SimMetrics,
    max_storage_words: usize,
    engine: RoundEngine,
}

/// Per-machine inboxes: `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(usize, M)>>;

impl Mpc {
    /// Creates a cluster of `machines` machines with `memory_words`-word
    /// memories (slack constant 4).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(machines: usize, memory_words: usize) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(memory_words > 0, "memory must be positive");
        Mpc {
            topo: MachineTopology::new(machines),
            memory_words,
            slack: 4,
            metrics: SimMetrics::default(),
            max_storage_words: 0,
            engine: RoundEngine::new(Backend::Sequential),
        }
    }

    /// Creates a cluster with an explicit round-execution backend.
    pub fn with_backend(machines: usize, memory_words: usize, backend: Backend) -> Self {
        let mut mpc = Mpc::new(machines, memory_words);
        mpc.set_backend(backend);
        mpc
    }

    /// Creates a cluster from an [`ExecConfig`]: the config's backend and
    /// transport tier (the cap override is ignored — MPC's bandwidth role
    /// is played by the per-machine word budget).
    pub fn from_exec(machines: usize, memory_words: usize, exec: &ExecConfig) -> Self {
        let mut mpc = Mpc::new(machines, memory_words);
        mpc.set_backend(exec.backend);
        mpc.set_transport(exec.transport);
        mpc
    }

    /// Switches the round-execution backend. Results are bit-identical
    /// across backends; only wall-clock changes.
    pub fn set_backend(&mut self, backend: Backend) {
        self.engine.set_backend(backend);
    }

    /// The active round-execution backend.
    pub fn backend(&self) -> Backend {
        self.engine.backend()
    }

    /// Switches the transport tier carrying [`Mpc::round`]. Results are
    /// bit-identical across tiers; only the physical layer — metered by
    /// [`Mpc::transport_stats`] — changes.
    pub fn set_transport(&mut self, transport: TransportSpec) {
        self.engine.set_transport(transport);
    }

    /// The active transport tier.
    pub fn transport(&self) -> TransportSpec {
        self.engine.transport_spec()
    }

    /// Physical-layer counters of the built transport (`None` on the
    /// in-memory reference tier, which never serializes).
    pub fn transport_stats(&self) -> Option<&TransportStats> {
        self.engine.transport_stats()
    }

    /// The worker pool of a parallel backend (`None` under
    /// [`Backend::Sequential`]). The coloring drivers use it to evaluate
    /// seed-segment candidates in parallel — free local computation in the
    /// MPC cost model.
    pub fn pool(&self) -> Option<&Pool> {
        self.engine.pool()
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.topo.len()
    }

    /// Memory size `S` in words.
    pub fn memory_words(&self) -> usize {
        self.memory_words
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> MpcMetrics {
        MpcMetrics {
            rounds: self.metrics.rounds,
            messages: self.metrics.messages,
            words: self.metrics.bits,
            max_storage_words: self.max_storage_words,
        }
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// One synchronous round; `sender(i)` lists machine `i`'s outgoing
    /// `(recipient, payload)` messages.
    ///
    /// # Panics
    ///
    /// Panics if a machine sends or receives more than `O(S)` words or
    /// addresses an unknown machine.
    /// Under [`Backend::Parallel`] the `sender` closures (and the per-message
    /// [`WordSized::words`] sizing) are evaluated on the worker pool; the
    /// send/receive budget checks are then replayed message-by-message in
    /// machine order on the calling thread, so budgets, panics, metrics and
    /// inboxes are bit-identical to the sequential backend.
    pub fn round<M, F>(&mut self, sender: F) -> Inboxes<M>
    where
        M: WordSized + Wire + Send,
        F: Fn(usize) -> Vec<(usize, M)> + Sync,
    {
        self.metrics.rounds += 1;
        let machines = self.machines();
        let budget = self.slack * self.memory_words;
        // Shared fan-out: evaluate the senders (and the per-message
        // `WordSized::words` sizing) on the pool; the volume-budget checks
        // below are then replayed message-by-message in machine order.
        let (outgoing, _) = self.engine.fan_out(
            machines,
            0,
            &mut self.metrics,
            |i| {
                sender(i)
                    .into_iter()
                    .map(|(dst, msg)| (dst, msg.words(), msg))
                    .collect::<Vec<_>>()
            },
            |_, _, _, _| 1,
        );
        let mut received = vec![0usize; machines];
        let mut validated: Vec<Vec<(usize, M)>> = Vec::with_capacity(machines);
        for (i, msgs) in outgoing.into_iter().enumerate() {
            let mut sent = 0usize;
            let mut row = Vec::with_capacity(msgs.len());
            for (dst, w, msg) in msgs {
                let _ = self.topo.route(i, dst);
                sent += w;
                received[dst] += w;
                assert!(
                    sent <= budget,
                    "machine {i} exceeded its send budget of {budget} words"
                );
                assert!(
                    received[dst] <= budget,
                    "machine {dst} exceeded its receive budget of {budget} words"
                );
                self.metrics.messages += 1;
                self.metrics.bits += w as u64;
                row.push((dst, msg));
            }
            validated.push(row);
        }
        // Word budgets are already enforced above (MPC has no per-message
        // bit cap), so the transport ships uncapped under the strict policy.
        self.engine
            .ship(machines, "MPC", None, SendPolicy::Strict, validated)
    }

    /// Declares machine `i`'s resident storage; panics if it exceeds the
    /// memory bound `O(S)`.
    pub fn assert_storage(&mut self, machine: usize, words: usize) {
        let budget = self.slack * self.memory_words;
        assert!(
            words <= budget,
            "machine {machine} stores {words} words, exceeding its memory of {budget}"
        );
        self.max_storage_words = self.max_storage_words.max(words);
    }

    /// Charges `rounds` rounds without traffic (schedule steps whose cost is
    /// a closed formula).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }

    /// Charges `words` words of traffic (for formula-cost collectives),
    /// split across `messages` messages.
    pub fn charge_traffic(&mut self, messages: u64, words: u64) {
        self.metrics.messages += messages;
        self.metrics.bits += words;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_delivers() {
        let mut mpc = Mpc::new(3, 10);
        let inboxes = mpc.round(|i| match i {
            0 => vec![(1, 5u64)],
            1 => vec![(2, 6u64), (0, 7u64)],
            _ => vec![],
        });
        assert_eq!(inboxes[0], vec![(1, 7)]);
        assert_eq!(inboxes[1], vec![(0, 5)]);
        assert_eq!(inboxes[2], vec![(1, 6)]);
        assert_eq!(mpc.metrics().words, 3);
    }

    #[test]
    fn parallel_backend_matches_sequential_bit_for_bit() {
        let sender = |i: usize| -> Vec<(usize, u64)> {
            (0..100usize)
                .filter(|&d| d != i && (d + i).is_multiple_of(7))
                .map(|d| (d, (i * 1000 + d) as u64))
                .collect()
        };
        let mut seq = Mpc::new(100, 400);
        let mut par = Mpc::with_backend(100, 400, dcl_par::Backend::Parallel(4));
        for _ in 0..3 {
            assert_eq!(seq.round(sender), par.round(sender));
        }
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "receive budget")]
    fn parallel_receive_budget_enforced() {
        let mut mpc = Mpc::with_backend(100, 2, dcl_par::Backend::Parallel(3));
        // Many senders within their own budgets flood machine 99
        // (budget = slack 4 × S 2 = 8 words; the ninth word trips it).
        let _ = mpc.round(|i| if i < 9 { vec![(99usize, 1u64)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "send budget")]
    fn send_budget_enforced() {
        let mut mpc = Mpc::new(2, 2);
        // Budget = 8 words; send 9 single-word messages.
        let _ = mpc.round(|i| {
            if i == 0 {
                (0..9).map(|_| (1usize, 1u64)).collect()
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "receive budget")]
    fn receive_budget_enforced() {
        let mut mpc = Mpc::new(3, 2);
        // Two senders each within budget, but the receiver is flooded.
        let _ = mpc.round(|i| {
            if i < 2 {
                (0..5).map(|_| (2usize, 1u64)).collect()
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeding its memory")]
    fn storage_bound_enforced() {
        let mut mpc = Mpc::new(2, 10);
        mpc.assert_storage(0, 41);
    }

    #[test]
    fn storage_highwater_recorded() {
        let mut mpc = Mpc::new(2, 100);
        mpc.assert_storage(0, 50);
        mpc.assert_storage(1, 80);
        assert_eq!(mpc.metrics().max_storage_words, 80);
    }

    #[test]
    fn byte_transports_match_the_local_reference_bit_for_bit() {
        let sender = |i: usize| -> Vec<(usize, (u64, u64))> {
            (0..12usize)
                .filter(|&d| d != i && (d + i).is_multiple_of(4))
                .map(|d| (d, ((i * 100 + d) as u64, i as u64)))
                .collect()
        };
        let mut reference = Mpc::new(12, 50);
        let rounds_ref = [reference.round(sender), reference.round(sender)];
        for transport in [TransportSpec::Channel, TransportSpec::Tcp] {
            let exec = ExecConfig::default().with_transport(transport);
            let mut mpc = Mpc::from_exec(12, 50, &exec);
            assert_eq!(mpc.transport(), transport);
            assert_eq!(rounds_ref[0], mpc.round(sender), "{transport}");
            assert_eq!(rounds_ref[1], mpc.round(sender), "{transport}");
            assert_eq!(reference.metrics(), mpc.metrics(), "{transport}");
            let stats = mpc.transport_stats().expect("byte tiers meter traffic");
            assert_eq!(stats.frames, reference.metrics().messages, "{transport}");
        }
        assert!(reference.transport_stats().is_none());
    }

    #[test]
    #[should_panic(expected = "send budget")]
    fn send_budget_fires_before_the_transport_ships() {
        let exec = ExecConfig::default().with_transport(TransportSpec::Channel);
        let mut mpc = Mpc::from_exec(2, 2, &exec);
        let _ = mpc.round(|i| {
            if i == 0 {
                (0..9).map(|_| (1usize, 1u64)).collect()
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn word_sizes() {
        assert_eq!(5u64.words(), 1);
        assert_eq!((1u64, 2u64).words(), 2);
        assert_eq!(vec![1u64, 2, 3].words(), 4);
    }
}

//! The Theorem 1.4/1.5 pipelines as [`dcl_runner::Scenario`]s.
//!
//! Thin adapters over [`mpc_color_linear_with`] and
//! [`mpc_color_sublinear_with`] (which stay public). In the unified
//! [`Report::metrics`](dcl_runner::Report::metrics) the `bits` field
//! counts machine *words* — MPC's accounting unit (see
//! [`MpcMetrics`](crate::MpcMetrics)) — and the word-budget/memory figures
//! travel in the extras.
//!
//! The full `ExecConfig` is honored, transport tier included: machine
//! rounds ship through the selected tier uncapped — the word budgets are
//! enforced in the machine-order replay loop *before* the ship
//! (`DESIGN.md` §7) — so the `Report` is bit-identical across
//! `TransportSpec`s (pinned by `tests/transport_oracle.rs`).

use crate::coloring::{mpc_color_linear_with, mpc_color_sublinear_with, MpcColoringResult};

use dcl_coloring::instance::ListInstance;
use dcl_graphs::Graph;
use dcl_runner::{Model, Report, RunError, Scenario};
use dcl_sim::{ExecConfig, SimMetrics};

fn report(name: &str, graph: &Graph, result: MpcColoringResult) -> Report {
    let palette = graph.max_degree() as u64 + 1;
    Report::build(
        name,
        Model::Mpc,
        graph,
        palette,
        result.colors,
        SimMetrics::from(result.metrics),
    )
    .with_extra("iterations", result.iterations as u64)
    .with_extra("finisher_iterations", result.finisher_iterations as u64)
    .with_extra("machines", result.machines as u64)
    .with_extra("memory_words", result.memory_words as u64)
    .with_extra("max_storage_words", result.metrics.max_storage_words as u64)
}

/// The linear-memory MPC coloring of Theorem 1.4 as a runnable scenario
/// (name `"mpc-linear"`).
///
/// **Cap axis:** like [`mpc_color_linear_with`], the scenario ignores the
/// `ExecConfig` bandwidth cap — in MPC the per-machine word budget `S`
/// plays the bandwidth role — so sweeping `CapSpec` over an MPC scenario
/// yields identical cells; only the backend knob applies.
///
/// # Examples
///
/// ```
/// use dcl_mpc::scenario::MpcLinearScenario;
/// use dcl_graphs::generators;
/// use dcl_runner::Scenario;
/// use dcl_sim::ExecConfig;
///
/// let g = generators::gnp(36, 0.12, 5);
/// let report = MpcLinearScenario.run(&g, &ExecConfig::default()).unwrap();
/// assert!(report.valid());
/// assert!(report.extra("machines").unwrap() >= 2);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MpcLinearScenario;

impl Scenario for MpcLinearScenario {
    fn name(&self) -> &str {
        "mpc-linear"
    }

    fn model(&self) -> Model {
        Model::Mpc
    }

    fn run(&self, graph: &Graph, exec: &ExecConfig) -> Result<Report, RunError> {
        let instance = ListInstance::degree_plus_one(graph.clone());
        Ok(report(
            self.name(),
            graph,
            mpc_color_linear_with(&instance, exec),
        ))
    }
}

/// The sublinear-memory MPC coloring of Theorem 1.5 (memory `S = Θ(n^α)`)
/// as a runnable scenario (name `"mpc-sublinear"`).
///
/// **Cap axis:** the `ExecConfig` bandwidth cap is ignored, as for
/// [`MpcLinearScenario`] — sweep the memory exponent `alpha` instead.
#[derive(Debug, Clone, Copy)]
pub struct MpcSublinearScenario {
    /// Memory exponent `α ∈ (0, 1]`.
    pub alpha: f64,
}

impl MpcSublinearScenario {
    /// A scenario with the given memory exponent.
    pub fn new(alpha: f64) -> Self {
        MpcSublinearScenario { alpha }
    }
}

impl Default for MpcSublinearScenario {
    /// The workspace's customary sweep midpoint `α = 0.6`.
    fn default() -> Self {
        MpcSublinearScenario { alpha: 0.6 }
    }
}

impl Scenario for MpcSublinearScenario {
    fn name(&self) -> &str {
        "mpc-sublinear"
    }

    fn model(&self) -> Model {
        Model::Mpc
    }

    fn run(&self, graph: &Graph, exec: &ExecConfig) -> Result<Report, RunError> {
        let instance = ListInstance::degree_plus_one(graph.clone());
        Ok(report(
            self.name(),
            graph,
            mpc_color_sublinear_with(&instance, self.alpha, exec),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{mpc_color_linear, mpc_color_sublinear};
    use dcl_graphs::generators;

    #[test]
    fn linear_scenario_matches_the_direct_entry_point() {
        let g = generators::gnp(36, 0.12, 5);
        let report = MpcLinearScenario.run(&g, &ExecConfig::default()).unwrap();
        let direct = mpc_color_linear(&ListInstance::degree_plus_one(g.clone()));
        assert_eq!(report.colors, direct.colors);
        assert_eq!(report.metrics.rounds, direct.metrics.rounds);
        assert_eq!(
            report.metrics.bits, direct.metrics.words,
            "bits counts words"
        );
        assert_eq!(
            report.extra("max_storage_words"),
            Some(direct.metrics.max_storage_words as u64)
        );
        assert!(report.valid());
    }

    #[test]
    fn sublinear_scenario_matches_the_direct_entry_point() {
        let g = generators::gnp(32, 0.15, 8);
        let scenario = MpcSublinearScenario::new(0.5);
        let report = scenario.run(&g, &ExecConfig::default()).unwrap();
        let direct = mpc_color_sublinear(&ListInstance::degree_plus_one(g.clone()), 0.5);
        assert_eq!(report.colors, direct.colors);
        assert_eq!(report.metrics.rounds, direct.metrics.rounds);
        assert_eq!(
            report.extra("finisher_iterations"),
            Some(direct.finisher_iterations as u64)
        );
        assert!(report.valid());
    }

    #[test]
    fn scenario_metadata_is_stable() {
        assert_eq!(MpcLinearScenario.name(), "mpc-linear");
        assert_eq!(MpcLinearScenario.model(), Model::Mpc);
        let sub = MpcSublinearScenario::default();
        assert_eq!(sub.name(), "mpc-sublinear");
        assert_eq!(sub.model(), Model::Mpc);
        assert!((sub.alpha - 0.6).abs() < 1e-12);
    }
}

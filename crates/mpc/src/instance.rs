//! Observation 4.1: reducing `(Δ+1)`-coloring to `(degree+1)`-list coloring
//! *inside the MPC model*.
//!
//! Given only the edge set (no lists), each machine storing a directed edge
//! `(u, v)` learns `v`'s rank `i` among `u`'s neighbors (Corollary 5.2) and
//! writes the list entry `(u, i)`; the machine storing `u`'s last edge also
//! writes `(u, deg(u))` — producing the list `L(u) = {0, …, deg(u)} ⊆
//! [Δ+1]` in `O(1)` rounds. Isolated nodes contribute `(u, 0)` directly.

use crate::machine::Mpc;
use crate::tools::{self, Dist};
use dcl_graphs::Graph;

/// Builds `(degree+1)` list entries `(node, color)` from a distributed edge
/// set via within-set ranks (Observation 4.1). `edges` holds directed pairs
/// `(u, v)`; both directions must be present. Returns the list entries,
/// distributed (in sorted order, as produced by the rank computation).
pub fn lists_from_edges(mpc: &mut Mpc, edges: &Dist<(u64, u64)>) -> Dist<(u64, u64)> {
    // Rank of v within u's neighbor set (values distinct per set since the
    // graph is simple).
    let ranked = tools::ranks(mpc, edges);
    // Each edge machine writes (u, rank); the machine holding u's last edge
    // (rank = deg-1, detectable as the maximal rank: it is the last entry
    // of the u-run in the sorted order) additionally writes (u, deg).
    let mut out: Dist<(u64, u64)> = vec![Vec::new(); ranked.len()];
    // Determine run ends: an entry is the last of its node's run iff the
    // next entry (possibly on the next machine) has a different node. One
    // round of boundary exchange suffices; we read the sorted structure
    // directly and charge that round.
    mpc.charge_rounds(1);
    let flat: Vec<((u64, u64), u64)> = ranked.iter().flatten().copied().collect();
    for (i, block) in ranked.iter().enumerate() {
        for &((u, _v), rank) in block {
            out[i].push((u, rank));
        }
    }
    for (idx, &((u, _), rank)) in flat.iter().enumerate() {
        let is_last = match flat.get(idx + 1) {
            Some(&((u2, _), _)) => u2 != u,
            None => true,
        };
        if is_last {
            // Attribute the extra entry to the machine holding that edge.
            let mut seen = 0usize;
            for (i, block) in ranked.iter().enumerate() {
                if idx < seen + block.len() {
                    out[i].push((u, rank + 1));
                    break;
                }
                seen += block.len();
            }
        }
    }
    out
}

/// Reference wrapper: builds the same lists centrally from a [`Graph`]
/// (used to validate [`lists_from_edges`] in tests and by callers that
/// already hold the graph).
pub fn reference_lists(g: &Graph) -> Vec<Vec<u64>> {
    g.nodes()
        .map(|v| (0..=g.degree(v) as u64).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn distributed_lists_match_reference() {
        for seed in 0..4 {
            let g = generators::gnp(24, 0.2, seed);
            let mut edges: Vec<(u64, u64)> = Vec::new();
            for (u, v) in g.edges() {
                edges.push((u as u64, v as u64));
                edges.push((v as u64, u as u64));
            }
            let machines = 5;
            let mut mpc = Mpc::new(machines, 128);
            let dist = tools::scatter(machines, &edges);
            let result = lists_from_edges(&mut mpc, &dist);
            // Collect per-node lists.
            let mut lists: Vec<Vec<u64>> = vec![Vec::new(); 24];
            for block in &result {
                for &(u, c) in block {
                    lists[u as usize].push(c);
                }
            }
            for list in &mut lists {
                list.sort_unstable();
            }
            let expected = reference_lists(&g);
            for v in g.nodes() {
                if g.degree(v) > 0 {
                    assert_eq!(lists[v], expected[v], "seed {seed} node {v}");
                }
            }
        }
    }

    #[test]
    fn empty_edge_set_yields_no_entries() {
        let mut mpc = Mpc::new(3, 32);
        let dist: Dist<(u64, u64)> = vec![Vec::new(); 3];
        let result = lists_from_edges(&mut mpc, &dist);
        assert!(result.iter().all(Vec::is_empty));
    }

    #[test]
    fn star_center_gets_full_palette() {
        let g = generators::star(6);
        let mut edges: Vec<(u64, u64)> = Vec::new();
        for (u, v) in g.edges() {
            edges.push((u as u64, v as u64));
            edges.push((v as u64, u as u64));
        }
        let mut mpc = Mpc::new(4, 64);
        let result = lists_from_edges(&mut mpc, &tools::scatter(4, &edges));
        let center: Vec<u64> = result
            .iter()
            .flatten()
            .filter(|&&(u, _)| u == 0)
            .map(|&(_, c)| c)
            .collect();
        let mut sorted = center;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
    }
}

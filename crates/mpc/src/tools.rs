//! Section 5: basic MPC tools, executed as real message-passing rounds on
//! the simulator.
//!
//! - [`sort`] — constant-round deterministic sorting by regular sampling
//!   (the role played by \[GSZ11\] in the paper; see `DESIGN.md` §2 for the
//!   sampling-fan-in caveat);
//! - [`prefix_sums`] — Definition 5.2 for any associative operator;
//! - [`segmented_scan`] — the keyed variant used to aggregate per-set values
//!   (the workhorse behind the aggregation-tree structure of
//!   Definition 5.4);
//! - [`set_difference`] — Definition 5.3;
//! - [`ranks`] — Corollary 5.2 (rank of each element within its set).

use crate::machine::{Mpc, WordSized};
use dcl_sim::{bit_len, Wire};

/// Data distributed across machines: `blocks[i]` lives on machine `i`.
pub type Dist<T> = Vec<Vec<T>>;

/// Distributes `items` round-robin over the cluster's machines (an
/// "adversarial" but balanced initial placement for tests and drivers).
pub fn scatter<T: Clone>(machines: usize, items: &[T]) -> Dist<T> {
    let mut dist: Dist<T> = vec![Vec::new(); machines];
    for (i, item) in items.iter().enumerate() {
        dist[i % machines].push(item.clone());
    }
    dist
}

/// Flattens distributed data in machine order.
pub fn gather<T: Clone>(dist: &Dist<T>) -> Vec<T> {
    dist.iter().flatten().cloned().collect()
}

/// Internal sort key: the item plus a unique tiebreak, so that regular
/// sampling sees distinct keys (duplicate-heavy inputs otherwise overload
/// one bucket) and padding sorts last in the bitonic fallback.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Keyed<T> {
    /// A real item with its unique tiebreak `(machine, index)`.
    Item(T, u32, u32),
    /// Padding (sorts after every item).
    Pad,
}

impl<T: WordSized> WordSized for Keyed<T> {
    fn words(&self) -> usize {
        match self {
            Keyed::Item(t, _, _) => t.words() + 1,
            Keyed::Pad => 1,
        }
    }
}

/// Byte codec for the transport tier: a tag byte, then (for items) the
/// payload and its tiebreak pair. The declared bit-width mirrors the
/// structure; MPC's cost accounting stays word-based regardless.
impl<T: Wire> Wire for Keyed<T> {
    fn wire_bits(&self) -> u32 {
        match self {
            Keyed::Item(t, machine, index) => {
                1 + t.wire_bits() + bit_len(u64::from(*machine)) + bit_len(u64::from(*index))
            }
            Keyed::Pad => 1,
        }
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            Keyed::Item(t, machine, index) => {
                out.push(0);
                t.wire_encode(out);
                machine.wire_encode(out);
                index.wire_encode(out);
            }
            Keyed::Pad => out.push(1),
        }
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(Keyed::Item(
                T::wire_decode(buf)?,
                u32::wire_decode(buf)?,
                u32::wire_decode(buf)?,
            )),
            1 => Some(Keyed::Pad),
            _ => None,
        }
    }
}

/// Sorts `data` across the cluster (Definition 5.1): afterwards machine `i`
/// holds the ranks `[i·B, (i+1)·B)` of the sorted order, for block size
/// `B = ⌈N/M⌉`.
///
/// Implementation: rebalance to equal blocks, then deterministic regular
/// sampling (local sort, per-machine samples to machine 0, global splitters,
/// bucket exchange, exact re-blocking) — `O(1)` rounds, the role \[GSZ11\]
/// plays in the paper. When the `M²` sample fan-in would exceed machine 0's
/// `O(S)` receive budget (tiny memories relative to the machine count —
/// where the paper would recurse), the routine falls back to a block-bitonic
/// merge-split network with `O(log² M)` rounds; see `DESIGN.md` §2.
pub fn sort<T>(mpc: &mut Mpc, data: Dist<T>) -> Dist<T>
where
    T: Ord + Clone + WordSized + Wire + Send + Sync,
{
    let p = mpc.machines();
    assert_eq!(data.len(), p, "one block per machine required");
    let total: usize = data.iter().map(Vec::len).sum();
    if total == 0 {
        return vec![Vec::new(); p];
    }
    // Attach unique tiebreaks.
    let keyed: Dist<Keyed<T>> = data
        .iter()
        .enumerate()
        .map(|(i, block)| {
            block
                .iter()
                .enumerate()
                .map(|(k, item)| Keyed::Item(item.clone(), i as u32, k as u32))
                .collect()
        })
        .collect();
    // Rebalance to equal-size blocks (3 rounds: counts, offsets, route).
    let block_size = total.div_ceil(p);
    let balanced = rebalance(mpc, keyed, block_size);

    // Choose the strategy by machine-0 fan-in, using the exact item width.
    let item_words = balanced
        .iter()
        .flatten()
        .map(WordSized::words)
        .max()
        .unwrap_or(1);
    let sample_words = p * ((p - 1) * item_words + 1); // p-1 samples per machine + vec header
    let budget = 4 * mpc.memory_words();
    let sorted = if sample_words <= budget {
        sample_sort(mpc, balanced, block_size)
    } else {
        bitonic_sort(mpc, balanced, block_size)
    };
    // Strip tiebreaks and padding.
    let out: Dist<T> = sorted
        .into_iter()
        .map(|block| {
            block
                .into_iter()
                .filter_map(|k| match k {
                    Keyed::Item(t, _, _) => Some(t),
                    Keyed::Pad => None,
                })
                .collect()
        })
        .collect();
    for (i, block) in out.iter().enumerate() {
        mpc.assert_storage(i, block.iter().map(WordSized::words).sum());
    }
    out
}

/// Routes items to equal blocks of `block_size` in arrival order. Uses the
/// tree-based prefix sums for the per-machine offsets (the star version
/// would overload machine 0 for large clusters), then one routing round.
fn rebalance<T>(mpc: &mut Mpc, data: Dist<T>, block_size: usize) -> Dist<T>
where
    T: Ord + Clone + WordSized + Wire + Send + Sync,
{
    let p = mpc.machines();
    // One single-word item per machine: its local count. The inclusive scan
    // minus the count is the machine's exclusive offset.
    let counts: Dist<u64> = (0..p).map(|i| vec![data[i].len() as u64]).collect();
    let scanned = prefix_sums(mpc, &counts, |a, b| a + b);
    let my_offset: Vec<u64> = (0..p)
        .map(|i| scanned[i][0] - data[i].len() as u64)
        .collect();
    let routed = mpc.round(|i| {
        data[i]
            .iter()
            .enumerate()
            .map(|(k, item)| {
                let pos = my_offset[i] as usize + k;
                ((pos / block_size).min(p - 1), item.clone())
            })
            .collect::<Vec<_>>()
    });
    routed
        .into_iter()
        .map(|inbox| inbox.into_iter().map(|(_, item)| item).collect())
        .collect()
}

/// Constant-round regular-sampling sort on balanced blocks of distinct keys.
fn sample_sort<T>(mpc: &mut Mpc, mut local: Dist<T>, block_size: usize) -> Dist<T>
where
    T: Ord + Clone + WordSized + Wire + Send + Sync,
{
    let p = mpc.machines();
    let total: usize = local.iter().map(Vec::len).sum();
    for block in &mut local {
        block.sort();
    }
    // Round: evenly spaced samples to machine 0.
    let samples_round = mpc.round(|i| {
        let block = &local[i];
        if block.is_empty() {
            return vec![];
        }
        let count = (p - 1).min(block.len());
        let picks: Vec<T> = (1..=count)
            .map(|k| block[k * block.len() / (count + 1)].clone())
            .collect();
        vec![(0usize, picks)]
    });
    let mut all_samples: Vec<T> = samples_round[0]
        .iter()
        .flat_map(|(_, v)| v.iter().cloned())
        .collect();
    all_samples.sort();
    let splitters: Vec<T> = if all_samples.is_empty() {
        Vec::new()
    } else {
        (1..p)
            .map(|k| all_samples[(k * all_samples.len() / p).min(all_samples.len() - 1)].clone())
            .collect()
    };
    // Round: broadcast the splitters.
    let _ = mpc.round(|i| {
        if i == 0 && !splitters.is_empty() {
            (1..p).map(|dst| (dst, splitters.clone())).collect()
        } else {
            vec![]
        }
    });
    // Round: bucket exchange.
    let bucket_of = |item: &T| -> usize {
        if splitters.is_empty() {
            0
        } else {
            splitters.partition_point(|s| s <= item)
        }
    };
    let buckets_in = mpc.round(|i| {
        local[i]
            .iter()
            .map(|item| (bucket_of(item), item.clone()))
            .collect::<Vec<_>>()
    });
    let mut buckets: Dist<T> = buckets_in
        .into_iter()
        .map(|inbox| inbox.into_iter().map(|(_, item)| item).collect::<Vec<T>>())
        .collect();
    for block in &mut buckets {
        block.sort();
    }
    // Exact re-blocking (3 rounds).
    let rebalanced = rebalance(mpc, buckets, block_size);
    debug_assert_eq!(rebalanced.iter().map(Vec::len).sum::<usize>(), total);
    rebalanced
}

/// Block-bitonic merge-split sort: pads every machine to exactly
/// `block_size` items (padding sorts last), runs the bitonic network at
/// block granularity — each compare-exchange is one round in which the two
/// partner machines swap their blocks and keep the lower/upper
/// `block_size` items of the merge — then strips the padding. `O(log² M)`
/// rounds. By the 0-1 principle, merge-split along a sorting network sorts
/// any blocked sequence.
fn bitonic_sort<T>(mpc: &mut Mpc, local: Dist<Keyed<T>>, block_size: usize) -> Dist<Keyed<T>>
where
    T: Ord + Clone + WordSized + Wire + Send + Sync,
{
    let p = mpc.machines();
    let pp = p.next_power_of_two();
    // The network runs on a power-of-two machine count; machines `p..pp`
    // are *virtual* all-padding blocks (the standard input-padding of
    // bitonic networks). Real machines always hold exactly `block_size`
    // items, so their memory bound is respected; traffic to/from virtual
    // blocks is charged like ordinary traffic.
    let mut blocks: Dist<Keyed<T>> = local;
    for block in &mut blocks {
        block.sort();
        block.resize(block_size, Keyed::Pad);
    }
    blocks.resize(pp, vec![Keyed::Pad; block_size]);
    let block_words = |b: &Vec<Keyed<T>>| b.iter().map(WordSized::words).sum::<usize>() as u64;
    let mut k = 2usize;
    while k <= pp {
        let mut j = k / 2;
        while j >= 1 {
            // One round: real partner pairs exchange blocks through the
            // simulator; pairs with a virtual side are merged centrally and
            // charged as traffic.
            let _ = mpc.round(|i| {
                let partner = i ^ j;
                if partner < p && partner != i {
                    vec![(partner, blocks[i].clone())]
                } else {
                    Vec::new()
                }
            });
            let mut next = blocks.clone();
            for i in 0..pp {
                let partner = i ^ j;
                if partner <= i {
                    continue; // handle each pair once, from the low side
                }
                // Mid-network, virtual blocks can legitimately hold real
                // items (descending regions push max-halves upward), so
                // every pair participates; traffic touching a virtual slot
                // is charged like an ordinary block exchange.
                if i >= p || partner >= p {
                    mpc.charge_traffic(2, 2 * block_words(&blocks[i.min(p - 1)]));
                }
                let mut merged: Vec<Keyed<T>> = blocks[i]
                    .iter()
                    .cloned()
                    .chain(blocks[partner].iter().cloned())
                    .collect();
                merged.sort();
                let ascending = (i & k) == 0;
                let (low, high) = merged.split_at(block_size);
                if ascending {
                    next[i] = low.to_vec();
                    next[partner] = high.to_vec();
                } else {
                    next[i] = high.to_vec();
                    next[partner] = low.to_vec();
                }
            }
            blocks = next;
            j /= 2;
        }
        k *= 2;
    }
    blocks.truncate(p);
    blocks
}

/// Inclusive prefix "sums" w.r.t. the associative `op` (Definition 5.2):
/// afterwards position `j` (in global order) holds `x₀ ⊕ … ⊕ x_j`.
///
/// Machine totals travel up an aggregation tree of fan-in `≈ √S` and the
/// carries travel back down — `2 · depth = O(1/α)` rounds, exactly the
/// aggregation-tree structure of Definition 5.4.
pub fn prefix_sums<T, F>(mpc: &mut Mpc, data: &Dist<T>, mut op: F) -> Dist<T>
where
    T: Clone + WordSized + Wire + Send + Sync,
    F: FnMut(&T, &T) -> T,
{
    let p = mpc.machines();
    assert_eq!(data.len(), p, "one block per machine required");
    // Local inclusive scans.
    let mut scans: Dist<T> = Vec::with_capacity(p);
    for block in data {
        let mut acc: Option<T> = None;
        let mut scan = Vec::with_capacity(block.len());
        for item in block {
            let next = match &acc {
                None => item.clone(),
                Some(a) => op(a, item),
            };
            scan.push(next.clone());
            acc = Some(next);
        }
        scans.push(scan);
    }
    // Tree fan-in sized so that a parent's incoming totals fit its budget.
    let fanout = (((mpc.memory_words() as f64).sqrt().floor() as usize).max(2)).min(p.max(2));
    // Upward pass: level l groups machines into blocks of fanout^l; the
    // leader (lowest machine) of each group learns the group's total.
    // `group_total[i]` = combined total of machine i's current group.
    let mut group_total: Vec<Option<T>> = (0..p).map(|i| scans[i].last().cloned()).collect();
    let mut levels: Vec<usize> = Vec::new(); // group sizes per level
    {
        let mut span = 1usize;
        while span < p {
            levels.push(span);
            let next_span = span * fanout;
            // One round: group leaders send their totals to the super-group
            // leader.
            let totals_in = mpc.round(|i| {
                if i % span == 0 && i % next_span != 0 {
                    match &group_total[i] {
                        Some(t) => vec![(i - i % next_span, vec![t.clone()])],
                        None => vec![],
                    }
                } else {
                    vec![]
                }
            });
            for leader in (0..p).step_by(next_span) {
                let mut acc = group_total[leader].clone();
                let mut incoming: Vec<(usize, &Vec<T>)> =
                    totals_in[leader].iter().map(|(s, v)| (*s, v)).collect();
                incoming.sort_by_key(|(s, _)| *s);
                for (_, v) in incoming {
                    if let Some(t) = v.first() {
                        acc = Some(match &acc {
                            None => t.clone(),
                            Some(a) => op(a, t),
                        });
                    }
                }
                group_total[leader] = acc;
            }
            span = next_span;
        }
    }
    // Downward pass: each leader distributes exclusive carries to its
    // sub-group leaders. `carry[i]` = combined total of everything before
    // machine i's current group.
    let mut carry: Vec<Option<T>> = vec![None; p];
    // Recompute per-level group totals bottom-up for the distribution
    // (leaders retained them during the upward pass).
    for &span in levels.iter().rev() {
        let next_span = span * fanout;
        // One round: super-group leaders send carries to group leaders.
        // We compute them centrally from the retained sub-totals.
        let mut outgoing: Vec<Vec<(usize, Vec<T>)>> = vec![Vec::new(); p];
        for super_leader in (0..p).step_by(next_span) {
            let mut acc = carry[super_leader].clone();
            let mut sub = super_leader;
            while sub < (super_leader + next_span).min(p) {
                if sub != super_leader {
                    if let Some(c) = &acc {
                        outgoing[super_leader].push((sub, vec![c.clone()]));
                    }
                }
                // Extend the carry by this sub-group's own total, which is
                // the group_total computed at this level. Recompute it from
                // the scans to stay correct for every level.
                let mut sub_total: Option<T> = None;
                for i in sub..(sub + span).min(p) {
                    if let Some(t) = scans[i].last() {
                        sub_total = Some(match &sub_total {
                            None => t.clone(),
                            Some(a) => op(a, t),
                        });
                    }
                }
                if let Some(t) = sub_total {
                    acc = Some(match &acc {
                        None => t,
                        Some(a) => op(a, &t),
                    });
                }
                sub += span;
            }
        }
        let carries_in = mpc.round(|i| outgoing[i].clone());
        for i in 0..p {
            if let Some((_, c)) = carries_in[i].first() {
                carry[i] = c.first().cloned();
            }
        }
    }
    for i in 0..p {
        if let Some(c) = &carry[i] {
            for item in &mut scans[i] {
                *item = op(c, item);
            }
        }
    }
    scans
}

/// Segmented inclusive scan: like [`prefix_sums`] but the accumulator resets
/// whenever the key changes (data must be grouped by key, e.g. sorted).
/// This is the aggregation-tree workhorse of Definition 5.4.
pub fn segmented_scan<T, K, KF, F>(mpc: &mut Mpc, data: &Dist<T>, mut key_of: KF, op: F) -> Dist<T>
where
    T: Clone + WordSized + Wire + Send + Sync,
    K: PartialEq + Clone + Wire + Send + Sync,
    KF: FnMut(&T) -> K,
    F: Fn(&T, &T) -> T,
{
    // Wrap values as (key, value) and use the standard segmented-combine
    // monoid through the generic prefix machinery. Keys travel with the
    // items, so the extra word cost is constant per item.
    struct Tagged<T, K>(K, T);
    impl<T: WordSized, K> WordSized for Tagged<T, K> {
        fn words(&self) -> usize {
            self.1.words() + 1
        }
    }
    impl<T: Clone, K: Clone> Clone for Tagged<T, K> {
        fn clone(&self) -> Self {
            Tagged(self.0.clone(), self.1.clone())
        }
    }
    impl<T: Wire, K: Wire> Wire for Tagged<T, K> {
        fn wire_bits(&self) -> u32 {
            self.0.wire_bits() + self.1.wire_bits()
        }
        fn wire_encode(&self, out: &mut Vec<u8>) {
            self.0.wire_encode(out);
            self.1.wire_encode(out);
        }
        fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
            Some(Tagged(K::wire_decode(buf)?, T::wire_decode(buf)?))
        }
    }
    let tagged: Dist<Tagged<T, K>> = data
        .iter()
        .map(|block| block.iter().map(|x| Tagged(key_of(x), x.clone())).collect())
        .collect();
    let scanned = prefix_sums(mpc, &tagged, |a, b| {
        if a.0 == b.0 {
            Tagged(b.0.clone(), op(&a.1, &b.1))
        } else {
            Tagged(b.0.clone(), b.1.clone())
        }
    });
    scanned
        .into_iter()
        .map(|block| block.into_iter().map(|t| t.1).collect())
        .collect()
}

/// Definition 5.3: for collections `A` and (multiset) `B` of `(set, value)`
/// pairs, reports for every element of `A` whether its value occurs in the
/// same set of `B`. Output order follows the sorted order.
pub fn set_difference(
    mpc: &mut Mpc,
    a: &Dist<(u64, u64)>,
    b: &Dist<(u64, u64)>,
) -> Dist<((u64, u64), bool)> {
    let p = mpc.machines();
    // Tag: B sorts before A within a (set, value) run.
    let tagged: Dist<(u64, u64, u64)> = (0..p)
        .map(|i| {
            let mut block: Vec<(u64, u64, u64)> = b[i].iter().map(|&(s, v)| (s, v, 0)).collect();
            block.extend(a[i].iter().map(|&(s, v)| (s, v, 1)));
            block
        })
        .collect();
    let sorted = sort(mpc, tagged);
    // Map each element to a "B seen" flag, then segmented OR over the
    // (set, value) runs: B elements sort first within a run, so an A
    // element's inclusive scan is 1 iff its run contains a B element.
    let flagged: Dist<(u64, u64, u64)> = sorted
        .iter()
        .map(|block| {
            block
                .iter()
                .map(|&(s, v, tag)| (s, v, u64::from(tag == 0)))
                .collect()
        })
        .collect();
    let marks: Dist<(u64, u64, u64)> = segmented_scan(
        mpc,
        &flagged,
        |&(s, v, _)| (s, v),
        |x, y| (y.0, y.1, x.2.max(y.2)),
    );
    sorted
        .iter()
        .zip(marks.iter())
        .map(|(sblock, mblock)| {
            sblock
                .iter()
                .zip(mblock.iter())
                .filter(|((_, _, tag), _)| *tag == 1)
                .map(|(&(s, v, _), &(_, _, seen))| ((s, v), seen == 1))
                .collect()
        })
        .collect()
}

/// Corollary 5.2: the rank (0-based) of every element within its set, for a
/// collection of `(set, value)` pairs with distinct values per set. Output
/// follows the sorted order.
pub fn ranks(mpc: &mut Mpc, a: &Dist<(u64, u64)>) -> Dist<((u64, u64), u64)> {
    let sorted = sort(mpc, a.clone());
    let tagged: Dist<(u64, u64, u64)> = sorted
        .iter()
        .map(|block| block.iter().map(|&(s, v)| (s, v, 1u64)).collect())
        .collect();
    let counted = segmented_scan(mpc, &tagged, |&(s, _, _)| s, |x, y| (y.0, y.1, x.2 + y.2));
    counted
        .into_iter()
        .map(|block| block.into_iter().map(|(s, v, c)| ((s, v), c - 1)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn sort_orders_and_blocks() {
        let mut mpc = Mpc::new(4, 16);
        let mut rng = StdRng::seed_from_u64(1);
        let items: Vec<u64> = (0..48).map(|_| rng.gen_range(0..1000)).collect();
        let dist = scatter(4, &items);
        let sorted = sort(&mut mpc, dist);
        let flat = gather(&sorted);
        let mut expect = items.clone();
        expect.sort_unstable();
        assert_eq!(flat, expect);
        // Block sizes are ⌈N/M⌉ except possibly the tail.
        assert!(sorted[..3].iter().all(|b| b.len() == 12));
    }

    #[test]
    fn sort_handles_duplicates_and_empty() {
        let mut mpc = Mpc::new(3, 16);
        let items = vec![5u64; 20];
        let sorted = sort(&mut mpc, scatter(3, &items));
        assert_eq!(gather(&sorted), items);

        let mut mpc2 = Mpc::new(3, 16);
        let empty: Vec<u64> = vec![];
        let sorted = sort(&mut mpc2, scatter(3, &empty));
        assert!(gather(&sorted).is_empty());
    }

    #[test]
    fn sort_uses_constant_rounds() {
        // Rebalance (3) + sample/splitter/bucket (3) + re-blocking (3).
        let mut mpc = Mpc::new(4, 32);
        let items: Vec<u64> = (0..100).rev().collect();
        let _ = sort(&mut mpc, scatter(4, &items));
        assert_eq!(mpc.rounds(), 9);
        // The round count is independent of the input size.
        let mut mpc2 = Mpc::new(4, 200);
        let more: Vec<u64> = (0..600).rev().collect();
        let _ = sort(&mut mpc2, scatter(4, &more));
        assert_eq!(mpc2.rounds(), 9);
    }

    #[test]
    fn prefix_sums_match_reference() {
        for machines in [2usize, 4, 7] {
            let mut mpc = Mpc::new(machines, 16);
            let items: Vec<u64> = (1..=30).collect();
            let dist = scatter(machines, &items);
            let scanned = prefix_sums(&mut mpc, &dist, |a, b| a + b);
            // Reference: per-position inclusive sums in the distributed
            // order.
            let order = gather(&dist);
            let flat = gather(&scanned);
            let mut acc = 0;
            for (x, s) in order.iter().zip(flat.iter()) {
                acc += x;
                assert_eq!(*s, acc, "machines = {machines}");
            }
        }
    }

    #[test]
    fn prefix_sums_with_max_operator() {
        let mut mpc = Mpc::new(3, 8);
        let items = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let dist: Dist<u64> = vec![
            items[..3].to_vec(),
            items[3..6].to_vec(),
            items[6..].to_vec(),
        ];
        let scanned = prefix_sums(&mut mpc, &dist, |a, b| *a.max(b));
        let flat = gather(&scanned);
        assert_eq!(flat, vec![3, 3, 4, 4, 5, 9, 9, 9]);
    }

    #[test]
    fn segmented_scan_resets_at_key_change() {
        let mut mpc = Mpc::new(2, 16);
        // (key, value) grouped by key across the machine boundary.
        let dist: Dist<(u64, u64, u64)> = vec![
            vec![(1, 0, 10), (1, 0, 20), (2, 0, 1)],
            vec![(2, 0, 2), (2, 0, 3), (3, 0, 7)],
        ];
        let scanned = segmented_scan(
            &mut mpc,
            &dist,
            |&(k, _, _)| k,
            |a, b| (b.0, b.1, a.2 + b.2),
        );
        let values: Vec<u64> = gather(&scanned).iter().map(|&(_, _, v)| v).collect();
        assert_eq!(values, vec![10, 30, 1, 3, 6, 7]);
    }

    #[test]
    fn set_difference_matches_hashset_reference() {
        let mut rng = StdRng::seed_from_u64(9);
        let a: Vec<(u64, u64)> = (0..40)
            .map(|_| (rng.gen_range(0..4), rng.gen_range(0..20)))
            .collect();
        let b: Vec<(u64, u64)> = (0..30)
            .map(|_| (rng.gen_range(0..4), rng.gen_range(0..20)))
            .collect();
        let reference: std::collections::HashSet<(u64, u64)> = b.iter().copied().collect();
        let mut mpc = Mpc::new(4, 64);
        let result = set_difference(&mut mpc, &scatter(4, &a), &scatter(4, &b));
        let mut seen = 0;
        for block in &result {
            for &((s, v), in_b) in block {
                assert_eq!(in_b, reference.contains(&(s, v)), "element ({s},{v})");
                seen += 1;
            }
        }
        assert_eq!(seen, a.len());
    }

    #[test]
    fn ranks_match_per_set_order() {
        let a: Vec<(u64, u64)> = vec![(0, 30), (1, 5), (0, 10), (1, 50), (0, 20), (1, 7)];
        let mut mpc = Mpc::new(3, 32);
        let result = ranks(&mut mpc, &scatter(3, &a));
        let flat = gather(&result);
        for ((s, v), r) in flat {
            let expected = a.iter().filter(|&&(s2, v2)| s2 == s && v2 < v).count() as u64;
            assert_eq!(r, expected, "rank of ({s},{v})");
        }
    }

    #[test]
    fn memory_is_respected_during_sort() {
        let mut mpc = Mpc::new(5, 32);
        let items: Vec<u64> = (0..150).map(|i| (i * 7919) % 1000).collect();
        let _ = sort(&mut mpc, scatter(5, &items));
        assert!(mpc.metrics().max_storage_words <= 4 * 32);
    }
}

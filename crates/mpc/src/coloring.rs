//! Deterministic `(degree+1)`-list coloring in the MPC model:
//! Theorem 1.4 (linear memory), Theorem 1.5 (sublinear memory) and the
//! Lemma 4.2 finisher, with the MIS-avoidance conflict resolution of
//! Section 4.
//!
//! Both drivers share the candidate-selection core (bitwise prefix
//! extension with segment-wise seed derandomization, exactly as in the
//! clique — the models differ in *where* data lives and what a round may
//! move, which is captured by the cost events charged to the simulator):
//!
//! - **linear** (`S = Θ̃(n)`): a node's whole neighborhood and list live on
//!   one machine; per seed segment, machines aggregate candidate vectors
//!   directly at machine 0 (`O(1)` rounds per segment);
//! - **sublinear** (`S = Θ(n^α)`): node data is sharded; neighborhood
//!   aggregation uses trees of fan-in `√S` (depth `O(1/α)`), the list
//!   update after each iteration runs the *real*
//!   [`crate::tools::set_difference`] on the simulator, and once
//!   `Δ² · uncolored ≤ n` the Lemma 4.2 one-shot finisher completes the
//!   coloring in `O(log n)` extra rounds.

use crate::machine::{Mpc, MpcMetrics};
use crate::tools;
use dcl_coloring::derand_step::accuracy_bits;
use dcl_coloring::instance::ListInstance;
use dcl_coloring::prefix::PrefixState;
use dcl_derand::seed::PartialSeed;
use dcl_derand::slice::{coin_threshold, PackedForms, SliceFamily};
use dcl_graphs::NodeId;

/// Result of an MPC coloring run.
#[derive(Debug, Clone)]
pub struct MpcColoringResult {
    /// The proper list coloring.
    pub colors: Vec<u64>,
    /// Simulator cost counters.
    pub metrics: MpcMetrics,
    /// Bitwise partial-coloring iterations.
    pub iterations: usize,
    /// Lemma 4.2 finisher iterations (sublinear only).
    pub finisher_iterations: usize,
    /// Number of machines used.
    pub machines: usize,
    /// Memory per machine in words.
    pub memory_words: usize,
}

/// Words needed to store the full residual instance (directed edges + list
/// entries + node records).
fn instance_words(instance: &ListInstance, active: &[bool]) -> usize {
    let g = instance.graph();
    g.nodes()
        .filter(|&v| active[v])
        .map(|v| {
            let deg = g.neighbors(v).iter().filter(|&&u| active[u]).count();
            2 * deg + instance.list(v).len() + 2
        })
        .sum()
}

/// Round charges of the bitwise candidate selection, per cost event. The
/// host model's data placement determines them: with linear memory the
/// aggregations go straight to machine 0, with sublinear memory they climb
/// `O(1/α)`-deep fan-in trees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionCosts {
    /// Rounds charged at the start of each prefix-bit phase (neighbors
    /// exchange `(k₁, |L|)`).
    pub phase_rounds: u64,
    /// Rounds charged per derandomized seed segment (candidate vectors +
    /// argmin).
    pub segment_rounds: u64,
}

/// One derandomized bitwise candidate selection over all active nodes,
/// charged to `mpc` per `costs`. The `2^λ` segment candidates are evaluated
/// through the cluster's backend pool (free local computation in the MPC
/// cost model), with the deterministic argmin of [`dcl_sim::argmin_f64`] —
/// bit-identical to the sequential evaluation.
#[allow(clippy::too_many_arguments)]
fn bitwise_selection(
    mpc: &mut Mpc,
    residual: &ListInstance,
    active: &[bool],
    psi: &[u64],
    m_bits: u32,
    b: u32,
    lambda: u32,
    costs: SelectionCosts,
) -> PrefixState {
    let n = residual.graph().n();
    let family = SliceFamily::new(m_bits, b);
    let seed_len = family.seed_len();
    let mut state = PrefixState::new(residual, active);
    while state.remaining_bits() > 0 {
        mpc.charge_rounds(costs.phase_rounds);
        // Per-node thresholds. Inactive nodes keep k = 0 → `recip_batch`
        // yields the 0.0 no-share sentinel.
        let mut thresholds = vec![0u64; n];
        let mut k0 = vec![0usize; n];
        let mut k1 = vec![0usize; n];
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let split = state.split(residual, v);
            let total = (split.k0 + split.k1) as u64;
            thresholds[v] = coin_threshold(split.k1 as u64, total, b);
            k0[v] = split.k0;
            k1[v] = split.k1;
        }
        let mut k0_inv = vec![0.0f64; n];
        let mut k1_inv = vec![0.0f64; n];
        dcl_kernels::ratio::recip_batch(&k0, &mut k0_inv);
        dcl_kernels::ratio::recip_batch(&k1, &mut k1_inv);
        // Forms live in the kernels' packed SoA layout: per-candidate
        // scratch is one flat clone, and the coin DP runs pack-free.
        let mut seed = PartialSeed::new(seed_len);
        let empty = PackedForms::from_forms(&[]);
        let mut forms: Vec<PackedForms> = (0..n)
            .map(|v| {
                if active[v] {
                    family.packed_forms_for(&seed, psi[v])
                } else {
                    empty.clone()
                }
            })
            .collect();
        let edges = state.conflict_edges();
        let mut start = 0usize;
        while start < seed_len {
            let end = (start + lambda as usize).min(seed_len);
            let candidates = 1usize << (end - start);
            let score = |cand: usize| -> f64 {
                let cand = cand as u64;
                let mut scratch = forms.clone();
                for (offset, j) in (start..end).enumerate() {
                    let bit = cand >> offset & 1 == 1;
                    for v in 0..n {
                        if active[v] {
                            family.update_packed_on_fix(&mut scratch[v], psi[v], j, bit);
                        }
                    }
                }
                let mut total = 0.0;
                for &(u, v) in &edges {
                    let p = dcl_kernels::digit_dp::joint_coin_probs_packed(
                        &scratch[u],
                        thresholds[u],
                        &scratch[v],
                        thresholds[v],
                    );
                    total += p[3] * (k1_inv[u] + k1_inv[v]) + p[0] * (k0_inv[u] + k0_inv[v]);
                }
                total
            };
            let (_, winner) = dcl_sim::argmin_f64(mpc.pool(), candidates, score);
            for (offset, j) in (start..end).enumerate() {
                let bit = (winner as u64) >> offset & 1 == 1;
                seed.fix(j, bit);
                for v in 0..n {
                    if active[v] {
                        family.update_packed_on_fix(&mut forms[v], psi[v], j, bit);
                    }
                }
            }
            mpc.charge_rounds(costs.segment_rounds);
            start = end;
        }
        for v in 0..n {
            if active[v] {
                let z = family.evaluate(&seed, psi[v]);
                let bit = z < thresholds[v];
                state.extend(residual, v, bit);
            }
        }
        state.finish_phase();
    }
    state
}

/// MIS-avoidance keep rule: conflict-free nodes keep; matched pairs keep the
/// larger id.
fn avoid_mis_keeps(state: &PrefixState, active: &[bool], n: usize) -> Vec<bool> {
    (0..n)
        .map(|v| {
            if !active[v] {
                return false;
            }
            match state.conflict_neighbors(v) {
                [] => true,
                [w] => state.conflict_degree(*w) > 1 || v > *w,
                _ => false,
            }
        })
        .collect()
}

/// Theorem 1.4: `(degree+1)`-list coloring with linear memory
/// (`S = Θ̃(n)`), in `O(log Δ · log C)` rounds (times the seed-segment
/// count; see `DESIGN.md` §2.1).
///
/// # Panics
///
/// Panics on internal progress bugs.
pub fn mpc_color_linear(instance: &ListInstance) -> MpcColoringResult {
    mpc_color_linear_with(instance, &dcl_sim::ExecConfig::default())
}

/// [`mpc_color_linear`] with an explicit [`dcl_sim::ExecConfig`] (results
/// are bit-identical across backends). The config's bandwidth cap is
/// ignored: in MPC the per-machine word budget `S` plays the bandwidth
/// role.
pub fn mpc_color_linear_with(
    instance: &ListInstance,
    exec: &dcl_sim::ExecConfig,
) -> MpcColoringResult {
    let g = instance.graph();
    let n = g.n();
    let delta = g.max_degree();
    let s = (4 * n).max(8 * (delta + 2)).max(64);
    let total = instance_words(instance, &vec![true; n]);
    let machines = total.div_ceil(s).max(1) + 1;
    let mut mpc = Mpc::from_exec(machines, s, exec);

    // Owner assignment: first-fit by node-record size.
    let mut owner = vec![0usize; n];
    {
        let mut load = vec![0usize; machines];
        let mut next = 0usize;
        for v in 0..n {
            let words = 2 * g.degree(v) + instance.list(v).len() + 2;
            if load[next] + words > s && next + 1 < machines {
                next += 1;
            }
            load[next] += words;
            owner[v] = next;
        }
        for (i, &l) in load.iter().enumerate() {
            mpc.assert_storage(i, l);
        }
    }

    let mut colors: Vec<Option<u64>> = vec![None; n];
    if n == 0 {
        return MpcColoringResult {
            colors: Vec::new(),
            metrics: mpc.metrics(),
            iterations: 0,
            finisher_iterations: 0,
            machines,
            memory_words: s,
        };
    }
    let mut residual = instance.clone();
    let mut active = vec![true; n];
    let mut uncolored = n;
    let psi: Vec<u64> = (0..n as u64).collect();
    let m_bits = (64 - (n.max(2) as u64 - 1).leading_zeros()).max(1);
    let lambda = 4u32.min(m_bits).max(1);
    let mut iterations = 0usize;

    while uncolored > 0 {
        // Collect once the residual fits one machine.
        let words_left = instance_words(&residual, &active);
        if words_left <= s || uncolored <= 2 {
            mpc.charge_rounds(2);
            mpc.charge_traffic(uncolored as u64, words_left as u64);
            greedy_finish(&residual, &mut active, &mut colors);
            mpc.charge_rounds(1); // distribute results
            break;
        }
        assert!(
            iterations < 400,
            "linear MPC coloring failed to make progress"
        );
        iterations += 1;
        let delta_act = max_active_degree(&residual, &active);
        let b = accuracy_bits(delta_act, residual.color_bits(), delta_act as u64 + 1);
        let state = bitwise_selection(
            &mut mpc,
            &residual,
            &active,
            &psi,
            m_bits,
            b,
            lambda,
            SelectionCosts {
                // Owners exchange (k1, |L|) per edge.
                phase_rounds: 1,
                // Candidate vectors to machine 0 + argmin back.
                segment_rounds: 2,
            },
        );
        let keeps = avoid_mis_keeps(&state, &active, n);
        mpc.charge_rounds(2); // keep decision + color announcements
        apply_keeps(
            &keeps,
            &state,
            &mut residual,
            &mut active,
            &mut colors,
            &mut uncolored,
        );
    }

    MpcColoringResult {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
        metrics: mpc.metrics(),
        iterations,
        finisher_iterations: 0,
        machines,
        memory_words: s,
    }
}

/// Theorem 1.5: `(degree+1)`-list coloring with sublinear memory
/// (`S = Θ(n^α)`), in `O(log Δ · log C + log n)`-shaped rounds, finishing
/// with Lemma 4.2.
///
/// # Panics
///
/// Panics if `alpha` is not in `(0, 1]` or on internal progress bugs.
pub fn mpc_color_sublinear(instance: &ListInstance, alpha: f64) -> MpcColoringResult {
    mpc_color_sublinear_with(instance, alpha, &dcl_sim::ExecConfig::default())
}

/// [`mpc_color_sublinear`] with an explicit [`dcl_sim::ExecConfig`]
/// (results are bit-identical across backends). The config's bandwidth cap
/// is ignored: in MPC the per-machine word budget `S` plays the bandwidth
/// role.
pub fn mpc_color_sublinear_with(
    instance: &ListInstance,
    alpha: f64,
    exec: &dcl_sim::ExecConfig,
) -> MpcColoringResult {
    assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let g = instance.graph();
    let n = g.n();
    let s = ((n.max(2) as f64).powf(alpha).ceil() as usize).max(16);
    let total = instance_words(instance, &vec![true; n]).max(1);
    let machines = total.div_ceil(s).max(2);
    let mut mpc = Mpc::from_exec(machines, s, exec);
    let tree_fanout = ((s as f64).sqrt().floor() as usize).max(2);
    let tree_depth = ((machines as f64).ln() / (tree_fanout as f64).ln())
        .ceil()
        .max(1.0) as u64;

    let mut colors: Vec<Option<u64>> = vec![None; n];
    if n == 0 {
        return MpcColoringResult {
            colors: Vec::new(),
            metrics: mpc.metrics(),
            iterations: 0,
            finisher_iterations: 0,
            machines,
            memory_words: s,
        };
    }

    // Initial placement: sort the (adversarially scattered) edge tuples and
    // list entries to group each node's data — real rounds on the simulator
    // (this is the aggregation-tree setup of Section 5).
    {
        let mut records: Vec<(u64, u64)> = Vec::new();
        for (u, v) in g.edges() {
            records.push((u as u64, v as u64));
            records.push((v as u64, u as u64));
        }
        for v in g.nodes() {
            for &c in instance.list(v) {
                records.push((v as u64, c));
            }
        }
        let scattered = tools::scatter(machines, &records);
        let _sorted = tools::sort(&mut mpc, scattered);
    }

    let mut residual = instance.clone();
    let mut active = vec![true; n];
    let mut uncolored = n;
    let psi: Vec<u64> = (0..n as u64).collect();
    let m_bits = (64 - (n.max(2) as u64 - 1).leading_zeros()).max(1);
    // λ < α·log n so that candidate vectors fit the memory; capped for work.
    let lambda = (((s as f64).log2() / 2.0).floor() as u32)
        .clamp(1, 4)
        .min(m_bits);
    let mut iterations = 0usize;
    let mut finisher_iterations = 0usize;

    loop {
        if uncolored == 0 {
            break;
        }
        let delta_act = max_active_degree(&residual, &active);
        // Lemma 4.2 regime: Δ²·uncolored = O(n) with Δ = O(√S) (the paper's
        // Δ < n^{α/2} with total memory Ω(nΔ²)).
        let delta_fits = (delta_act + 1) * (delta_act + 1) <= 4 * s;
        if delta_act <= 1 || (delta_fits && delta_act * delta_act * uncolored <= 4 * n.max(4)) {
            finisher_iterations += run_finisher(
                &mut mpc,
                &mut residual,
                &mut active,
                &mut colors,
                &mut uncolored,
                &psi,
                m_bits,
                lambda,
                tree_depth,
            );
            break;
        }
        assert!(
            iterations < 400,
            "sublinear MPC coloring failed to make progress"
        );
        iterations += 1;
        let b = accuracy_bits(delta_act, residual.color_bits(), delta_act as u64 + 1);
        let state = bitwise_selection(
            &mut mpc,
            &residual,
            &active,
            &psi,
            m_bits,
            b,
            lambda,
            SelectionCosts {
                // (k1, |L|) via the node aggregation trees + the
                // (u,v)↔(v,u) machine exchange: O(depth) rounds.
                phase_rounds: 2 * tree_depth + 1,
                // Candidate vectors aggregated over the global tree.
                segment_rounds: 2 * tree_depth,
            },
        );
        let keeps = avoid_mis_keeps(&state, &active, n);
        mpc.charge_rounds(2);
        let newly = apply_keeps(
            &keeps,
            &state,
            &mut residual,
            &mut active,
            &mut colors,
            &mut uncolored,
        );
        // Real distributed list update (Definition 5.3): delete colors taken
        // by newly colored neighbors from the remaining lists.
        let mut a_entries: Vec<(u64, u64)> = Vec::new();
        for v in 0..n {
            if active[v] {
                for &c in residual.list(v) {
                    a_entries.push((v as u64, c));
                }
            }
        }
        let mut b_entries: Vec<(u64, u64)> = Vec::new();
        for &(v, c) in &newly {
            for &u in g.neighbors(v) {
                if active[u] {
                    b_entries.push((u as u64, c));
                }
            }
        }
        if !a_entries.is_empty() {
            let result = tools::set_difference(
                &mut mpc,
                &tools::scatter(machines, &a_entries),
                &tools::scatter(machines, &b_entries),
            );
            // (The central `residual` was already pruned by `apply_keeps`;
            // cross-check the distributed answer against it.)
            for block in &result {
                for &((v, c), in_b) in block {
                    let still_listed = residual.list(v as usize).contains(&c);
                    debug_assert_eq!(
                        still_listed, !in_b,
                        "distributed set difference disagrees at node {v} color {c}"
                    );
                }
            }
        }
    }

    MpcColoringResult {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all colored"))
            .collect(),
        metrics: mpc.metrics(),
        iterations,
        finisher_iterations,
        machines,
        memory_words: s,
    }
}

/// Lemma 4.2: one-shot color selection (quantile digits over whole lists)
/// plus the matching keep rule, iterated to completion in `O(log n)`
/// iterations. Returns the iteration count.
#[allow(clippy::too_many_arguments)]
fn run_finisher(
    mpc: &mut Mpc,
    residual: &mut ListInstance,
    active: &mut [bool],
    colors: &mut [Option<u64>],
    uncolored: &mut usize,
    psi: &[u64],
    m_bits: u32,
    lambda: u32,
    tree_depth: u64,
) -> usize {
    let n = residual.graph().n();
    let mut iterations = 0usize;
    while *uncolored > 0 {
        assert!(
            iterations < 400,
            "Lemma 4.2 finisher failed to make progress"
        );
        iterations += 1;
        let delta_act = max_active_degree(residual, active);
        // Cap lists at Δ+1 (Equation 9: guarantees ΣΦ < n − n/(Δ+1)).
        for v in 0..n {
            if active[v] && residual.list(v).len() > delta_act + 1 {
                let deg = residual
                    .graph()
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| active[u])
                    .count();
                residual.truncate_list(v, (delta_act + 1).max(deg + 1));
            }
        }
        let b = accuracy_bits(
            delta_act,
            1,
            (delta_act as u64 + 1) * (delta_act as u64 + 1),
        );
        let family = SliceFamily::new(m_bits, b);
        let seed_len = family.seed_len();
        // Quantile thresholds over each node's full list.
        let mut thresholds: Vec<Vec<u64>> = vec![Vec::new(); n];
        for v in 0..n {
            if active[v] {
                let len = residual.list(v).len() as u64;
                thresholds[v] = (0..=len).map(|i| coin_threshold(i, len, b)).collect();
            }
        }
        mpc.charge_rounds(2 * tree_depth); // lists meet at edge machines
        let mut seed = PartialSeed::new(seed_len);
        let empty = PackedForms::from_forms(&[]);
        let mut forms: Vec<PackedForms> = (0..n)
            .map(|v| {
                if active[v] {
                    family.packed_forms_for(&seed, psi[v])
                } else {
                    empty.clone()
                }
            })
            .collect();
        // Conflict edges = all active-active edges (fresh selection).
        let g = residual.graph().clone();
        let edges: Vec<(NodeId, NodeId)> =
            g.edges().filter(|&(u, v)| active[u] && active[v]).collect();
        let mut start = 0usize;
        while start < seed_len {
            let end = (start + lambda as usize).min(seed_len);
            let candidates = 1usize << (end - start);
            let score = |cand: usize| -> f64 {
                let cand = cand as u64;
                let mut scratch = forms.clone();
                for (offset, j) in (start..end).enumerate() {
                    let bit = cand >> offset & 1 == 1;
                    for v in 0..n {
                        if active[v] {
                            family.update_packed_on_fix(&mut scratch[v], psi[v], j, bit);
                        }
                    }
                }
                let mut total = 0.0;
                for &(u, v) in &edges {
                    total += edge_conflict_expectation(
                        residual,
                        u,
                        v,
                        &scratch[u],
                        &scratch[v],
                        &thresholds,
                    );
                }
                total
            };
            let (_, winner) = dcl_sim::argmin_f64(mpc.pool(), candidates, score);
            for (offset, j) in (start..end).enumerate() {
                let bit = (winner as u64) >> offset & 1 == 1;
                seed.fix(j, bit);
                for v in 0..n {
                    if active[v] {
                        family.update_packed_on_fix(&mut forms[v], psi[v], j, bit);
                    }
                }
            }
            mpc.charge_rounds(2 * tree_depth);
            start = end;
        }
        // Apply: every active node picks the list color of its quantile.
        let mut chosen: Vec<Option<u64>> = vec![None; n];
        for v in 0..n {
            if active[v] {
                let z = family.evaluate(&seed, psi[v]);
                let idx = thresholds[v].partition_point(|&t| t <= z) - 1;
                chosen[v] = Some(residual.list(v)[idx]);
            }
        }
        // Matching keep rule on the realized conflicts.
        let mut conflicts = vec![0usize; n];
        let mut partner = vec![usize::MAX; n];
        for &(u, v) in &edges {
            if chosen[u] == chosen[v] {
                conflicts[u] += 1;
                conflicts[v] += 1;
                partner[u] = v;
                partner[v] = u;
            }
        }
        mpc.charge_rounds(2);
        let keeps: Vec<bool> = (0..n)
            .map(|v| {
                active[v]
                    && (conflicts[v] == 0
                        || (conflicts[v] == 1 && (conflicts[partner[v]] > 1 || v > partner[v])))
            })
            .collect();
        let mut newly = Vec::new();
        for v in 0..n {
            if keeps[v] {
                newly.push((v, chosen[v].expect("keeper has a chosen color")));
            }
        }
        assert!(!newly.is_empty(), "finisher iteration made no progress");
        for &(v, c) in &newly {
            colors[v] = Some(c);
            active[v] = false;
            *uncolored -= 1;
        }
        mpc.charge_rounds(1);
        for &(v, c) in &newly {
            for &u in residual.graph().clone().neighbors(v) {
                if active[u] {
                    residual.remove_color(u, c);
                }
            }
        }
    }
    iterations
}

/// Expected conflict contribution of one edge under a partially fixed seed:
/// the probability that both endpoints' quantiles land on the same color.
fn edge_conflict_expectation(
    residual: &ListInstance,
    u: NodeId,
    v: NodeId,
    forms_u: &PackedForms,
    forms_v: &PackedForms,
    thresholds: &[Vec<u64>],
) -> f64 {
    let (lu, lv) = (residual.list(u), residual.list(v));
    let mut total = 0.0;
    let mut iu = 0usize;
    let mut iv = 0usize;
    while iu < lu.len() && iv < lv.len() {
        match lu[iu].cmp(&lv[iv]) {
            std::cmp::Ordering::Less => iu += 1,
            std::cmp::Ordering::Greater => iv += 1,
            std::cmp::Ordering::Equal => {
                let (a0, a1) = (thresholds[u][iu], thresholds[u][iu + 1]);
                let (b0, b1) = (thresholds[v][iv], thresholds[v][iv + 1]);
                if a1 > a0 && b1 > b0 {
                    total += dcl_kernels::digit_dp::joint_interval_packed(
                        forms_u, a0, a1, forms_v, b0, b1,
                    );
                }
                iu += 1;
                iv += 1;
            }
        }
    }
    // Both endpoints count the conflict in Σ Φ.
    2.0 * total
}

/// Finishes tiny residual instances greedily (after collection at one
/// machine).
fn greedy_finish(residual: &ListInstance, active: &mut [bool], colors: &mut [Option<u64>]) {
    let g = residual.graph();
    for v in g.nodes() {
        if !active[v] {
            continue;
        }
        let taken: Vec<u64> = g
            .neighbors(v)
            .iter()
            .filter_map(|&u| colors[u].filter(|_| !active[u]))
            .collect();
        let c = residual
            .list(v)
            .iter()
            .copied()
            .find(|c| !taken.contains(c))
            .expect("(degree+1) slack guarantees a free color");
        colors[v] = Some(c);
        active[v] = false;
    }
}

fn max_active_degree(residual: &ListInstance, active: &[bool]) -> usize {
    let g = residual.graph();
    g.nodes()
        .filter(|&v| active[v])
        .map(|v| g.neighbors(v).iter().filter(|&&u| active[u]).count())
        .max()
        .unwrap_or(0)
}

/// Applies the keep decisions: records colors, deactivates nodes, prunes
/// neighbor lists. Returns the newly colored `(node, color)` pairs.
fn apply_keeps(
    keeps: &[bool],
    state: &PrefixState,
    residual: &mut ListInstance,
    active: &mut [bool],
    colors: &mut [Option<u64>],
    uncolored: &mut usize,
) -> Vec<(NodeId, u64)> {
    let n = keeps.len();
    let mut newly = Vec::new();
    for v in 0..n {
        if keeps[v] {
            newly.push((v, state.candidate_color(residual, v)));
        }
    }
    let g = residual.graph().clone();
    for &(v, c) in &newly {
        colors[v] = Some(c);
        active[v] = false;
        *uncolored -= 1;
    }
    for &(v, c) in &newly {
        for &u in g.neighbors(v) {
            if active[u] {
                residual.remove_color(u, c);
            }
        }
    }
    newly
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, validation};

    #[test]
    fn linear_colors_random_graphs() {
        for seed in 0..3 {
            let g = generators::gnp(26, 0.25, seed);
            let inst = ListInstance::degree_plus_one(g.clone());
            let r = mpc_color_linear(&inst);
            assert_eq!(validation::check_proper(&g, &r.colors), None, "seed {seed}");
            let delta = g.max_degree() as u64;
            assert!(r.colors.iter().all(|&c| c <= delta));
        }
    }

    #[test]
    fn linear_memory_is_linear_in_n() {
        let g = generators::gnp(30, 0.2, 7);
        let inst = ListInstance::degree_plus_one(g);
        let r = mpc_color_linear(&inst);
        assert!(r.memory_words >= 30);
        assert!(r.metrics.max_storage_words <= 4 * r.memory_words);
    }

    #[test]
    fn sublinear_colors_random_graphs() {
        for seed in 0..3 {
            let g = generators::gnp(24, 0.22, seed + 5);
            let inst = ListInstance::degree_plus_one(g.clone());
            let r = mpc_color_sublinear(&inst, 0.6);
            assert_eq!(validation::check_proper(&g, &r.colors), None, "seed {seed}");
        }
    }

    #[test]
    fn sublinear_uses_many_small_machines() {
        let g = generators::random_regular(40, 4, 2);
        let inst = ListInstance::degree_plus_one(g);
        let r = mpc_color_sublinear(&inst, 0.5);
        assert!(
            r.machines > 4,
            "expected a real cluster, got {}",
            r.machines
        );
        assert!(r.memory_words < 40 * 4);
    }

    #[test]
    fn sublinear_finisher_handles_bounded_degree() {
        // Small Δ relative to n triggers the Lemma 4.2 path immediately.
        let g = generators::ring(40);
        let inst = ListInstance::degree_plus_one(g.clone());
        let r = mpc_color_sublinear(&inst, 0.5);
        assert_eq!(validation::check_proper(&g, &r.colors), None);
        assert!(r.finisher_iterations > 0, "ring should use the finisher");
    }

    #[test]
    fn structured_graphs_all_models() {
        for g in [
            generators::star(18),
            generators::grid(4, 5),
            generators::complete(8),
        ] {
            let inst = ListInstance::degree_plus_one(g.clone());
            let lin = mpc_color_linear(&inst);
            assert_eq!(validation::check_proper(&g, &lin.colors), None);
            let sub = mpc_color_sublinear(&inst, 0.6);
            assert_eq!(validation::check_proper(&g, &sub.colors), None);
        }
    }

    #[test]
    fn custom_lists_respected() {
        let g = generators::ring(12);
        let lists: Vec<Vec<u64>> = (0..12u64)
            .map(|v| vec![(2 * v) % 9, (2 * v + 3) % 9 + 9, v % 4 + 18])
            .collect();
        let inst = ListInstance::new(g.clone(), 22, lists.clone()).unwrap();
        let lin = mpc_color_linear(&inst);
        assert_eq!(
            validation::check_list_coloring(&g, &lists, &lin.colors),
            None
        );
        let sub = mpc_color_sublinear(&inst, 0.7);
        assert_eq!(
            validation::check_list_coloring(&g, &lists, &sub.colors),
            None
        );
    }

    #[test]
    fn deterministic_runs() {
        let g = generators::gnp(20, 0.3, 4);
        let inst = ListInstance::degree_plus_one(g);
        let a = mpc_color_linear(&inst);
        let b = mpc_color_linear(&inst);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn trivial_graphs() {
        let empty = dcl_graphs::Graph::empty(0);
        let inst = ListInstance::degree_plus_one(empty);
        assert!(mpc_color_linear(&inst).colors.is_empty());
        let edgeless = dcl_graphs::Graph::empty(5);
        let inst = ListInstance::degree_plus_one(edgeless.clone());
        let r = mpc_color_sublinear(&inst, 0.5);
        assert_eq!(validation::check_proper(&edgeless, &r.colors), None);
    }
}

//! Std-only scoped fork-join thread pool shared by the three simulators.
//!
//! The build image has no crates.io access, so instead of rayon this crate
//! provides the minimal deterministic parallel primitive the simulators need:
//! evaluate a pure per-index function over `0..jobs` on a fixed set of worker
//! threads and hand the results back *in index order*. The [`Backend`] enum is
//! the user-facing knob: every simulator (`dcl_congest::Network`,
//! `dcl_clique::CliqueNetwork`, `dcl_mpc::Mpc`) accepts it and uses a [`Pool`]
//! when it is [`Backend::Parallel`].
//!
//! # Determinism contract
//!
//! Work is split into *chunks* with boundaries that depend only on the item
//! count and the thread count, never on timing. Which worker executes which
//! chunk is racy, but each chunk writes only its own result slot, so the
//! values returned by [`Pool::map_chunks`] are bit-identical across runs and
//! across thread counts with the same chunking. The simulators additionally
//! reduce per-chunk cost counters in chunk order, which makes their metrics
//! independent of scheduling too.
//!
//! # Panics
//!
//! A panic inside a job is caught on the worker, and after the whole batch
//! has drained, the payload of the *lowest-indexed* panicking job is resumed
//! on the caller — so `should_panic` tests observe the same message under
//! both backends, and the choice of propagated panic is deterministic.
//!
//! # Examples
//!
//! ```
//! use dcl_par::{Backend, Pool};
//!
//! let pool = Pool::new(Backend::Parallel(4).threads());
//! let squares = pool.map_chunks(10, |range| {
//!     range.map(|i| i * i).collect::<Vec<_>>()
//! });
//! let flat: Vec<usize> = squares.into_iter().flatten().collect();
//! assert_eq!(flat, (0..10).map(|i| i * i).collect::<Vec<_>>());
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Execution backend for a simulator's round loop.
///
/// `Sequential` is the default everywhere and preserves the exact historical
/// behavior. `Parallel(t)` evaluates the per-node `sender` closures of a round
/// on `t` threads (`0` = one per available core) and merges the results in
/// node order, producing bit-identical inboxes, metrics and colorings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Single-threaded round execution (the default).
    #[default]
    Sequential,
    /// Multi-threaded round execution with the given thread count;
    /// `Parallel(0)` uses [`std::thread::available_parallelism`].
    Parallel(usize),
}

impl Backend {
    /// Effective worker-thread count of this backend (always ≥ 1).
    pub fn threads(self) -> usize {
        match self {
            Backend::Sequential => 1,
            Backend::Parallel(0) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Backend::Parallel(t) => t,
        }
    }

    /// Whether this backend actually runs more than one thread.
    pub fn is_parallel(self) -> bool {
        self.threads() > 1
    }
}

/// A job panic caught by the pool, carrying the *original* panic payload and
/// the index of the failing job (the lowest-indexed one when several jobs of
/// a batch panicked). Returned by [`Pool::try_run`]; [`Pool::run`] resumes it
/// via [`JobPanic::resume`], so callers that just propagate see the exact
/// payload the job raised — never a synthesized replacement message.
pub struct JobPanic {
    /// Index of the (lowest-indexed) panicking job.
    pub job: usize,
    /// The payload the job panicked with, untouched.
    pub payload: Box<dyn Any + Send + 'static>,
}

impl JobPanic {
    /// Re-raises the original payload on the calling thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }

    /// The payload as a `&str` when the job panicked with a string message
    /// (`panic!("…")` produces `String`, string-literal panics produce
    /// `&'static str`); `None` for custom [`std::panic::panic_any`] payloads.
    pub fn message(&self) -> Option<&str> {
        self.payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| self.payload.downcast_ref::<&'static str>().copied())
    }
}

impl std::fmt::Debug for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobPanic")
            .field("job", &self.job)
            .field("message", &self.message())
            .finish()
    }
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool job {} panicked: {}",
            self.job,
            self.message().unwrap_or("<non-string payload>")
        )
    }
}

impl std::error::Error for JobPanic {}

/// An erased `&dyn Fn(usize)` with the lifetime transmuted away so it can sit
/// in the shared state while a batch runs. Soundness: [`Pool::run`] blocks
/// until every worker has finished the batch *before* returning, so the
/// referent outlives every dereference.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine) and
// the pool guarantees it stays alive for the duration of the batch.
unsafe impl Send for TaskPtr {}

struct State {
    /// Batch counter; workers pick up work when it changes.
    epoch: u64,
    /// Jobs in the current batch.
    jobs: usize,
    /// Next unclaimed job index.
    next_job: usize,
    /// Workers that have not yet drained the current batch.
    workers_running: usize,
    /// The erased job closure of the current batch.
    task: Option<TaskPtr>,
    /// Panics caught during the current batch, tagged by job index.
    panics: Vec<(usize, Box<dyn Any + Send + 'static>)>,
    /// Tells workers to exit.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new batch (or shutdown) is available.
    work_cv: Condvar,
    /// Signals the caller that all workers drained the batch.
    done_cv: Condvar,
}

/// A fixed-size fork-join pool of persistent worker threads.
///
/// The pool holds `threads - 1` background workers; the thread calling
/// [`Pool::run`] or [`Pool::map_chunks`] participates as the remaining
/// worker, so `Pool::new(1)` spawns nothing and runs everything inline.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

impl Pool {
    /// Creates a pool with `threads` total workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                jobs: 0,
                next_job: 0,
                workers_running: 0,
                task: None,
                panics: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (1..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
        }
    }

    /// Creates the pool prescribed by `backend` (1 thread for
    /// [`Backend::Sequential`]).
    pub fn from_backend(backend: Backend) -> Self {
        Pool::new(backend.threads())
    }

    /// Total worker count (background workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(i)` for every `i in 0..jobs`, returning when all jobs have
    /// finished. Panics inside jobs are re-raised on the caller with their
    /// original payload (the lowest-indexed panicking job wins); callers that
    /// want the failure as a value use [`Pool::try_run`].
    pub fn run<F: Fn(usize) + Sync>(&self, jobs: usize, f: &F) {
        if let Err(panic) = self.try_run(jobs, f) {
            panic.resume();
        }
    }

    /// [`Pool::run`], but a job panic comes back as a typed [`JobPanic`]
    /// (original payload + failing job index) instead of unwinding the
    /// caller. On the parallel path the whole batch still drains before the
    /// lowest-indexed failure is reported, so worker state is always clean
    /// for the next batch.
    pub fn try_run<F: Fn(usize) + Sync>(&self, jobs: usize, f: &F) -> Result<(), JobPanic> {
        if jobs == 0 {
            return Ok(());
        }
        if self.threads == 1 || jobs == 1 {
            for i in 0..jobs {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                    return Err(JobPanic { job: i, payload });
                }
            }
            return Ok(());
        }
        let task: &(dyn Fn(usize) + Sync) = f;
        // SAFETY: see `TaskPtr` — we block below until the batch fully
        // drains, so the erased borrow never outlives `f`.
        let task = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(task)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            debug_assert_eq!(st.workers_running, 0, "pool batches never nest");
            st.epoch += 1;
            st.jobs = jobs;
            st.next_job = 0;
            st.workers_running = self.handles.len();
            st.task = Some(task);
            st.panics.clear();
            self.shared.work_cv.notify_all();
        }
        // The caller participates in the batch.
        drain_jobs(&self.shared, task);
        let mut st = self.shared.state.lock().unwrap();
        while st.workers_running > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.task = None;
        let mut panics = std::mem::take(&mut st.panics);
        drop(st);
        if !panics.is_empty() {
            panics.sort_by_key(|(i, _)| *i);
            let (job, payload) = panics.swap_remove(0);
            return Err(JobPanic { job, payload });
        }
        Ok(())
    }

    /// Splits `0..items` into contiguous chunks (boundaries depend only on
    /// `items` and the thread count), evaluates `f` on every chunk across the
    /// pool, and returns the per-chunk results **in chunk order**.
    pub fn map_chunks<R, F>(&self, items: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = chunk_ranges(items, self.threads);
        let slots: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        self.run(ranges.len(), &|j| {
            let result = f(ranges[j].clone());
            *slots[j].lock().unwrap() = Some(result);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("run() returns only after every job completed")
            })
            .collect()
    }

    /// [`Pool::map_chunks`] over a mutable slice: `items` is pre-split at
    /// the same deterministic `chunk_ranges` boundaries, and each chunk
    /// job receives its index range plus **exclusive** mutable access to
    /// the corresponding sub-slice (per-item scratch such as the derand
    /// step's per-edge DP caches lives there, with no worker-count
    /// dependence in the results). Per-chunk results return in chunk
    /// order, exactly as `map_chunks`.
    pub fn map_chunks_with<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(Range<usize>, &mut [T]) -> R + Sync,
    {
        let ranges = chunk_ranges(items.len(), self.threads);
        // Pre-split into disjoint sub-slices so jobs can run concurrently.
        let mut parts: Vec<Mutex<Option<&mut [T]>>> = Vec::with_capacity(ranges.len());
        let mut rest = items;
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.len());
            parts.push(Mutex::new(Some(head)));
            rest = tail;
        }
        let slots: Vec<Mutex<Option<R>>> = ranges.iter().map(|_| Mutex::new(None)).collect();
        self.run(ranges.len(), &|j| {
            let chunk = parts[j]
                .lock()
                .unwrap()
                .take()
                .expect("each chunk job runs exactly once");
            let result = f(ranges[j].clone(), chunk);
            *slots[j].lock().unwrap() = Some(result);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("run() returns only after every job completed")
            })
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Deterministic chunking: at most `4 · threads` chunks (for load balancing
/// under skewed per-item cost), never smaller than 64 items per chunk (so
/// tiny rounds do not drown in coordination), always covering `0..items`.
fn chunk_ranges(items: usize, threads: usize) -> Vec<Range<usize>> {
    if items == 0 {
        return Vec::new();
    }
    let max_chunks = (threads * 4).max(1);
    let min_chunk = 64usize;
    let chunks = (items.div_ceil(min_chunk)).clamp(1, max_chunks);
    let base = items / chunks;
    let extra = items % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for c in 0..chunks {
        let len = base + usize::from(c < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, items);
    ranges
}

fn drain_jobs(shared: &Shared, task: TaskPtr) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            if st.next_job >= st.jobs {
                None
            } else {
                let i = st.next_job;
                st.next_job += 1;
                Some(i)
            }
        };
        let Some(i) = job else { break };
        // SAFETY: `task` points to the batch closure, alive until run()
        // returns (which happens only after every worker finished).
        let f = unsafe { &*task.0 };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
            shared.state.lock().unwrap().panics.push((i, payload));
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_epoch = 0u64;
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.task.expect("task set for the active epoch");
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        drain_jobs(shared, task);
        let mut st = shared.state.lock().unwrap();
        st.workers_running -= 1;
        if st.workers_running == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn backend_thread_counts() {
        assert_eq!(Backend::Sequential.threads(), 1);
        assert_eq!(Backend::Parallel(3).threads(), 3);
        assert!(Backend::Parallel(0).threads() >= 1);
        assert!(!Backend::Sequential.is_parallel());
        assert!(Backend::Parallel(2).is_parallel());
        assert!(!Backend::Parallel(1).is_parallel());
        assert_eq!(Backend::default(), Backend::Sequential);
    }

    #[test]
    fn run_executes_every_job_exactly_once() {
        let pool = Pool::new(4);
        let counters: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        pool.run(1000, &|i| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counters.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn map_chunks_results_are_in_order_and_cover_all_items() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            for items in [0usize, 1, 63, 64, 65, 1000] {
                let chunks = pool.map_chunks(items, |r| r.collect::<Vec<_>>());
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(
                    flat,
                    (0..items).collect::<Vec<_>>(),
                    "threads {threads} items {items}"
                );
            }
        }
    }

    #[test]
    fn map_chunks_with_splits_at_the_same_boundaries() {
        for threads in [1, 2, 4, 7] {
            let pool = Pool::new(threads);
            for items in [0usize, 1, 63, 64, 65, 777] {
                let mut scratch: Vec<usize> = vec![usize::MAX; items];
                let starts = pool.map_chunks_with(&mut scratch, |range, chunk| {
                    assert_eq!(range.len(), chunk.len(), "chunk/sub-slice mismatch");
                    for (off, c) in chunk.iter_mut().enumerate() {
                        *c = range.start + off;
                    }
                    range.start
                });
                // Every item was visited by exactly the chunk owning it.
                assert!(
                    scratch.iter().enumerate().all(|(i, &v)| v == i),
                    "threads {threads} items {items}"
                );
                // Same deterministic boundaries as map_chunks.
                assert_eq!(starts, pool.map_chunks(items, |r| r.start));
            }
        }
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = Pool::new(3);
        for round in 0..50 {
            let sums = pool.map_chunks(500, |r| r.map(|i| i + round).sum::<usize>());
            let total: usize = sums.into_iter().sum();
            assert_eq!(total, (0..500).map(|i| i + round).sum::<usize>());
        }
    }

    #[test]
    fn deterministic_across_thread_counts_with_same_chunking() {
        // Same thread count => same chunk boundaries => identical outputs.
        let a = Pool::new(4).map_chunks(777, |r| r.map(|i| i * 3).collect::<Vec<_>>());
        let b = Pool::new(4).map_chunks(777, |r| r.map(|i| i * 3).collect::<Vec<_>>());
        assert_eq!(a, b);
        // Across thread counts, the *flattened* result is still identical.
        let c: Vec<usize> = Pool::new(2)
            .map_chunks(777, |r| r.map(|i| i * 3).collect::<Vec<_>>())
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(a.into_iter().flatten().collect::<Vec<_>>(), c);
    }

    #[test]
    fn panic_propagates_with_lowest_job_index() {
        let pool = Pool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(100, &|i| {
                if i == 17 || i == 93 {
                    panic!("job {i} failed");
                }
            });
        }));
        let payload = result.expect_err("should panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "job 17 failed");
        // The pool survives a panicking batch.
        let ok = pool.map_chunks(10, |r| r.len());
        assert_eq!(ok.iter().sum::<usize>(), 10);
    }

    #[test]
    fn try_run_returns_the_original_payload_and_job_index() {
        // Non-string payloads must survive untouched on both execution
        // paths: the pooled batch and the single-thread inline loop.
        #[derive(Debug, PartialEq)]
        struct Custom(u64);
        for threads in [1usize, 4] {
            let pool = Pool::new(threads);
            let err = pool
                .try_run(50, &|i| {
                    if i >= 23 {
                        std::panic::panic_any(Custom(i as u64));
                    }
                })
                .expect_err("jobs 23.. panic");
            assert_eq!(err.job, 23, "threads {threads}");
            assert_eq!(err.payload.downcast_ref::<Custom>(), Some(&Custom(23)));
            assert!(err.message().is_none());
            pool.try_run(10, &|_| {})
                .expect("clean batch after failure");
        }
    }

    #[test]
    fn job_panic_exposes_string_messages() {
        let pool = Pool::new(2);
        let err = pool
            .try_run(8, &|i| assert!(i != 5, "job {i} rejected"))
            .expect_err("job 5 panics");
        assert_eq!(err.job, 5);
        assert_eq!(err.message(), Some("job 5 rejected"));
        assert!(format!("{err:?}").contains("job 5 rejected"));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        assert_eq!(pool.threads(), 1);
        let out = pool.map_chunks(200, |r| r.sum::<usize>());
        assert_eq!(out.iter().sum::<usize>(), (0..200).sum::<usize>());
    }

    #[test]
    fn chunk_ranges_respect_minimum_size() {
        // 100 items on 8 threads: 100/64 rounds up to 2 chunks, not 32.
        let ranges = chunk_ranges(100, 8);
        assert_eq!(ranges.len(), 2);
        // Large inputs cap at 4x threads.
        let ranges = chunk_ranges(1_000_000, 4);
        assert_eq!(ranges.len(), 16);
    }
}

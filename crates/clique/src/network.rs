//! CONGESTED CLIQUE simulator.
//!
//! Each round, every node may send one `O(log n)`-bit message to *every*
//! other node (unicast: different messages to different peers). The
//! simulator enforces per-node send budgets and meters rounds, messages and
//! bits. Bulk data movement uses [`CliqueNetwork::lenzen_route`], the
//! cost-model form of Lenzen's deterministic routing theorem \[Len13\]: any
//! instance where every node sends and receives at most `n` messages is
//! delivered in `O(1)` (charged: 2) rounds.

use dcl_congest::wire::Wire;

/// Cost counters of a [`CliqueNetwork`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CliqueMetrics {
    /// Synchronous rounds elapsed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Bits delivered.
    pub bits: u64,
}

/// A congested clique on `n` nodes.
///
/// # Examples
///
/// ```
/// use dcl_clique::network::CliqueNetwork;
///
/// let mut net = CliqueNetwork::new(4, 64);
/// // Node 0 sends its id to everyone else.
/// let inboxes = net.round(|v| if v == 0 { vec![(1, 7u32), (2, 7), (3, 7)] } else { vec![] });
/// assert_eq!(inboxes[3], vec![(0, 7)]);
/// assert_eq!(net.metrics().rounds, 1);
/// ```
#[derive(Debug)]
pub struct CliqueNetwork {
    n: usize,
    cap_bits: u32,
    metrics: CliqueMetrics,
}

/// Per-node inboxes: `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(usize, M)>>;

impl CliqueNetwork {
    /// Creates a clique of `n` nodes with a per-message cap in bits.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bits == 0`.
    pub fn new(n: usize, cap_bits: u32) -> Self {
        assert!(cap_bits > 0, "bandwidth cap must be positive");
        CliqueNetwork {
            n,
            cap_bits,
            metrics: CliqueMetrics::default(),
        }
    }

    /// Creates a clique with the default cap (two 64-bit words, covering
    /// `O(log n)`-bit ids and colors plus a word-sized value).
    pub fn with_default_cap(n: usize) -> Self {
        CliqueNetwork::new(n, 128)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> CliqueMetrics {
        self.metrics
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// One synchronous round: `sender(v)` lists `(recipient, payload)`
    /// pairs — at most one message per ordered pair per round.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range recipients, self-messages, duplicate
    /// recipients, or oversized payloads.
    pub fn round<M, F>(&mut self, mut sender: F) -> Inboxes<M>
    where
        M: Wire,
        F: FnMut(usize) -> Vec<(usize, M)>,
    {
        self.metrics.rounds += 1;
        let mut inboxes: Inboxes<M> = (0..self.n).map(|_| Vec::new()).collect();
        for u in 0..self.n {
            let mut seen = Vec::new();
            for (v, msg) in sender(u) {
                assert!(v < self.n, "recipient {v} out of range");
                assert_ne!(u, v, "node {u} sent a message to itself");
                assert!(
                    !seen.contains(&v),
                    "node {u} sent two messages to {v} in one round"
                );
                seen.push(v);
                self.account(msg.wire_bits());
                inboxes[v].push((u, msg));
            }
        }
        inboxes
    }

    /// Lenzen routing: delivers an arbitrary multiset of messages in a
    /// charged constant number of rounds (2), after verifying the theorem's
    /// precondition that every node sends at most `n` and receives at most
    /// `n` messages.
    ///
    /// # Panics
    ///
    /// Panics if a send or receive budget is exceeded or a payload is
    /// oversized.
    pub fn lenzen_route<M>(&mut self, messages: Vec<(usize, usize, M)>) -> Inboxes<M>
    where
        M: Wire,
    {
        let mut sent = vec![0usize; self.n];
        let mut received = vec![0usize; self.n];
        let mut inboxes: Inboxes<M> = (0..self.n).map(|_| Vec::new()).collect();
        for (src, dst, msg) in messages {
            assert!(src < self.n && dst < self.n, "endpoint out of range");
            sent[src] += 1;
            received[dst] += 1;
            assert!(
                sent[src] <= self.n,
                "node {src} exceeds the Lenzen send budget"
            );
            assert!(
                received[dst] <= self.n,
                "node {dst} exceeds the Lenzen receive budget"
            );
            self.account(msg.wire_bits());
            inboxes[dst].push((src, msg));
        }
        self.metrics.rounds += 2;
        inboxes
    }

    /// Charges `rounds` rounds without traffic (for schedule steps whose
    /// cost is a closed formula).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }

    fn account(&mut self, bits: u32) {
        assert!(
            bits <= self.cap_bits,
            "message of {bits} bits exceeds clique cap of {} bits",
            self.cap_bits
        );
        self.metrics.messages += 1;
        self.metrics.bits += u64::from(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_unicast_delivery() {
        let mut net = CliqueNetwork::with_default_cap(3);
        let inboxes = net.round(|v| match v {
            0 => vec![(1, 10u32), (2, 20u32)],
            1 => vec![(2, 30u32)],
            _ => vec![],
        });
        assert_eq!(inboxes[1], vec![(0, 10)]);
        let mut got = inboxes[2].clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 20), (1, 30)]);
        assert_eq!(net.metrics().messages, 3);
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn self_message_panics() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let _ = net.round(|v| if v == 0 { vec![(0, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn duplicate_recipient_panics() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u32), (1, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds clique cap")]
    fn oversized_message_panics() {
        let mut net = CliqueNetwork::new(2, 4);
        let _ = net.round(|v| if v == 0 { vec![(1, 255u32)] } else { vec![] });
    }

    #[test]
    fn lenzen_routing_charges_two_rounds() {
        let mut net = CliqueNetwork::with_default_cap(4);
        let msgs = vec![(0, 1, 5u32), (0, 2, 6u32), (3, 1, 7u32)];
        let inboxes = net.lenzen_route(msgs);
        assert_eq!(net.metrics().rounds, 2);
        assert_eq!(inboxes[1].len(), 2);
        assert_eq!(inboxes[2], vec![(0, 6)]);
    }

    #[test]
    fn lenzen_budget_allows_n_messages_per_node() {
        let mut net = CliqueNetwork::with_default_cap(3);
        // Node 0 sends 3 = n messages (to nodes 1 and 2, one duplicate pair).
        let msgs = vec![(0, 1, 1u32), (0, 1, 2u32), (0, 2, 3u32)];
        let inboxes = net.lenzen_route(msgs);
        assert_eq!(inboxes[1].len(), 2);
    }

    #[test]
    #[should_panic(expected = "send budget")]
    fn lenzen_send_budget_enforced() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let msgs = vec![(0, 1, 1u32), (0, 1, 2u32), (0, 1, 3u32)];
        let _ = net.lenzen_route(msgs);
    }
}

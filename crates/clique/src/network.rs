//! CONGESTED CLIQUE simulator.
//!
//! Each round, every node may send one `O(log n)`-bit message to *every*
//! other node (unicast: different messages to different peers). The
//! simulator enforces per-node send budgets and meters rounds, messages and
//! bits. Bulk data movement uses [`CliqueNetwork::lenzen_route`], the
//! cost-model form of Lenzen's deterministic routing theorem \[Len13\]: any
//! instance where every node sends and receives at most `n` messages is
//! delivered in `O(1)` (charged: 2) rounds.

use dcl_congest::wire::Wire;
use dcl_par::{Backend, Pool};

/// Cost counters of a [`CliqueNetwork`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CliqueMetrics {
    /// Synchronous rounds elapsed.
    pub rounds: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Bits delivered.
    pub bits: u64,
}

impl CliqueMetrics {
    /// Folds another counter into this one; used to reduce per-worker
    /// accumulators of a parallel round in chunk order.
    pub fn absorb(&mut self, other: CliqueMetrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
    }
}

/// A congested clique on `n` nodes.
///
/// # Examples
///
/// ```
/// use dcl_clique::network::CliqueNetwork;
///
/// let mut net = CliqueNetwork::new(4, 64);
/// // Node 0 sends its id to everyone else.
/// let inboxes = net.round(|v| if v == 0 { vec![(1, 7u32), (2, 7), (3, 7)] } else { vec![] });
/// assert_eq!(inboxes[3], vec![(0, 7)]);
/// assert_eq!(net.metrics().rounds, 1);
/// ```
#[derive(Debug)]
pub struct CliqueNetwork {
    n: usize,
    cap_bits: u32,
    metrics: CliqueMetrics,
    backend: Backend,
    /// Worker pool, present only when `backend` is effectively parallel.
    pool: Option<Pool>,
}

/// Per-node inboxes: `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(usize, M)>>;

impl CliqueNetwork {
    /// Creates a clique of `n` nodes with a per-message cap in bits.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bits == 0`.
    pub fn new(n: usize, cap_bits: u32) -> Self {
        assert!(cap_bits > 0, "bandwidth cap must be positive");
        CliqueNetwork {
            n,
            cap_bits,
            metrics: CliqueMetrics::default(),
            backend: Backend::Sequential,
            pool: None,
        }
    }

    /// Creates a clique with the default cap (two 64-bit words, covering
    /// `O(log n)`-bit ids and colors plus a word-sized value).
    pub fn with_default_cap(n: usize) -> Self {
        CliqueNetwork::new(n, 128)
    }

    /// Creates a clique with an explicit cap and round-execution backend.
    pub fn with_backend(n: usize, cap_bits: u32, backend: Backend) -> Self {
        let mut net = CliqueNetwork::new(n, cap_bits);
        net.set_backend(backend);
        net
    }

    /// Switches the round-execution backend. Results are bit-identical
    /// across backends; only wall-clock changes.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        self.pool = backend.is_parallel().then(|| Pool::new(backend.threads()));
    }

    /// The active round-execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> CliqueMetrics {
        self.metrics
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// One synchronous round: `sender(v)` lists `(recipient, payload)`
    /// pairs — at most one message per ordered pair per round.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range recipients, self-messages, duplicate
    /// recipients, or oversized payloads.
    /// Under [`Backend::Parallel`] the `sender` closures are evaluated on the
    /// worker pool; validation and cost accounting happen in per-worker
    /// [`CliqueMetrics`] accumulators reduced in node order, and messages are
    /// merged into the inboxes in sender order — bit-identical to the
    /// sequential backend. After a panic the metrics are unspecified.
    pub fn round<M, F>(&mut self, sender: F) -> Inboxes<M>
    where
        M: Wire + Send,
        F: Fn(usize) -> Vec<(usize, M)> + Sync,
    {
        self.metrics.rounds += 1;
        let n = self.n;
        let outgoing: Vec<Vec<(usize, M)>> = match &self.pool {
            Some(pool) => {
                let cap = self.cap_bits;
                let chunks = pool.map_chunks(n, |range| {
                    let mut local = CliqueMetrics::default();
                    // Duplicate-recipient marks, stamped with the sender id:
                    // O(1) per message instead of the former O(#recipients)
                    // scan (O(n²) per node in all-to-all rounds).
                    let mut marks = vec![usize::MAX; n];
                    let mut out = Vec::with_capacity(range.len());
                    for u in range {
                        let msgs = sender(u);
                        validate_unicasts(n, cap, u, &msgs, &mut marks, &mut local);
                        out.push(msgs);
                    }
                    (out, local)
                });
                let mut outgoing = Vec::with_capacity(n);
                for (out, local) in chunks {
                    self.metrics.absorb(local);
                    outgoing.extend(out);
                }
                outgoing
            }
            None => {
                let mut local = CliqueMetrics::default();
                let mut marks = vec![usize::MAX; n];
                let mut out = Vec::with_capacity(n);
                for u in 0..n {
                    let msgs = sender(u);
                    validate_unicasts(n, self.cap_bits, u, &msgs, &mut marks, &mut local);
                    out.push(msgs);
                }
                self.metrics.absorb(local);
                out
            }
        };
        let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        for (u, msgs) in outgoing.into_iter().enumerate() {
            for (v, msg) in msgs {
                inboxes[v].push((u, msg));
            }
        }
        inboxes
    }

    /// Lenzen routing: delivers an arbitrary multiset of messages in a
    /// charged constant number of rounds (2), after verifying the theorem's
    /// precondition that every node sends at most `n` and receives at most
    /// `n` messages.
    ///
    /// # Panics
    ///
    /// Panics if a send or receive budget is exceeded or a payload is
    /// oversized.
    pub fn lenzen_route<M>(&mut self, messages: Vec<(usize, usize, M)>) -> Inboxes<M>
    where
        M: Wire,
    {
        let mut sent = vec![0usize; self.n];
        let mut received = vec![0usize; self.n];
        let mut inboxes: Inboxes<M> = (0..self.n).map(|_| Vec::new()).collect();
        for (src, dst, msg) in messages {
            assert!(src < self.n && dst < self.n, "endpoint out of range");
            sent[src] += 1;
            received[dst] += 1;
            assert!(
                sent[src] <= self.n,
                "node {src} exceeds the Lenzen send budget"
            );
            assert!(
                received[dst] <= self.n,
                "node {dst} exceeds the Lenzen receive budget"
            );
            self.account(msg.wire_bits());
            inboxes[dst].push((src, msg));
        }
        self.metrics.rounds += 2;
        inboxes
    }

    /// Charges `rounds` rounds without traffic (for schedule steps whose
    /// cost is a closed formula).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }

    fn account(&mut self, bits: u32) {
        assert!(
            bits <= self.cap_bits,
            "message of {bits} bits exceeds clique cap of {} bits",
            self.cap_bits
        );
        self.metrics.messages += 1;
        self.metrics.bits += u64::from(bits);
    }
}

/// Validates one node's unicasts for a [`CliqueNetwork::round`] and accounts
/// them into `metrics`. `marks` is a scratch slice of length `n` stamped with
/// the sender id for the duplicate-recipient check.
fn validate_unicasts<M: Wire>(
    n: usize,
    cap_bits: u32,
    u: usize,
    msgs: &[(usize, M)],
    marks: &mut [usize],
    metrics: &mut CliqueMetrics,
) {
    for (v, msg) in msgs {
        let v = *v;
        assert!(v < n, "recipient {v} out of range");
        assert_ne!(u, v, "node {u} sent a message to itself");
        assert!(
            marks[v] != u,
            "node {u} sent two messages to {v} in one round"
        );
        marks[v] = u;
        let bits = msg.wire_bits();
        assert!(
            bits <= cap_bits,
            "message of {bits} bits exceeds clique cap of {cap_bits} bits"
        );
        metrics.messages += 1;
        metrics.bits += u64::from(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_unicast_delivery() {
        let mut net = CliqueNetwork::with_default_cap(3);
        let inboxes = net.round(|v| match v {
            0 => vec![(1, 10u32), (2, 20u32)],
            1 => vec![(2, 30u32)],
            _ => vec![],
        });
        assert_eq!(inboxes[1], vec![(0, 10)]);
        let mut got = inboxes[2].clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 20), (1, 30)]);
        assert_eq!(net.metrics().messages, 3);
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn self_message_panics() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let _ = net.round(|v| if v == 0 { vec![(0, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn duplicate_recipient_panics() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u32), (1, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds clique cap")]
    fn oversized_message_panics() {
        let mut net = CliqueNetwork::new(2, 4);
        let _ = net.round(|v| if v == 0 { vec![(1, 255u32)] } else { vec![] });
    }

    #[test]
    fn parallel_backend_matches_sequential_bit_for_bit() {
        let sender = |v: usize| -> Vec<(usize, u64)> {
            (0..90usize)
                .filter(|&u| u != v && (u + v) % 3 == 0)
                .map(|u| (u, (v * 100 + u) as u64))
                .collect()
        };
        let mut seq = CliqueNetwork::with_default_cap(90);
        let mut par = CliqueNetwork::with_backend(90, 128, Backend::Parallel(4));
        for _ in 0..3 {
            assert_eq!(seq.round(sender), par.round(sender));
        }
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn parallel_self_message_panics() {
        let mut net = CliqueNetwork::with_backend(80, 128, Backend::Parallel(3));
        let _ = net.round(|v| if v == 41 { vec![(41, 1u32)] } else { vec![] });
    }

    #[test]
    fn lenzen_routing_charges_two_rounds() {
        let mut net = CliqueNetwork::with_default_cap(4);
        let msgs = vec![(0, 1, 5u32), (0, 2, 6u32), (3, 1, 7u32)];
        let inboxes = net.lenzen_route(msgs);
        assert_eq!(net.metrics().rounds, 2);
        assert_eq!(inboxes[1].len(), 2);
        assert_eq!(inboxes[2], vec![(0, 6)]);
    }

    #[test]
    fn lenzen_budget_allows_n_messages_per_node() {
        let mut net = CliqueNetwork::with_default_cap(3);
        // Node 0 sends 3 = n messages (to nodes 1 and 2, one duplicate pair).
        let msgs = vec![(0, 1, 1u32), (0, 1, 2u32), (0, 2, 3u32)];
        let inboxes = net.lenzen_route(msgs);
        assert_eq!(inboxes[1].len(), 2);
    }

    #[test]
    #[should_panic(expected = "send budget")]
    fn lenzen_send_budget_enforced() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let msgs = vec![(0, 1, 1u32), (0, 1, 2u32), (0, 1, 3u32)];
        let _ = net.lenzen_route(msgs);
    }
}

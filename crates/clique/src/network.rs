//! CONGESTED CLIQUE simulator.
//!
//! Each round, every node may send one `O(log n)`-bit message to *every*
//! other node (unicast: different messages to different peers). The
//! simulator enforces per-node send budgets and meters rounds, messages and
//! bits. Bulk data movement uses [`CliqueNetwork::lenzen_route`], the
//! cost-model form of Lenzen's deterministic routing theorem \[Len13\]: any
//! instance where every node sends and receives at most `n` messages is
//! delivered in `O(1)` (charged: 2) rounds.
//!
//! The runtime — backend fan-out, duplicate-recipient validation, cap
//! enforcement, cost metering — lives in [`dcl_sim`]; this module is the
//! clique *policy*: all-pairs unicast ([`AllPairsTopology`]), the two-word
//! default cap, and the Lenzen-routing cost model.

use dcl_par::{Backend, Pool};
use dcl_sim::wire::Wire;
use dcl_sim::{
    AllPairsTopology, BandwidthCap, RoundEngine, SendPolicy, Topology, TransportSpec,
    TransportStats,
};

/// Cost counters of a [`CliqueNetwork`] (the shared
/// [`dcl_sim::SimMetrics`]).
pub use dcl_sim::SimMetrics as CliqueMetrics;

/// A congested clique on `n` nodes.
///
/// # Examples
///
/// ```
/// use dcl_clique::network::CliqueNetwork;
///
/// let mut net = CliqueNetwork::new(4, 64);
/// // Node 0 sends its id to everyone else.
/// let inboxes = net.round(|v| if v == 0 { vec![(1, 7u32), (2, 7), (3, 7)] } else { vec![] });
/// assert_eq!(inboxes[3], vec![(0, 7)]);
/// assert_eq!(net.metrics().rounds, 1);
/// ```
#[derive(Debug)]
pub struct CliqueNetwork {
    topo: AllPairsTopology,
    cap: BandwidthCap,
    metrics: CliqueMetrics,
    engine: RoundEngine,
}

/// Per-node inboxes: `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(usize, M)>>;

impl CliqueNetwork {
    /// Creates a clique of `n` nodes with a per-message cap in bits.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bits == 0`.
    pub fn new(n: usize, cap_bits: u32) -> Self {
        CliqueNetwork::with_cap(n, BandwidthCap::new(cap_bits))
    }

    /// Creates a clique of `n` nodes with an explicit [`BandwidthCap`].
    pub fn with_cap(n: usize, cap: BandwidthCap) -> Self {
        CliqueNetwork {
            topo: AllPairsTopology::new(n),
            cap,
            metrics: CliqueMetrics::default(),
            engine: RoundEngine::new(Backend::Sequential),
        }
    }

    /// Creates a clique with the default cap (two 64-bit words, covering
    /// `O(log n)`-bit ids and colors plus a word-sized value).
    pub fn with_default_cap(n: usize) -> Self {
        CliqueNetwork::with_cap(n, BandwidthCap::two_words())
    }

    /// Creates a clique with an explicit cap and round-execution backend.
    pub fn with_backend(n: usize, cap_bits: u32, backend: Backend) -> Self {
        let mut net = CliqueNetwork::new(n, cap_bits);
        net.set_backend(backend);
        net
    }

    /// Creates a clique from an [`dcl_sim::ExecConfig`]: the config's cap
    /// override if set, else the two-word default; the config's backend and
    /// transport tier.
    pub fn from_exec(n: usize, exec: &dcl_sim::ExecConfig) -> Self {
        let mut net = CliqueNetwork::with_cap(n, exec.cap_or(BandwidthCap::two_words()));
        net.set_backend(exec.backend);
        net.set_transport(exec.transport);
        net
    }

    /// Switches the round-execution backend. Results are bit-identical
    /// across backends; only wall-clock changes.
    pub fn set_backend(&mut self, backend: Backend) {
        self.engine.set_backend(backend);
    }

    /// The active round-execution backend.
    pub fn backend(&self) -> Backend {
        self.engine.backend()
    }

    /// Switches the transport tier carrying [`CliqueNetwork::round`].
    /// Results are bit-identical across tiers; only the physical layer —
    /// metered by [`CliqueNetwork::transport_stats`] — changes. Charged
    /// collectives ([`CliqueNetwork::lenzen_route`]) deliver centrally on
    /// every tier: they are cost-model shortcuts, not stepped rounds.
    pub fn set_transport(&mut self, transport: TransportSpec) {
        self.engine.set_transport(transport);
    }

    /// The active transport tier.
    pub fn transport(&self) -> TransportSpec {
        self.engine.transport_spec()
    }

    /// Physical-layer counters of the built transport (`None` on the
    /// in-memory reference tier, which never serializes).
    pub fn transport_stats(&self) -> Option<&TransportStats> {
        self.engine.transport_stats()
    }

    /// The worker pool of a parallel backend (`None` under
    /// [`Backend::Sequential`]). The coloring driver uses it to evaluate
    /// seed-segment candidates and assemble routing instances in parallel —
    /// work every node performs simultaneously in the real clique.
    pub fn pool(&self) -> Option<&Pool> {
        self.engine.pool()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.topo.len()
    }

    /// The per-message bandwidth cap.
    pub fn cap(&self) -> BandwidthCap {
        self.cap
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> CliqueMetrics {
        self.metrics
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// One synchronous round: `sender(v)` lists `(recipient, payload)`
    /// pairs — at most one message per ordered pair per round.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range recipients, self-messages, duplicate
    /// recipients, or oversized payloads.
    /// Under [`Backend::Parallel`] the `sender` closures are evaluated on the
    /// worker pool; validation and cost accounting happen in per-worker
    /// [`CliqueMetrics`] accumulators reduced in node order, and messages are
    /// merged into the inboxes in sender order — bit-identical to the
    /// sequential backend. After a panic the metrics are unspecified.
    pub fn round<M, F>(&mut self, sender: F) -> Inboxes<M>
    where
        M: Wire + Send,
        F: Fn(usize) -> Vec<(usize, M)> + Sync,
    {
        self.engine.message_round(
            &self.topo,
            self.cap,
            SendPolicy::Strict,
            &mut self.metrics,
            sender,
        )
    }

    /// Lenzen routing: delivers an arbitrary multiset of messages in a
    /// charged constant number of rounds (2 per fragment of the widest
    /// payload — 2 exactly at any cap that fits every payload), after
    /// verifying the theorem's precondition that every node sends at most
    /// `n` and receives at most `n` messages. Payloads wider than the cap
    /// fragment into `⌈bits / cap⌉` cap-sized messages, which is what keeps
    /// the routing runnable under swept caps.
    ///
    /// # Panics
    ///
    /// Panics if a send or receive budget is exceeded or an endpoint is out
    /// of range.
    pub fn lenzen_route<M>(&mut self, messages: Vec<(usize, usize, M)>) -> Inboxes<M>
    where
        M: Wire,
    {
        let n = self.n();
        let mut sent = vec![0usize; n];
        let mut received = vec![0usize; n];
        let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        let mut max_fragments = 1u32;
        for (src, dst, msg) in messages {
            assert!(src < n && dst < n, "endpoint out of range");
            sent[src] += 1;
            received[dst] += 1;
            assert!(sent[src] <= n, "node {src} exceeds the Lenzen send budget");
            assert!(
                received[dst] <= n,
                "node {dst} exceeds the Lenzen receive budget"
            );
            max_fragments =
                max_fragments.max(self.metrics.account_fragmented(self.cap, msg.wire_bits()));
            inboxes[dst].push((src, msg));
        }
        self.metrics.rounds += 2 * u64::from(max_fragments);
        inboxes
    }

    /// Charges `rounds` rounds without traffic (for schedule steps whose
    /// cost is a closed formula).
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_unicast_delivery() {
        let mut net = CliqueNetwork::with_default_cap(3);
        let inboxes = net.round(|v| match v {
            0 => vec![(1, 10u32), (2, 20u32)],
            1 => vec![(2, 30u32)],
            _ => vec![],
        });
        assert_eq!(inboxes[1], vec![(0, 10)]);
        let mut got = inboxes[2].clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 20), (1, 30)]);
        assert_eq!(net.metrics().messages, 3);
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn self_message_panics() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let _ = net.round(|v| if v == 0 { vec![(0, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn duplicate_recipient_panics() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u32), (1, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds clique cap")]
    fn oversized_message_panics() {
        let mut net = CliqueNetwork::new(2, 4);
        let _ = net.round(|v| if v == 0 { vec![(1, 255u32)] } else { vec![] });
    }

    #[test]
    fn parallel_backend_matches_sequential_bit_for_bit() {
        let sender = |v: usize| -> Vec<(usize, u64)> {
            (0..90usize)
                .filter(|&u| u != v && (u + v).is_multiple_of(3))
                .map(|u| (u, (v * 100 + u) as u64))
                .collect()
        };
        let mut seq = CliqueNetwork::with_default_cap(90);
        let mut par = CliqueNetwork::with_backend(90, 128, Backend::Parallel(4));
        for _ in 0..3 {
            assert_eq!(seq.round(sender), par.round(sender));
        }
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "to itself")]
    fn parallel_self_message_panics() {
        let mut net = CliqueNetwork::with_backend(80, 128, Backend::Parallel(3));
        let _ = net.round(|v| if v == 41 { vec![(41, 1u32)] } else { vec![] });
    }

    #[test]
    fn lenzen_routing_charges_two_rounds() {
        let mut net = CliqueNetwork::with_default_cap(4);
        let msgs = vec![(0, 1, 5u32), (0, 2, 6u32), (3, 1, 7u32)];
        let inboxes = net.lenzen_route(msgs);
        assert_eq!(net.metrics().rounds, 2);
        assert_eq!(inboxes[1].len(), 2);
        assert_eq!(inboxes[2], vec![(0, 6)]);
    }

    #[test]
    fn lenzen_routing_stretches_with_fragments_at_small_caps() {
        let mut net = CliqueNetwork::new(4, 4);
        // An 8-bit payload at a 4-bit cap: 2 fragments → 4 charged rounds.
        let inboxes = net.lenzen_route(vec![(0, 1, 255u32), (2, 3, 1u32)]);
        assert_eq!(net.metrics().rounds, 4);
        assert_eq!(net.metrics().messages, 3);
        assert_eq!(net.metrics().bits, 9);
        assert_eq!(inboxes[1], vec![(0, 255)]);
    }

    #[test]
    fn lenzen_budget_allows_n_messages_per_node() {
        let mut net = CliqueNetwork::with_default_cap(3);
        // Node 0 sends 3 = n messages (to nodes 1 and 2, one duplicate pair).
        let msgs = vec![(0, 1, 1u32), (0, 1, 2u32), (0, 2, 3u32)];
        let inboxes = net.lenzen_route(msgs);
        assert_eq!(inboxes[1].len(), 2);
    }

    #[test]
    fn byte_transports_match_the_local_reference_bit_for_bit() {
        let sender = |v: usize| -> Vec<(usize, u64)> {
            (0..16usize)
                .filter(|&u| u != v && (u + v).is_multiple_of(3))
                .map(|u| (u, (v * 100 + u) as u64))
                .collect()
        };
        let mut reference = CliqueNetwork::with_default_cap(16);
        let rounds_ref = [reference.round(sender), reference.round(sender)];
        for transport in [TransportSpec::Channel, TransportSpec::Tcp] {
            let exec = dcl_sim::ExecConfig::default().with_transport(transport);
            let mut net = CliqueNetwork::from_exec(16, &exec);
            assert_eq!(net.transport(), transport);
            assert_eq!(rounds_ref[0], net.round(sender), "{transport}");
            assert_eq!(rounds_ref[1], net.round(sender), "{transport}");
            assert_eq!(reference.metrics(), net.metrics(), "{transport}");
            // Lenzen routing is a charged collective: central delivery, no
            // transport frames.
            let frames_before = net.transport_stats().map_or(0, |s| s.frames);
            let _ = net.lenzen_route(vec![(0, 1, 5u32), (3, 2, 6u32)]);
            assert_eq!(
                net.transport_stats().map_or(0, |s| s.frames),
                frames_before,
                "{transport}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "send budget")]
    fn lenzen_send_budget_enforced() {
        let mut net = CliqueNetwork::with_default_cap(2);
        let msgs = vec![(0, 1, 1u32), (0, 1, 2u32), (0, 1, 3u32)];
        let _ = net.lenzen_route(msgs);
    }
}

//! Theorem 1.3: deterministic `(degree+1)`-list coloring in the CONGESTED
//! CLIQUE.
//!
//! Three clique-specific accelerations over the CONGEST algorithm (Section
//! 4 of the paper):
//!
//! 1. **No diameter factor** — conditional expectations travel directly to
//!    the leader instead of over a BFS tree.
//! 2. **Segment-parallel derandomization** — the shared seed is split into
//!    segments of `λ ≤ log₂ n` bits; all `2^λ` candidate values of a segment
//!    are evaluated simultaneously (each candidate by a responsible node)
//!    and the argmin is fixed in `O(1)` rounds, instead of `Θ(λ)` rounds of
//!    bit-by-bit fixing. The input coloring is the node ids (`K = n`), so no
//!    Linial step is needed.
//! 3. **Accelerating batches + final collect** — once at most `n/2^i` nodes
//!    remain uncolored, the routing headroom fixes `i` prefix bits per
//!    `O(1)`-round batch (implemented via `2^i`-ary digits with quantile
//!    thresholds on the same coin family), and once the residual subgraph
//!    (edges + lists) fits into a single Lenzen routing instance it is
//!    shipped to the leader and solved locally.
//!
//! Final conflicts are resolved with the MIS-avoidance trick of Section 4
//! (coins a `(Δ+1)` factor more accurate; surviving conflict graph is a
//! matching; larger id wins), so no distributed MIS is needed — matching the
//! clique/MPC presentation of the paper.

use crate::network::CliqueNetwork;
use dcl_coloring::derand_step::accuracy_bits;
use dcl_coloring::instance::ListInstance;
use dcl_coloring::prefix::PrefixState;
use dcl_derand::seed::PartialSeed;
use dcl_derand::slice::{coin_threshold, PackedForms, SliceFamily};
use dcl_sim::{ExecConfig, Wire};

/// Configuration of the clique coloring.
///
/// `#[non_exhaustive]`: build it with [`Default`] plus the `with_*` setters
/// so future knobs are not semver breaks.
#[derive(Debug, Clone, Copy)]
#[non_exhaustive]
pub struct CliqueColoringConfig {
    /// Cap on the seed-segment length `λ` (the effective value is
    /// `min(λ_cap, ⌈log₂ n⌉)`; candidates per segment = `2^λ`).
    pub segment_bits: u32,
    /// Cap on the batch width `i` (bits of candidate color fixed per batch).
    pub max_batch_width: u32,
    /// Safety cap on partial-coloring iterations.
    pub max_iterations: usize,
    /// Simulator execution: round backend (results are bit-identical across
    /// backends) and bandwidth cap (`None` = two words).
    pub exec: ExecConfig,
}

impl Default for CliqueColoringConfig {
    fn default() -> Self {
        CliqueColoringConfig {
            segment_bits: 6,
            max_batch_width: 3,
            max_iterations: 200,
            exec: ExecConfig::default(),
        }
    }
}

impl CliqueColoringConfig {
    /// Sets the seed-segment length cap `λ` (builder style).
    #[must_use]
    pub fn with_segment_bits(mut self, segment_bits: u32) -> Self {
        self.segment_bits = segment_bits;
        self
    }

    /// Sets the batch-width cap (builder style).
    #[must_use]
    pub fn with_max_batch_width(mut self, max_batch_width: u32) -> Self {
        self.max_batch_width = max_batch_width;
        self
    }

    /// Sets the iteration safety cap (builder style).
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the simulator execution knob (builder style).
    #[must_use]
    pub fn with_exec(mut self, exec: ExecConfig) -> Self {
        self.exec = exec;
        self
    }
}

/// Result of [`clique_color`].
#[derive(Debug, Clone)]
pub struct CliqueColoringResult {
    /// The proper list coloring.
    pub colors: Vec<u64>,
    /// Simulator cost counters.
    pub metrics: crate::network::CliqueMetrics,
    /// Partial-coloring iterations before the final collect.
    pub iterations: usize,
    /// Number of nodes colored locally at the leader in the final step.
    pub collected_nodes: usize,
}

/// Colors a `(degree+1)`-list instance in the CONGESTED CLIQUE
/// (Theorem 1.3).
///
/// # Panics
///
/// Panics if the iteration cap is exceeded (progress bug).
pub fn clique_color(
    instance: &ListInstance,
    config: &CliqueColoringConfig,
) -> CliqueColoringResult {
    let g = instance.graph();
    let n = g.n();
    let mut net = CliqueNetwork::from_exec(n.max(2), &config.exec);
    let mut colors: Vec<Option<u64>> = vec![None; n];
    if n == 0 {
        return CliqueColoringResult {
            colors: Vec::new(),
            metrics: net.metrics(),
            iterations: 0,
            collected_nodes: 0,
        };
    }
    let mut residual = instance.clone();
    let mut active = vec![true; n];
    let mut uncolored = n;
    let mut iterations = 0;
    let mut collected_nodes = 0;
    // ψ = ids; K = n.
    let psi: Vec<u64> = (0..n as u64).collect();
    let m_bits = (64 - (n.max(2) as u64 - 1).leading_zeros()).max(1);

    while uncolored > 0 {
        // --- Final collect: residual graph + lists fit one routing step. ---
        let active_deg = |v: usize| g.neighbors(v).iter().filter(|&&u| active[u]).count();
        let message_count: usize = (0..n)
            .filter(|&v| active[v])
            .map(|v| active_deg(v) + residual.list(v).len() + 1)
            .sum();
        if message_count <= n || uncolored <= 4 {
            let leader = 0usize;
            // Ship the subgraph and lists to the leader (edge and list
            // entries as one message each; small instances skip routing).
            // Every node assembles its own routing records — simultaneous
            // local work in the real clique, so the preparation runs on the
            // backend pool, with the per-node batches concatenated in node
            // order (bit-identical to the sequential loop).
            let node_msgs = |v: usize| -> Vec<(usize, usize, (u64, u64))> {
                if !active[v] {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for &u in g.neighbors(v) {
                    if active[u] && u > v {
                        out.push((v, leader, (v as u64, u as u64)));
                    }
                }
                for &c in residual.list(v) {
                    out.push((v, leader, (v as u64 | 1 << 63, c)));
                }
                out
            };
            let msgs: Vec<(usize, usize, (u64, u64))> =
                dcl_sim::map_indexed(net.pool(), n, node_msgs)
                    .into_iter()
                    .flatten()
                    .collect();
            if message_count <= n {
                let _ = net.lenzen_route(msgs);
            } else {
                // Tiny instance: a constant number of plain rounds suffices
                // — stretched by the widest record's fragment count, exactly
                // like the lenzen_route branch prices the same records.
                let max_fragments = msgs
                    .iter()
                    .map(|(_, _, m)| net.cap().fragments(m.wire_bits()))
                    .max()
                    .unwrap_or(1);
                net.charge_rounds(
                    msgs.len().div_ceil(n.max(2) - 1) as u64 * u64::from(max_fragments),
                );
            }
            // Leader solves greedily on the collected instance.
            let order: Vec<usize> = (0..n).filter(|&v| active[v]).collect();
            let mut local: Vec<Option<u64>> = vec![None; n];
            for &v in &order {
                let taken: Vec<u64> = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| active[u])
                    .filter_map(|&u| local[u])
                    .collect();
                let c = residual
                    .list(v)
                    .iter()
                    .copied()
                    .find(|c| !taken.contains(c))
                    .expect("(degree+1) slack guarantees a free color");
                local[v] = Some(c);
            }
            // Leader distributes the colors (one unicast round; color names
            // fragment at caps below ⌈log₂ C⌉ bits).
            net.charge_rounds(u64::from(net.cap().fragments(residual.color_bits())));
            for &v in &order {
                colors[v] = local[v];
                active[v] = false;
            }
            collected_nodes = order.len();
            break;
        }

        // --- One partial-coloring iteration with batched digits. -----------
        assert!(iterations < config.max_iterations, "iteration cap exceeded");
        iterations += 1;
        let delta_act = (0..n)
            .filter(|&v| active[v])
            .map(active_deg)
            .max()
            .unwrap_or(0);
        // Batch width from the routing headroom: uncolored ≤ n/2^i ⇒ width i.
        let headroom = (n / uncolored).max(1);
        let width_budget = 63 - (headroom as u64).leading_zeros(); // ⌊log₂⌋
        let width = width_budget.clamp(1, config.max_batch_width);
        // MIS-avoidance accuracy: the (Δ+1) factor of Section 4, plus the
        // 2^w digit-alphabet factor.
        let extra = (delta_act as u64 + 1).saturating_mul(1 << width);
        let b = accuracy_bits(delta_act, residual.color_bits(), extra);
        let family = SliceFamily::new(m_bits, b);
        let seed_len = family.seed_len();
        let lambda = config.segment_bits.min(m_bits).max(1);

        let mut state = PrefixState::new(&residual, &active);
        while state.remaining_bits() > 0 {
            let w_eff = width.min(state.remaining_bits());
            let digits = 1usize << w_eff;
            // Per-node digit thresholds (cumulative quantiles of Lemma 2.5).
            let mut thresholds: Vec<Vec<u64>> = vec![Vec::new(); n];
            let mut inv: Vec<Vec<f64>> = vec![Vec::new(); n];
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                let counts = state.split_digits(&residual, v, w_eff);
                let len = counts.iter().sum::<usize>() as u64;
                let mut ts = Vec::with_capacity(digits + 1);
                let mut cum = 0u64;
                ts.push(0);
                for &k in &counts {
                    cum += k as u64;
                    ts.push(coin_threshold(cum, len, b));
                }
                thresholds[v] = ts;
                let mut recips = vec![0.0f64; counts.len()];
                dcl_kernels::ratio::recip_batch(&counts, &mut recips);
                inv[v] = recips;
            }
            // One round: neighbors exchange their digit-count vectors. The
            // routing headroom absorbs the 2^w word *count* (that is how w
            // was chosen), but each word still fragments at sub-word caps,
            // so the round stretches by the per-word fragment factor.
            net.charge_rounds(u64::from(net.cap().fragments(64)));

            // Segmented derandomization of the shared seed. Forms are kept
            // directly in the kernels' packed SoA layout: the per-candidate
            // scratch below then clones one flat allocation (instead of n
            // nested `Vec`s) and the interval DP consumes it without a
            // per-call pack step.
            let mut seed = PartialSeed::new(seed_len);
            let empty = PackedForms::from_forms(&[]);
            let mut forms: Vec<PackedForms> = (0..n)
                .map(|v| {
                    if active[v] {
                        family.packed_forms_for(&seed, psi[v])
                    } else {
                        empty.clone()
                    }
                })
                .collect();
            let edges = state.conflict_edges();
            let mut start = 0usize;
            while start < seed_len {
                let end = (start + lambda as usize).min(seed_len);
                let candidates = 1usize << (end - start);
                // All 2^λ candidate values are evaluated simultaneously —
                // one responsible node each in the real clique, the backend
                // pool here. Each candidate's score is computed with the
                // sequential float-operation order and the argmin breaks
                // ties toward the lower candidate, so the winning segment is
                // bit-identical across backends.
                let score = |cand: usize| -> f64 {
                    let cand = cand as u64;
                    // Candidate forms: base forms with the segment fixed.
                    let mut scratch: Vec<PackedForms> = forms.clone();
                    for (offset, j) in (start..end).enumerate() {
                        let bit = cand >> offset & 1 == 1;
                        for v in 0..n {
                            if active[v] {
                                family.update_packed_on_fix(&mut scratch[v], psi[v], j, bit);
                            }
                        }
                    }
                    let mut total = 0.0f64;
                    for &(u, v) in &edges {
                        for a in 0..digits {
                            let (ul, uh) = (thresholds[u][a], thresholds[u][a + 1]);
                            let (vl, vh) = (thresholds[v][a], thresholds[v][a + 1]);
                            if uh == ul || vh == vl {
                                continue;
                            }
                            let p = dcl_kernels::digit_dp::joint_interval_packed(
                                &scratch[u],
                                ul,
                                uh,
                                &scratch[v],
                                vl,
                                vh,
                            );
                            total += p * (inv[u][a] + inv[v][a]);
                        }
                    }
                    total
                };
                let (_, winner) = dcl_sim::argmin_f64(net.pool(), candidates, score);
                // Fix the winning segment; O(1) rounds (responsible-node
                // evaluation + leader argmin + broadcast; the word-sized
                // scores fragment at sub-word caps).
                for (offset, j) in (start..end).enumerate() {
                    let bit = (winner as u64) >> offset & 1 == 1;
                    seed.fix(j, bit);
                    for v in 0..n {
                        if active[v] {
                            family.update_packed_on_fix(&mut forms[v], psi[v], j, bit);
                        }
                    }
                }
                net.charge_rounds(2 + 2 * u64::from(net.cap().fragments(64)));
                start = end;
            }

            // Apply digits and update the conflict graph (one round).
            for v in 0..n {
                if !active[v] {
                    continue;
                }
                let z = family.evaluate(&seed, psi[v]);
                let digit = thresholds[v].partition_point(|&t| t <= z) - 1;
                state.extend_digit(&residual, v, w_eff, digit as u64);
            }
            state.finish_phase_digits(w_eff);
            net.charge_rounds(1);
        }

        // Conflict resolution: matching by larger id (one round).
        net.charge_rounds(1);
        let mut newly = Vec::new();
        for v in 0..n {
            if !active[v] {
                continue;
            }
            let keeps = match state.conflict_neighbors(v) {
                [] => true,
                [w] => state.conflict_degree(*w) > 1 || v > *w,
                _ => false,
            };
            if keeps {
                newly.push((v, state.candidate_color(&residual, v)));
            }
        }
        // Announce colors, prune lists (one round).
        net.charge_rounds(1);
        for &(v, c) in &newly {
            colors[v] = Some(c);
            active[v] = false;
            uncolored -= 1;
            for &u in g.neighbors(v) {
                if active[u] {
                    residual.remove_color(u, c);
                }
            }
        }
    }

    CliqueColoringResult {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all nodes colored"))
            .collect(),
        metrics: net.metrics(),
        iterations,
        collected_nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, validation};

    fn color_dp1(g: dcl_graphs::Graph) -> (dcl_graphs::Graph, CliqueColoringResult) {
        let inst = ListInstance::degree_plus_one(g.clone());
        let result = clique_color(&inst, &CliqueColoringConfig::default());
        (g, result)
    }

    #[test]
    fn colors_random_graphs_properly() {
        for seed in 0..4 {
            let (g, result) = color_dp1(generators::gnp(24, 0.25, seed));
            assert_eq!(
                validation::check_proper(&g, &result.colors),
                None,
                "seed {seed}"
            );
            let delta = g.max_degree() as u64;
            assert!(result.colors.iter().all(|&c| c <= delta));
        }
    }

    #[test]
    fn colors_structured_graphs() {
        for g in [
            generators::ring(20),
            generators::complete(10),
            generators::star(16),
            generators::grid(4, 5),
        ] {
            let (g, result) = color_dp1(g);
            assert_eq!(validation::check_proper(&g, &result.colors), None);
        }
    }

    #[test]
    fn small_instances_collect_immediately() {
        let (g, result) = color_dp1(generators::path(4));
        assert_eq!(validation::check_proper(&g, &result.colors), None);
        assert_eq!(result.iterations, 0);
        assert_eq!(result.collected_nodes, 4);
    }

    #[test]
    fn respects_custom_lists() {
        let g = generators::ring(12);
        let lists: Vec<Vec<u64>> = (0..12u64)
            .map(|v| vec![v % 5, 5 + v % 3, 9 + v % 4])
            .collect();
        let inst = ListInstance::new(g.clone(), 16, lists.clone()).unwrap();
        let result = clique_color(&inst, &CliqueColoringConfig::default());
        assert_eq!(
            validation::check_list_coloring(&g, &lists, &result.colors),
            None
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let g = generators::gnp(20, 0.3, 5);
        let (_, r1) = color_dp1(g.clone());
        let (_, r2) = color_dp1(g);
        assert_eq!(r1.colors, r2.colors);
        assert_eq!(r1.metrics, r2.metrics);
    }

    #[test]
    fn rounds_do_not_scale_with_diameter() {
        // A long ring has D = n/2 but the clique algorithm's round count
        // must stay small (no D factor).
        let (_, small) = color_dp1(generators::ring(16));
        let (_, large) = color_dp1(generators::ring(64));
        assert!(
            large.metrics.rounds < 40 * small.metrics.rounds.max(1),
            "rounds grew too fast: {} -> {}",
            small.metrics.rounds,
            large.metrics.rounds
        );
    }

    #[test]
    fn handles_trivial_graphs() {
        let (_, r) = color_dp1(dcl_graphs::Graph::empty(6));
        assert_eq!(r.colors, vec![0; 6]);
        let empty = dcl_graphs::Graph::empty(0);
        let inst = ListInstance::degree_plus_one(empty);
        let r = clique_color(&inst, &CliqueColoringConfig::default());
        assert!(r.colors.is_empty());
    }
}

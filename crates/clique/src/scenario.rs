//! The Theorem 1.3 pipeline as a [`dcl_runner::Scenario`].
//!
//! Thin adapter over [`clique_color`] (which stays public).
//!
//! The full `ExecConfig` is honored, transport tier included: the stepped
//! clique rounds ship through the selected tier while the Lenzen-routed
//! collectives stay centrally delivered cost-model shortcuts on every tier
//! (`DESIGN.md` §7), so the `Report` is bit-identical across
//! `TransportSpec`s (pinned by `tests/transport_oracle.rs`).

use crate::coloring::{clique_color, CliqueColoringConfig};
use dcl_coloring::instance::ListInstance;
use dcl_graphs::Graph;
use dcl_runner::{Model, Report, RunError, Scenario};
use dcl_sim::ExecConfig;

/// The CONGESTED CLIQUE `(degree+1)`-list coloring of Theorem 1.3 as a
/// runnable scenario (name `"clique"`).
///
/// # Examples
///
/// ```
/// use dcl_clique::scenario::CliqueScenario;
/// use dcl_graphs::generators;
/// use dcl_runner::Scenario;
/// use dcl_sim::ExecConfig;
///
/// let g = generators::random_regular(30, 4, 9);
/// let report = CliqueScenario::default()
///     .run(&g, &ExecConfig::default())
///     .unwrap();
/// assert!(report.valid());
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CliqueScenario {
    /// Driver knobs; the runner's `ExecConfig` replaces `config.exec` per
    /// cell.
    pub config: CliqueColoringConfig,
}

impl CliqueScenario {
    /// A scenario with explicit driver knobs.
    pub fn with_config(config: CliqueColoringConfig) -> Self {
        CliqueScenario { config }
    }
}

impl Scenario for CliqueScenario {
    fn name(&self) -> &str {
        "clique"
    }

    fn model(&self) -> Model {
        Model::CongestedClique
    }

    fn run(&self, graph: &Graph, exec: &ExecConfig) -> Result<Report, RunError> {
        let instance = ListInstance::degree_plus_one(graph.clone());
        let result = clique_color(&instance, &self.config.with_exec(*exec));
        let palette = graph.max_degree() as u64 + 1;
        Ok(Report::build(
            self.name(),
            self.model(),
            graph,
            palette,
            result.colors,
            result.metrics,
        )
        .with_extra("iterations", result.iterations as u64)
        .with_extra("collected_nodes", result.collected_nodes as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn scenario_matches_the_direct_entry_point() {
        let g = generators::gnp(36, 0.15, 2);
        let report = CliqueScenario::default()
            .run(&g, &ExecConfig::default())
            .unwrap();
        let direct = clique_color(
            &ListInstance::degree_plus_one(g.clone()),
            &CliqueColoringConfig::default(),
        );
        assert_eq!(report.colors, direct.colors);
        assert_eq!(report.metrics, direct.metrics);
        assert_eq!(report.extra("iterations"), Some(direct.iterations as u64));
        assert_eq!(
            report.extra("collected_nodes"),
            Some(direct.collected_nodes as u64)
        );
        assert!(report.valid());
    }

    #[test]
    fn scenario_metadata_is_stable() {
        let s = CliqueScenario::default();
        assert_eq!(s.name(), "clique");
        assert_eq!(s.model(), Model::CongestedClique);
    }
}

//! CONGESTED CLIQUE model: simulator and deterministic `(degree+1)`-list
//! coloring (Theorem 1.3).
//!
//! In the (UNICAST) CONGESTED CLIQUE, the input graph `G` may be arbitrary
//! but every pair of nodes can exchange one `O(log n)`-bit message per round.
//! [`network`] provides the simulator (per-node send/receive budgets,
//! Lenzen-routing cost model); [`coloring`] implements the Theorem 1.3
//! algorithm: direct-to-leader derandomization in `O(1)` rounds per seed
//! segment, multi-bit candidate-color batches as the uncolored set shrinks,
//! and a final collect-at-leader step once the residual graph fits through
//! one routing round.

#![forbid(unsafe_code)]
// Node ids double as indices into per-node state vectors throughout the
// simulators; indexed loops over `0..n` are the clearest expression of
// "for every node" here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod coloring;
pub mod network;
pub mod scenario;

pub use coloring::{clique_color, CliqueColoringConfig, CliqueColoringResult};
pub use network::CliqueNetwork;
pub use scenario::CliqueScenario;

//! Parallel vs sequential backend equivalence for the CONGESTED CLIQUE
//! simulator and the Theorem 1.3 coloring, via the shared
//! `dcl_sim::test_util` helpers (this file only contributes the clique
//! runners).

use dcl_clique::coloring::{clique_color, CliqueColoringConfig};
use dcl_clique::network::CliqueNetwork;
use dcl_coloring::instance::ListInstance;
use dcl_congest::Backend;
use dcl_graphs::{generators, validation};
use dcl_sim::test_util::{assert_backend_equivalent, assert_eq_sides, assert_round_equivalence};
use dcl_sim::ExecConfig;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// clique_color produces identical colorings and metrics per backend.
    #[test]
    fn clique_coloring_equivalence(n in 6usize..30, p in 0.1f64..0.4, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let seq = assert_backend_equivalent(3, |backend| {
            let r = clique_color(
                &inst,
                &CliqueColoringConfig::default()
                    .with_exec(ExecConfig::default().with_backend(backend)),
            );
            (r.colors, r.metrics, r.iterations, r.collected_nodes)
        })
        .map_err(TestCaseError::Fail)?;
        prop_assert_eq!(validation::check_proper(&g, &seq.0), None);
    }

    /// Raw clique rounds deliver identical inboxes and metrics per backend.
    #[test]
    fn clique_round_equivalence(n in 2usize..70, seed in any::<u64>(), threads in 2usize..6) {
        let sender = |v: usize| -> Vec<(usize, u64)> {
            (0..n)
                .filter(|&u| u != v && (u * 7 + v + seed as usize).is_multiple_of(5))
                .map(|u| (u, (v * n + u) as u64))
                .collect()
        };
        let mut seq = CliqueNetwork::with_default_cap(n);
        let mut par = CliqueNetwork::with_backend(n, 128, Backend::Parallel(threads));
        assert_round_equivalence(2, || (seq.round(sender), par.round(sender)))
            .map_err(TestCaseError::Fail)?;
        assert_eq_sides("metrics", seq.metrics(), par.metrics()).map_err(TestCaseError::Fail)?;
    }
}

//! Parallel vs sequential backend equivalence for the CONGESTED CLIQUE
//! simulator and the Theorem 1.3 coloring.

use dcl_clique::coloring::{clique_color, CliqueColoringConfig};
use dcl_clique::network::CliqueNetwork;
use dcl_coloring::instance::ListInstance;
use dcl_congest::Backend;
use dcl_graphs::{generators, validation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// clique_color produces identical colorings and metrics per backend.
    #[test]
    fn clique_coloring_equivalence(n in 6usize..30, p in 0.1f64..0.4, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let inst = ListInstance::degree_plus_one(g.clone());
        let seq = clique_color(&inst, &CliqueColoringConfig::default());
        let par = clique_color(
            &inst,
            &CliqueColoringConfig {
                backend: Backend::Parallel(3),
                ..Default::default()
            },
        );
        prop_assert_eq!(&seq.colors, &par.colors);
        prop_assert_eq!(seq.metrics, par.metrics);
        prop_assert_eq!(validation::check_proper(&g, &seq.colors), None);
    }

    /// Raw clique rounds deliver identical inboxes and metrics per backend.
    #[test]
    fn clique_round_equivalence(n in 2usize..70, seed in any::<u64>(), threads in 2usize..6) {
        let sender = |v: usize| -> Vec<(usize, u64)> {
            (0..n)
                .filter(|&u| u != v && (u * 7 + v + seed as usize) % 5 == 0)
                .map(|u| (u, (v * n + u) as u64))
                .collect()
        };
        let mut seq = CliqueNetwork::with_default_cap(n);
        let mut par = CliqueNetwork::with_backend(n, 128, Backend::Parallel(threads));
        for _ in 0..2 {
            prop_assert_eq!(seq.round(sender), par.round(sender));
        }
        prop_assert_eq!(seq.metrics(), par.metrics());
    }
}

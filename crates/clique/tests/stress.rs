//! Release-size stress tests for the CONGESTED CLIQUE coloring
//! (complementing the unit tests with the regimes where batching and the
//! final collect actually engage).

use dcl_clique::coloring::{clique_color, CliqueColoringConfig};
use dcl_coloring::instance::ListInstance;
use dcl_graphs::{generators, validation};

#[test]
fn batching_engages_on_medium_instances() {
    let g = generators::gnp(64, 0.12, 9);
    let inst = ListInstance::degree_plus_one(g.clone());
    let r = clique_color(&inst, &CliqueColoringConfig::default());
    assert_eq!(validation::check_proper(&g, &r.colors), None);
    assert!(r.iterations >= 1);
}

#[test]
fn segment_length_config_changes_rounds_not_result() {
    let g = generators::gnp(40, 0.15, 3);
    let inst = ListInstance::degree_plus_one(g.clone());
    let short = clique_color(&inst, &CliqueColoringConfig::default().with_segment_bits(2));
    let long = clique_color(&inst, &CliqueColoringConfig::default().with_segment_bits(6));
    assert_eq!(validation::check_proper(&g, &short.colors), None);
    assert_eq!(validation::check_proper(&g, &long.colors), None);
    // Longer segments = fewer derandomization rounds.
    assert!(long.metrics.rounds <= short.metrics.rounds);
}

#[test]
fn max_batch_width_one_still_completes() {
    let g = generators::random_regular(48, 5, 7);
    let inst = ListInstance::degree_plus_one(g.clone());
    let r = clique_color(
        &inst,
        &CliqueColoringConfig::default().with_max_batch_width(1),
    );
    assert_eq!(validation::check_proper(&g, &r.colors), None);
}

#[test]
fn dense_graph_with_tight_lists() {
    // Δ close to n: the collect condition needs many iterations to fire.
    let g = generators::gnp(36, 0.5, 1);
    let inst = ListInstance::degree_plus_one(g.clone());
    let r = clique_color(&inst, &CliqueColoringConfig::default());
    assert_eq!(validation::check_proper(&g, &r.colors), None);
    let delta = g.max_degree() as u64;
    assert!(r.colors.iter().all(|&c| c <= delta));
}

//! Property-based tests of the CONGEST substrate: BFS forests, charged vs
//! stepped collectives, and metric accounting.

// Node ids double as indices into per-node state vectors (same policy as
// the crate roots).
#![allow(clippy::needless_range_loop)]

use dcl_congest::bfs::{build_bfs_forest, build_bfs_tree};
use dcl_congest::network::Network;
use dcl_congest::tree::{
    broadcast_charged, broadcast_stepped, convergecast_charged, convergecast_stepped,
};
use dcl_graphs::{generators, metrics};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forest depths equal BFS distances from the component minimum.
    #[test]
    fn forest_depths_are_distances(n in 1usize..40, p in 0.0f64..0.3, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let mut net = Network::with_default_cap(&g, 64);
        let forest = build_bfs_forest(&mut net);
        for tree in &forest.trees {
            let dist = metrics::bfs(&g, tree.root);
            for v in 0..n {
                if forest.component[v] == forest.component[tree.root] {
                    prop_assert_eq!(tree.depth[v], dist[v]);
                }
            }
        }
    }

    /// Charged and stepped converge-cast/broadcast agree in value and round
    /// cost on arbitrary connected graphs.
    #[test]
    fn charged_equals_stepped(n in 2usize..30, extra in 0usize..20, seed in any::<u64>()) {
        let g = generators::random_connected(n, extra, seed);
        let values: Vec<u64> = (0..n as u64).map(|v| v * 31 % 97).collect();

        let mut net1 = Network::with_default_cap(&g, 64);
        let t1 = build_bfs_tree(&mut net1, 0);
        let r1_base = net1.rounds();
        let a = convergecast_stepped(&mut net1, &t1, &values, |x, y| x + y);
        let stepped_cost = net1.rounds() - r1_base;

        let mut net2 = Network::with_default_cap(&g, 64);
        let t2 = build_bfs_tree(&mut net2, 0);
        let r2_base = net2.rounds();
        let b = convergecast_charged(&mut net2, &t2, &values, |x, y| x + y);
        let charged_cost = net2.rounds() - r2_base;

        prop_assert_eq!(a, b);
        prop_assert_eq!(stepped_cost, charged_cost);

        let x = broadcast_stepped(&mut net1, &t1, 7u32);
        let y = broadcast_charged(&mut net2, &t2, 7u32);
        prop_assert_eq!(x, y);
    }

    /// Metrics are additive: messages and bits only grow.
    #[test]
    fn metrics_monotone(n in 2usize..25, p in 0.05f64..0.5, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let mut net = Network::with_default_cap(&g, 64);
        let mut last = net.metrics();
        for round in 0..5u32 {
            let _ = net.broadcast_round(|v| if v as u32 % 2 == round % 2 { Some(v as u64) } else { None });
            let now = net.metrics();
            prop_assert!(now.rounds > last.rounds);
            prop_assert!(now.messages >= last.messages);
            prop_assert!(now.bits >= last.bits);
            last = now;
        }
    }
}

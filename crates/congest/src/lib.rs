//! CONGEST model simulator.
//!
//! In the CONGEST model \[Pel00\], time is divided into synchronous rounds; in
//! each round every node may send one message of `O(log n)` bits to each of
//! its neighbors. This crate provides:
//!
//! - a [`network::Network`] that delivers messages between neighbors,
//!   meters rounds / messages / bits, and *enforces* the per-message
//!   bandwidth cap (the defining constraint of the model) — a thin CONGEST
//!   policy over the shared [`dcl_sim`] runtime (`DESIGN.md` §2.2a);
//! - message size accounting via the [`wire::Wire`] trait (re-exported from
//!   [`dcl_sim::wire`]);
//! - distributed BFS-tree construction ([`bfs`]);
//! - converge-cast (aggregation) and broadcast over trees ([`tree`]), in both
//!   a literal round-by-round implementation and an equivalent *charged*
//!   implementation used on hot paths (identical results and identical round
//!   costs; see `DESIGN.md` §2.4).
//!
//! Round execution can be switched between a sequential and a multi-threaded
//! backend via [`Backend`] (see `DESIGN.md` §5): results are bit-identical,
//! only wall-clock changes.
//!
//! # Examples
//!
//! ```
//! use dcl_graphs::generators;
//! use dcl_congest::network::Network;
//!
//! let g = generators::ring(6);
//! let mut net = Network::with_default_cap(&g, 16);
//! // One round: every node tells its neighbors its own id.
//! let inboxes = net.broadcast_round(|v| Some(v as u32));
//! assert_eq!(net.metrics().rounds, 1);
//! assert_eq!(inboxes[0].len(), 2);
//! ```

#![forbid(unsafe_code)]
// Node ids double as indices into per-node state vectors throughout the
// simulators; indexed loops over `0..n` are the clearest expression of
// "for every node" here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod bfs;
pub mod network;
pub mod tree;

pub use dcl_par::Backend;
pub use dcl_sim::wire;

pub use bfs::BfsTree;
pub use dcl_sim::{BandwidthCap, ExecConfig};
pub use network::{Metrics, Network};
pub use wire::Wire;

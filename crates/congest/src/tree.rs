//! Converge-cast (aggregation) and broadcast over a rooted tree.
//!
//! Two interchangeable implementations are provided:
//!
//! - `*_stepped`: literal round-by-round execution through
//!   [`Network::round`], used in tests as the ground truth;
//! - `*_charged`: computes the same result centrally in `O(n)` work and
//!   charges the identical round/message/bit costs. Hot paths (the per-seed-
//!   bit aggregations of Lemma 2.6, which run hundreds of thousands of times)
//!   use the charged variants; equivalence is asserted by tests here.
//!
//! Round costs: a scalar converge-cast or broadcast over a tree of height `h`
//! costs `h` rounds; a `W`-word vector aggregation pipelines to `h + W − 1`
//! rounds. Under a swept (small) bandwidth cap, payloads wider than the cap
//! fragment into `⌈bits / cap⌉` messages and every level stretches
//! accordingly — the stepped variants inherit this from
//! [`Network::fragmented_round`], and the charged variants charge the
//! identical stretched costs, so stepped ≡ charged holds at *every* cap (at
//! the default cap nothing fragments and all costs equal the historical
//! ones).

use crate::bfs::BfsTree;
use crate::network::Network;
use crate::wire::Wire;
use dcl_graphs::NodeId;

/// Aggregates `values[v]` for all tree nodes toward the root with the
/// associative, commutative `combine`, executing one real communication round
/// per tree level. Returns the aggregate at the root.
///
/// Costs `tree.height` rounds.
pub fn convergecast_stepped<M, F>(
    net: &mut Network<'_>,
    tree: &BfsTree,
    values: &[M],
    mut combine: F,
) -> M
where
    M: Wire + Clone + Send + Sync,
    F: FnMut(&M, &M) -> M,
{
    let n = values.len();
    assert_eq!(n, net.graph().n(), "one value per node required");
    let mut partial: Vec<M> = values.to_vec();
    let levels = tree.levels();
    for d in (1..levels.len()).rev() {
        let senders: &[NodeId] = &levels[d];
        let payloads: Vec<Option<(NodeId, M)>> = (0..n)
            .map(|v| {
                if senders.contains(&v) {
                    tree.parent[v].map(|p| (p, partial[v].clone()))
                } else {
                    None
                }
            })
            .collect();
        let inboxes = net.fragmented_round(|v| payloads[v].clone().into_iter().collect::<Vec<_>>());
        for v in 0..n {
            for (_, msg) in &inboxes[v] {
                partial[v] = combine(&partial[v], msg);
            }
        }
    }
    partial[tree.root].clone()
}

/// Equivalent of [`convergecast_stepped`] computing the aggregate centrally
/// and charging the same costs (`height` rounds; one message of the combined
/// value's width per tree edge).
pub fn convergecast_charged<M, F>(
    net: &mut Network<'_>,
    tree: &BfsTree,
    values: &[M],
    mut combine: F,
) -> M
where
    M: Wire + Clone,
    F: FnMut(&M, &M) -> M,
{
    let n = values.len();
    assert_eq!(n, net.graph().n(), "one value per node required");
    let mut partial: Vec<M> = values.to_vec();
    let levels = tree.levels();
    // Each level is one (possibly fragment-stretched) round: the level's
    // cost is the largest fragment count among its messages, exactly what
    // the stepped variant's fragmented rounds charge.
    let mut rounds = 0u64;
    for d in (1..levels.len()).rev() {
        let mut level_cost = 1u32;
        for &v in &levels[d] {
            let p = tree.parent[v].expect("non-root tree nodes have parents");
            let msg = partial[v].clone();
            level_cost = level_cost.max(net.charge_payload_traffic(1, msg.wire_bits()));
            partial[p] = combine(&partial[p], &msg);
        }
        rounds += u64::from(level_cost);
    }
    net.charge_rounds(rounds);
    partial[tree.root].clone()
}

/// Broadcasts `value` from the root to every tree node, one real round per
/// level. Returns the delivered value per node (`None` for nodes outside the
/// tree). Costs `tree.height` rounds.
pub fn broadcast_stepped<M>(net: &mut Network<'_>, tree: &BfsTree, value: M) -> Vec<Option<M>>
where
    M: Wire + Clone + Send + Sync,
{
    let n = net.graph().n();
    let mut have: Vec<Option<M>> = vec![None; n];
    have[tree.root] = Some(value);
    let levels = tree.levels();
    for d in 0..levels.len().saturating_sub(1) {
        let senders: &[NodeId] = &levels[d];
        let payloads: Vec<Vec<(NodeId, M)>> = (0..n)
            .map(|v| {
                if senders.contains(&v) {
                    let msg = have[v].clone().expect("sender has the value");
                    tree.children[v].iter().map(|&c| (c, msg.clone())).collect()
                } else {
                    Vec::new()
                }
            })
            .collect();
        let inboxes = net.fragmented_round(|v| payloads[v].clone());
        for v in 0..n {
            if let Some((_, msg)) = inboxes[v].first() {
                have[v] = Some(msg.clone());
            }
        }
    }
    have
}

/// Equivalent of [`broadcast_stepped`] with charged costs.
pub fn broadcast_charged<M>(net: &mut Network<'_>, tree: &BfsTree, value: M) -> Vec<Option<M>>
where
    M: Wire + Clone,
{
    let n = net.graph().n();
    let mut have: Vec<Option<M>> = vec![None; n];
    let bits = value.wire_bits();
    // Every level repeats the same value, so every level stretches by the
    // same fragment count.
    net.charge_rounds(u64::from(tree.height) * u64::from(net.cap().fragments(bits)));
    for v in 0..n {
        if tree.contains(v) {
            if v != tree.root {
                net.charge_payload_traffic(1, bits);
            }
            have[v] = Some(value.clone());
        }
    }
    have
}

/// Pipelined vector aggregation: every node holds a `width`-entry `f64`
/// vector; the component-wise sums arrive at the root. Charged
/// `height + width − 1` rounds and `width` one-word messages per tree edge.
pub fn aggregate_vec_charged(
    net: &mut Network<'_>,
    tree: &BfsTree,
    values: &[Vec<f64>],
    width: usize,
) -> Vec<f64> {
    let n = net.graph().n();
    assert_eq!(values.len(), n, "one vector per node required");
    let mut sum = vec![0.0; width];
    let mut tree_edges = 0u64;
    for v in 0..n {
        if tree.contains(v) {
            assert_eq!(
                values[v].len(),
                width,
                "all vectors must have the declared width"
            );
            for (acc, x) in sum.iter_mut().zip(&values[v]) {
                *acc += *x;
            }
            if v != tree.root {
                tree_edges += 1;
            }
        }
    }
    // Every vector entry is one 64-bit word; at a sub-word cap each word
    // fragments and the pipeline stretches accordingly.
    let fragments = u64::from(net.cap().fragments(64));
    let extra = (width as u64 * fragments).saturating_sub(1);
    net.charge_rounds(u64::from(tree.height) + extra);
    net.charge_payload_traffic(tree_edges * width as u64, 64);
    sum
}

/// Pipelined vector aggregation over a whole forest: every tree aggregates in
/// parallel, so the round charge is `max_height + width − 1` once. Returns
/// the component-wise sums per tree (indexed like `forest.trees`).
pub fn aggregate_vec_forest_charged(
    net: &mut Network<'_>,
    forest: &crate::bfs::BfsForest,
    values: &[Vec<f64>],
    width: usize,
) -> Vec<Vec<f64>> {
    let n = net.graph().n();
    assert_eq!(values.len(), n, "one vector per node required");
    let mut sums = vec![vec![0.0; width]; forest.trees.len()];
    let mut tree_edges = 0u64;
    for v in 0..n {
        let c = forest.component[v];
        // Nodes outside their assigned tree (possible for the partial
        // forests built from cluster Steiner trees) contribute nothing.
        if !forest.trees[c].contains(v) {
            continue;
        }
        assert_eq!(
            values[v].len(),
            width,
            "all vectors must have the declared width"
        );
        for (acc, x) in sums[c].iter_mut().zip(&values[v]) {
            *acc += *x;
        }
        if v != forest.trees[c].root {
            tree_edges += 1;
        }
    }
    let fragments = u64::from(net.cap().fragments(64));
    let extra = (width as u64 * fragments).saturating_sub(1);
    net.charge_rounds(u64::from(forest.max_height()) + extra);
    net.charge_payload_traffic(tree_edges * width as u64, 64);
    sums
}

/// Broadcasts one value per tree from each root to its component, in
/// parallel. Returns the delivered value per node. Charged `max_height`
/// rounds and one message per tree edge.
pub fn broadcast_forest_charged<M>(
    net: &mut Network<'_>,
    forest: &crate::bfs::BfsForest,
    per_tree: &[M],
) -> Vec<M>
where
    M: Wire + Clone,
{
    assert_eq!(
        per_tree.len(),
        forest.trees.len(),
        "one value per tree required"
    );
    let n = net.graph().n();
    let mut out = Vec::with_capacity(n);
    let mut max_fragments = 1u32;
    for v in 0..n {
        let c = forest.component[v];
        let msg = per_tree[c].clone();
        if v != forest.trees[c].root && forest.trees[c].contains(v) {
            max_fragments = max_fragments.max(net.charge_payload_traffic(1, msg.wire_bits()));
        }
        out.push(msg);
    }
    // All trees broadcast in the same rounds; the widest payload dictates
    // how far each level stretches.
    net.charge_rounds(u64::from(forest.max_height()) * u64::from(max_fragments));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::build_bfs_tree;
    use dcl_graphs::generators;

    #[test]
    fn stepped_and_charged_convergecast_agree() {
        for seed in 0..4 {
            let g = generators::random_connected(25, 12, seed);
            let values: Vec<u64> = (0..25).map(|v| (v * v + 1) as u64).collect();

            let mut net1 = Network::with_default_cap(&g, 2);
            let tree1 = build_bfs_tree(&mut net1, 0);
            let base = net1.rounds();
            let a = convergecast_stepped(&mut net1, &tree1, &values, |x, y| x + y);
            let stepped_rounds = net1.rounds() - base;

            let mut net2 = Network::with_default_cap(&g, 2);
            let tree2 = build_bfs_tree(&mut net2, 0);
            let base = net2.rounds();
            let b = convergecast_charged(&mut net2, &tree2, &values, |x, y| x + y);
            let charged_rounds = net2.rounds() - base;

            assert_eq!(a, b);
            assert_eq!(a, values.iter().sum::<u64>());
            assert_eq!(stepped_rounds, charged_rounds);
            assert_eq!(stepped_rounds, u64::from(tree1.height));
        }
    }

    #[test]
    fn convergecast_max_works() {
        let g = generators::binary_tree(15);
        let mut net = Network::with_default_cap(&g, 2);
        let tree = build_bfs_tree(&mut net, 0);
        let values: Vec<u64> = (0..15).map(|v| (v * 7 % 13) as u64).collect();
        let m = convergecast_charged(&mut net, &tree, &values, |x, y| *x.max(y));
        assert_eq!(m, *values.iter().max().unwrap());
    }

    #[test]
    fn stepped_and_charged_broadcast_agree() {
        let g = generators::grid(3, 4);
        let mut net1 = Network::with_default_cap(&g, 2);
        let tree1 = build_bfs_tree(&mut net1, 0);
        let base = net1.rounds();
        let a = broadcast_stepped(&mut net1, &tree1, 99u32);
        let ra = net1.rounds() - base;

        let mut net2 = Network::with_default_cap(&g, 2);
        let tree2 = build_bfs_tree(&mut net2, 0);
        let base = net2.rounds();
        let b = broadcast_charged(&mut net2, &tree2, 99u32);
        let rb = net2.rounds() - base;

        assert_eq!(a, b);
        assert!(a.iter().all(|x| *x == Some(99)));
        assert_eq!(ra, rb);
    }

    #[test]
    fn vector_aggregation_sums_and_charges_pipelined_rounds() {
        let g = generators::path(6);
        let mut net = Network::with_default_cap(&g, 2);
        let tree = build_bfs_tree(&mut net, 0);
        let base = net.rounds();
        let values: Vec<Vec<f64>> = (0..6).map(|v| vec![v as f64, 1.0, 0.5]).collect();
        let sum = aggregate_vec_charged(&mut net, &tree, &values, 3);
        assert_eq!(sum, vec![15.0, 6.0, 3.0]);
        // height = 5, width = 3 → 5 + 2 = 7 rounds.
        assert_eq!(net.rounds() - base, 7);
    }

    #[test]
    fn broadcast_skips_unreachable() {
        let g = dcl_graphs::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut net = Network::with_default_cap(&g, 2);
        let tree = build_bfs_tree(&mut net, 0);
        let out = broadcast_charged(&mut net, &tree, 5u32);
        assert_eq!(out[1], Some(5));
        assert_eq!(out[2], None);
    }

    #[test]
    fn forest_aggregation_sums_per_component() {
        use crate::bfs::build_bfs_forest;
        let g = dcl_graphs::Graph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let mut net = Network::with_default_cap(&g, 2);
        let forest = build_bfs_forest(&mut net);
        assert_eq!(forest.trees.len(), 2);
        let values: Vec<Vec<f64>> = (0..5).map(|v| vec![v as f64, 1.0]).collect();
        let base = net.rounds();
        let sums = aggregate_vec_forest_charged(&mut net, &forest, &values, 2);
        assert_eq!(sums[forest.component[0]], vec![3.0, 3.0]);
        assert_eq!(sums[forest.component[3]], vec![7.0, 2.0]);
        // max height = 2 (path 0-1-2), width 2 → 3 rounds.
        assert_eq!(net.rounds() - base, 3);
    }

    #[test]
    fn forest_broadcast_delivers_per_component_values() {
        use crate::bfs::build_bfs_forest;
        let g = dcl_graphs::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let mut net = Network::with_default_cap(&g, 2);
        let forest = build_bfs_forest(&mut net);
        let per_tree: Vec<u32> = (0..forest.trees.len() as u32).map(|i| 100 + i).collect();
        let out = broadcast_forest_charged(&mut net, &forest, &per_tree);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[2], out[3]);
        assert_ne!(out[0], out[2]);
    }
}

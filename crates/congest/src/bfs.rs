//! Distributed BFS-tree construction.
//!
//! A BFS tree rooted at a designated leader is the paper's communication
//! backbone for derandomization (Lemma 2.6): conditional expectations are
//! aggregated toward the root and chosen seed bits are broadcast back. The
//! construction below is the textbook flooding protocol and costs exactly
//! `ecc(root) + 1` rounds on the simulator.

use crate::network::Network;
use dcl_graphs::NodeId;

/// A rooted spanning tree of (the connected component of) a graph, with
/// per-node parent/children links and depth labels.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// The root (leader) node.
    pub root: NodeId,
    /// Parent of each node (`None` for the root and unreachable nodes).
    pub parent: Vec<Option<NodeId>>,
    /// Children lists (sorted).
    pub children: Vec<Vec<NodeId>>,
    /// Depth of each node (`u32::MAX` if unreachable).
    pub depth: Vec<u32>,
    /// Height of the tree = max depth of a reachable node.
    pub height: u32,
}

impl BfsTree {
    /// Whether `v` was reached by the flood (i.e. is in the root's
    /// component).
    pub fn contains(&self, v: NodeId) -> bool {
        self.depth[v] != u32::MAX
    }

    /// Nodes of the tree grouped by depth: `levels()[d]` lists the nodes at
    /// depth `d`.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels = vec![Vec::new(); self.height as usize + 1];
        for v in 0..self.depth.len() {
            if self.contains(v) {
                levels[self.depth[v] as usize].push(v);
            }
        }
        levels
    }
}

/// Builds a BFS tree rooted at `root` by synchronous flooding.
///
/// Each newly reached node announces itself in the next round; a node joining
/// at depth `d` picks as parent the smallest-id neighbor that announced at
/// depth `d − 1`. Costs `ecc(root) + 1` rounds.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn build_bfs_tree(net: &mut Network<'_>, root: NodeId) -> BfsTree {
    let g = net.graph();
    let n = g.n();
    assert!(root < n, "root out of range");
    let mut depth = vec![u32::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    depth[root] = 0;
    let mut frontier = vec![root];
    let mut current_depth = 0u32;
    while !frontier.is_empty() {
        // Round: the current frontier announces "I joined at depth d".
        let announcing = frontier.clone();
        let inboxes = net.fragmented_broadcast_round(|v| {
            if announcing.contains(&v) {
                Some(depth[v])
            } else {
                None
            }
        });
        current_depth += 1;
        let mut next = Vec::new();
        for v in 0..n {
            if depth[v] != u32::MAX {
                continue;
            }
            // Pick the smallest-id announcer as the parent.
            let best = inboxes[v]
                .iter()
                .filter(|(_, d)| *d == current_depth - 1)
                .map(|(u, _)| *u)
                .min();
            if let Some(p) = best {
                depth[v] = current_depth;
                parent[v] = Some(p);
                next.push(v);
            }
        }
        frontier = next;
    }
    let mut children = vec![Vec::new(); n];
    for v in 0..n {
        if let Some(p) = parent[v] {
            children[p].push(v);
        }
    }
    let height = depth
        .iter()
        .copied()
        .filter(|&d| d != u32::MAX)
        .max()
        .unwrap_or(0);
    BfsTree {
        root,
        parent,
        children,
        depth,
        height,
    }
}

/// A spanning BFS forest: one tree per connected component, built in
/// parallel (all roots flood simultaneously, so the round cost is the
/// maximum root eccentricity plus one).
#[derive(Debug, Clone)]
pub struct BfsForest {
    /// One BFS tree per component, rooted at the component's smallest node.
    pub trees: Vec<BfsTree>,
    /// Index into `trees` for every node.
    pub component: Vec<usize>,
}

impl BfsForest {
    /// The tree containing node `v`.
    pub fn tree_of(&self, v: NodeId) -> &BfsTree {
        &self.trees[self.component[v]]
    }

    /// Maximum tree height across the forest.
    pub fn max_height(&self) -> u32 {
        self.trees.iter().map(|t| t.height).max().unwrap_or(0)
    }
}

/// Builds a spanning BFS forest: the smallest node of each component acts as
/// that component's root/leader; all floods run in the same rounds.
///
/// Costs `max_root_eccentricity + 1` rounds.
pub fn build_bfs_forest(net: &mut Network<'_>) -> BfsForest {
    let g = net.graph();
    let n = g.n();
    // Roots = nodes that are locally minimal in their component. Determining
    // them distributedly is itself a flood; here components are derived from
    // the same flooding process: every node starts as a candidate root and
    // defers to any smaller id it hears about, which is exactly the classic
    // "leader election by flooding" that the BFS construction below performs
    // implicitly (the smallest id's flood wins every tie).
    let mut depth = vec![u32::MAX; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    let mut origin = vec![usize::MAX; n]; // root id whose flood reached the node
    let mut frontier: Vec<NodeId> = Vec::new();
    // Every node initially considers itself a root at depth 0; floods from
    // smaller ids overwrite larger ones on arrival (monotone, so each node
    // settles within ecc+1 rounds for the true root of its component).
    for v in 0..n {
        depth[v] = 0;
        origin[v] = v;
        frontier.push(v);
    }
    loop {
        let announcing: Vec<bool> = {
            let mut a = vec![false; n];
            for &v in &frontier {
                a[v] = true;
            }
            a
        };
        let inboxes = net.fragmented_broadcast_round(|v| {
            if announcing[v] {
                Some((origin[v] as u64, depth[v]))
            } else {
                None
            }
        });
        let mut next = Vec::new();
        for v in 0..n {
            let mut best: Option<(usize, u32, NodeId)> = None; // (origin, depth, sender)
            for &(u, (o, d)) in &inboxes[v] {
                let cand = (o as usize, d + 1, u);
                let better = match best {
                    None => true,
                    Some(b) => (cand.0, cand.1, cand.2) < b,
                };
                if better {
                    best = Some(cand);
                }
            }
            if let Some((o, d, u)) = best {
                // Adopt a strictly better (smaller-origin, then shallower)
                // label.
                if o < origin[v] || (o == origin[v] && d < depth[v]) {
                    origin[v] = o;
                    depth[v] = d;
                    parent[v] = Some(u);
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    // Assemble one tree per distinct origin.
    let mut roots: Vec<usize> = origin.clone();
    roots.sort_unstable();
    roots.dedup();
    let mut component = vec![usize::MAX; n];
    let mut trees = Vec::with_capacity(roots.len());
    for (ci, &root) in roots.iter().enumerate() {
        let mut t_parent: Vec<Option<NodeId>> = vec![None; n];
        let mut t_depth = vec![u32::MAX; n];
        let mut t_children = vec![Vec::new(); n];
        for v in 0..n {
            if origin[v] == root {
                component[v] = ci;
                t_depth[v] = depth[v];
                t_parent[v] = parent[v];
                if let Some(p) = parent[v] {
                    t_children[p].push(v);
                }
            }
        }
        let height = t_depth
            .iter()
            .copied()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0);
        trees.push(BfsTree {
            root,
            parent: t_parent,
            children: t_children,
            depth: t_depth,
            height,
        });
    }
    BfsForest { trees, component }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, metrics};

    fn tree_on(g: &dcl_graphs::Graph, root: NodeId) -> (BfsTree, u64) {
        let mut net = Network::with_default_cap(g, 2);
        let t = build_bfs_tree(&mut net, root);
        (t, net.rounds())
    }

    #[test]
    fn depths_match_bfs_distances() {
        for seed in 0..5 {
            let g = generators::random_connected(40, 20, seed);
            let (t, _) = tree_on(&g, 0);
            let dist = metrics::bfs(&g, 0);
            assert_eq!(t.depth, dist);
        }
    }

    #[test]
    fn parents_are_one_level_up() {
        let g = generators::grid(4, 5);
        let (t, _) = tree_on(&g, 7);
        for v in 0..g.n() {
            if let Some(p) = t.parent[v] {
                assert_eq!(t.depth[p] + 1, t.depth[v]);
                assert!(g.has_edge(p, v));
            }
        }
    }

    #[test]
    fn round_cost_is_eccentricity_plus_one() {
        let g = generators::path(9);
        let (t, rounds) = tree_on(&g, 0);
        assert_eq!(t.height, 8);
        assert_eq!(rounds, 9);
    }

    #[test]
    fn children_link_back_to_parents() {
        let g = generators::random_connected(30, 15, 3);
        let (t, _) = tree_on(&g, 5);
        for v in 0..g.n() {
            for &c in &t.children[v] {
                assert_eq!(t.parent[c], Some(v));
            }
        }
        let total_children: usize = t.children.iter().map(Vec::len).sum();
        assert_eq!(total_children, g.n() - 1, "spanning tree has n-1 edges");
    }

    #[test]
    fn levels_partition_reachable_nodes() {
        let g = generators::hypercube(3);
        let (t, _) = tree_on(&g, 0);
        let levels = t.levels();
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, 8);
        assert_eq!(levels[0], vec![0]);
    }

    #[test]
    fn unreachable_nodes_excluded() {
        let g = dcl_graphs::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let (t, _) = tree_on(&g, 0);
        assert!(t.contains(1));
        assert!(!t.contains(2));
        assert_eq!(t.height, 1);
    }
}

#[cfg(test)]
mod forest_tests {
    use super::*;
    use crate::network::Network;
    use dcl_graphs::{generators, metrics};

    #[test]
    fn forest_roots_are_component_minima() {
        let g = dcl_graphs::Graph::from_edges(6, &[(1, 2), (2, 0), (4, 5)]).unwrap();
        let mut net = Network::with_default_cap(&g, 2);
        let forest = build_bfs_forest(&mut net);
        let mut roots: Vec<usize> = forest.trees.iter().map(|t| t.root).collect();
        roots.sort_unstable();
        assert_eq!(roots, vec![0, 3, 4]);
    }

    #[test]
    fn forest_depths_are_bfs_distances_from_root() {
        for seed in 0..4 {
            let g = generators::gnp(30, 0.08, seed);
            let mut net = Network::with_default_cap(&g, 2);
            let forest = build_bfs_forest(&mut net);
            for tree in &forest.trees {
                let dist = metrics::bfs(&g, tree.root);
                for v in 0..g.n() {
                    if forest.component[v] == forest.component[tree.root] {
                        assert_eq!(tree.depth[v], dist[v], "seed {seed} node {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn forest_on_connected_graph_is_single_tree() {
        let g = generators::random_connected(25, 10, 9);
        let mut net = Network::with_default_cap(&g, 2);
        let forest = build_bfs_forest(&mut net);
        assert_eq!(forest.trees.len(), 1);
        assert_eq!(forest.trees[0].root, 0);
        assert!(forest.component.iter().all(|&c| c == 0));
    }

    #[test]
    fn forest_components_match_graph_components() {
        let g = dcl_graphs::Graph::from_edges(7, &[(0, 1), (2, 3), (3, 4), (5, 6)]).unwrap();
        let mut net = Network::with_default_cap(&g, 2);
        let forest = build_bfs_forest(&mut net);
        let (comp, count) = metrics::components(&g);
        assert_eq!(forest.trees.len(), count);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(
                    comp[u] == comp[v],
                    forest.component[u] == forest.component[v],
                    "nodes {u},{v}"
                );
            }
        }
    }
}

//! Synchronous message-passing network with bandwidth enforcement.

use crate::wire::{bit_len, Wire};
use dcl_graphs::{Graph, NodeId};
use dcl_par::{Backend, Pool};

/// Cost counters accumulated by a [`Network`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of synchronous rounds elapsed.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of bits delivered.
    pub bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: u32,
}

impl Metrics {
    /// Folds another counter into this one (sums plus max). Used to reduce
    /// the per-worker accumulators of a parallel round in chunk order; since
    /// `+` and `max` are commutative and associative, the reduction is
    /// bit-identical to sequential accounting.
    pub fn absorb(&mut self, other: Metrics) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.bits += other.bits;
        self.max_message_bits = self.max_message_bits.max(other.max_message_bits);
    }
}

/// Per-node inboxes produced by a communication round: `inboxes[v]` holds
/// `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(NodeId, M)>>;

/// A CONGEST network over a graph.
///
/// All communication APIs assert the model's constraints: messages travel
/// only along edges, and each message is at most [`Network::cap_bits`] bits
/// wide. Violations are simulation bugs and panic.
///
/// # Examples
///
/// ```
/// use dcl_graphs::generators;
/// use dcl_congest::network::Network;
///
/// let g = generators::path(3);
/// let mut net = Network::with_default_cap(&g, 4);
/// // Node 0 sends its id to node 1.
/// let inboxes = net.round(|v| if v == 0 { vec![(1, 0u32)] } else { vec![] });
/// assert_eq!(inboxes[1], vec![(0, 0u32)]);
/// assert_eq!(net.metrics().messages, 1);
/// ```
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    cap_bits: u32,
    metrics: Metrics,
    /// Cached Δ of `graph` (scratch sizing for the duplicate-edge marks).
    max_deg: usize,
    backend: Backend,
    /// Worker pool, present only when `backend` is effectively parallel.
    pool: Option<Pool>,
}

impl<'g> Network<'g> {
    /// Creates a network with an explicit per-message cap in bits.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bits == 0`.
    pub fn new(graph: &'g Graph, cap_bits: u32) -> Self {
        assert!(cap_bits > 0, "bandwidth cap must be positive");
        Network {
            graph,
            cap_bits,
            metrics: Metrics::default(),
            max_deg: graph.max_degree(),
            backend: Backend::Sequential,
            pool: None,
        }
    }

    /// Creates a network with the workspace's default CONGEST cap:
    /// `2 · max(64, ⌈log₂ n⌉, ⌈log₂ color_space⌉)` bits — i.e. two machine
    /// words of `O(log max(n, C))` bits, matching the paper's assumption that
    /// each color fits in `O(1)` messages.
    pub fn with_default_cap(graph: &'g Graph, color_space: u64) -> Self {
        Network::new(graph, default_cap(graph.n(), color_space))
    }

    /// Creates a network with an explicit cap and round-execution backend.
    pub fn with_backend(graph: &'g Graph, cap_bits: u32, backend: Backend) -> Self {
        let mut net = Network::new(graph, cap_bits);
        net.set_backend(backend);
        net
    }

    /// Switches the round-execution backend. Results (inboxes, metrics,
    /// panics) are bit-identical across backends; only wall-clock changes.
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
        self.pool = backend.is_parallel().then(|| Pool::new(backend.threads()));
    }

    /// The active round-execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The worker pool of a parallel backend (`None` under
    /// [`Backend::Sequential`]). Algorithm drivers may use it to
    /// parallelize *local* per-node computation between rounds — work that
    /// in the real distributed system every node performs simultaneously
    /// for free, and that therefore should scale with the same knob as the
    /// round execution itself.
    pub fn pool(&self) -> Option<&Pool> {
        self.pool.as_ref()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The per-message bandwidth cap in bits.
    pub fn cap_bits(&self) -> u32 {
        self.cap_bits
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Number of rounds elapsed so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Runs one synchronous round. `sender(v)` returns the messages node `v`
    /// sends this round as `(neighbor, payload)` pairs.
    ///
    /// Under [`Backend::Parallel`] the `sender` closures are evaluated on the
    /// worker pool (hence the `Fn + Sync` bound); validation and cost
    /// accounting happen in per-worker [`Metrics`] accumulators that are
    /// reduced in node order afterwards, and messages are merged into the
    /// inboxes in sender order — so inboxes and metrics are bit-identical to
    /// the sequential backend.
    ///
    /// # Panics
    ///
    /// Panics if a message is addressed to a non-neighbor, if a node sends
    /// two messages over the same edge in one round, or if a payload exceeds
    /// the bandwidth cap. After a panic the network's metrics are
    /// unspecified.
    pub fn round<M, F>(&mut self, sender: F) -> Inboxes<M>
    where
        M: Wire + Send,
        F: Fn(NodeId) -> Vec<(NodeId, M)> + Sync,
    {
        let n = self.graph.n();
        self.metrics.rounds += 1;
        let outgoing: Vec<Vec<(NodeId, M)>> = match &self.pool {
            Some(pool) => {
                let (graph, cap, max_deg) = (self.graph, self.cap_bits, self.max_deg);
                let chunks = pool.map_chunks(n, |range| {
                    let mut local = Metrics::default();
                    let mut marks = vec![usize::MAX; max_deg];
                    let mut out = Vec::with_capacity(range.len());
                    for u in range {
                        let msgs = sender(u);
                        validate_sends(graph, cap, u, &msgs, &mut marks, &mut local);
                        out.push(msgs);
                    }
                    (out, local)
                });
                let mut outgoing = Vec::with_capacity(n);
                for (out, local) in chunks {
                    self.metrics.absorb(local);
                    outgoing.extend(out);
                }
                outgoing
            }
            None => {
                let mut local = Metrics::default();
                let mut marks = vec![usize::MAX; self.max_deg];
                let mut out = Vec::with_capacity(n);
                for u in 0..n {
                    let msgs = sender(u);
                    validate_sends(self.graph, self.cap_bits, u, &msgs, &mut marks, &mut local);
                    out.push(msgs);
                }
                self.metrics.absorb(local);
                out
            }
        };
        let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        for (u, msgs) in outgoing.into_iter().enumerate() {
            for (v, msg) in msgs {
                inboxes[v].push((u, msg));
            }
        }
        inboxes
    }

    /// Convenience round: every node sends the *same* payload to all of its
    /// neighbors (or stays silent with `None`). Parallelized like
    /// [`Network::round`] under [`Backend::Parallel`].
    ///
    /// # Panics
    ///
    /// Panics if a payload exceeds the bandwidth cap.
    pub fn broadcast_round<M, F>(&mut self, f: F) -> Inboxes<M>
    where
        M: Wire + Clone + Send,
        F: Fn(NodeId) -> Option<M> + Sync,
    {
        let n = self.graph.n();
        self.metrics.rounds += 1;
        let payloads: Vec<Option<M>> = match &self.pool {
            Some(pool) => {
                let (graph, cap) = (self.graph, self.cap_bits);
                let chunks = pool.map_chunks(n, |range| {
                    let mut local = Metrics::default();
                    let mut out = Vec::with_capacity(range.len());
                    for u in range {
                        let payload = f(u);
                        if let Some(msg) = &payload {
                            account_broadcast(graph, cap, u, msg.wire_bits(), &mut local);
                        }
                        out.push(payload);
                    }
                    (out, local)
                });
                let mut payloads = Vec::with_capacity(n);
                for (out, local) in chunks {
                    self.metrics.absorb(local);
                    payloads.extend(out);
                }
                payloads
            }
            None => {
                let mut local = Metrics::default();
                let mut out = Vec::with_capacity(n);
                for u in 0..n {
                    let payload = f(u);
                    if let Some(msg) = &payload {
                        account_broadcast(
                            self.graph,
                            self.cap_bits,
                            u,
                            msg.wire_bits(),
                            &mut local,
                        );
                    }
                    out.push(payload);
                }
                self.metrics.absorb(local);
                out
            }
        };
        let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        for (u, payload) in payloads.into_iter().enumerate() {
            if let Some(msg) = payload {
                for &v in self.graph.neighbors(u) {
                    inboxes[v].push((u, msg.clone()));
                }
            }
        }
        inboxes
    }

    /// Charges `rounds` additional synchronous rounds without message
    /// delivery. Used by charged (pipelined) collective operations whose
    /// round cost is a closed formula; the message/bit traffic must be
    /// charged separately via [`Network::charge_traffic`].
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }

    /// Charges `messages` messages of `bits_each` bits (each must respect the
    /// cap) without delivering anything.
    ///
    /// # Panics
    ///
    /// Panics if `bits_each` exceeds the bandwidth cap.
    pub fn charge_traffic(&mut self, messages: u64, bits_each: u32) {
        for _ in 0..messages {
            self.account(bits_each);
        }
    }

    fn account(&mut self, bits: u32) {
        assert!(
            bits <= self.cap_bits,
            "message of {bits} bits exceeds CONGEST cap of {} bits",
            self.cap_bits
        );
        self.metrics.messages += 1;
        self.metrics.bits += u64::from(bits);
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
    }
}

/// Validates one node's outgoing messages for a [`Network::round`] and
/// accounts them into `metrics`.
///
/// The duplicate-edge check uses `marks`, a scratch slice of length ≥ Δ
/// indexed by the recipient's position in `u`'s sorted adjacency list and
/// stamped with the sender id — an O(log deg) check per message instead of
/// the former O(deg) scan of a per-node sent list (which made dense-graph
/// rounds O(deg²) per node). The stamp makes clearing unnecessary: slots
/// written by other senders hold a different id.
fn validate_sends<M: Wire>(
    graph: &Graph,
    cap_bits: u32,
    u: NodeId,
    msgs: &[(NodeId, M)],
    marks: &mut [usize],
    metrics: &mut Metrics,
) {
    let neighbors = graph.neighbors(u);
    for (v, msg) in msgs {
        let pos = neighbors
            .binary_search(v)
            .unwrap_or_else(|_| panic!("node {u} attempted to send to non-neighbor {v}"));
        assert!(
            marks[pos] != u,
            "node {u} sent two messages to {v} in one round"
        );
        marks[pos] = u;
        let bits = msg.wire_bits();
        assert!(
            bits <= cap_bits,
            "message of {bits} bits exceeds CONGEST cap of {cap_bits} bits"
        );
        metrics.messages += 1;
        metrics.bits += u64::from(bits);
        metrics.max_message_bits = metrics.max_message_bits.max(bits);
    }
}

/// Accounts one node's broadcast payload (delivered to every neighbor) for a
/// [`Network::broadcast_round`]. Matches the sequential per-delivery
/// accounting: nodes without neighbors are not charged (and not cap-checked).
fn account_broadcast(graph: &Graph, cap_bits: u32, u: NodeId, bits: u32, metrics: &mut Metrics) {
    let deg = graph.degree(u) as u64;
    if deg == 0 {
        return;
    }
    assert!(
        bits <= cap_bits,
        "message of {bits} bits exceeds CONGEST cap of {cap_bits} bits"
    );
    metrics.messages += deg;
    metrics.bits += deg * u64::from(bits);
    metrics.max_message_bits = metrics.max_message_bits.max(bits);
}

/// The default CONGEST bandwidth cap for `n` nodes and color space `[C]`.
#[must_use]
pub fn default_cap(n: usize, color_space: u64) -> u32 {
    2 * 64u32.max(bit_len(n as u64)).max(bit_len(color_space))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn round_delivers_to_neighbors() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        let inboxes = net.round(|v| match v {
            0 => vec![(1, 10u32)],
            2 => vec![(1, 20u32)],
            _ => vec![],
        });
        let mut got = inboxes[1].clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (2, 20)]);
        assert_eq!(net.metrics().rounds, 1);
        assert_eq!(net.metrics().messages, 2);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| if v == 0 { vec![(2, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn duplicate_edge_message_panics() {
        let g = generators::path(2);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u32), (1, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds CONGEST cap")]
    fn oversized_message_panics() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 8);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u64 << 40)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn broadcast_round_reaches_all_neighbors() {
        let g = generators::star(5);
        let mut net = Network::with_default_cap(&g, 2);
        let inboxes = net.broadcast_round(|v| if v == 0 { Some(7u32) } else { None });
        for leaf in 1..5 {
            assert_eq!(inboxes[leaf], vec![(0, 7u32)]);
        }
        assert_eq!(net.metrics().messages, 4);
    }

    #[test]
    fn charge_rounds_and_traffic_accumulate() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 64);
        net.charge_rounds(5);
        net.charge_traffic(3, 10);
        assert_eq!(net.metrics().rounds, 5);
        assert_eq!(net.metrics().messages, 3);
        assert_eq!(net.metrics().bits, 30);
        assert_eq!(net.metrics().max_message_bits, 10);
    }

    #[test]
    fn default_cap_is_two_words() {
        // For every u64-representable n and C the dominant term is the
        // 64-bit machine word, so the cap is two words.
        assert_eq!(default_cap(8, 8), 128);
        assert_eq!(default_cap(1 << 20, 1 << 40), 128);
        assert_eq!(default_cap(8, u64::MAX), 128);
    }

    #[test]
    fn parallel_backend_matches_sequential_bit_for_bit() {
        let g = generators::gnp(80, 0.15, 42);
        let sender = |v: NodeId| -> Vec<(NodeId, u64)> {
            g.neighbors(v)
                .iter()
                .map(|&u| (u, (v * 1000 + u) as u64))
                .collect()
        };
        let mut seq = Network::with_default_cap(&g, 81);
        let mut par = Network::with_default_cap(&g, 81);
        par.set_backend(Backend::Parallel(4));
        for _ in 0..3 {
            let a = seq.round(sender);
            let b = par.round(sender);
            assert_eq!(a, b);
        }
        let a = seq.broadcast_round(|v| (v % 3 == 0).then_some(v as u32));
        let b = par.broadcast_round(|v| (v % 3 == 0).then_some(v as u32));
        assert_eq!(a, b);
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn parallel_backend_panics_like_sequential() {
        let g = generators::path(100);
        let mut net = Network::with_backend(&g, 128, Backend::Parallel(4));
        let _ = net.round(|v| if v == 50 { vec![(99, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn parallel_duplicate_edge_message_panics() {
        let g = generators::star(80);
        let mut net = Network::with_backend(&g, 128, Backend::Parallel(3));
        let _ = net.round(|v| {
            if v == 7 {
                vec![(0, 1u32), (0, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn backend_knob_roundtrip() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        assert_eq!(net.backend(), Backend::Sequential);
        net.set_backend(Backend::Parallel(2));
        assert_eq!(net.backend(), Backend::Parallel(2));
        net.set_backend(Backend::Sequential);
        assert_eq!(net.backend(), Backend::Sequential);
    }

    #[test]
    fn max_message_bits_tracked() {
        let g = generators::path(2);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| if v == 0 { vec![(1, 0b1011u32)] } else { vec![] });
        assert_eq!(net.metrics().max_message_bits, 4);
    }
}

//! Synchronous message-passing network with bandwidth enforcement.

use crate::wire::{bit_len, Wire};
use dcl_graphs::{Graph, NodeId};

/// Cost counters accumulated by a [`Network`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Number of synchronous rounds elapsed.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of bits delivered.
    pub bits: u64,
    /// Largest single message observed, in bits.
    pub max_message_bits: u32,
}

/// Per-node inboxes produced by a communication round: `inboxes[v]` holds
/// `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(NodeId, M)>>;

/// A CONGEST network over a graph.
///
/// All communication APIs assert the model's constraints: messages travel
/// only along edges, and each message is at most [`Network::cap_bits`] bits
/// wide. Violations are simulation bugs and panic.
///
/// # Examples
///
/// ```
/// use dcl_graphs::generators;
/// use dcl_congest::network::Network;
///
/// let g = generators::path(3);
/// let mut net = Network::with_default_cap(&g, 4);
/// // Node 0 sends its id to node 1.
/// let inboxes = net.round(|v| if v == 0 { vec![(1, 0u32)] } else { vec![] });
/// assert_eq!(inboxes[1], vec![(0, 0u32)]);
/// assert_eq!(net.metrics().messages, 1);
/// ```
#[derive(Debug)]
pub struct Network<'g> {
    graph: &'g Graph,
    cap_bits: u32,
    metrics: Metrics,
}

impl<'g> Network<'g> {
    /// Creates a network with an explicit per-message cap in bits.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bits == 0`.
    pub fn new(graph: &'g Graph, cap_bits: u32) -> Self {
        assert!(cap_bits > 0, "bandwidth cap must be positive");
        Network {
            graph,
            cap_bits,
            metrics: Metrics::default(),
        }
    }

    /// Creates a network with the workspace's default CONGEST cap:
    /// `2 · max(64, ⌈log₂ n⌉, ⌈log₂ color_space⌉)` bits — i.e. two machine
    /// words of `O(log max(n, C))` bits, matching the paper's assumption that
    /// each color fits in `O(1)` messages.
    pub fn with_default_cap(graph: &'g Graph, color_space: u64) -> Self {
        Network::new(graph, default_cap(graph.n(), color_space))
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The per-message bandwidth cap in bits.
    pub fn cap_bits(&self) -> u32 {
        self.cap_bits
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Number of rounds elapsed so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Runs one synchronous round. `sender(v)` returns the messages node `v`
    /// sends this round as `(neighbor, payload)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a message is addressed to a non-neighbor, if a node sends
    /// two messages over the same edge in one round, or if a payload exceeds
    /// the bandwidth cap.
    pub fn round<M, F>(&mut self, mut sender: F) -> Inboxes<M>
    where
        M: Wire,
        F: FnMut(NodeId) -> Vec<(NodeId, M)>,
    {
        let n = self.graph.n();
        let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        self.metrics.rounds += 1;
        let mut sent_marks: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for u in 0..n {
            for (v, msg) in sender(u) {
                assert!(
                    self.graph.has_edge(u, v),
                    "node {u} attempted to send to non-neighbor {v}"
                );
                assert!(
                    !sent_marks[u].contains(&v),
                    "node {u} sent two messages to {v} in one round"
                );
                sent_marks[u].push(v);
                self.account(msg.wire_bits());
                inboxes[v].push((u, msg));
            }
        }
        inboxes
    }

    /// Convenience round: every node sends the *same* payload to all of its
    /// neighbors (or stays silent with `None`).
    ///
    /// # Panics
    ///
    /// Panics if a payload exceeds the bandwidth cap.
    pub fn broadcast_round<M, F>(&mut self, mut f: F) -> Inboxes<M>
    where
        M: Wire + Clone,
        F: FnMut(NodeId) -> Option<M>,
    {
        let n = self.graph.n();
        let mut inboxes: Inboxes<M> = (0..n).map(|_| Vec::new()).collect();
        self.metrics.rounds += 1;
        for u in 0..n {
            if let Some(msg) = f(u) {
                let bits = msg.wire_bits();
                for &v in self.graph.neighbors(u) {
                    self.account(bits);
                    inboxes[v].push((u, msg.clone()));
                }
            }
        }
        inboxes
    }

    /// Charges `rounds` additional synchronous rounds without message
    /// delivery. Used by charged (pipelined) collective operations whose
    /// round cost is a closed formula; the message/bit traffic must be
    /// charged separately via [`Network::charge_traffic`].
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }

    /// Charges `messages` messages of `bits_each` bits (each must respect the
    /// cap) without delivering anything.
    ///
    /// # Panics
    ///
    /// Panics if `bits_each` exceeds the bandwidth cap.
    pub fn charge_traffic(&mut self, messages: u64, bits_each: u32) {
        for _ in 0..messages {
            self.account(bits_each);
        }
    }

    fn account(&mut self, bits: u32) {
        assert!(
            bits <= self.cap_bits,
            "message of {bits} bits exceeds CONGEST cap of {} bits",
            self.cap_bits
        );
        self.metrics.messages += 1;
        self.metrics.bits += u64::from(bits);
        self.metrics.max_message_bits = self.metrics.max_message_bits.max(bits);
    }
}

/// The default CONGEST bandwidth cap for `n` nodes and color space `[C]`.
#[must_use]
pub fn default_cap(n: usize, color_space: u64) -> u32 {
    2 * 64u32.max(bit_len(n as u64)).max(bit_len(color_space))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn round_delivers_to_neighbors() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        let inboxes = net.round(|v| match v {
            0 => vec![(1, 10u32)],
            2 => vec![(1, 20u32)],
            _ => vec![],
        });
        let mut got = inboxes[1].clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (2, 20)]);
        assert_eq!(net.metrics().rounds, 1);
        assert_eq!(net.metrics().messages, 2);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| if v == 0 { vec![(2, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn duplicate_edge_message_panics() {
        let g = generators::path(2);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u32), (1, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds CONGEST cap")]
    fn oversized_message_panics() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 8);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u64 << 40)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn broadcast_round_reaches_all_neighbors() {
        let g = generators::star(5);
        let mut net = Network::with_default_cap(&g, 2);
        let inboxes = net.broadcast_round(|v| if v == 0 { Some(7u32) } else { None });
        for leaf in 1..5 {
            assert_eq!(inboxes[leaf], vec![(0, 7u32)]);
        }
        assert_eq!(net.metrics().messages, 4);
    }

    #[test]
    fn charge_rounds_and_traffic_accumulate() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 64);
        net.charge_rounds(5);
        net.charge_traffic(3, 10);
        assert_eq!(net.metrics().rounds, 5);
        assert_eq!(net.metrics().messages, 3);
        assert_eq!(net.metrics().bits, 30);
        assert_eq!(net.metrics().max_message_bits, 10);
    }

    #[test]
    fn default_cap_is_two_words() {
        // For every u64-representable n and C the dominant term is the
        // 64-bit machine word, so the cap is two words.
        assert_eq!(default_cap(8, 8), 128);
        assert_eq!(default_cap(1 << 20, 1 << 40), 128);
        assert_eq!(default_cap(8, u64::MAX), 128);
    }

    #[test]
    fn max_message_bits_tracked() {
        let g = generators::path(2);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| if v == 0 { vec![(1, 0b1011u32)] } else { vec![] });
        assert_eq!(net.metrics().max_message_bits, 4);
    }
}

//! Synchronous message-passing network with bandwidth enforcement.
//!
//! The runtime — backend fan-out, duplicate-send validation, cap
//! enforcement, cost metering — lives in [`dcl_sim`]; this module is the
//! CONGEST *policy*: neighbor-only delivery ([`NeighborTopology`]), the
//! paper's default cap formula, and the charged-traffic entry points the
//! tree collectives use.

use crate::wire::Wire;
use dcl_graphs::{Graph, NodeId};
use dcl_par::{Backend, Pool};
use dcl_sim::{
    BandwidthCap, ExecConfig, NeighborTopology, RoundEngine, SendPolicy, TransportSpec,
    TransportStats,
};

/// Cost counters accumulated by a [`Network`] (the shared
/// [`dcl_sim::SimMetrics`]).
pub use dcl_sim::SimMetrics as Metrics;

/// Per-node inboxes produced by a communication round: `inboxes[v]` holds
/// `(sender, payload)` pairs.
pub type Inboxes<M> = Vec<Vec<(NodeId, M)>>;

/// A CONGEST network over a graph.
///
/// All communication APIs assert the model's constraints: messages travel
/// only along edges, and each message is at most [`Network::cap_bits`] bits
/// wide. Violations are simulation bugs and panic. Algorithm drivers that
/// must run under *swept* (small) caps use the `fragmented_*` round
/// variants, which split oversized payloads into cap-sized physical
/// messages and stretch the round accordingly — at a cap that fits every
/// payload they cost exactly the same as the strict rounds.
///
/// # Examples
///
/// ```
/// use dcl_graphs::generators;
/// use dcl_congest::network::Network;
///
/// let g = generators::path(3);
/// let mut net = Network::with_default_cap(&g, 4);
/// // Node 0 sends its id to node 1.
/// let inboxes = net.round(|v| if v == 0 { vec![(1, 0u32)] } else { vec![] });
/// assert_eq!(inboxes[1], vec![(0, 0u32)]);
/// assert_eq!(net.metrics().messages, 1);
/// ```
#[derive(Debug)]
pub struct Network<'g> {
    topo: NeighborTopology<'g>,
    cap: BandwidthCap,
    metrics: Metrics,
    engine: RoundEngine,
}

impl<'g> Network<'g> {
    /// Creates a network with an explicit per-message cap in bits.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bits == 0`.
    pub fn new(graph: &'g Graph, cap_bits: u32) -> Self {
        Network::with_cap(graph, BandwidthCap::new(cap_bits))
    }

    /// Creates a network with an explicit [`BandwidthCap`].
    pub fn with_cap(graph: &'g Graph, cap: BandwidthCap) -> Self {
        Network {
            topo: NeighborTopology::new(graph),
            cap,
            metrics: Metrics::default(),
            engine: RoundEngine::new(Backend::Sequential),
        }
    }

    /// Creates a network with the workspace's default CONGEST cap:
    /// `2 · max(64, ⌈log₂ n⌉, ⌈log₂ color_space⌉)` bits — i.e. two machine
    /// words of `O(log max(n, C))` bits, matching the paper's assumption that
    /// each color fits in `O(1)` messages.
    pub fn with_default_cap(graph: &'g Graph, color_space: u64) -> Self {
        Network::with_cap(graph, BandwidthCap::default_for(graph.n(), color_space))
    }

    /// Creates a network with an explicit cap and round-execution backend.
    pub fn with_backend(graph: &'g Graph, cap_bits: u32, backend: Backend) -> Self {
        let mut net = Network::new(graph, cap_bits);
        net.set_backend(backend);
        net
    }

    /// Creates a network from an [`ExecConfig`]: the config's cap override
    /// if set, else the default cap for `color_space`; the config's backend
    /// and transport tier.
    pub fn from_exec(graph: &'g Graph, color_space: u64, exec: &ExecConfig) -> Self {
        let cap = exec.cap_or(BandwidthCap::default_for(graph.n(), color_space));
        let mut net = Network::with_cap(graph, cap);
        net.set_backend(exec.backend);
        net.set_transport(exec.transport);
        net
    }

    /// Switches the round-execution backend. Results (inboxes, metrics,
    /// panics) are bit-identical across backends; only wall-clock changes.
    pub fn set_backend(&mut self, backend: Backend) {
        self.engine.set_backend(backend);
    }

    /// The active round-execution backend.
    pub fn backend(&self) -> Backend {
        self.engine.backend()
    }

    /// Switches the transport tier carrying the rounds. Results (inboxes,
    /// metrics, intentional panics) are bit-identical across tiers; only
    /// the physical layer — metered by [`Network::transport_stats`] —
    /// changes.
    pub fn set_transport(&mut self, transport: TransportSpec) {
        self.engine.set_transport(transport);
    }

    /// The active transport tier.
    pub fn transport(&self) -> TransportSpec {
        self.engine.transport_spec()
    }

    /// Physical-layer counters of the built transport (`None` on the
    /// in-memory reference tier, which never serializes).
    pub fn transport_stats(&self) -> Option<&TransportStats> {
        self.engine.transport_stats()
    }

    /// Fault injection for tests: tears down transport endpoint `v`, so
    /// subsequent rounds touching `v` raise a typed
    /// [`dcl_sim::TransportError`]. No-op on the in-memory reference tier.
    pub fn close_transport_endpoint(&mut self, v: usize) {
        let n = self.topo.graph().n();
        self.engine.close_transport_endpoint(n, v);
    }

    /// The worker pool of a parallel backend (`None` under
    /// [`Backend::Sequential`]). Algorithm drivers may use it to
    /// parallelize *local* per-node computation between rounds — work that
    /// in the real distributed system every node performs simultaneously
    /// for free, and that therefore should scale with the same knob as the
    /// round execution itself.
    pub fn pool(&self) -> Option<&Pool> {
        self.engine.pool()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.topo.graph()
    }

    /// The per-message bandwidth cap in bits.
    pub fn cap_bits(&self) -> u32 {
        self.cap.bits()
    }

    /// The per-message bandwidth cap.
    pub fn cap(&self) -> BandwidthCap {
        self.cap
    }

    /// Accumulated cost counters.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Number of rounds elapsed so far.
    pub fn rounds(&self) -> u64 {
        self.metrics.rounds
    }

    /// Runs one synchronous round. `sender(v)` returns the messages node `v`
    /// sends this round as `(neighbor, payload)` pairs.
    ///
    /// Under [`Backend::Parallel`] the `sender` closures are evaluated on the
    /// worker pool (hence the `Fn + Sync` bound); validation and cost
    /// accounting happen in per-worker [`Metrics`] accumulators that are
    /// reduced in node order afterwards, and messages are merged into the
    /// inboxes in sender order — so inboxes and metrics are bit-identical to
    /// the sequential backend.
    ///
    /// # Panics
    ///
    /// Panics if a message is addressed to a non-neighbor, if a node sends
    /// two messages over the same edge in one round, or if a payload exceeds
    /// the bandwidth cap. After a panic the network's metrics are
    /// unspecified.
    pub fn round<M, F>(&mut self, sender: F) -> Inboxes<M>
    where
        M: Wire + Send,
        F: Fn(NodeId) -> Vec<(NodeId, M)> + Sync,
    {
        self.engine.message_round(
            &self.topo,
            self.cap,
            SendPolicy::Strict,
            &mut self.metrics,
            sender,
        )
    }

    /// [`Network::round`] for algorithm drivers running under swept caps:
    /// payloads wider than the cap are split into `⌈bits / cap⌉` physical
    /// messages, and the round stretches to the largest fragment count
    /// among its messages. At a cap that fits every payload this is exactly
    /// [`Network::round`].
    ///
    /// # Panics
    ///
    /// Panics on non-neighbor or duplicate-edge sends (never on payload
    /// width).
    pub fn fragmented_round<M, F>(&mut self, sender: F) -> Inboxes<M>
    where
        M: Wire + Send,
        F: Fn(NodeId) -> Vec<(NodeId, M)> + Sync,
    {
        self.engine.message_round(
            &self.topo,
            self.cap,
            SendPolicy::Fragment,
            &mut self.metrics,
            sender,
        )
    }

    /// Convenience round: every node sends the *same* payload to all of its
    /// neighbors (or stays silent with `None`). Parallelized like
    /// [`Network::round`] under [`Backend::Parallel`].
    ///
    /// # Panics
    ///
    /// Panics if a payload exceeds the bandwidth cap.
    pub fn broadcast_round<M, F>(&mut self, f: F) -> Inboxes<M>
    where
        M: Wire + Clone + Send,
        F: Fn(NodeId) -> Option<M> + Sync,
    {
        self.engine.broadcast_round(
            &self.topo,
            self.cap,
            SendPolicy::Strict,
            &mut self.metrics,
            f,
        )
    }

    /// [`Network::broadcast_round`] with fragmentation instead of the
    /// oversized-payload panic (see [`Network::fragmented_round`]).
    pub fn fragmented_broadcast_round<M, F>(&mut self, f: F) -> Inboxes<M>
    where
        M: Wire + Clone + Send,
        F: Fn(NodeId) -> Option<M> + Sync,
    {
        self.engine.broadcast_round(
            &self.topo,
            self.cap,
            SendPolicy::Fragment,
            &mut self.metrics,
            f,
        )
    }

    /// Charges `rounds` additional synchronous rounds without message
    /// delivery. Used by charged (pipelined) collective operations whose
    /// round cost is a closed formula; the message/bit traffic must be
    /// charged separately via [`Network::charge_traffic`].
    pub fn charge_rounds(&mut self, rounds: u64) {
        self.metrics.rounds += rounds;
    }

    /// Charges `messages` messages of `bits_each` bits (each must respect the
    /// cap) without delivering anything.
    ///
    /// # Panics
    ///
    /// Panics if `bits_each` exceeds the bandwidth cap.
    pub fn charge_traffic(&mut self, messages: u64, bits_each: u32) {
        for _ in 0..messages {
            self.metrics.account(self.cap, bits_each, "CONGEST");
        }
    }

    /// Charges `count` logical payloads of `bits_each` bits, splitting each
    /// into cap-sized fragments when oversized. Returns the per-payload
    /// fragment count (the number of sub-rounds each payload occupies on
    /// its link); callers charge rounds accordingly. At a cap that fits the
    /// payload this equals [`Network::charge_traffic`] and returns 1.
    pub fn charge_payload_traffic(&mut self, count: u64, bits_each: u32) -> u32 {
        self.metrics
            .account_fragmented_many(self.cap, count, bits_each)
    }
}

/// The default CONGEST bandwidth cap for `n` nodes and color space `[C]`,
/// in bits (see [`BandwidthCap::default_for`]).
#[must_use]
pub fn default_cap(n: usize, color_space: u64) -> u32 {
    BandwidthCap::default_for(n, color_space).bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn round_delivers_to_neighbors() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        let inboxes = net.round(|v| match v {
            0 => vec![(1, 10u32)],
            2 => vec![(1, 20u32)],
            _ => vec![],
        });
        let mut got = inboxes[1].clone();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 10), (2, 20)]);
        assert_eq!(net.metrics().rounds, 1);
        assert_eq!(net.metrics().messages, 2);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn sending_to_non_neighbor_panics() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| if v == 0 { vec![(2, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn duplicate_edge_message_panics() {
        let g = generators::path(2);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u32), (1, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds CONGEST cap")]
    fn oversized_message_panics() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 8);
        let _ = net.round(|v| {
            if v == 0 {
                vec![(1, 1u64 << 40)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn fragmented_round_splits_instead_of_panicking() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 8);
        // 41-bit payload at an 8-bit cap: 6 fragments.
        let inboxes = net.fragmented_round(|v| {
            if v == 0 {
                vec![(1, 1u64 << 40)]
            } else {
                vec![]
            }
        });
        assert_eq!(inboxes[1], vec![(0, 1u64 << 40)]);
        assert_eq!(net.metrics().rounds, 6);
        assert_eq!(net.metrics().messages, 6);
        assert_eq!(net.metrics().bits, 41);
        assert_eq!(net.metrics().max_message_bits, 8);
    }

    #[test]
    fn fragmented_round_equals_strict_round_at_the_default_cap() {
        let g = generators::gnp(30, 0.2, 5);
        let sender = |v: NodeId| -> Vec<(NodeId, u64)> {
            g.neighbors(v)
                .iter()
                .map(|&u| (u, (v * 31 + u) as u64))
                .collect()
        };
        let mut strict = Network::with_default_cap(&g, 31);
        let mut frag = Network::with_default_cap(&g, 31);
        assert_eq!(strict.round(sender), frag.fragmented_round(sender));
        let a = strict.broadcast_round(|v| (v % 2 == 0).then_some(v as u32));
        let b = frag.fragmented_broadcast_round(|v| (v % 2 == 0).then_some(v as u32));
        assert_eq!(a, b);
        assert_eq!(strict.metrics(), frag.metrics());
    }

    #[test]
    fn broadcast_round_reaches_all_neighbors() {
        let g = generators::star(5);
        let mut net = Network::with_default_cap(&g, 2);
        let inboxes = net.broadcast_round(|v| if v == 0 { Some(7u32) } else { None });
        for leaf in 1..5 {
            assert_eq!(inboxes[leaf], vec![(0, 7u32)]);
        }
        assert_eq!(net.metrics().messages, 4);
    }

    #[test]
    fn charge_rounds_and_traffic_accumulate() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 64);
        net.charge_rounds(5);
        net.charge_traffic(3, 10);
        assert_eq!(net.metrics().rounds, 5);
        assert_eq!(net.metrics().messages, 3);
        assert_eq!(net.metrics().bits, 30);
        assert_eq!(net.metrics().max_message_bits, 10);
    }

    #[test]
    fn charge_payload_traffic_fragments_oversized_payloads() {
        let g = generators::path(2);
        let mut net = Network::new(&g, 8);
        assert_eq!(net.charge_payload_traffic(3, 20), 3);
        assert_eq!(net.metrics().messages, 9);
        assert_eq!(net.metrics().bits, 60);
        assert_eq!(net.metrics().max_message_bits, 8);
        // Fitting payloads behave exactly like charge_traffic.
        let mut a = Network::new(&g, 64);
        let mut b = Network::new(&g, 64);
        assert_eq!(a.charge_payload_traffic(4, 10), 1);
        b.charge_traffic(4, 10);
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn default_cap_is_two_words() {
        // For every u64-representable n and C the dominant term is the
        // 64-bit machine word, so the cap is two words.
        assert_eq!(default_cap(8, 8), 128);
        assert_eq!(default_cap(1 << 20, 1 << 40), 128);
        assert_eq!(default_cap(8, u64::MAX), 128);
    }

    #[test]
    fn from_exec_applies_cap_override_and_backend() {
        let g = generators::path(4);
        let net = Network::from_exec(&g, 100, &ExecConfig::default());
        assert_eq!(net.cap_bits(), 128);
        assert_eq!(net.backend(), Backend::Sequential);
        let exec = ExecConfig::default()
            .with_backend(Backend::Parallel(2))
            .with_cap(BandwidthCap::new(9));
        let net = Network::from_exec(&g, 100, &exec);
        assert_eq!(net.cap_bits(), 9);
        assert_eq!(net.backend(), Backend::Parallel(2));
    }

    #[test]
    fn parallel_backend_matches_sequential_bit_for_bit() {
        let g = generators::gnp(80, 0.15, 42);
        let sender = |v: NodeId| -> Vec<(NodeId, u64)> {
            g.neighbors(v)
                .iter()
                .map(|&u| (u, (v * 1000 + u) as u64))
                .collect()
        };
        let mut seq = Network::with_default_cap(&g, 81);
        let mut par = Network::with_default_cap(&g, 81);
        par.set_backend(Backend::Parallel(4));
        for _ in 0..3 {
            let a = seq.round(sender);
            let b = par.round(sender);
            assert_eq!(a, b);
        }
        let a = seq.broadcast_round(|v| (v % 3 == 0).then_some(v as u32));
        let b = par.broadcast_round(|v| (v % 3 == 0).then_some(v as u32));
        assert_eq!(a, b);
        assert_eq!(seq.metrics(), par.metrics());
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn parallel_backend_panics_like_sequential() {
        let g = generators::path(100);
        let mut net = Network::with_backend(&g, 128, Backend::Parallel(4));
        let _ = net.round(|v| if v == 50 { vec![(99, 1u32)] } else { vec![] });
    }

    #[test]
    #[should_panic(expected = "two messages")]
    fn parallel_duplicate_edge_message_panics() {
        let g = generators::star(80);
        let mut net = Network::with_backend(&g, 128, Backend::Parallel(3));
        let _ = net.round(|v| {
            if v == 7 {
                vec![(0, 1u32), (0, 2u32)]
            } else {
                vec![]
            }
        });
    }

    #[test]
    fn backend_knob_roundtrip() {
        let g = generators::path(3);
        let mut net = Network::with_default_cap(&g, 2);
        assert_eq!(net.backend(), Backend::Sequential);
        net.set_backend(Backend::Parallel(2));
        assert_eq!(net.backend(), Backend::Parallel(2));
        net.set_backend(Backend::Sequential);
        assert_eq!(net.backend(), Backend::Sequential);
    }

    #[test]
    fn byte_transports_match_the_local_reference_bit_for_bit() {
        let g = generators::gnp(24, 0.3, 9);
        let sender = |v: NodeId| -> Vec<(NodeId, u64)> {
            g.neighbors(v)
                .iter()
                .map(|&u| (u, (v * 1000 + u) as u64))
                .collect()
        };
        let mut reference = Network::from_exec(&g, 25, &ExecConfig::default());
        let rounds_ref = [reference.round(sender), reference.round(sender)];
        let broadcast_ref = reference.broadcast_round(|v| (v % 3 == 0).then_some(v as u32));
        for transport in [TransportSpec::Channel, TransportSpec::Tcp] {
            let exec = ExecConfig::default().with_transport(transport);
            let mut net = Network::from_exec(&g, 25, &exec);
            assert_eq!(net.transport(), transport);
            assert_eq!(rounds_ref[0], net.round(sender), "{transport}");
            assert_eq!(rounds_ref[1], net.round(sender), "{transport}");
            let b = net.broadcast_round(|v| (v % 3 == 0).then_some(v as u32));
            assert_eq!(broadcast_ref, b, "{transport}");
            assert_eq!(reference.metrics(), net.metrics(), "{transport}");
            let stats = net.transport_stats().expect("byte tiers meter traffic");
            assert_eq!(stats.frames, reference.metrics().messages, "{transport}");
        }
        assert!(reference.transport_stats().is_none());
    }

    #[test]
    fn max_message_bits_tracked() {
        let g = generators::path(2);
        let mut net = Network::with_default_cap(&g, 2);
        let _ = net.round(|v| if v == 0 { vec![(1, 0b1011u32)] } else { vec![] });
        assert_eq!(net.metrics().max_message_bits, 4);
    }
}

//! Experiment tables and the machine-profile baseline JSON they are
//! committed as (`BENCH_experiments.json` et al.).
//!
//! [`Table`] moved here from `dcl_bench` (which re-exports it) so that the
//! sweep harness, the experiment crate and the baseline bins all share one
//! rendering/serialization path; the JSON layout is byte-compatible with
//! the `bench_experiments/v1` files committed since PR 3.

use std::fmt::Write as _;

/// A printable experiment table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id and title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// The machine profile stamped into every committed `BENCH_*.json`, so a
/// future profile (e.g. a multi-core runner) can be diffed row by row
/// against the committed one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineProfile {
    /// `std::thread::available_parallelism()` at record time.
    pub hardware_threads: usize,
    /// `std::env::consts::OS`.
    pub os: &'static str,
    /// `std::env::consts::ARCH`.
    pub arch: &'static str,
    /// The kernel dispatch decision the numbers were recorded under
    /// (`dcl_kernels::dispatch_label()`): a forced tier's name under a
    /// `DCL_KERNEL_TIER`/`set_active_tier` override, else `"per-family"`
    /// (each kernel family at its measured-best default) — so a baseline
    /// produced with `DCL_KERNEL_TIER=reference` is never diffed against
    /// a default run unnoticed.
    pub kernel_tier: &'static str,
    /// The `target_feature` set the SIMD tier can use on the recording
    /// machine (`dcl_kernels::simd_features()`).
    pub target_features: &'static str,
}

impl MachineProfile {
    /// The profile of the machine running right now.
    pub fn current() -> Self {
        MachineProfile {
            hardware_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            os: std::env::consts::OS,
            arch: std::env::consts::ARCH,
            kernel_tier: dcl_kernels::dispatch_label(),
            target_features: dcl_kernels::simd_features(),
        }
    }

    /// The `"machine"` JSON object, exactly as the committed baselines
    /// spell it.
    pub fn json_object(&self) -> String {
        format!(
            "{{ \"hardware_threads\": {}, \"os\": \"{}\", \"arch\": \"{}\", \"kernel_tier\": \"{}\", \"target_features\": \"{}\" }}",
            self.hardware_threads, self.os, self.arch, self.kernel_tier, self.target_features
        )
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn table_json(out: &mut String, table: &Table, ms: f64, last: bool) {
    // The experiment id is the leading token of the title ("E4b (Theorem...").
    let id = table
        .title
        .split_whitespace()
        .next()
        .unwrap_or("?")
        .trim_end_matches(':');
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"id\": \"{}\",", json_escape(id));
    let _ = writeln!(out, "      \"title\": \"{}\",", json_escape(&table.title));
    let _ = writeln!(out, "      \"ms\": {ms:.1},");
    let cells = |row: &[String]| -> String {
        row.iter()
            .map(|c| format!("\"{}\"", json_escape(c)))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let _ = writeln!(out, "      \"headers\": [{}],", cells(&table.headers));
    let _ = writeln!(out, "      \"rows\": [");
    for (i, row) in table.rows.iter().enumerate() {
        let comma = if i + 1 < table.rows.len() { "," } else { "" };
        let _ = writeln!(out, "        [{}]{comma}", cells(row));
    }
    let _ = writeln!(out, "      ]");
    let _ = writeln!(out, "    }}{}", if last { "" } else { "," });
}

/// Serializes a batch of timed experiment tables as a machine-profile
/// baseline document (schema `bench_experiments/v1`): header with the
/// machine profile and total wall-clock, then one object per table with
/// `id`/`title`/`ms`/`headers`/`rows`. Byte-compatible with the committed
/// `BENCH_experiments.json`.
pub fn baseline_json(
    schema: &str,
    profile: &MachineProfile,
    total_ms: f64,
    tables: &[(Table, f64)],
) -> String {
    let mut j = String::new();
    let _ = writeln!(j, "{{");
    let _ = writeln!(j, "  \"schema\": \"{}\",", json_escape(schema));
    let _ = writeln!(j, "  \"machine\": {},", profile.json_object());
    let _ = writeln!(j, "  \"total_ms\": {total_ms:.1},");
    let _ = writeln!(j, "  \"experiments\": [");
    let count = tables.len();
    for (i, (table, ms)) in tables.iter().enumerate() {
        table_json(&mut j, table, *ms, i + 1 == count);
    }
    let _ = writeln!(j, "  ]");
    let _ = writeln!(j, "}}");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains('1'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn baseline_json_matches_the_committed_layout() {
        let mut t = Table::new("E9 (demo): a \"quoted\" title", &["x", "y"]);
        t.row(vec!["1".into(), "true".into()]);
        let profile = MachineProfile {
            hardware_threads: 1,
            os: "linux",
            arch: "x86_64",
            kernel_tier: "per-family",
            target_features: "sse2+avx2",
        };
        let j = baseline_json("bench_experiments/v1", &profile, 12.34, &[(t, 5.67)]);
        assert!(j.starts_with("{\n  \"schema\": \"bench_experiments/v1\",\n"));
        assert!(j.contains(
            "  \"machine\": { \"hardware_threads\": 1, \"os\": \"linux\", \"arch\": \"x86_64\", \"kernel_tier\": \"per-family\", \"target_features\": \"sse2+avx2\" },\n"
        ));
        assert!(j.contains("  \"total_ms\": 12.3,\n"));
        assert!(j.contains("      \"id\": \"E9\",\n"));
        assert!(j.contains("a \\\"quoted\\\" title"));
        assert!(j.contains("      \"headers\": [\"x\", \"y\"],\n"));
        assert!(j.contains("        [\"1\", \"true\"]\n"));
        assert!(j.ends_with("  ]\n}\n"));
    }
}

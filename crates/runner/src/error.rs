//! The [`RunError`] type: every way a scenario run can fail, as one enum
//! behind [`std::error::Error`].

use crate::scenario::{Model, Scenario};
use dcl_graphs::{Graph, GraphError};
use dcl_par::JobPanic;
use dcl_sim::{ExecConfig, TransportError};
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Unified error type of the runner front door.
///
/// The per-crate error types are wrapped losslessly: [`GraphError`] and
/// [`JobPanic`] as typed variants, scenario rejections (e.g.
/// `dcl_delta::DeltaError`) as a boxed [`std::error::Error`] that can be
/// recovered intact via [`RunError::rejection`] or
/// [`std::error::Error::source`]. Model-budget violations (MPC word budgets,
/// bandwidth caps) are intentional panics in the simulators — see the panic
/// contract in `DESIGN.md` §2.3 — and are only materialized as the
/// [`RunError::Budget`] variant when a run goes through [`run_protected`].
#[derive(Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The input graph itself was invalid (construction error).
    Graph(GraphError),
    /// A backend pool job panicked (typed payload from
    /// [`dcl_par::Pool::try_run`]).
    Job(JobPanic),
    /// The scenario rejected the input as unsolvable — e.g. a Brooks
    /// obstruction for the Δ-coloring scenario. The concrete per-crate error
    /// is preserved and downcastable via [`RunError::rejection`].
    Rejected {
        /// [`Scenario::name`] of the rejecting scenario.
        scenario: String,
        /// The original typed error, behind `std::error::Error`.
        source: Box<dyn Error + Send + Sync + 'static>,
    },
    /// A model resource budget was violated (MPC send/receive/memory word
    /// budgets, bandwidth caps). Produced by [`run_protected`] from the
    /// simulators' intentional budget assertions.
    Budget {
        /// Model whose budget was violated.
        model: Model,
        /// The simulator's assertion message.
        message: String,
    },
    /// The byte-transport tier failed — a peer disconnected mid-round or a
    /// frame violated the framing protocol. The simulators raise these as
    /// typed [`TransportError`] panic payloads (the round APIs are
    /// infallible by design), and [`run_protected`] recovers the original
    /// value losslessly.
    Transport(TransportError),
    /// The pipeline panicked for any other reason (progress-bug safety
    /// nets). Produced by [`run_protected`].
    Panic {
        /// [`Scenario::name`] of the panicking scenario.
        scenario: String,
        /// The panic payload rendered as a string.
        message: String,
    },
}

impl RunError {
    /// Wraps a scenario rejection, preserving the concrete error for
    /// [`RunError::rejection`] downcasts.
    pub fn rejected<E>(scenario: &str, source: E) -> Self
    where
        E: Error + Send + Sync + 'static,
    {
        RunError::Rejected {
            scenario: scenario.to_string(),
            source: Box::new(source),
        }
    }

    /// The concrete rejection error, if this is a [`RunError::Rejected`] of
    /// type `E` — e.g. `err.rejection::<dcl_delta::DeltaError>()`.
    pub fn rejection<E: Error + 'static>(&self) -> Option<&E> {
        match self {
            RunError::Rejected { source, .. } => source.downcast_ref(),
            _ => None,
        }
    }
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Graph(e) => write!(f, "invalid input graph: {e}"),
            RunError::Job(p) => write!(f, "backend {p}"),
            RunError::Rejected { scenario, source } => {
                write!(f, "scenario '{scenario}' rejected the input: {source}")
            }
            RunError::Budget { model, message } => {
                write!(f, "{model} resource budget violated: {message}")
            }
            RunError::Transport(e) => write!(f, "transport failure: {e}"),
            RunError::Panic { scenario, message } => {
                write!(f, "scenario '{scenario}' panicked: {message}")
            }
        }
    }
}

impl Error for RunError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RunError::Graph(e) => Some(e),
            RunError::Job(p) => Some(p),
            RunError::Rejected { source, .. } => Some(source.as_ref()),
            RunError::Transport(e) => Some(e),
            RunError::Budget { .. } | RunError::Panic { .. } => None,
        }
    }
}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

impl From<JobPanic> for RunError {
    fn from(p: JobPanic) -> Self {
        RunError::Job(p)
    }
}

impl From<TransportError> for RunError {
    fn from(e: TransportError) -> Self {
        RunError::Transport(e)
    }
}

/// Runs `scenario` with a panic shield: the simulators' intentional budget
/// assertions come back as [`RunError::Budget`] and any other panic (the
/// progress-bug safety nets) as [`RunError::Panic`], instead of unwinding
/// through the caller. Results of non-panicking runs are identical to
/// calling [`Scenario::run`] directly.
pub fn run_protected(
    scenario: &dyn Scenario,
    graph: &Graph,
    exec: &ExecConfig,
) -> Result<crate::Report, RunError> {
    match catch_unwind(AssertUnwindSafe(|| scenario.run(graph, exec))) {
        Ok(result) => result,
        Err(payload) => {
            // Transport failures travel as typed panic payloads
            // (`panic_any(TransportError)` out of the infallible round
            // APIs); recover them losslessly before any string matching.
            if let Some(e) = payload.downcast_ref::<TransportError>() {
                return Err(RunError::Transport(e.clone()));
            }
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| {
                    payload
                        .downcast_ref::<&'static str>()
                        .map(|s| s.to_string())
                })
                .unwrap_or_else(|| String::from("<non-string panic payload>"));
            // The budget assertions phrase themselves around the violated
            // resource: "… exceeded its send/receive budget …" and
            // "… exceeding its memory …" (MPC), "message of N bits exceeds
            // <model> cap of M bits" (bandwidth caps, present-tense
            // "exceeds"). The drivers' progress-bug safety nets say
            // "iteration cap N *exceeded*" — past tense, no "budget" — and
            // must stay `Panic`, not `Budget` (pinned by the tests below).
            let budget_violation = message.contains("budget")
                || message.contains("exceeding its memory")
                // dcl-lint: allow(panic-wording) — this IS the classifier the rule mirrors
                || (message.contains("exceeds") && message.contains("cap"));
            if budget_violation {
                Err(RunError::Budget {
                    model: scenario.model(),
                    message,
                })
            } else {
                Err(RunError::Panic {
                    scenario: scenario.name().to_string(),
                    message,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Report;
    use dcl_graphs::generators;

    #[derive(Debug, Clone, PartialEq, Eq)]
    struct DemoRejection(&'static str);

    impl fmt::Display for DemoRejection {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "demo rejection: {}", self.0)
        }
    }

    impl Error for DemoRejection {}

    struct Panicking(&'static str);

    impl Scenario for Panicking {
        fn name(&self) -> &str {
            "panicking"
        }
        fn model(&self) -> Model {
            Model::Mpc
        }
        fn run(&self, _: &Graph, _: &ExecConfig) -> Result<Report, RunError> {
            panic!("{}", self.0);
        }
    }

    #[test]
    fn rejection_is_downcastable_losslessly() {
        let err = RunError::rejected("demo", DemoRejection("odd cycle"));
        assert_eq!(
            err.rejection::<DemoRejection>(),
            Some(&DemoRejection("odd cycle"))
        );
        assert!(err.rejection::<GraphError>().is_none());
        assert!(err.to_string().contains("demo rejection: odd cycle"));
        assert!(err.source().is_some(), "rejection keeps its source chain");
    }

    #[test]
    fn graph_and_job_errors_wrap_with_source() {
        let e: RunError = GraphError::SelfLoop(3).into();
        assert!(matches!(e, RunError::Graph(GraphError::SelfLoop(3))));
        assert!(e.to_string().contains("self loop"));
        assert!(e.source().is_some());
    }

    #[test]
    fn run_protected_types_budget_violations_and_panics() {
        let g = generators::ring(4);
        let exec = ExecConfig::default();
        // The exact phrasings of the simulators' budget assertions.
        for budget_message in [
            "machine 0 exceeded its send budget of 400 words",
            "machine 2 exceeded its receive budget of 400 words",
            "machine 1 stores 99 words, exceeding its memory of 80",
            "message of 200 bits exceeds CONGEST cap of 128 bits",
        ] {
            let budget = run_protected(&Panicking(budget_message), &g, &exec);
            assert!(
                matches!(
                    budget,
                    Err(RunError::Budget {
                        model: Model::Mpc,
                        ..
                    })
                ),
                "{budget_message:?} must become Budget, got {budget:?}"
            );
        }
        // The exact phrasings of the drivers' progress-bug safety nets must
        // NOT be classified as budget violations.
        for progress_message in [
            "iteration cap 40 exceeded with 3 nodes uncolored — progress bug",
            "iteration cap exceeded — progress bug",
            "class 3 exceeded the iteration cap",
            "linear MPC coloring failed to make progress",
        ] {
            let other = run_protected(&Panicking(progress_message), &g, &exec);
            match other {
                Err(RunError::Panic { scenario, message }) => {
                    assert_eq!(scenario, "panicking");
                    assert_eq!(message, progress_message);
                }
                other => panic!("{progress_message:?}: expected Panic, got {other:?}"),
            }
        }
    }

    struct TransportPanicking;

    impl Scenario for TransportPanicking {
        fn name(&self) -> &str {
            "transport-panicking"
        }
        fn model(&self) -> Model {
            Model::Congest
        }
        fn run(&self, _: &Graph, _: &ExecConfig) -> Result<Report, RunError> {
            std::panic::panic_any(TransportError::Disconnected {
                from: 3,
                to: 7,
                detail: String::from("peer closed the stream"),
            });
        }
    }

    #[test]
    fn run_protected_recovers_transport_errors_losslessly() {
        let g = generators::ring(4);
        let err = run_protected(&TransportPanicking, &g, &ExecConfig::default()).unwrap_err();
        match &err {
            RunError::Transport(TransportError::Disconnected { from, to, detail }) => {
                assert_eq!((*from, *to), (3, 7));
                assert_eq!(detail, "peer closed the stream");
            }
            other => panic!("expected Transport, got {other:?}"),
        }
        assert!(err.to_string().contains("transport failure"));
        assert!(err.source().is_some(), "transport keeps its source chain");
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_error<E: Error>(_: &E) {}
        assert_error(&RunError::rejected("x", DemoRejection("y")));
    }
}

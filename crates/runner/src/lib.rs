//! One front door for every coloring pipeline in the workspace.
//!
//! The repo ships five pipelines from the PODC 2020 paper and its
//! successors — CONGEST `(Δ+1)` (Theorem 1.1), decomposition polylog
//! (Corollary 1.2), CONGESTED CLIQUE (Theorem 1.3), MPC (Theorems 1.4/1.5)
//! and the Δ-coloring scenario (Halldórsson–Maus 2024) — which historically
//! each had a differently-shaped entry point. This crate unifies them
//! behind three types:
//!
//! - [`Scenario`] — `run(&self, &Graph, &ExecConfig) -> Result<Report,
//!   RunError>` plus [`Scenario::name`]/[`Scenario::model`] metadata. The
//!   pipelines implement it in their home crates as thin adapters over the
//!   existing public entry points (which stay public); the facade gathers
//!   them under `distributed_coloring::scenarios`.
//! - [`Report`] — the unified result: colors, [`dcl_sim::SimMetrics`], and
//!   a palette-size/proper-ness summary with scenario-specific counters in
//!   [`Report::extras`].
//! - [`RunError`] — every failure as one `std::error::Error` enum that
//!   wraps the per-crate error types losslessly ([`dcl_graphs::GraphError`],
//!   [`dcl_par::JobPanic`], scenario rejections such as
//!   `dcl_delta::DeltaError` recoverable via [`RunError::rejection`], and —
//!   through [`run_protected`] — the simulators' budget assertions).
//!
//! The [`wire`] module adds wire-serializable forms of both result types
//! ([`WireReport`], [`WireRunError`]) so the service tier can ship them over
//! sockets with the shared [`dcl_sim::Wire`] codec.
//!
//! On top sits the declarative sweep harness: [`Runner`] drives one
//! scenario over a [`GraphSpec`] × [`CapSpec`] × [`dcl_par::Backend`] grid
//! (the loops the experiment bins used to hand-roll) and returns a
//! [`Sweep`] of per-cell reports; [`Table`]/[`baseline_json`] turn sweeps
//! into the committed machine-profile baselines (`BENCH_experiments.json`).
//!
//! Adding a scenario is one trait impl plus one registration — the worked
//! example lives in `DESIGN.md` §2.3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod scenario;
pub mod sweep;
pub mod table;
pub mod wire;

pub use dcl_sim::{TransportError, TransportSpec};
pub use error::{run_protected, RunError};
pub use scenario::{Model, Report, Scenario};
pub use sweep::{CapSpec, Cell, GraphSpec, Runner, Sweep};
pub use table::{baseline_json, MachineProfile, Table};
pub use wire::{RunErrorKind, WireReport, WireRunError};

//! Wire-serializable forms of [`Report`] and [`RunError`].
//!
//! The service tier (`dcl_service`) ships run results over sockets, which
//! needs both types as plain data. [`Report`] is almost that already — only
//! its `&'static str` extras keys need owning — but [`RunError`] wraps live
//! trait objects ([`std::error::Error`] sources, panic payload renderings)
//! that cannot cross a byte stream losslessly. The wire forms here keep
//! exactly what a remote caller can act on: every field of the report
//! bit-for-bit ([`WireReport::matches`] pins that), and for errors the
//! variant kind plus the full `Display` rendering (which already embeds the
//! source chain's messages).

use crate::error::RunError;
use crate::scenario::{Model, Report};
use dcl_sim::{SimMetrics, Wire};
use std::fmt;

/// [`Model`] crosses the wire as a one-byte tag in declaration order.
impl Wire for Model {
    fn wire_bits(&self) -> u32 {
        8
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            Model::Congest => 0,
            Model::CongestedClique => 1,
            Model::Mpc => 2,
        };
        tag.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(Model::Congest),
            1 => Some(Model::CongestedClique),
            2 => Some(Model::Mpc),
            _ => None,
        }
    }
}

/// A [`Report`] as plain owned data, field for field.
///
/// The only representational difference is the extras keys: `&'static str`
/// in [`Report`] (they come from string literals in the pipelines), owned
/// [`String`]s here. [`WireReport::matches`] compares a wire report against
/// a locally produced [`Report`] across every field — the service
/// determinism suite uses it to pin "served result ≡ direct run".
#[derive(Debug, Clone, PartialEq)]
pub struct WireReport {
    /// [`Report::scenario`].
    pub scenario: String,
    /// [`Report::model`].
    pub model: Model,
    /// [`Report::colors`].
    pub colors: Vec<u64>,
    /// [`Report::palette`].
    pub palette: u64,
    /// [`Report::colors_used`].
    pub colors_used: usize,
    /// [`Report::proper`].
    pub proper: bool,
    /// [`Report::metrics`].
    pub metrics: SimMetrics,
    /// [`Report::extras`], with owned keys.
    pub extras: Vec<(String, u64)>,
}

impl From<&Report> for WireReport {
    fn from(report: &Report) -> Self {
        WireReport {
            scenario: report.scenario.clone(),
            model: report.model,
            colors: report.colors.clone(),
            palette: report.palette,
            colors_used: report.colors_used,
            proper: report.proper,
            metrics: report.metrics,
            extras: report
                .extras
                .iter()
                .map(|&(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

impl WireReport {
    /// Whether this wire report equals `report` in every field (extras
    /// compared as `(key, value)` pairs in order).
    pub fn matches(&self, report: &Report) -> bool {
        self.scenario == report.scenario
            && self.model == report.model
            && self.colors == report.colors
            && self.palette == report.palette
            && self.colors_used == report.colors_used
            && self.proper == report.proper
            && self.metrics == report.metrics
            && self.extras.len() == report.extras.len()
            && self
                .extras
                .iter()
                .zip(report.extras.iter())
                .all(|((wk, wv), &(k, v))| wk == k && *wv == v)
    }
}

impl Wire for WireReport {
    fn wire_bits(&self) -> u32 {
        self.scenario.wire_bits()
            + self.model.wire_bits()
            + self.colors.wire_bits()
            + self.palette.wire_bits()
            + self.colors_used.wire_bits()
            + self.proper.wire_bits()
            + self.metrics.wire_bits()
            + self.extras.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.scenario.wire_encode(out);
        self.model.wire_encode(out);
        self.colors.wire_encode(out);
        self.palette.wire_encode(out);
        self.colors_used.wire_encode(out);
        self.proper.wire_encode(out);
        self.metrics.wire_encode(out);
        self.extras.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some(WireReport {
            scenario: String::wire_decode(buf)?,
            model: Model::wire_decode(buf)?,
            colors: Vec::wire_decode(buf)?,
            palette: u64::wire_decode(buf)?,
            colors_used: usize::wire_decode(buf)?,
            proper: bool::wire_decode(buf)?,
            metrics: SimMetrics::wire_decode(buf)?,
            extras: Vec::wire_decode(buf)?,
        })
    }
}

/// Which [`RunError`] variant a [`WireRunError`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunErrorKind {
    /// [`RunError::Graph`].
    Graph,
    /// [`RunError::Job`].
    Job,
    /// [`RunError::Rejected`].
    Rejected,
    /// [`RunError::Budget`].
    Budget,
    /// [`RunError::Transport`].
    Transport,
    /// [`RunError::Panic`].
    Panic,
}

impl fmt::Display for RunErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RunErrorKind::Graph => "graph",
            RunErrorKind::Job => "job",
            RunErrorKind::Rejected => "rejected",
            RunErrorKind::Budget => "budget",
            RunErrorKind::Transport => "transport",
            RunErrorKind::Panic => "panic",
        };
        write!(f, "{name}")
    }
}

/// [`RunErrorKind`] crosses the wire as a one-byte tag in declaration order.
impl Wire for RunErrorKind {
    fn wire_bits(&self) -> u32 {
        8
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            RunErrorKind::Graph => 0,
            RunErrorKind::Job => 1,
            RunErrorKind::Rejected => 2,
            RunErrorKind::Budget => 3,
            RunErrorKind::Transport => 4,
            RunErrorKind::Panic => 5,
        };
        tag.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(RunErrorKind::Graph),
            1 => Some(RunErrorKind::Job),
            2 => Some(RunErrorKind::Rejected),
            3 => Some(RunErrorKind::Budget),
            4 => Some(RunErrorKind::Transport),
            5 => Some(RunErrorKind::Panic),
            _ => None,
        }
    }
}

/// A [`RunError`] flattened to what survives a byte stream: the variant
/// [`RunErrorKind`] and the full `Display` rendering (which embeds the
/// messages of the wrapped source chain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRunError {
    /// Which variant the original error was.
    pub kind: RunErrorKind,
    /// The original error's `Display` rendering.
    pub message: String,
}

impl From<&RunError> for WireRunError {
    fn from(err: &RunError) -> Self {
        let kind = match err {
            RunError::Graph(_) => RunErrorKind::Graph,
            RunError::Job(_) => RunErrorKind::Job,
            RunError::Rejected { .. } => RunErrorKind::Rejected,
            RunError::Budget { .. } => RunErrorKind::Budget,
            RunError::Transport(_) => RunErrorKind::Transport,
            RunError::Panic { .. } => RunErrorKind::Panic,
        };
        WireRunError {
            kind,
            message: err.to_string(),
        }
    }
}

impl fmt::Display for WireRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "remote run failed ({}): {}", self.kind, self.message)
    }
}

impl std::error::Error for WireRunError {}

impl Wire for WireRunError {
    fn wire_bits(&self) -> u32 {
        self.kind.wire_bits() + self.message.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.kind.wire_encode(out);
        self.message.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some(WireRunError {
            kind: RunErrorKind::wire_decode(buf)?,
            message: String::wire_decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, GraphError};

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        assert!(value.wire_bits() > 0, "every wire form has nonzero width");
        let mut bytes = Vec::new();
        value.wire_encode(&mut bytes);
        let mut view = bytes.as_slice();
        assert_eq!(T::wire_decode(&mut view), Some(value));
        assert!(view.is_empty(), "decode must consume the whole encoding");
    }

    fn demo_report() -> Report {
        let g = generators::ring(4);
        Report::build(
            "demo",
            Model::CongestedClique,
            &g,
            3,
            vec![0, 1, 0, 2],
            SimMetrics {
                rounds: 5,
                messages: 40,
                bits: 1200,
                max_message_bits: 96,
            },
        )
        .with_extra("iterations", 7)
        .with_extra("flips", 0)
    }

    #[test]
    fn model_and_kind_tags_roundtrip_and_reject_unknown() {
        for model in [Model::Congest, Model::CongestedClique, Model::Mpc] {
            roundtrip(model);
        }
        for kind in [
            RunErrorKind::Graph,
            RunErrorKind::Job,
            RunErrorKind::Rejected,
            RunErrorKind::Budget,
            RunErrorKind::Transport,
            RunErrorKind::Panic,
        ] {
            roundtrip(kind);
        }
        assert_eq!(Model::wire_decode(&mut [9u8].as_slice()), None);
        assert_eq!(RunErrorKind::wire_decode(&mut [9u8].as_slice()), None);
    }

    #[test]
    fn wire_report_roundtrips_and_matches_its_source() {
        let report = demo_report();
        let wire = WireReport::from(&report);
        assert!(wire.matches(&report));
        roundtrip(wire.clone());

        // Any field drift breaks the match.
        let mut other = report.clone();
        other.extras[0].1 += 1;
        assert!(!wire.matches(&other));
        let mut other = report.clone();
        other.colors[2] ^= 1;
        assert!(!wire.matches(&other));
    }

    #[test]
    fn wire_run_error_keeps_kind_and_rendering() {
        let err = RunError::Graph(GraphError::SelfLoop(3));
        let wire = WireRunError::from(&err);
        assert_eq!(wire.kind, RunErrorKind::Graph);
        assert_eq!(wire.message, err.to_string());
        assert!(wire.to_string().contains("remote run failed (graph)"));
        roundtrip(wire);

        let budget = RunError::Budget {
            model: Model::Mpc,
            message: "machine 0 exceeded its send budget".to_string(),
        };
        let wire = WireRunError::from(&budget);
        assert_eq!(wire.kind, RunErrorKind::Budget);
        roundtrip(wire);
    }

    #[test]
    fn truncated_encodings_decode_to_none_not_panics() {
        let wire = WireReport::from(&demo_report());
        let mut bytes = Vec::new();
        wire.wire_encode(&mut bytes);
        for cut in 0..bytes.len() {
            assert_eq!(WireReport::wire_decode(&mut &bytes[..cut]), None);
        }
    }
}

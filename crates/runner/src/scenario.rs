//! The [`Scenario`] trait and the unified [`Report`] every pipeline returns.

use crate::error::RunError;
use dcl_graphs::{validation, Graph};
use dcl_sim::{ExecConfig, SimMetrics};
use std::fmt;

/// The communication model a [`Scenario`] is simulated in.
///
/// Marked `#[non_exhaustive]`: new models (the ROADMAP's "as many scenarios
/// as you can imagine") must not be semver breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Model {
    /// CONGEST: messages travel along graph edges under a bandwidth cap.
    Congest,
    /// CONGESTED CLIQUE: all-to-all links, one capped message per pair and
    /// round.
    CongestedClique,
    /// Massively Parallel Computation: `M` machines with `S`-word memories;
    /// the word budget plays the bandwidth role.
    Mpc,
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::Congest => write!(f, "CONGEST"),
            Model::CongestedClique => write!(f, "CONGESTED CLIQUE"),
            Model::Mpc => write!(f, "MPC"),
        }
    }
}

/// A coloring pipeline that can be driven by the [`crate::Runner`].
///
/// Implementations live in the pipelines' home crates as thin adapters over
/// the existing public entry points (`color_list_instance`,
/// `color_via_decomposition`, `clique_color`, `mpc_color_*_with`,
/// `delta_color`), so "add a scenario" is one `impl` plus one registration —
/// see `DESIGN.md` §2.3 for the worked example.
pub trait Scenario {
    /// Short stable identifier (`"congest"`, `"clique"`, `"delta"`, …) used
    /// in reports, sweep output and error messages.
    fn name(&self) -> &str;

    /// The communication model this scenario is metered in.
    fn model(&self) -> Model;

    /// Runs the pipeline on `graph` under `exec` (backend + bandwidth cap)
    /// and returns the unified [`Report`].
    ///
    /// # Errors
    ///
    /// [`RunError`] when the scenario rejects the input (e.g. a Brooks
    /// obstruction in the Δ-coloring scenario) or a wrapped per-crate error
    /// surfaces. Internal progress bugs and model violations keep panicking
    /// (the intentional-panic contract of `DESIGN.md` §2.3); use
    /// [`crate::run_protected`] to convert those into [`RunError`] values
    /// too.
    fn run(&self, graph: &Graph, exec: &ExecConfig) -> Result<Report, RunError>;
}

/// The unified result of one [`Scenario`] run: the coloring, the simulator
/// cost, and a palette-size / proper-ness summary that means the same thing
/// in every model.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// [`Scenario::name`] of the producing scenario.
    pub scenario: String,
    /// [`Scenario::model`] of the producing scenario.
    pub model: Model,
    /// The computed coloring, one color per node.
    pub colors: Vec<u64>,
    /// The palette size the scenario promises (`Δ+1` for the paper's list
    /// colorings, `Δ` for the Brooks-bound scenario, 2 on its bipartite
    /// path). Colors are valid iff `< palette`.
    pub palette: u64,
    /// Number of distinct colors actually used.
    pub colors_used: usize,
    /// Whether the coloring is proper (no monochromatic edge).
    pub proper: bool,
    /// Unified simulator cost counters. For MPC scenarios the `bits` field
    /// counts machine *words* (the model's accounting unit — see
    /// `dcl_mpc::MpcMetrics`).
    pub metrics: SimMetrics,
    /// Scenario-specific counters in a stable order (iterations, collected
    /// nodes, Kempe flips, machine counts, …), for experiment tables.
    pub extras: Vec<(&'static str, u64)>,
}

impl Report {
    /// Builds a report from a finished run, computing the proper-ness and
    /// palette summary against `graph`.
    pub fn build(
        scenario: &str,
        model: Model,
        graph: &Graph,
        palette: u64,
        colors: Vec<u64>,
        metrics: SimMetrics,
    ) -> Self {
        let proper = validation::check_proper(graph, &colors).is_none();
        let colors_used = validation::count_colors(&colors);
        Report {
            scenario: scenario.to_string(),
            model,
            colors,
            palette,
            colors_used,
            proper,
            metrics,
            extras: Vec::new(),
        }
    }

    /// Appends a scenario-specific counter (builder style).
    #[must_use]
    pub fn with_extra(mut self, key: &'static str, value: u64) -> Self {
        self.extras.push((key, value));
        self
    }

    /// Looks up a scenario-specific counter by key.
    pub fn extra(&self, key: &str) -> Option<u64> {
        self.extras.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
    }

    /// Whether every color is inside the promised palette (`< palette`).
    pub fn within_palette(&self) -> bool {
        self.colors.iter().all(|&c| c < self.palette)
    }

    /// Whether the coloring is both proper and inside the palette — the
    /// "valid" column of the experiment tables.
    pub fn valid(&self) -> bool {
        self.proper && self.within_palette()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn report_summarizes_properness_and_palette() {
        let g = generators::ring(4);
        let report = Report::build(
            "demo",
            Model::Congest,
            &g,
            2,
            vec![0, 1, 0, 1],
            SimMetrics::default(),
        )
        .with_extra("iterations", 3);
        assert!(report.proper);
        assert!(report.within_palette());
        assert!(report.valid());
        assert_eq!(report.colors_used, 2);
        assert_eq!(report.extra("iterations"), Some(3));
        assert_eq!(report.extra("missing"), None);
    }

    #[test]
    fn report_flags_improper_and_overflowing_colorings() {
        let g = generators::ring(4);
        let bad = Report::build(
            "demo",
            Model::Congest,
            &g,
            2,
            vec![0, 0, 1, 2],
            SimMetrics::default(),
        );
        assert!(!bad.proper);
        assert!(!bad.within_palette(), "color 2 overflows palette 2");
        assert!(!bad.valid());
    }

    #[test]
    fn model_displays_the_paper_names() {
        assert_eq!(Model::Congest.to_string(), "CONGEST");
        assert_eq!(Model::CongestedClique.to_string(), "CONGESTED CLIQUE");
        assert_eq!(Model::Mpc.to_string(), "MPC");
    }
}

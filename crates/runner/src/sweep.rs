//! The declarative sweep harness: a [`Runner`] drives one [`Scenario`] over
//! a graph-family × bandwidth-cap × backend grid and collects per-cell
//! [`Report`]s.
//!
//! This owns the loops the experiment bins used to hand-roll: pick graphs
//! with the [`GraphSpec`] constructors (labels match the experiment-table
//! conventions), caps with [`CapSpec`] (absolute bits or multiples of
//! `⌈log₂ n⌉`, the paper's sweep axis), backends with
//! [`dcl_par::Backend`], transport tiers with [`TransportSpec`], and read
//! the grid back from [`Sweep`].

use crate::error::{run_protected, RunError};
use crate::scenario::{Report, Scenario};
use dcl_graphs::{generators, Graph};
use dcl_par::Backend;
use dcl_sim::{BandwidthCap, ExecConfig, TransportSpec};
use std::fmt;

/// A labelled input graph of a sweep. The constructors mirror
/// [`dcl_graphs::generators`] and produce the label strings the committed
/// experiment tables use (`"regular(96,6)"`, `"gnp(64,0.1)"`, …).
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Display label of the family instance.
    pub label: String,
    /// The graph itself.
    pub graph: Graph,
}

impl GraphSpec {
    /// An arbitrary graph under an explicit label.
    pub fn new(label: impl Into<String>, graph: Graph) -> Self {
        GraphSpec {
            label: label.into(),
            graph,
        }
    }

    /// `G(n, p)` with a fixed seed — label `gnp(n,p)`.
    pub fn gnp(n: usize, p: f64, seed: u64) -> Self {
        GraphSpec::new(format!("gnp({n},{p})"), generators::gnp(n, p, seed))
    }

    /// Near-`d`-regular random graph — label `regular(n,d)`.
    pub fn regular(n: usize, d: usize, seed: u64) -> Self {
        GraphSpec::new(
            format!("regular({n},{d})"),
            generators::random_regular(n, d, seed),
        )
    }

    /// Cycle — label `ring(n)`.
    pub fn ring(n: usize) -> Self {
        GraphSpec::new(format!("ring({n})"), generators::ring(n))
    }

    /// Grid — label `grid(rows x cols)`.
    pub fn grid(rows: usize, cols: usize) -> Self {
        GraphSpec::new(format!("grid({rows}x{cols})"), generators::grid(rows, cols))
    }

    /// Hypercube — label `hypercube(d)`.
    pub fn hypercube(d: u32) -> Self {
        GraphSpec::new(format!("hypercube({d})"), generators::hypercube(d))
    }

    /// Star — label `star(n)`.
    pub fn star(n: usize) -> Self {
        GraphSpec::new(format!("star({n})"), generators::star(n))
    }

    /// Union of `d` random perfect matchings — label `expander(n,d)`.
    pub fn expander(n: usize, d: usize, seed: u64) -> Self {
        GraphSpec::new(
            format!("expander({n},{d})"),
            generators::expander(n, d, seed),
        )
    }

    /// Chain of `k` dense clusters of `size` nodes — label `chain(k x size)`.
    pub fn cluster_chain(k: usize, size: usize, p: f64, seed: u64) -> Self {
        GraphSpec::new(
            format!("chain({k}x{size})"),
            generators::cluster_chain(k, size, p, seed),
        )
    }
}

/// One bandwidth-cap point of a sweep, resolved per graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapSpec {
    /// The model's default cap (`ExecConfig { cap: None }`).
    ModelDefault,
    /// An absolute cap in bits.
    Bits(u32),
    /// `mult · ⌈log₂ n⌉` bits — the sweep axis of experiments E12/E13.
    LogN(u32),
}

impl CapSpec {
    /// The cap sweep of the paper's headline experiments:
    /// `{1, 2, 4, 8} · ⌈log₂ n⌉`.
    pub fn log_n_sweep() -> Vec<CapSpec> {
        [1, 2, 4, 8].into_iter().map(CapSpec::LogN).collect()
    }

    /// Resolves the spec against a graph; `None` means the model default.
    pub fn resolve(&self, graph: &Graph) -> Option<BandwidthCap> {
        match *self {
            CapSpec::ModelDefault => None,
            CapSpec::Bits(bits) => Some(BandwidthCap::new(bits)),
            CapSpec::LogN(mult) => {
                let n = graph.n().max(2);
                let log_n = usize::BITS - (n - 1).leading_zeros();
                Some(BandwidthCap::new(mult * log_n))
            }
        }
    }
}

impl fmt::Display for CapSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapSpec::ModelDefault => write!(f, "default"),
            CapSpec::Bits(bits) => write!(f, "{bits}b"),
            CapSpec::LogN(mult) => write!(f, "{mult}x"),
        }
    }
}

/// One cell of a finished sweep grid.
#[derive(Debug)]
pub struct Cell {
    /// Index of the input graph in [`Sweep::graphs`].
    pub graph: usize,
    /// The cap point this cell ran at.
    pub cap: CapSpec,
    /// The resolved cap in bits (`None` = model default).
    pub cap_bits: Option<u32>,
    /// The backend this cell ran on.
    pub backend: Backend,
    /// The transport tier this cell's messages travelled over.
    pub transport: TransportSpec,
    /// The scenario's result.
    pub outcome: Result<Report, RunError>,
}

impl Cell {
    /// The report, panicking with a labelled message on error cells. For
    /// sweeps whose scenarios are total on the chosen inputs (all the
    /// experiment tables), this is the one-liner accessor.
    pub fn report(&self) -> &Report {
        match &self.outcome {
            Ok(report) => report,
            Err(e) => panic!(
                "sweep cell (graph {}, cap {}) failed: {e}",
                self.graph, self.cap
            ),
        }
    }
}

/// The result grid of [`Runner::run`]: every (graph, cap, backend,
/// transport) cell in deterministic order — graphs outermost, then caps,
/// then backends, then transports.
#[derive(Debug)]
pub struct Sweep {
    /// [`Scenario::name`] of the swept scenario.
    pub scenario: String,
    /// The input graphs, in insertion order.
    pub graphs: Vec<GraphSpec>,
    /// All result cells, in (graph, cap, backend, transport) lexicographic
    /// order.
    pub cells: Vec<Cell>,
}

impl Sweep {
    /// The input graph a cell ran on.
    pub fn graph(&self, cell: &Cell) -> &GraphSpec {
        &self.graphs[cell.graph]
    }

    /// Iterates `(graph spec, cell)` pairs in grid order.
    pub fn iter(&self) -> impl Iterator<Item = (&GraphSpec, &Cell)> {
        self.cells.iter().map(move |c| (self.graph(c), c))
    }
}

/// Builder-style driver for sweeping one [`Scenario`] over graphs × caps ×
/// backends × transports.
///
/// Defaults: no graphs (add at least one), the model-default cap, the
/// sequential backend, the in-memory [`TransportSpec::Local`] tier, panics
/// propagate. The grid runs in deterministic order (graphs outermost,
/// transports innermost); every cell constructs a fresh [`ExecConfig`], so
/// results are bit-identical to calling the underlying entry point directly
/// with the same knobs (property-tested in `tests/runner_equivalence.rs` at
/// the workspace root) and bit-identical across transport tiers
/// (property-tested in `tests/transport_oracle.rs`).
///
/// # Examples
///
/// ```
/// use dcl_runner::{CapSpec, GraphSpec, Model, Report, Runner, RunError, Scenario};
/// use dcl_graphs::Graph;
/// use dcl_sim::{ExecConfig, SimMetrics};
///
/// /// A toy scenario: color everything 0 (proper only on edgeless graphs).
/// struct Constant;
/// impl Scenario for Constant {
///     fn name(&self) -> &str {
///         "constant"
///     }
///     fn model(&self) -> Model {
///         Model::Congest
///     }
///     fn run(&self, g: &Graph, _: &ExecConfig) -> Result<Report, RunError> {
///         let colors = vec![0; g.n()];
///         Ok(Report::build("constant", Model::Congest, g, 1, colors, SimMetrics::default()))
///     }
/// }
///
/// let sweep = Runner::new(&Constant)
///     .graph(GraphSpec::ring(8))
///     .caps(CapSpec::log_n_sweep())
///     .run();
/// assert_eq!(sweep.cells.len(), 4, "one graph x four caps x one backend");
/// assert!(sweep.cells.iter().all(|c| !c.report().proper), "rings reject constant colorings");
/// ```
pub struct Runner<'a> {
    scenario: &'a dyn Scenario,
    graphs: Vec<GraphSpec>,
    caps: Vec<CapSpec>,
    backends: Vec<Backend>,
    transports: Vec<TransportSpec>,
    catch_panics: bool,
}

impl<'a> Runner<'a> {
    /// Starts a sweep of `scenario` with the default single-cell axes.
    pub fn new(scenario: &'a dyn Scenario) -> Self {
        Runner {
            scenario,
            graphs: Vec::new(),
            caps: vec![CapSpec::ModelDefault],
            backends: vec![Backend::Sequential],
            transports: vec![TransportSpec::Local],
            catch_panics: false,
        }
    }

    /// Adds one input graph.
    #[must_use]
    pub fn graph(mut self, spec: GraphSpec) -> Self {
        self.graphs.push(spec);
        self
    }

    /// Adds a batch of input graphs.
    #[must_use]
    pub fn graphs<I: IntoIterator<Item = GraphSpec>>(mut self, specs: I) -> Self {
        self.graphs.extend(specs);
        self
    }

    /// Replaces the cap axis (default: the model default only).
    #[must_use]
    pub fn caps<I: IntoIterator<Item = CapSpec>>(mut self, caps: I) -> Self {
        self.caps = caps.into_iter().collect();
        assert!(!self.caps.is_empty(), "cap axis must be non-empty");
        self
    }

    /// Replaces the backend axis (default: sequential only).
    #[must_use]
    pub fn backends<I: IntoIterator<Item = Backend>>(mut self, backends: I) -> Self {
        self.backends = backends.into_iter().collect();
        assert!(!self.backends.is_empty(), "backend axis must be non-empty");
        self
    }

    /// Replaces the transport axis (default: the in-memory local tier
    /// only). Every tier must produce bit-identical reports; sweeping the
    /// axis is how `tests/transport_oracle.rs` proves it.
    #[must_use]
    pub fn transports<I: IntoIterator<Item = TransportSpec>>(mut self, transports: I) -> Self {
        self.transports = transports.into_iter().collect();
        assert!(
            !self.transports.is_empty(),
            "transport axis must be non-empty"
        );
        self
    }

    /// Converts panics (budget violations, progress-bug safety nets) into
    /// [`RunError`] cells via [`run_protected`] instead of unwinding.
    #[must_use]
    pub fn catch_panics(mut self, yes: bool) -> Self {
        self.catch_panics = yes;
        self
    }

    /// Runs the full grid and returns the per-cell reports.
    ///
    /// # Panics
    ///
    /// Panics if no graph was added — like the cap/backend axes, an empty
    /// axis is a builder mistake caught at the source rather than a silent
    /// empty sweep.
    pub fn run(self) -> Sweep {
        assert!(
            !self.graphs.is_empty(),
            "sweep has no input graphs — add at least one with .graph()/.graphs()"
        );
        let mut cells = Vec::with_capacity(
            self.graphs.len() * self.caps.len() * self.backends.len() * self.transports.len(),
        );
        for (graph_index, spec) in self.graphs.iter().enumerate() {
            for &cap in &self.caps {
                let resolved = cap.resolve(&spec.graph);
                for &backend in &self.backends {
                    for &transport in &self.transports {
                        let mut exec = ExecConfig::default()
                            .with_backend(backend)
                            .with_transport(transport);
                        if let Some(c) = resolved {
                            exec = exec.with_cap(c);
                        }
                        let outcome = if self.catch_panics {
                            run_protected(self.scenario, &spec.graph, &exec)
                        } else {
                            self.scenario.run(&spec.graph, &exec)
                        };
                        cells.push(Cell {
                            graph: graph_index,
                            cap,
                            cap_bits: resolved.map(|c| c.bits()),
                            backend,
                            transport,
                            outcome,
                        });
                    }
                }
            }
        }
        Sweep {
            scenario: self.scenario.name().to_string(),
            graphs: self.graphs,
            cells,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;
    use dcl_sim::SimMetrics;

    /// Greedy sequential coloring as a stand-in scenario: enough structure
    /// to test the grid mechanics without depending on the pipeline crates.
    struct Greedy;

    impl Scenario for Greedy {
        fn name(&self) -> &str {
            "greedy-test"
        }
        fn model(&self) -> Model {
            Model::Congest
        }
        fn run(&self, g: &Graph, exec: &ExecConfig) -> Result<Report, RunError> {
            let mut colors = vec![0u64; g.n()];
            for v in 0..g.n() {
                let used: Vec<u64> = g
                    .neighbors(v)
                    .iter()
                    .filter(|&&u| u < v)
                    .map(|&u| colors[u])
                    .collect();
                colors[v] = (0..).find(|c| !used.contains(c)).unwrap();
            }
            let palette = g.max_degree() as u64 + 1;
            let metrics = SimMetrics {
                rounds: exec.cap.map_or(1, |c| u64::from(c.bits())),
                ..Default::default()
            };
            Ok(Report::build(
                self.name(),
                self.model(),
                g,
                palette,
                colors,
                metrics,
            ))
        }
    }

    #[test]
    fn grid_order_is_graphs_then_caps_then_backends_then_transports() {
        let sweep = Runner::new(&Greedy)
            .graphs([GraphSpec::ring(8), GraphSpec::ring(16)])
            .caps([CapSpec::Bits(8), CapSpec::Bits(16)])
            .backends([Backend::Sequential, Backend::Parallel(2)])
            .run();
        assert_eq!(sweep.cells.len(), 8);
        let order: Vec<(usize, Option<u32>, bool)> = sweep
            .cells
            .iter()
            .map(|c| (c.graph, c.cap_bits, c.backend.is_parallel()))
            .collect();
        assert_eq!(
            order,
            vec![
                (0, Some(8), false),
                (0, Some(8), true),
                (0, Some(16), false),
                (0, Some(16), true),
                (1, Some(8), false),
                (1, Some(8), true),
                (1, Some(16), false),
                (1, Some(16), true),
            ]
        );
        assert!(
            sweep
                .cells
                .iter()
                .all(|c| c.transport == TransportSpec::Local),
            "the default transport axis is the local tier only"
        );
    }

    #[test]
    fn transport_axis_is_innermost() {
        let sweep = Runner::new(&Greedy)
            .graph(GraphSpec::ring(8))
            .caps([CapSpec::Bits(8), CapSpec::Bits(16)])
            .transports([TransportSpec::Local, TransportSpec::Channel])
            .run();
        let order: Vec<(Option<u32>, TransportSpec)> = sweep
            .cells
            .iter()
            .map(|c| (c.cap_bits, c.transport))
            .collect();
        assert_eq!(
            order,
            vec![
                (Some(8), TransportSpec::Local),
                (Some(8), TransportSpec::Channel),
                (Some(16), TransportSpec::Local),
                (Some(16), TransportSpec::Channel),
            ]
        );
    }

    #[test]
    fn cap_specs_resolve_against_each_graph() {
        let g96 = generators::ring(96);
        let g8 = generators::ring(8);
        assert_eq!(CapSpec::ModelDefault.resolve(&g96), None);
        assert_eq!(CapSpec::Bits(13).resolve(&g96).unwrap().bits(), 13);
        assert_eq!(
            CapSpec::LogN(2).resolve(&g96).unwrap().bits(),
            14,
            "⌈log₂ 96⌉ = 7"
        );
        assert_eq!(CapSpec::LogN(1).resolve(&g8).unwrap().bits(), 3);
        assert_eq!(
            CapSpec::log_n_sweep(),
            vec![
                CapSpec::LogN(1),
                CapSpec::LogN(2),
                CapSpec::LogN(4),
                CapSpec::LogN(8)
            ]
        );
        assert_eq!(CapSpec::LogN(4).to_string(), "4x");
        assert_eq!(CapSpec::ModelDefault.to_string(), "default");
        assert_eq!(CapSpec::Bits(64).to_string(), "64b");
    }

    #[test]
    fn graph_spec_labels_match_the_table_conventions() {
        assert_eq!(GraphSpec::gnp(64, 0.1, 1).label, "gnp(64,0.1)");
        assert_eq!(GraphSpec::gnp(96, 0.08, 3).label, "gnp(96,0.08)");
        assert_eq!(GraphSpec::regular(96, 6, 5).label, "regular(96,6)");
        assert_eq!(GraphSpec::grid(8, 16).label, "grid(8x16)");
        assert_eq!(GraphSpec::cluster_chain(12, 8, 0.5, 2).label, "chain(12x8)");
        assert_eq!(GraphSpec::expander(64, 4, 1).label, "expander(64,4)");
        assert_eq!(GraphSpec::hypercube(7).label, "hypercube(7)");
        assert_eq!(GraphSpec::ring(128).label, "ring(128)");
        assert_eq!(GraphSpec::star(21).label, "star(21)");
    }

    #[test]
    #[should_panic(expected = "no input graphs")]
    fn running_without_graphs_fails_fast() {
        let _ = Runner::new(&Greedy).run();
    }

    #[test]
    fn sweep_exposes_graphs_and_reports() {
        let sweep = Runner::new(&Greedy).graph(GraphSpec::ring(9)).run();
        assert_eq!(sweep.scenario, "greedy-test");
        let (spec, cell) = sweep.iter().next().unwrap();
        assert_eq!(spec.label, "ring(9)");
        let report = cell.report();
        assert!(report.proper);
        assert!(report.within_palette());
        assert_eq!(report.colors_used, 3, "odd ring needs 3 colors");
    }
}

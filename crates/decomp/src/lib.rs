//! Network decomposition with congestion (Section 3) and the `poly log n`
//! CONGEST coloring of Corollary 1.2.
//!
//! - [`decomposition`] — Definition 3.1: an `(α, β)`-network decomposition
//!   with congestion `κ` (clusters, associated Steiner trees, colors), plus
//!   an exact validator used by tests and the experiment harness;
//! - [`rg`] — a deterministic Rozhoň–Ghaffari-style clustering: `O(log n)`
//!   outer iterations, each running one bit-competition pass that clusters at
//!   least half of the remaining vertices into non-adjacent clusters of weak
//!   diameter `O(log³ n)` with per-edge tree congestion `O(log n)`
//!   (Theorem 3.1 flavor; see `DESIGN.md` §2.5 for the cost model);
//! - [`coloring`] — Corollary 1.2: iterate through the decomposition's color
//!   classes and run the Theorem 1.1 machinery on all clusters of one color
//!   in parallel, aggregating over the cluster trees.
//!
//! # Examples
//!
//! ```
//! use dcl_graphs::generators;
//! use dcl_decomp::rg::{decompose, RgConfig};
//!
//! let g = generators::gnp(40, 0.1, 3);
//! let mut net = dcl_congest::network::Network::with_default_cap(&g, 64);
//! let decomposition = decompose(&mut net, &RgConfig::default());
//! let stats = decomposition.validate(&g).unwrap();
//! assert!(stats.colors >= 1);
//! ```

#![forbid(unsafe_code)]
// Node ids double as indices into per-node state vectors throughout the
// simulators; indexed loops over `0..n` are the clearest expression of
// "for every node" here.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

pub mod coloring;
pub mod decomposition;
pub mod rg;
pub mod scenario;

pub use decomposition::{Cluster, DecompStats, NetworkDecomposition};
pub use scenario::DecompScenario;

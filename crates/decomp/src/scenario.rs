//! The Corollary 1.2 pipeline as a [`dcl_runner::Scenario`].
//!
//! Thin adapter over [`color_via_decomposition`] (which stays public). The
//! report's extras carry the decomposition quality stats (`α`, `β`, `κ`)
//! and the decomposition/coloring round split the E5 experiment tabulates.
//!
//! The full `ExecConfig` is honored, transport tier included: the same
//! cell re-run on `TransportSpec::Channel` or `TransportSpec::Tcp` ships
//! its rounds through real byte streams and still produces a bit-identical
//! `Report` (pinned by `tests/transport_oracle.rs` at the workspace root).

use crate::coloring::{color_via_decomposition, DecompColoringConfig};
use dcl_coloring::instance::ListInstance;
use dcl_graphs::Graph;
use dcl_runner::{Model, Report, RunError, Scenario};
use dcl_sim::ExecConfig;

/// The decomposition-based `poly log n` CONGEST coloring of Corollary 1.2
/// as a runnable scenario (name `"decomp"`).
///
/// # Examples
///
/// ```
/// use dcl_decomp::scenario::DecompScenario;
/// use dcl_graphs::generators;
/// use dcl_runner::Scenario;
/// use dcl_sim::ExecConfig;
///
/// let g = generators::cluster_chain(5, 6, 0.5, 4);
/// let report = DecompScenario::default()
///     .run(&g, &ExecConfig::default())
///     .unwrap();
/// assert!(report.valid());
/// assert!(report.extra("alpha").unwrap() >= 1, "at least one color class");
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct DecompScenario {
    /// Driver knobs; the runner's `ExecConfig` replaces `config.exec` per
    /// cell.
    pub config: DecompColoringConfig,
}

impl DecompScenario {
    /// A scenario with explicit driver knobs.
    pub fn with_config(config: DecompColoringConfig) -> Self {
        DecompScenario { config }
    }
}

impl Scenario for DecompScenario {
    fn name(&self) -> &str {
        "decomp"
    }

    fn model(&self) -> Model {
        Model::Congest
    }

    fn run(&self, graph: &Graph, exec: &ExecConfig) -> Result<Report, RunError> {
        let instance = ListInstance::degree_plus_one(graph.clone());
        let result = color_via_decomposition(&instance, &self.config.with_exec(*exec));
        let stats = result
            .decomposition
            .validate(graph)
            .expect("driver-built decompositions are valid by construction");
        let palette = graph.max_degree() as u64 + 1;
        Ok(Report::build(
            self.name(),
            self.model(),
            graph,
            palette,
            result.colors,
            result.metrics,
        )
        .with_extra("decomposition_rounds", result.decomposition_rounds)
        .with_extra("coloring_rounds", result.coloring_rounds)
        .with_extra("alpha", stats.colors as u64)
        .with_extra("beta", u64::from(stats.max_tree_diameter))
        .with_extra("kappa", u64::from(stats.congestion)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    #[test]
    fn scenario_matches_the_direct_entry_point() {
        let g = generators::gnp(40, 0.1, 3);
        let report = DecompScenario::default()
            .run(&g, &ExecConfig::default())
            .unwrap();
        let direct = color_via_decomposition(
            &ListInstance::degree_plus_one(g.clone()),
            &DecompColoringConfig::default(),
        );
        assert_eq!(report.colors, direct.colors);
        assert_eq!(report.metrics, direct.metrics);
        assert_eq!(
            report.extra("decomposition_rounds"),
            Some(direct.decomposition_rounds)
        );
        assert_eq!(
            report.extra("coloring_rounds"),
            Some(direct.coloring_rounds)
        );
        assert!(report.valid());
    }

    #[test]
    fn scenario_metadata_is_stable() {
        let s = DecompScenario::default();
        assert_eq!(s.name(), "decomp");
        assert_eq!(s.model(), Model::Congest);
    }
}

//! Definition 3.1: `(α, β)`-network decomposition with congestion `κ`.
//!
//! A decomposition partitions `V` into clusters `C₁, …, C_p` with associated
//! subtrees `T₁, …, T_p` of `G` and a color `γ_i ∈ {1, …, α}` per cluster
//! such that
//!
//! 1. `T_i` contains all nodes of `C_i` (and possibly Steiner nodes);
//! 2. each `T_i` has diameter at most `β`;
//! 3. adjacent clusters receive different colors;
//! 4. each edge of `G` lies in at most `κ` trees of the same color.
//!
//! [`NetworkDecomposition::validate`] checks all four properties exactly and
//! reports the achieved `(α, β, κ)`.

use dcl_graphs::{Graph, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// A cluster with its associated Steiner tree.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Decomposition color (0-based).
    pub color: usize,
    /// The cluster's member nodes.
    pub members: Vec<NodeId>,
    /// Root of the associated tree.
    pub root: NodeId,
    /// Parent links of the tree: `parent[&v] = u` means the tree edge
    /// `{v, u}`; every tree node except the root has an entry. Tree nodes
    /// may include non-members (Steiner nodes).
    pub parent: BTreeMap<NodeId, NodeId>,
    /// Depth of each tree node (root = 0).
    pub depth: BTreeMap<NodeId, u32>,
}

impl Cluster {
    /// All tree nodes (root, members and Steiner nodes).
    pub fn tree_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.depth.keys().copied().collect();
        nodes.sort_unstable();
        nodes
    }

    /// Height of the tree (max depth).
    pub fn tree_height(&self) -> u32 {
        self.depth.values().copied().max().unwrap_or(0)
    }

    /// Tree edges as `(child, parent)` pairs.
    pub fn tree_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.parent.iter().map(|(&c, &p)| (c, p))
    }
}

/// A complete network decomposition.
#[derive(Debug, Clone)]
pub struct NetworkDecomposition {
    /// All clusters.
    pub clusters: Vec<Cluster>,
    /// Cluster index of every node (the clusters partition `V`).
    pub cluster_of: Vec<usize>,
    /// Number of colors `α` used.
    pub colors: usize,
}

/// Achieved decomposition parameters, reported by
/// [`NetworkDecomposition::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompStats {
    /// Number of colors (`α`).
    pub colors: usize,
    /// Number of clusters.
    pub clusters: usize,
    /// Maximum tree diameter (`β`), measured exactly on the trees.
    pub max_tree_diameter: u32,
    /// Maximum number of same-color trees sharing one edge (`κ`).
    pub congestion: u32,
    /// Largest cluster size.
    pub max_cluster_size: usize,
}

/// A violation of Definition 3.1 found by the validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// A node belongs to no cluster or an out-of-range cluster.
    NotPartitioned(NodeId),
    /// A member of a cluster is missing from its tree.
    MemberNotInTree {
        /// Cluster index.
        cluster: usize,
        /// The missing member.
        node: NodeId,
    },
    /// A tree edge is not an edge of `G`.
    TreeEdgeNotInGraph {
        /// Cluster index.
        cluster: usize,
        /// Child endpoint.
        child: NodeId,
        /// Parent endpoint.
        parent: NodeId,
    },
    /// A tree parent chain does not lead to the root (broken tree).
    BrokenTree {
        /// Cluster index.
        cluster: usize,
        /// Node whose chain is broken.
        node: NodeId,
    },
    /// Two adjacent clusters share a color.
    AdjacentSameColor {
        /// First cluster.
        a: usize,
        /// Second cluster.
        b: usize,
    },
    /// A depth label is inconsistent with the parent links.
    BadDepth {
        /// Cluster index.
        cluster: usize,
        /// Node with the bad label.
        node: NodeId,
    },
}

impl fmt::Display for DecompError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecompError::NotPartitioned(v) => write!(f, "node {v} not in any cluster"),
            DecompError::MemberNotInTree { cluster, node } => {
                write!(
                    f,
                    "member {node} of cluster {cluster} missing from its tree"
                )
            }
            DecompError::TreeEdgeNotInGraph {
                cluster,
                child,
                parent,
            } => {
                write!(
                    f,
                    "tree edge {{{child},{parent}}} of cluster {cluster} not in G"
                )
            }
            DecompError::BrokenTree { cluster, node } => {
                write!(f, "tree of cluster {cluster} broken at node {node}")
            }
            DecompError::AdjacentSameColor { a, b } => {
                write!(f, "adjacent clusters {a} and {b} share a color")
            }
            DecompError::BadDepth { cluster, node } => {
                write!(
                    f,
                    "depth label of node {node} in cluster {cluster} inconsistent"
                )
            }
        }
    }
}

impl std::error::Error for DecompError {}

impl NetworkDecomposition {
    /// Validates all Definition 3.1 properties against `g` and reports the
    /// achieved parameters.
    ///
    /// # Errors
    ///
    /// Returns the first [`DecompError`] found.
    pub fn validate(&self, g: &Graph) -> Result<DecompStats, DecompError> {
        let n = g.n();
        // (0) Partition.
        for v in 0..n {
            let c = self.cluster_of.get(v).copied().unwrap_or(usize::MAX);
            if c >= self.clusters.len() || !self.clusters[c].members.contains(&v) {
                return Err(DecompError::NotPartitioned(v));
            }
        }
        // (i) Trees contain their members; parent chains reach the root;
        //     depths consistent; tree edges are G edges.
        for (ci, cluster) in self.clusters.iter().enumerate() {
            if cluster.depth.get(&cluster.root) != Some(&0) {
                return Err(DecompError::BadDepth {
                    cluster: ci,
                    node: cluster.root,
                });
            }
            for &m in &cluster.members {
                if !cluster.depth.contains_key(&m) {
                    return Err(DecompError::MemberNotInTree {
                        cluster: ci,
                        node: m,
                    });
                }
            }
            for (&child, &parent) in &cluster.parent {
                if !g.has_edge(child, parent) {
                    return Err(DecompError::TreeEdgeNotInGraph {
                        cluster: ci,
                        child,
                        parent,
                    });
                }
                match (cluster.depth.get(&child), cluster.depth.get(&parent)) {
                    (Some(&dc), Some(&dp)) if dc == dp + 1 => {}
                    _ => {
                        return Err(DecompError::BadDepth {
                            cluster: ci,
                            node: child,
                        })
                    }
                }
            }
            // Chain check: every tree node reaches the root.
            for &node in cluster.depth.keys() {
                let mut cur = node;
                let mut hops = 0u32;
                while cur != cluster.root {
                    match cluster.parent.get(&cur) {
                        Some(&p) => cur = p,
                        None => return Err(DecompError::BrokenTree { cluster: ci, node }),
                    }
                    hops += 1;
                    if hops > g.n() as u32 {
                        return Err(DecompError::BrokenTree { cluster: ci, node });
                    }
                }
            }
        }
        // (iii) Adjacent clusters have different colors.
        for (u, v) in g.edges() {
            let (cu, cv) = (self.cluster_of[u], self.cluster_of[v]);
            if cu != cv && self.clusters[cu].color == self.clusters[cv].color {
                return Err(DecompError::AdjacentSameColor { a: cu, b: cv });
            }
        }
        // (iv) Congestion: edges per color.
        let mut congestion = 0u32;
        let mut usage: BTreeMap<(usize, NodeId, NodeId), u32> = BTreeMap::new();
        for cluster in &self.clusters {
            for (child, parent) in cluster.tree_edges() {
                let key = (cluster.color, child.min(parent), child.max(parent));
                let e = usage.entry(key).or_insert(0);
                *e += 1;
                congestion = congestion.max(*e);
            }
        }
        // (ii) β: exact tree diameters via BFS on each tree.
        let max_tree_diameter = self.clusters.iter().map(tree_diameter).max().unwrap_or(0);

        Ok(DecompStats {
            colors: self.colors,
            clusters: self.clusters.len(),
            max_tree_diameter,
            congestion,
            max_cluster_size: self
                .clusters
                .iter()
                .map(|c| c.members.len())
                .max()
                .unwrap_or(0),
        })
    }
}

/// Exact diameter of a cluster tree (longest path in tree edges).
fn tree_diameter(cluster: &Cluster) -> u32 {
    // Tree adjacency.
    let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for (&c, &p) in &cluster.parent {
        adj.entry(c).or_default().push(p);
        adj.entry(p).or_default().push(c);
    }
    if adj.is_empty() {
        return 0;
    }
    // Double BFS.
    let far = |start: NodeId| -> (NodeId, u32) {
        let mut dist: BTreeMap<NodeId, u32> = BTreeMap::new();
        dist.insert(start, 0);
        let mut queue = std::collections::VecDeque::from([start]);
        let mut best = (start, 0);
        while let Some(u) = queue.pop_front() {
            let du = dist[&u];
            if du > best.1 {
                best = (u, du);
            }
            if let Some(neighbors) = adj.get(&u) {
                for &w in neighbors {
                    if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(w) {
                        e.insert(du + 1);
                        queue.push_back(w);
                    }
                }
            }
        }
        best
    };
    let (a, _) = far(cluster.root);
    far(a).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;

    /// Hand-built decomposition of a path 0-1-2-3: clusters {0,1} and {2,3}
    /// with colors 0 and 1.
    fn path_decomposition() -> (Graph, NetworkDecomposition) {
        let g = generators::path(4);
        let c0 = Cluster {
            color: 0,
            members: vec![0, 1],
            root: 0,
            parent: BTreeMap::from([(1, 0)]),
            depth: BTreeMap::from([(0, 0), (1, 1)]),
        };
        let c1 = Cluster {
            color: 1,
            members: vec![2, 3],
            root: 2,
            parent: BTreeMap::from([(3, 2)]),
            depth: BTreeMap::from([(2, 0), (3, 1)]),
        };
        let d = NetworkDecomposition {
            clusters: vec![c0, c1],
            cluster_of: vec![0, 0, 1, 1],
            colors: 2,
        };
        (g, d)
    }

    #[test]
    fn valid_decomposition_passes() {
        let (g, d) = path_decomposition();
        let stats = d.validate(&g).unwrap();
        assert_eq!(stats.colors, 2);
        assert_eq!(stats.clusters, 2);
        assert_eq!(stats.max_tree_diameter, 1);
        assert_eq!(stats.congestion, 1);
        assert_eq!(stats.max_cluster_size, 2);
    }

    #[test]
    fn detects_same_color_adjacency() {
        let (g, mut d) = path_decomposition();
        d.clusters[1].color = 0;
        assert_eq!(
            d.validate(&g),
            Err(DecompError::AdjacentSameColor { a: 0, b: 1 })
        );
    }

    #[test]
    fn detects_missing_member() {
        let (g, mut d) = path_decomposition();
        d.clusters[0].depth.remove(&1);
        d.clusters[0].parent.remove(&1);
        assert_eq!(
            d.validate(&g),
            Err(DecompError::MemberNotInTree {
                cluster: 0,
                node: 1
            })
        );
    }

    #[test]
    fn detects_non_graph_tree_edge() {
        let (g, mut d) = path_decomposition();
        d.clusters[0].parent.insert(1, 3); // {1,3} is not an edge
        let err = d.validate(&g).unwrap_err();
        assert!(matches!(err, DecompError::TreeEdgeNotInGraph { .. }));
    }

    #[test]
    fn detects_unpartitioned_node() {
        let (g, mut d) = path_decomposition();
        d.cluster_of[3] = 0; // node 3 claims cluster 0 but is not a member
        assert_eq!(d.validate(&g), Err(DecompError::NotPartitioned(3)));
    }

    #[test]
    fn detects_bad_depth() {
        let (g, mut d) = path_decomposition();
        d.clusters[0].depth.insert(1, 5);
        let err = d.validate(&g).unwrap_err();
        assert!(matches!(err, DecompError::BadDepth { .. }));
    }

    #[test]
    fn steiner_nodes_are_allowed() {
        // Cluster {0, 2} connected through Steiner node 1.
        let g = generators::path(3);
        let c0 = Cluster {
            color: 0,
            members: vec![0, 2],
            root: 0,
            parent: BTreeMap::from([(1, 0), (2, 1)]),
            depth: BTreeMap::from([(0, 0), (1, 1), (2, 2)]),
        };
        let c1 = Cluster {
            color: 1,
            members: vec![1],
            root: 1,
            parent: BTreeMap::new(),
            depth: BTreeMap::from([(1, 0)]),
        };
        let d = NetworkDecomposition {
            clusters: vec![c0, c1],
            cluster_of: vec![0, 1, 0],
            colors: 2,
        };
        let stats = d.validate(&g).unwrap();
        assert_eq!(stats.max_tree_diameter, 2);
    }

    #[test]
    fn congestion_counts_shared_edges_per_color() {
        // Two same-color clusters (non-adjacent members!) both using edge
        // {1,2} in their trees: members {0,…} and {3,…} of a path 0-1-2-3
        // would be adjacent through their trees but clusters are defined by
        // members only. Build: star with center 0; clusters {1}, {2} both
        // rooted at themselves with Steiner paths through 0.
        let g = generators::star(3); // edges {0,1},{0,2}
        let c0 = Cluster {
            color: 0,
            members: vec![1],
            root: 1,
            parent: BTreeMap::from([(0, 1)]),
            depth: BTreeMap::from([(1, 0), (0, 1)]),
        };
        let c1 = Cluster {
            color: 0,
            members: vec![2],
            root: 2,
            parent: BTreeMap::from([(0, 2)]),
            depth: BTreeMap::from([(2, 0), (0, 1)]),
        };
        let c2 = Cluster {
            color: 1,
            members: vec![0],
            root: 0,
            parent: BTreeMap::new(),
            depth: BTreeMap::from([(0, 0)]),
        };
        let d = NetworkDecomposition {
            clusters: vec![c0, c1, c2],
            cluster_of: vec![2, 0, 1],
            colors: 2,
        };
        let stats = d.validate(&g).unwrap();
        // Each tree edge used once; congestion 1.
        assert_eq!(stats.congestion, 1);
    }
}

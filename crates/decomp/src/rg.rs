//! Deterministic network decomposition by bitwise label competition
//! (Rozhoň–Ghaffari style, the algorithm behind the paper's Theorem 3.1).
//!
//! One *run* clusters at least half of the remaining vertices into pairwise
//! non-adjacent clusters; `O(log n)` runs assign every vertex a cluster, and
//! the run index is the decomposition color.
//!
//! ## One run
//!
//! Every remaining vertex starts as a singleton cluster labeled with its
//! `b = ⌈log₂ n⌉`-bit id. Label bits are processed from the most significant
//! to the least significant; in the phase of bit `i`, clusters whose labels
//! agree on all bits above `i` form a *group*, and within each group the
//! clusters with bit `i` = 0 are **blue**, bit `i` = 1 **red**. The phase
//! repeats synchronous steps until no proposals remain:
//!
//! - every living blue vertex adjacent to an in-group red cluster proposes
//!   to the adjacent red cluster with the smallest label (sticky minimum —
//!   red adjacencies only accumulate, so a vertex's target only decreases);
//! - a red cluster `C` receiving `P` proposals **absorbs** them all if
//!   `|P| ≥ |C|/(2b)` (each absorbed vertex hangs below the neighbor it
//!   proposed through, extending `C`'s join-tree by one layer), and
//!   otherwise **stops** for the rest of the phase and the proposers *die*
//!   (they drop out of the run and are retried in the next run); vertices
//!   that left a cluster stay on its join-tree as Steiner relays.
//!
//! A standard argument (see `DESIGN.md` §2.5) shows: deaths per phase are at
//! most `n/(2b)` (each cluster stops at most once, killing fewer than
//! `|C|/(2b)` vertices), so at least half of the run's vertices survive all
//! `b` phases; at quiescence no living blue vertex has a living in-group red
//! neighbor, which makes the final clusters of the run pairwise
//! non-adjacent; and every absorption step extends one tree by one layer, so
//! tree heights stay `O(b · b log n) = O(log³ n)`. Each vertex joins at most
//! one new cluster per phase, so an edge lies on `O(log n)` trees of the
//! run — the congestion `κ`.

use crate::decomposition::{Cluster, NetworkDecomposition};
use dcl_congest::network::Network;
use dcl_graphs::NodeId;
use std::collections::BTreeMap;

/// Configuration of the decomposition construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct RgConfig {
    /// Safety cap on the number of runs (colors); `None` = `4·⌈log₂ n⌉ + 8`.
    pub max_colors: Option<usize>,
}

/// Statistics recorded while building the decomposition.
#[derive(Debug, Clone, Default)]
pub struct RgTrace {
    /// Fraction of remaining vertices clustered per run.
    pub clustered_fraction: Vec<f64>,
    /// Competition steps executed per run.
    pub steps: Vec<u64>,
}

/// Builds an `(α, β)`-network decomposition with congestion `κ` of the
/// communication graph, charging all rounds on `net`.
pub fn decompose(net: &mut Network<'_>, config: &RgConfig) -> NetworkDecomposition {
    let (d, _) = decompose_traced(net, config);
    d
}

/// [`decompose`] with per-run statistics.
pub fn decompose_traced(
    net: &mut Network<'_>,
    config: &RgConfig,
) -> (NetworkDecomposition, RgTrace) {
    let g = net.graph();
    let n = g.n();
    let mut remaining: Vec<bool> = vec![true; n];
    let mut remaining_count = n;
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut cluster_of = vec![usize::MAX; n];
    let mut trace = RgTrace::default();
    let cap = config
        .max_colors
        .unwrap_or_else(|| 4 * (usize::BITS - n.max(2).leading_zeros()) as usize + 8);

    let mut color = 0usize;
    while remaining_count > 0 {
        assert!(
            color < cap,
            "decomposition used more than {cap} colors — progress bug"
        );
        let (run_clusters, steps) = run_once(net, &remaining);
        let mut clustered = 0usize;
        for mut cluster in run_clusters {
            cluster.color = color;
            let idx = clusters.len();
            for &m in &cluster.members {
                cluster_of[m] = idx;
                remaining[m] = false;
                clustered += 1;
            }
            clusters.push(cluster);
        }
        assert!(clustered > 0, "run clustered nothing — progress bug");
        trace
            .clustered_fraction
            .push(clustered as f64 / remaining_count as f64);
        trace.steps.push(steps);
        remaining_count -= clustered;
        color += 1;
    }
    (
        NetworkDecomposition {
            clusters,
            cluster_of,
            colors: color,
        },
        trace,
    )
}

/// Internal per-run cluster state.
struct RunCluster {
    label: u64,
    root: NodeId,
    members: Vec<NodeId>,
    parent: BTreeMap<NodeId, NodeId>,
    depth: BTreeMap<NodeId, u32>,
    stopped: bool,
}

/// One clustering run over the `participants`. Returns the non-empty final
/// clusters (colors filled in by the caller) and the number of steps.
fn run_once(net: &mut Network<'_>, participants: &[bool]) -> (Vec<Cluster>, u64) {
    let g = net.graph();
    let n = g.n();
    let b = (usize::BITS - n.max(2).leading_zeros()).max(1);

    let mut alive: Vec<bool> = participants.to_vec();
    let mut cluster_idx: Vec<usize> = vec![usize::MAX; n];
    let mut run_clusters: Vec<RunCluster> = Vec::new();
    for v in 0..n {
        if participants[v] {
            cluster_idx[v] = run_clusters.len();
            run_clusters.push(RunCluster {
                label: v as u64,
                root: v,
                members: vec![v],
                parent: BTreeMap::new(),
                depth: BTreeMap::from([(v, 0)]),
                stopped: false,
            });
        }
    }

    // Per-edge usage count for the run (κ accounting for round charges).
    let mut edge_usage: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
    let mut kappa = 1u32;
    let mut total_steps = 0u64;

    // One initial round: neighbors learn each other's (alive, label).
    net.charge_rounds(1);

    for bit in (0..b).rev() {
        for c in &mut run_clusters {
            c.stopped = false;
        }
        loop {
            // Collect proposals: blue vertex → (target cluster, via
            // neighbor). Sticky minimum target by label.
            let mut proposals: BTreeMap<usize, Vec<(NodeId, NodeId)>> = BTreeMap::new();
            let mut any = false;
            for v in 0..n {
                if !alive[v] {
                    continue;
                }
                let cv = cluster_idx[v];
                let lv = run_clusters[cv].label;
                if lv >> bit & 1 != 0 {
                    continue; // red vertices do not propose
                }
                let group = lv >> (bit + 1);
                let mut best: Option<(u64, usize, NodeId)> = None;
                for &u in g.neighbors(v) {
                    if !alive[u] {
                        continue;
                    }
                    let cu = cluster_idx[u];
                    if cu == cv {
                        continue;
                    }
                    let lu = run_clusters[cu].label;
                    if lu >> bit & 1 != 1 || lu >> (bit + 1) != group {
                        continue;
                    }
                    let cand = (lu, cu, u);
                    if best.is_none_or(|(bl, _, bu)| (lu, u) < (bl, bu)) {
                        best = Some(cand);
                    }
                }
                if let Some((_, cu, u)) = best {
                    proposals.entry(cu).or_default().push((v, u));
                    any = true;
                }
            }
            if !any {
                break;
            }
            total_steps += 1;

            // Round charge for this step: one proposal exchange, one label
            // refresh, and a converge-cast + broadcast over the involved
            // cluster trees (pipelined across same-color trees ⇒ multiplied
            // by the current congestion).
            let max_height = proposals
                .keys()
                .map(|&c| run_clusters[c].depth.values().copied().max().unwrap_or(0))
                .max()
                .unwrap_or(0);
            net.charge_rounds(2 + 2 * u64::from(max_height + 1) * u64::from(kappa));

            // Resolve proposals, smallest target label first so that vertex
            // moves are deterministic.
            let mut targets: Vec<usize> = proposals.keys().copied().collect();
            targets.sort_by_key(|&c| run_clusters[c].label);
            for c in targets {
                let props = &proposals[&c];
                // Drop proposers that died or moved earlier this step (can
                // only happen if another target already processed them —
                // impossible since each vertex proposes once, but keep the
                // guard for robustness).
                let live: Vec<(NodeId, NodeId)> = props
                    .iter()
                    .copied()
                    .filter(|&(v, _)| alive[v] && cluster_idx[v] != c)
                    .collect();
                if live.is_empty() {
                    continue;
                }
                let stopped = run_clusters[c].stopped;
                let size = run_clusters[c].members.len() as u64;
                if !stopped && 2 * u64::from(b) * live.len() as u64 >= size {
                    // Absorb.
                    for (v, via) in live {
                        let old = cluster_idx[v];
                        run_clusters[old].members.retain(|&m| m != v);
                        let via_depth = run_clusters[c].depth[&via];
                        run_clusters[c].members.push(v);
                        run_clusters[c].parent.insert(v, via);
                        run_clusters[c].depth.insert(v, via_depth + 1);
                        cluster_idx[v] = c;
                        let key = (v.min(via), v.max(via));
                        let count = edge_usage.entry(key).or_insert(0);
                        *count += 1;
                        kappa = kappa.max(*count);
                    }
                } else {
                    // Stop (or already stopped): proposers die.
                    run_clusters[c].stopped = true;
                    for (v, _) in live {
                        let old = cluster_idx[v];
                        run_clusters[old].members.retain(|&m| m != v);
                        cluster_idx[v] = usize::MAX;
                        alive[v] = false;
                    }
                }
            }
        }
    }

    let final_clusters = run_clusters
        .into_iter()
        .filter(|c| !c.members.is_empty())
        .map(|c| Cluster {
            color: 0, // assigned by the caller
            members: c.members,
            root: c.root,
            parent: c.parent,
            depth: c.depth,
        })
        .collect();
    (final_clusters, total_steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, metrics};

    fn build(g: &dcl_graphs::Graph) -> (NetworkDecomposition, RgTrace, u64) {
        let mut net = Network::with_default_cap(g, 64);
        let (d, t) = decompose_traced(&mut net, &RgConfig::default());
        (d, t, net.rounds())
    }

    #[test]
    fn decomposition_is_valid_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::gnp(50, 0.1, seed);
            let (d, _, _) = build(&g);
            let stats = d.validate(&g).unwrap();
            assert!(stats.colors >= 1, "seed {seed}");
        }
    }

    #[test]
    fn color_count_is_logarithmic() {
        for seed in 0..3 {
            let g = generators::gnp(128, 0.05, seed);
            let (d, _, _) = build(&g);
            // 2·log₂ n = 14 is a comfortable empirical budget for n = 128.
            assert!(d.colors <= 14, "seed {seed}: used {} colors", d.colors);
        }
    }

    #[test]
    fn each_run_clusters_at_least_half() {
        for seed in 0..4 {
            let g = generators::random_regular(80, 6, seed);
            let (_, trace, _) = build(&g);
            for (i, &f) in trace.clustered_fraction.iter().enumerate() {
                assert!(f >= 0.5, "seed {seed} run {i}: clustered only {f}");
            }
        }
    }

    #[test]
    fn tree_diameters_stay_polylog() {
        let g = generators::gnp(100, 0.08, 7);
        let (d, _, _) = build(&g);
        let stats = d.validate(&g).unwrap();
        // β bound O(log³ n); log₂ 100 ≈ 6.6 → enormous slack, but the
        // empirical value should be tiny.
        assert!(
            stats.max_tree_diameter <= 64,
            "tree diameter {} too large",
            stats.max_tree_diameter
        );
    }

    #[test]
    fn congestion_stays_logarithmic() {
        for seed in 0..3 {
            let g = generators::gnp(90, 0.1, seed + 30);
            let (d, _, _) = build(&g);
            let stats = d.validate(&g).unwrap();
            let b = 64 - 90u64.leading_zeros(); // ⌈log₂ n⌉ = 7
            assert!(
                stats.congestion <= 2 * b,
                "seed {seed}: congestion {} exceeds 2b = {}",
                stats.congestion,
                2 * b
            );
        }
    }

    #[test]
    fn works_on_structured_graphs() {
        for g in [
            generators::ring(64),
            generators::path(40),
            generators::star(30),
            generators::complete(12),
            generators::grid(6, 7),
            generators::cluster_chain(5, 8, 0.4, 2),
        ] {
            let (d, _, _) = build(&g);
            d.validate(&g).unwrap();
        }
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = dcl_graphs::Graph::empty(10);
        let (d, _, _) = build(&g);
        assert_eq!(d.colors, 1);
        assert_eq!(d.clusters.len(), 10);
        d.validate(&g).unwrap();
    }

    #[test]
    fn clique_alternates_colors() {
        // On K_k every cluster of one run is a single... run 0 merges
        // everything into few clusters; validate and check partition only.
        let g = generators::complete(8);
        let (d, _, _) = build(&g);
        let stats = d.validate(&g).unwrap();
        assert!(stats.clusters >= 1);
    }

    #[test]
    fn deterministic_construction() {
        let g = generators::gnp(40, 0.15, 5);
        let (d1, _, r1) = build(&g);
        let (d2, _, r2) = build(&g);
        assert_eq!(d1.cluster_of, d2.cluster_of);
        assert_eq!(d1.colors, d2.colors);
        assert_eq!(r1, r2);
    }

    #[test]
    fn rounds_are_polylog_for_fixed_density() {
        // Rounds should grow far slower than n·D; sanity-check against a
        // generous polylog budget.
        let g = generators::gnp(128, 0.06, 1);
        let (_, _, rounds) = build(&g);
        let logn = (128f64).log2();
        assert!(
            (rounds as f64) < 600.0 * logn.powi(4),
            "rounds {rounds} exceed polylog budget"
        );
        assert!(metrics::is_connected(&g) || rounds > 0);
    }
}

//! Corollary 1.2: deterministic `(degree+1)`-list coloring in `poly log n`
//! CONGEST rounds on *any* graph.
//!
//! The driver follows the Corollary's proof: build a network decomposition
//! (`O(log n)` colors, weak diameter `O(log³ n)`, congestion `O(log n)`),
//! then iterate through the color classes; for class `k`, all clusters of
//! color `k` run the Lemma 2.1 machinery *in parallel*, with converge-cast
//! and broadcast going over the cluster Steiner trees instead of a global
//! BFS tree. Same-color clusters are non-adjacent, so their conflict graphs
//! do not interact; edges shared by up to `κ` same-color trees are pipelined,
//! which multiplies the round cost of the class by at most `κ` — we charge
//! exactly that (`DESIGN.md` §2.5).

use crate::decomposition::NetworkDecomposition;
use crate::rg::{decompose_traced, RgConfig, RgTrace};
use dcl_coloring::instance::ListInstance;
use dcl_coloring::linial::linial_from_ids;
use dcl_coloring::partial::{partial_coloring, PartialConfig};
use dcl_congest::bfs::{BfsForest, BfsTree};
use dcl_congest::network::{Metrics, Network};
use dcl_graphs::NodeId;
use std::collections::BTreeMap;

/// Configuration of the Corollary 1.2 driver.
///
/// `#[non_exhaustive]`: build it with [`Default`] plus the `with_*` setters
/// so future knobs are not semver breaks.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct DecompColoringConfig {
    /// Decomposition construction parameters.
    pub rg: RgConfig,
    /// Partial-coloring strategy.
    pub partial: PartialConfig,
    /// Simulator execution: round backend (results are bit-identical across
    /// backends) and bandwidth cap (`None` = the model default).
    pub exec: dcl_sim::ExecConfig,
}

impl DecompColoringConfig {
    /// Sets the decomposition construction parameters (builder style).
    #[must_use]
    pub fn with_rg(mut self, rg: RgConfig) -> Self {
        self.rg = rg;
        self
    }

    /// Sets the partial-coloring strategy (builder style).
    #[must_use]
    pub fn with_partial(mut self, partial: PartialConfig) -> Self {
        self.partial = partial;
        self
    }

    /// Sets the simulator execution knob (builder style).
    #[must_use]
    pub fn with_exec(mut self, exec: dcl_sim::ExecConfig) -> Self {
        self.exec = exec;
        self
    }
}

/// Result of the decomposition-based coloring.
#[derive(Debug, Clone)]
pub struct DecompColoringResult {
    /// The proper list coloring.
    pub colors: Vec<u64>,
    /// Total simulator cost (decomposition + coloring).
    pub metrics: Metrics,
    /// Rounds spent constructing the decomposition.
    pub decomposition_rounds: u64,
    /// Rounds spent coloring (including the congestion multiplier).
    pub coloring_rounds: u64,
    /// The decomposition used.
    pub decomposition: NetworkDecomposition,
    /// Per-run construction statistics.
    pub rg_trace: RgTrace,
}

/// Builds a [`BfsForest`] whose trees are the Steiner trees of the clusters
/// of one decomposition color (for the aggregation primitives of the
/// derandomization). Nodes outside every listed tree map to component 0 with
/// `contains() == false`.
fn cluster_forest(
    n: usize,
    decomposition: &NetworkDecomposition,
    color: usize,
) -> Option<(BfsForest, Vec<usize>)> {
    let cluster_ids: Vec<usize> = (0..decomposition.clusters.len())
        .filter(|&i| decomposition.clusters[i].color == color)
        .collect();
    if cluster_ids.is_empty() {
        return None;
    }
    let mut trees = Vec::with_capacity(cluster_ids.len());
    let mut component = vec![0usize; n];
    for (ti, &ci) in cluster_ids.iter().enumerate() {
        let cluster = &decomposition.clusters[ci];
        let mut depth = vec![u32::MAX; n];
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (&v, &d) in &cluster.depth {
            depth[v] = d;
        }
        for (&v, &p) in &cluster.parent {
            parent[v] = Some(p);
            children[p].push(v);
        }
        let height = cluster.tree_height();
        for &m in &cluster.members {
            component[m] = ti;
        }
        trees.push(BfsTree {
            root: cluster.root,
            parent,
            children,
            depth,
            height,
        });
    }
    Some((BfsForest { trees, component }, cluster_ids))
}

/// Per-color congestion: the maximum number of color-`k` trees sharing one
/// edge (the pipelining multiplier for that class).
fn color_congestion(decomposition: &NetworkDecomposition, color: usize) -> u64 {
    let mut usage: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    let mut kappa = 1u64;
    for cluster in decomposition.clusters.iter().filter(|c| c.color == color) {
        for (child, parent) in cluster.tree_edges() {
            let key = (child.min(parent), child.max(parent));
            let e = usage.entry(key).or_insert(0);
            *e += 1;
            kappa = kappa.max(*e);
        }
    }
    kappa
}

/// Colors a `(degree+1)`-list instance via network decomposition
/// (Corollary 1.2).
///
/// # Panics
///
/// Panics on internal progress bugs (iteration caps), never on valid
/// instances.
pub fn color_via_decomposition(
    instance: &ListInstance,
    config: &DecompColoringConfig,
) -> DecompColoringResult {
    let g = instance.graph();
    let n = g.n();
    let mut net = Network::from_exec(g, instance.color_space(), &config.exec);
    if n == 0 {
        return DecompColoringResult {
            colors: Vec::new(),
            metrics: net.metrics(),
            decomposition_rounds: 0,
            coloring_rounds: 0,
            decomposition: NetworkDecomposition {
                clusters: Vec::new(),
                cluster_of: Vec::new(),
                colors: 0,
            },
            rg_trace: RgTrace::default(),
        };
    }

    let (decomposition, rg_trace) = decompose_traced(&mut net, &config.rg);
    let decomposition_rounds = net.rounds();
    let lin = linial_from_ids(&mut net);

    let mut residual = instance.clone();
    let mut colors: Vec<Option<u64>> = vec![None; n];
    let iter_cap = 6 * (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize + 10;

    for k in 0..decomposition.colors {
        let Some((forest, _)) = cluster_forest(n, &decomposition, k) else {
            continue;
        };
        let kappa = color_congestion(&decomposition, k);
        let class_start = net.rounds();
        let mut active: Vec<bool> = (0..n)
            .map(|v| {
                colors[v].is_none()
                    && decomposition.clusters[decomposition.cluster_of[v]].color == k
            })
            .collect();
        let mut remaining = active.iter().filter(|&&a| a).count();
        let mut iterations = 0;
        while remaining > 0 {
            assert!(
                iterations < iter_cap,
                "class {k} exceeded the iteration cap"
            );
            iterations += 1;
            let outcome = partial_coloring(
                &mut net,
                &forest,
                &residual,
                &active,
                &lin.colors,
                lin.palette,
                config.partial,
            );
            let newly: Vec<Option<u64>> = {
                let mut a = vec![None; n];
                for &(v, c) in &outcome.colored {
                    a[v] = Some(c);
                }
                a
            };
            let inboxes = net.fragmented_broadcast_round(|v| newly[v]);
            for &(v, c) in &outcome.colored {
                colors[v] = Some(c);
                active[v] = false;
                remaining -= 1;
            }
            for v in 0..n {
                if colors[v].is_none() {
                    for &(_, c) in &inboxes[v] {
                        residual.remove_color(v, c);
                    }
                }
            }
        }
        // Pipelining over shared tree edges multiplies the class's rounds by
        // at most κ; charge the surplus.
        let class_rounds = net.rounds() - class_start;
        net.charge_rounds(class_rounds * (kappa - 1));
    }

    let coloring_rounds = net.rounds() - decomposition_rounds;
    DecompColoringResult {
        colors: colors
            .into_iter()
            .map(|c| c.expect("all classes processed"))
            .collect(),
        metrics: net.metrics(),
        decomposition_rounds,
        coloring_rounds,
        decomposition,
        rg_trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::{generators, validation};

    fn color_dp1(g: dcl_graphs::Graph) -> (dcl_graphs::Graph, DecompColoringResult) {
        let inst = ListInstance::degree_plus_one(g.clone());
        let result = color_via_decomposition(&inst, &DecompColoringConfig::default());
        (g, result)
    }

    #[test]
    fn colors_random_graphs_properly() {
        for seed in 0..4 {
            let (g, result) = color_dp1(generators::gnp(36, 0.15, seed));
            assert_eq!(
                validation::check_proper(&g, &result.colors),
                None,
                "seed {seed}"
            );
            let delta = g.max_degree() as u64;
            assert!(result.colors.iter().all(|&c| c <= delta));
        }
    }

    #[test]
    fn colors_large_diameter_graphs() {
        let (g, result) = color_dp1(generators::cluster_chain(6, 6, 0.5, 3));
        assert_eq!(validation::check_proper(&g, &result.colors), None);
    }

    #[test]
    fn colors_rings_and_grids() {
        for g in [generators::ring(48), generators::grid(6, 8)] {
            let (g, result) = color_dp1(g);
            assert_eq!(validation::check_proper(&g, &result.colors), None);
        }
    }

    #[test]
    fn respects_custom_lists() {
        let g = generators::gnp(24, 0.2, 9);
        let lists: Vec<Vec<u64>> = (0..24)
            .map(|v| {
                let deg = g.degree(v) as u64;
                (0..=deg).map(|i| i * 3 + (v as u64 % 2)).collect()
            })
            .collect();
        let inst = ListInstance::new(g.clone(), 100, lists.clone()).unwrap();
        let result = color_via_decomposition(&inst, &DecompColoringConfig::default());
        assert_eq!(
            validation::check_list_coloring(&g, &lists, &result.colors),
            None
        );
    }

    #[test]
    fn decomposition_is_validated_and_returned() {
        let (g, result) = color_dp1(generators::gnp(30, 0.12, 4));
        let stats = result.decomposition.validate(&g).unwrap();
        assert_eq!(stats.colors, result.decomposition.colors);
    }

    #[test]
    fn deterministic_end_to_end() {
        let g = generators::gnp(28, 0.18, 6);
        let (_, r1) = color_dp1(g.clone());
        let (_, r2) = color_dp1(g);
        assert_eq!(r1.colors, r2.colors);
        assert_eq!(r1.metrics.rounds, r2.metrics.rounds);
    }

    #[test]
    fn handles_disconnected_and_trivial_graphs() {
        let g = dcl_graphs::Graph::from_edges(7, &[(0, 1), (2, 3), (3, 4)]).unwrap();
        let (g, result) = color_dp1(g);
        assert_eq!(validation::check_proper(&g, &result.colors), None);

        let empty = dcl_graphs::Graph::empty(0);
        let inst = ListInstance::degree_plus_one(empty);
        let r = color_via_decomposition(&inst, &DecompColoringConfig::default());
        assert!(r.colors.is_empty());
    }

    #[test]
    fn rounds_beat_diameter_coupling_on_long_chains() {
        // On a cluster chain, Theorem 1.1 pays D per seed bit while the
        // decomposition only pays the weak cluster diameter. This shows in
        // the coloring-phase rounds.
        let g = generators::cluster_chain(10, 6, 0.5, 1);
        let inst = ListInstance::degree_plus_one(g.clone());
        let dec = color_via_decomposition(&inst, &DecompColoringConfig::default());
        let direct = dcl_coloring::color_list_instance(
            &inst,
            &dcl_coloring::CongestColoringConfig::default(),
        );
        assert_eq!(validation::check_proper(&g, &dec.colors), None);
        assert_eq!(validation::check_proper(&g, &direct.colors), None);
        // The coloring phase (excluding decomposition construction) should
        // not be slower than the direct algorithm by more than the κ·α
        // parallelism overhead; on long chains it is typically much faster.
        assert!(
            dec.coloring_rounds < 20 * direct.metrics.rounds,
            "decomposition coloring rounds {} vs direct {}",
            dec.coloring_rounds,
            direct.metrics.rounds
        );
    }
}

//! Property-based tests for the network decomposition: Definition 3.1 must
//! hold on arbitrary graphs, and the run structure must meet the RG bounds.

use dcl_congest::network::Network;
use dcl_decomp::rg::{decompose_traced, RgConfig};
use dcl_graphs::generators;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn definition_3_1_holds_on_gnp(n in 1usize..50, p in 0.0f64..0.5, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let mut net = Network::with_default_cap(&g, 64);
        let (d, trace) = decompose_traced(&mut net, &RgConfig::default());
        let stats = d.validate(&g).unwrap();
        prop_assert_eq!(stats.colors, d.colors);
        // Every run clusters at least half of the remaining vertices.
        for &frac in &trace.clustered_fraction {
            prop_assert!(frac >= 0.5, "run clustered only {frac}");
        }
    }

    #[test]
    fn definition_3_1_holds_on_structured(kind in 0usize..5, size in 3usize..20, seed in any::<u64>()) {
        let g = match kind {
            0 => generators::ring(size.max(3)),
            1 => generators::star(size.max(2)),
            2 => generators::grid(3, size.max(2)),
            3 => generators::random_regular(4 * size.max(2), 3, seed),
            _ => generators::cluster_chain(3, size.max(2), 0.4, seed),
        };
        let mut net = Network::with_default_cap(&g, 64);
        let (d, _) = decompose_traced(&mut net, &RgConfig::default());
        prop_assert!(d.validate(&g).is_ok());
    }

    /// Cluster trees only ever use graph edges and every member reaches the
    /// root (re-checked here independently of the validator).
    #[test]
    fn cluster_trees_are_real_subtrees(n in 2usize..40, p in 0.03f64..0.4, seed in any::<u64>()) {
        let g = generators::gnp(n, p, seed);
        let mut net = Network::with_default_cap(&g, 64);
        let (d, _) = decompose_traced(&mut net, &RgConfig::default());
        for cluster in &d.clusters {
            for (&child, &parent) in &cluster.parent {
                prop_assert!(g.has_edge(child, parent));
            }
            for &m in &cluster.members {
                let mut cur = m;
                let mut hops = 0;
                while cur != cluster.root {
                    cur = *cluster.parent.get(&cur).expect("chain to root");
                    hops += 1;
                    prop_assert!(hops <= n, "cycle in tree");
                }
            }
        }
    }
}

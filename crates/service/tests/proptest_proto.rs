//! Service-protocol fuzz, mirroring the transport tier's
//! `proptest_wire.rs`: every [`Request`]/[`Response`] shape survives the
//! full physical path (encode → frame → split at arbitrary boundaries →
//! [`FrameReader`] reassembly → decode) as the identity, and truncated or
//! corrupted streams surface as typed errors or silence — never a panic
//! and never a decoder lie (a frame that parses still has a consistent
//! header).

use dcl_runner::{Model, RunErrorKind, WireReport, WireRunError};
use dcl_service::proto::{
    decode_request, decode_response, encode_request, encode_response, ExecSpec, Reject, Request,
    Response,
};
use dcl_sim::transport::FrameReader;
use dcl_sim::SimMetrics;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// The shim's `any` has no `String` instance; map byte vectors through a
/// charset instead (scenario names and error details are free-form UTF-8 on
/// the wire, so a few non-ASCII characters are part of the space).
fn arb_string() -> impl Strategy<Value = String> {
    const CHARSET: [char; 16] = [
        'a', 'b', 'z', '0', '9', '-', '_', ' ', '.', '/', 'Δ', 'é', '≤', '"', '\\', '\n',
    ];
    proptest::collection::vec(any::<u8>(), 0..24).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| CHARSET[b as usize % CHARSET.len()])
            .collect()
    })
}

fn arb_exec_spec() -> impl Strategy<Value = ExecSpec> {
    ((any::<bool>(), any::<u64>()), (any::<bool>(), any::<u32>())).prop_map(
        |((has_threads, threads), (has_cap, cap))| ExecSpec {
            threads: has_threads.then_some(threads),
            cap_bits: has_cap.then_some(cap),
        },
    )
}

/// Codec-level requests: arbitrary ids, names, node counts and edge lists
/// (the codec must round-trip them whether or not they describe a valid
/// graph — validation is the server's job, after decode).
fn arb_request() -> impl Strategy<Value = Request> {
    (
        any::<u64>(),
        arb_string(),
        any::<u64>(),
        proptest::collection::vec((any::<u64>(), any::<u64>()), 0..16),
        arb_exec_spec(),
    )
        .prop_map(|(id, scenario, n, edges, exec)| Request {
            id,
            scenario,
            n,
            edges,
            exec,
        })
}

fn arb_wire_report() -> impl Strategy<Value = WireReport> {
    (
        (arb_string(), any::<u8>(), any::<bool>()),
        (
            proptest::collection::vec(any::<u64>(), 0..24),
            any::<u64>(),
            0usize..64,
        ),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u32>()),
        proptest::collection::vec((arb_string(), any::<u64>()), 0..4),
    )
        .prop_map(
            |(
                (scenario, model, proper),
                (colors, palette, colors_used),
                (rounds, messages, bits, max_message_bits),
                extras,
            )| WireReport {
                scenario,
                model: match model % 3 {
                    0 => Model::Congest,
                    1 => Model::CongestedClique,
                    _ => Model::Mpc,
                },
                colors,
                palette,
                colors_used,
                proper,
                metrics: SimMetrics {
                    rounds,
                    messages,
                    bits,
                    max_message_bits,
                },
                extras,
            },
        )
}

fn arb_reject() -> impl Strategy<Value = Reject> {
    (any::<u8>(), any::<u64>(), any::<u64>(), arb_string()).prop_map(|(variant, a, b, text)| {
        match variant % 5 {
            0 => Reject::Busy {
                inflight: a,
                max_inflight: b,
            },
            1 => Reject::TimedOut { limit_ms: a },
            2 => Reject::UnknownScenario { name: text },
            3 => Reject::BadInput { detail: text },
            _ => Reject::Run(WireRunError {
                kind: match a % 6 {
                    0 => RunErrorKind::Graph,
                    1 => RunErrorKind::Job,
                    2 => RunErrorKind::Rejected,
                    3 => RunErrorKind::Budget,
                    4 => RunErrorKind::Transport,
                    _ => RunErrorKind::Panic,
                },
                message: text,
            }),
        }
    })
}

fn arb_response() -> impl Strategy<Value = Response> {
    (any::<u64>(), any::<bool>(), arb_wire_report(), arb_reject()).prop_map(
        |(id, ok, report, reject)| Response {
            id,
            outcome: if ok { Ok(report) } else { Err(reject) },
        },
    )
}

/// Splits `stream` at the given cut points and reassembles every frame.
fn reassemble(stream: &[u8], cuts: &[usize]) -> Result<Vec<dcl_sim::transport::RawFrame>, String> {
    let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (stream.len() + 1)).collect();
    boundaries.push(stream.len());
    boundaries.sort_unstable();
    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    let mut pos = 0;
    for b in boundaries {
        reader.push(&stream[pos..b]);
        pos = b;
        while let Some(frame) = reader.next_frame().map_err(|e| e.to_string())? {
            frames.push(frame);
        }
    }
    if reader.pending_bytes() > 0 {
        return Err(format!("{} trailing bytes", reader.pending_bytes()));
    }
    Ok(frames)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Requests survive framing and arbitrary stream splits as the
    /// identity.
    #[test]
    fn requests_survive_framing(
        requests in proptest::collection::vec(arb_request(), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let mut stream = Vec::new();
        for request in &requests {
            encode_request(request, &mut stream);
        }
        let frames = reassemble(&stream, &cuts)
            .map_err(|e| TestCaseError::Fail(format!("valid stream rejected: {e}")))?;
        prop_assert_eq!(frames.len(), requests.len());
        for (frame, expected) in frames.iter().zip(&requests) {
            let decoded = decode_request(frame)
                .map_err(|e| TestCaseError::Fail(format!("valid request rejected: {e}")))?;
            prop_assert_eq!(&decoded, expected);
        }
    }

    /// Responses — every outcome and reject variant — survive framing and
    /// arbitrary stream splits as the identity.
    #[test]
    fn responses_survive_framing(
        responses in proptest::collection::vec(arb_response(), 1..6),
        cuts in proptest::collection::vec(any::<usize>(), 0..24),
    ) {
        let mut stream = Vec::new();
        for response in &responses {
            encode_response(response, &mut stream);
        }
        let frames = reassemble(&stream, &cuts)
            .map_err(|e| TestCaseError::Fail(format!("valid stream rejected: {e}")))?;
        prop_assert_eq!(frames.len(), responses.len());
        for (frame, expected) in frames.iter().zip(&responses) {
            let decoded = decode_response(frame)
                .map_err(|e| TestCaseError::Fail(format!("valid response rejected: {e}")))?;
            prop_assert_eq!(&decoded, expected);
        }
    }

    /// Truncating an encoded frame anywhere never panics: the reader either
    /// waits for more bytes or reports a typed error, and a frame that does
    /// complete never decodes (its payload or header is short).
    #[test]
    fn truncation_is_typed_or_silent(
        request in arb_request(),
        response in arb_response(),
        keep_num in any::<u32>(),
    ) {
        for stream in [
            { let mut s = Vec::new(); encode_request(&request, &mut s); s },
            { let mut s = Vec::new(); encode_response(&response, &mut s); s },
        ] {
            let keep = keep_num as usize % stream.len(); // strictly shorter
            let mut reader = FrameReader::new();
            reader.push(&stream[..keep]);
            match reader.next_frame() {
                Ok(None) => {}                       // incomplete: waiting for more
                Err(_) => {}                         // typed protocol error
                Ok(Some(frame)) => {
                    // A length prefix small enough to complete early; the
                    // decoders must reject the short payload, not panic.
                    prop_assert!(decode_request(&frame).is_err());
                    prop_assert!(decode_response(&frame).is_err());
                }
            }
        }
    }

    /// Flipping any single byte never panics anywhere in the path; if the
    /// frame still parses and decodes, the decoded value re-encodes
    /// consistently (the decoder never fabricates an unencodable value).
    #[test]
    fn corruption_is_typed_never_a_panic(
        response in arb_response(),
        pos_num in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let mut stream = Vec::new();
        encode_response(&response, &mut stream);
        let pos = pos_num as usize % stream.len();
        stream[pos] ^= flip;

        let mut reader = FrameReader::new();
        reader.push(&stream);
        loop {
            match reader.next_frame() {
                Ok(None) => break,
                Err(_) => break, // typed framing error
                Ok(Some(frame)) => {
                    if let Ok(decoded) = decode_response(&frame) {
                        let mut reencoded = Vec::new();
                        encode_response(&decoded, &mut reencoded);
                        let roundtrip = reassemble(&reencoded, &[]).map_err(TestCaseError::Fail)?;
                        prop_assert_eq!(roundtrip.len(), 1);
                        let redecoded = decode_response(&roundtrip[0]);
                        prop_assert_eq!(redecoded.as_ref(), Ok(&decoded));
                    }
                }
            }
        }
    }
}

//! End-to-end service determinism (the PR's acceptance contract):
//!
//! - every registered scenario, run over real TCP through the
//!   server + client, produces a result bit-identical to a direct
//!   `run_protected` call — reports and typed run errors alike;
//! - the same request sent twice on one connection, pipelined among other
//!   requests, yields *byte-identical* response frames;
//! - concurrent connections all see the solo-connection results;
//! - backpressure sheds with a typed `Busy` (and keeps accepting), the
//!   per-request deadline surfaces as a typed `TimedOut`, and a closing
//!   client drains every admitted request before the server's goodbye.
//!
//! Sockets are real; CI serializes these with `--test-threads=1` alongside
//! the transport suite.

use dcl_graphs::{generators, Graph};
use dcl_runner::run_protected;
use dcl_service::proto::{
    check_hello, decode_response, encode_goodbye, encode_hello, encode_request, Reject, Request,
    ServiceError,
};
use dcl_service::{
    build_scenario, outcome_matches_direct, scenario_names, ExecSpec, Server, ServiceClient,
    ServiceConfig,
};
use dcl_sim::transport::{encode_frame, FrameReader, RawFrame};
use dcl_sim::{Backend, ExecConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn start_server(config: ServiceConfig) -> (SocketAddr, dcl_service::ServerHandle) {
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    (addr, server.start())
}

/// The default server config with a deadline generous enough for debug
/// builds on loaded CI machines — these tests assert *determinism*, so a
/// request timing out under CPU starvation must not fail them. The
/// operational 10 s default gets its own dedicated test below.
fn lenient() -> ServiceConfig {
    ServiceConfig::default().with_request_timeout(Duration::from_secs(600))
}

/// A graph every scenario solves (the transport oracle's choice).
fn solvable_graph() -> Graph {
    generators::gnp(28, 0.25, 11)
}

/// Every registered scenario over real TCP: the served outcome matches the
/// direct `run_protected` outcome bit for bit. An odd ring is included so
/// the Δ-coloring scenario exercises the typed-rejection path through the
/// service too.
#[test]
fn every_scenario_round_trips_bit_identical_to_direct() {
    let (addr, mut handle) = start_server(lenient());
    let mut client = ServiceClient::connect(addr).expect("connect");
    let exec = ExecConfig::default();
    for (label, graph) in [("gnp", solvable_graph()), ("odd-ring", generators::ring(9))] {
        // Pipelined: submit everything, then wait for everything.
        let ids: Vec<(u64, &str)> = scenario_names()
            .into_iter()
            .map(|name| (client.submit(name, &graph, &exec).expect("submit"), name))
            .collect();
        for (id, name) in ids {
            let served = client.wait(id);
            let scenario = build_scenario(name).expect("registered");
            let direct = run_protected(scenario.as_ref(), &graph, &exec);
            assert!(
                outcome_matches_direct(&served, &direct),
                "{name} on {label}: served {served:?} != direct {direct:?}"
            );
        }
    }
    let stats = client.stats();
    assert_eq!(stats.requests, 12);
    assert_eq!(stats.responses, 12);
    client.close().expect("clean close");
    handle.shutdown();
}

/// The parallel-backend and cap knobs survive the wire: a served parallel
/// run matches the direct parallel run (which itself is bit-identical to
/// sequential by the backend contract).
#[test]
fn exec_knobs_cross_the_wire() {
    let (addr, mut handle) = start_server(lenient());
    let mut client = ServiceClient::connect(addr).expect("connect");
    let graph = solvable_graph();
    let exec = ExecConfig::default().with_backend(Backend::Parallel(3));
    for name in ["congest", "clique"] {
        let served = client.color(&graph, name, &exec);
        let scenario = build_scenario(name).expect("registered");
        let direct = run_protected(scenario.as_ref(), &graph, &exec);
        assert!(
            outcome_matches_direct(&served, &direct),
            "{name}: parallel served {served:?} != direct {direct:?}"
        );
    }
    client.close().expect("clean close");
    handle.shutdown();
}

/// Reads raw frames off a hand-driven socket until `count` data frames
/// arrived, re-encoding each to its exact wire bytes.
fn read_data_frames(stream: &mut TcpStream, count: usize) -> Vec<(RawFrame, Vec<u8>)> {
    let mut reader = FrameReader::new();
    let mut frames = Vec::new();
    let mut buf = [0u8; 4096];
    while frames.len() < count {
        match reader.next_frame().expect("well-formed server stream") {
            Some(frame) => {
                assert_eq!(frame.kind, dcl_sim::transport::FrameKind::Data);
                let mut bytes = Vec::new();
                encode_frame(
                    frame.kind,
                    frame.sender,
                    frame.declared_bits,
                    &frame.payload,
                    &mut bytes,
                );
                frames.push((frame, bytes));
            }
            None => {
                let n = stream.read(&mut buf).expect("read");
                assert_ne!(n, 0, "server closed before answering everything");
                reader.push(&buf[..n]);
            }
        }
    }
    frames
}

/// The determinism pin, stated on bytes: the *same* request (same id) sent
/// twice, pipelined among other work, comes back as two byte-identical
/// response frames.
#[test]
fn same_request_twice_yields_byte_identical_responses() {
    let (addr, mut handle) = start_server(lenient());
    let mut stream = TcpStream::connect(addr).expect("dial");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");

    let mut out = Vec::new();
    encode_hello(&mut out);
    let graph = solvable_graph();
    let repeated = Request::for_graph(7, "congest", &graph, &ExecConfig::default());
    let other = Request::for_graph(3, "delta", &graph, &ExecConfig::default());
    encode_request(&repeated, &mut out);
    encode_request(&other, &mut out);
    encode_request(&repeated, &mut out);
    stream.write_all(&out).expect("write pipeline");

    // Hello echo first, then three data frames in any order.
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 4096];
    let hello = loop {
        if let Some(frame) = reader.next_frame().expect("well-formed") {
            break frame;
        }
        let n = stream.read(&mut buf).expect("read");
        assert_ne!(n, 0);
        reader.push(&buf[..n]);
    };
    check_hello(&hello).expect("server hello");
    let mut pending = Vec::new();
    while let Some(frame) = reader.next_frame().expect("well-formed") {
        let mut bytes = Vec::new();
        encode_frame(
            frame.kind,
            frame.sender,
            frame.declared_bits,
            &frame.payload,
            &mut bytes,
        );
        pending.push((frame, bytes));
    }
    pending.extend(read_data_frames(&mut stream, 3 - pending.len()));

    let sevens: Vec<&Vec<u8>> = pending
        .iter()
        .filter(|(frame, _)| decode_response(frame).expect("decodes").id == 7)
        .map(|(_, bytes)| bytes)
        .collect();
    assert_eq!(sevens.len(), 2, "both id-7 responses arrived");
    assert_eq!(
        sevens[0], sevens[1],
        "the same request must yield byte-identical response frames"
    );

    let mut goodbye = Vec::new();
    encode_goodbye(&mut goodbye);
    stream.write_all(&goodbye).expect("goodbye");
    handle.shutdown();
}

/// Concurrent connections hammering the same request set all get the
/// solo-connection (= direct) results — concurrency exists only across
/// requests, never inside one.
#[test]
fn concurrent_connections_match_the_direct_results() {
    let (addr, mut handle) = start_server(lenient().with_workers(4));
    let graph = solvable_graph();
    let exec = ExecConfig::default();
    let workers: Vec<_> = (0..4)
        .map(|_| {
            let graph = graph.clone();
            std::thread::spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("connect");
                let ids: Vec<(u64, &str)> = scenario_names()
                    .into_iter()
                    .map(|name| (client.submit(name, &graph, &exec).expect("submit"), name))
                    .collect();
                let results: Vec<_> = ids
                    .into_iter()
                    .map(|(id, name)| (name, client.wait(id)))
                    .collect();
                client.close().expect("clean close");
                results
            })
        })
        .collect();
    for worker in workers {
        for (name, served) in worker.join().expect("client thread") {
            let scenario = build_scenario(name).expect("registered");
            let direct = run_protected(scenario.as_ref(), &graph, &exec);
            assert!(
                outcome_matches_direct(&served, &direct),
                "{name} under concurrency: {served:?} != {direct:?}"
            );
        }
    }
    handle.shutdown();
}

/// `max_inflight = 0` sheds every request with a typed `Busy` — and the
/// accept loop keeps accepting (a second connection gets the same typed
/// answer, not a stall).
#[test]
fn backpressure_sheds_with_typed_busy_and_keeps_accepting() {
    let (addr, mut handle) = start_server(lenient().with_max_inflight(0));
    let graph = generators::ring(6);
    for _ in 0..2 {
        let mut client = ServiceClient::connect(addr).expect("connect");
        match client.color(&graph, "congest", &ExecConfig::default()) {
            Err(ServiceError::Rejected(Reject::Busy { max_inflight, .. })) => {
                assert_eq!(max_inflight, 0)
            }
            other => panic!("expected a typed Busy, got {other:?}"),
        }
        client.close().expect("shed requests still drain cleanly");
    }
    handle.shutdown();
}

/// A zero per-request deadline times every admitted request out with a
/// typed `TimedOut` carrying the configured limit.
#[test]
fn per_request_deadline_surfaces_as_typed_timeout() {
    let (addr, mut handle) =
        start_server(ServiceConfig::default().with_request_timeout(Duration::ZERO));
    let mut client = ServiceClient::connect(addr).expect("connect");
    match client.color(&generators::ring(6), "congest", &ExecConfig::default()) {
        Err(ServiceError::Rejected(Reject::TimedOut { limit_ms })) => {
            assert_eq!(limit_ms, 0);
        }
        other => panic!("expected a typed TimedOut, got {other:?}"),
    }
    client.close().expect("clean close");
    handle.shutdown();
}

/// Graceful drain: a client that submits a burst and immediately says
/// goodbye still gets every admitted response before the server's goodbye
/// frame (a clean `close` proves it).
#[test]
fn close_drains_every_admitted_request() {
    let (addr, mut handle) = start_server(lenient());
    let mut client = ServiceClient::connect(addr).expect("connect");
    let graph = solvable_graph();
    for _ in 0..3 {
        for name in ["congest", "clique"] {
            client
                .submit(name, &graph, &ExecConfig::default())
                .expect("submit");
        }
    }
    let stats = client.close().expect("drain completes before goodbye");
    assert_eq!(stats.requests, 6);
    assert_eq!(stats.responses, 6, "every admitted request was answered");
    handle.shutdown();
}

/// Unknown scenarios and malformed graphs come back as typed rejects, not
/// dropped connections.
#[test]
fn unknown_scenarios_and_bad_graphs_reject_typed() {
    let (addr, mut handle) = start_server(lenient());
    let mut client = ServiceClient::connect(addr).expect("connect");
    match client.color(
        &generators::ring(6),
        "no-such-scenario",
        &ExecConfig::default(),
    ) {
        Err(ServiceError::Rejected(Reject::UnknownScenario { name })) => {
            assert_eq!(name, "no-such-scenario");
        }
        other => panic!("expected UnknownScenario, got {other:?}"),
    }

    client
        .submit_request(&Request {
            id: 900,
            scenario: "congest".to_string(),
            n: 3,
            edges: vec![(2, 1)],
            exec: ExecSpec::default(),
        })
        .expect("submit");
    match client.wait(900) {
        Err(ServiceError::Rejected(Reject::BadInput { detail })) => {
            assert!(detail.contains("sorted"), "got: {detail}");
        }
        other => panic!("expected BadInput, got {other:?}"),
    }
    client.close().expect("clean close");
    handle.shutdown();
}

/// A tiny request declaring an astronomical node count (or a
/// remote-controlled thread count) bounces off the server's admission
/// limits as a typed `BadInput` — the `O(n)` graph allocation and the
/// thread spawns never happen, and the server keeps serving.
#[test]
fn oversized_requests_reject_typed_and_leave_the_server_up() {
    let (addr, mut handle) = start_server(lenient());
    let mut client = ServiceClient::connect(addr).expect("connect");
    client
        .submit_request(&Request {
            id: 50,
            scenario: "congest".to_string(),
            n: 1 << 50,
            edges: vec![],
            exec: ExecSpec::default(),
        })
        .expect("submit");
    match client.wait(50) {
        Err(ServiceError::Rejected(Reject::BadInput { detail })) => {
            assert!(detail.contains("nodes"), "got: {detail}");
        }
        other => panic!("expected BadInput, got {other:?}"),
    }

    client
        .submit_request(&Request {
            id: 51,
            scenario: "congest".to_string(),
            n: 3,
            edges: vec![(0, 1), (1, 2)],
            exec: ExecSpec {
                threads: Some(1 << 40),
                cap_bits: None,
            },
        })
        .expect("submit");
    match client.wait(51) {
        Err(ServiceError::Rejected(Reject::BadInput { detail })) => {
            assert!(detail.contains("threads"), "got: {detail}");
        }
        other => panic!("expected BadInput, got {other:?}"),
    }

    let report = client
        .color(&generators::ring(8), "congest", &ExecConfig::default())
        .expect("the server is still fully alive");
    assert!(report.proper);
    client.close().expect("clean close");
    handle.shutdown();
}

/// A reused id through the `ServiceClient`: both responses are filed in
/// arrival order and each `wait` claims exactly one — the second response
/// is not lost to an overwrite.
#[test]
fn a_reused_id_keeps_both_responses() {
    let (addr, mut handle) = start_server(lenient());
    let mut client = ServiceClient::connect(addr).expect("connect");
    let request = Request::for_graph(7, "congest", &solvable_graph(), &ExecConfig::default());
    client.submit_request(&request).expect("first submit");
    client.submit_request(&request).expect("second submit");
    let first = client.wait(7).expect("first response");
    let second = client.wait(7).expect("second response");
    assert_eq!(first, second, "identical requests, identical reports");
    let stats = client.close().expect("clean close");
    assert_eq!(stats.requests, 2);
    assert_eq!(stats.responses, 2);
    handle.shutdown();
}

/// A peer that opens with garbage instead of a hello is dropped without
/// taking the server down: the socket closes, and a well-behaved client
/// still gets full service afterwards.
#[test]
fn a_bad_handshake_drops_only_that_connection() {
    let (addr, mut handle) = start_server(lenient());
    let mut bad = TcpStream::connect(addr).expect("dial");
    bad.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut out = Vec::new();
    encode_goodbye(&mut out); // a valid frame, but not a hello
    bad.write_all(&out).expect("write");
    let mut buf = [0u8; 64];
    let n = bad.read(&mut buf).expect("server hangs up");
    assert_eq!(n, 0, "connection closed without a hello echo");

    let mut good = ServiceClient::connect(addr).expect("the server still accepts");
    let report = good
        .color(&generators::ring(8), "congest", &ExecConfig::default())
        .expect("service still works");
    assert!(report.proper);
    good.close().expect("clean close");
    handle.shutdown();
}

//! The service wire protocol: versioned frames carrying [`Request`] and
//! [`Response`] values over the shared [`Wire`] codec.
//!
//! # Frame layout
//!
//! The service reuses the transport tier's framing verbatim
//! (`[len: u32 LE][kind: u8][sender: u32 LE][declared_bits: u32 LE]
//! [payload]`, [`dcl_sim::transport::encode_frame`]), repurposing the three
//! frame kinds:
//!
//! | kind       | direction | meaning                                        |
//! |------------|-----------|------------------------------------------------|
//! | `Hello`    | both      | handshake: `sender` carries [`PROTOCOL_VERSION`], payload is [`PROTOCOL_MAGIC`]; the server echoes it back |
//! | `Data`     | both      | one [`Wire`]-encoded [`Request`] (client → server) or [`Response`] (server → client); `declared_bits` is the payload's `wire_bits` |
//! | `EndRound` | both      | goodbye: the sender will ship no more frames; the server answers one after draining in-flight work |
//!
//! Every decode path is total: truncated, corrupt or oversized inputs come
//! back as typed [`ServiceError`]s, never panics (fuzzed by
//! `tests/proptest_proto.rs`, mirroring the transport tier's
//! `proptest_wire.rs`).

use dcl_graphs::Graph;
use dcl_runner::{WireReport, WireRunError};
use dcl_sim::transport::{encode_frame, FrameKind, RawFrame};
use dcl_sim::{Backend, BandwidthCap, ExecConfig, Wire};
use std::error::Error;
use std::fmt;

/// Magic bytes opening every connection ("DCL Service").
pub const PROTOCOL_MAGIC: [u8; 4] = *b"DCLS";

/// Protocol revision. Bumped on any wire-incompatible change; the handshake
/// carries it in the hello frame's `sender` field so both sides can reject
/// a mismatch before any payload crosses.
pub const PROTOCOL_VERSION: u32 = 1;

/// The serializable subset of [`ExecConfig`] a request carries: backend
/// thread count and bandwidth-cap override. The transport knob is *not*
/// carried — the service always executes on the in-memory tier (the
/// socket hop is the service connection itself).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecSpec {
    /// `None` = sequential backend; `Some(t)` = `Backend::Parallel(t)`
    /// (`0` = one thread per core on the *server*).
    pub threads: Option<u64>,
    /// Per-message bandwidth-cap override in bits; `None` = model default.
    pub cap_bits: Option<u32>,
}

impl ExecSpec {
    /// Captures the serializable knobs of `exec`.
    #[must_use]
    pub fn from_exec(exec: &ExecConfig) -> Self {
        ExecSpec {
            threads: match exec.backend {
                Backend::Sequential => None,
                Backend::Parallel(t) => Some(t as u64),
            },
            cap_bits: exec.cap.map(BandwidthCap::bits),
        }
    }

    /// Reconstructs the [`ExecConfig`] on the server side (transport pinned
    /// to the in-memory tier).
    ///
    /// # Errors
    ///
    /// A human-readable message when the knobs are invalid (zero cap,
    /// oversized thread count) — remote input must reject, not panic.
    pub fn to_exec(&self) -> Result<ExecConfig, String> {
        let backend = match self.threads {
            None => Backend::Sequential,
            Some(t) => Backend::Parallel(
                usize::try_from(t).map_err(|_| format!("thread count {t} does not fit usize"))?,
            ),
        };
        let cap = match self.cap_bits {
            None => None,
            Some(0) => return Err("bandwidth cap must be positive".to_string()),
            Some(bits) => Some(BandwidthCap::new(bits)),
        };
        Ok(ExecConfig::default()
            .with_backend(backend)
            .with_cap_opt(cap))
    }
}

impl Wire for ExecSpec {
    fn wire_bits(&self) -> u32 {
        self.threads.wire_bits() + self.cap_bits.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.threads.wire_encode(out);
        self.cap_bits.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some(ExecSpec {
            threads: Option::wire_decode(buf)?,
            cap_bits: Option::wire_decode(buf)?,
        })
    }
}

/// One coloring request: which scenario to run, on which graph, under which
/// execution knobs. The graph crosses as its sorted edge list (`u < v`,
/// exactly [`Graph::edges`]' order), so [`Request::graph`] rebuilds it with
/// the same validation every local caller goes through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the [`Response`]. Also the
    /// server's shard key: equal ids land on the same worker shard, so a
    /// repeated request cannot race itself.
    pub id: u64,
    /// Registered scenario name (`"congest"`, `"clique"`, …).
    pub scenario: String,
    /// Number of nodes.
    pub n: u64,
    /// Sorted `u < v` edge list.
    pub edges: Vec<(u64, u64)>,
    /// Execution knobs.
    pub exec: ExecSpec,
}

impl Request {
    /// Builds a request from a live [`Graph`] and [`ExecConfig`].
    #[must_use]
    pub fn for_graph(id: u64, scenario: &str, graph: &Graph, exec: &ExecConfig) -> Self {
        Request {
            id,
            scenario: scenario.to_string(),
            n: graph.n() as u64,
            edges: graph.edges().map(|(u, v)| (u as u64, v as u64)).collect(),
            exec: ExecSpec::from_exec(exec),
        }
    }

    /// Rebuilds the graph, running the same construction validation as any
    /// local caller (rejects self loops, duplicate or unsorted edges,
    /// out-of-range endpoints).
    ///
    /// Construction allocates `O(n + edges)` up front, so callers holding
    /// remote input must pass the request through
    /// [`RequestLimits::check`] *first* (as [`crate::execute_request`]
    /// does) — a declared `n` in the 2^50 range would otherwise abort the
    /// process on allocation failure before any validation runs.
    ///
    /// # Errors
    ///
    /// A human-readable message when the payload does not describe a valid
    /// graph — remote input must reject, not panic.
    pub fn graph(&self) -> Result<Graph, String> {
        let n = usize::try_from(self.n)
            .map_err(|_| format!("node count {} does not fit usize", self.n))?;
        let mut edges = Vec::with_capacity(self.edges.len());
        for &(u, v) in &self.edges {
            let u = usize::try_from(u).map_err(|_| format!("endpoint {u} does not fit usize"))?;
            let v = usize::try_from(v).map_err(|_| format!("endpoint {v} does not fit usize"))?;
            edges.push((u, v));
        }
        Graph::from_sorted_edges(n, &edges).map_err(|e| e.to_string())
    }
}

impl Wire for Request {
    fn wire_bits(&self) -> u32 {
        self.id.wire_bits()
            + self.scenario.wire_bits()
            + self.n.wire_bits()
            + self.edges.wire_bits()
            + self.exec.wire_bits()
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.id.wire_encode(out);
        self.scenario.wire_encode(out);
        self.n.wire_encode(out);
        self.edges.wire_encode(out);
        self.exec.wire_encode(out);
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        Some(Request {
            id: u64::wire_decode(buf)?,
            scenario: String::wire_decode(buf)?,
            n: u64::wire_decode(buf)?,
            edges: Vec::wire_decode(buf)?,
            exec: ExecSpec::wire_decode(buf)?,
        })
    }
}

/// Server-side admission bounds on what a [`Request`] may ask for,
/// checked *before* anything is allocated or spawned on its behalf.
///
/// The declared node count is the protocol's one allocation amplifier: a
/// few wire bytes claiming `n = 2^50` would otherwise reach
/// `Graph::from_sorted_edges`' `vec![0; n]` and abort the process (an
/// allocation failure does not unwind). Thread counts are the spawn
/// amplifier: `Backend::Parallel(t)` takes the remote `t` at face value.
/// [`RequestLimits::check`] rejects both with a typed message — remote
/// input must reject, not panic — and the server applies its configured
/// limits ([`crate::ServiceConfig::limits`]) on every worker.
///
/// `#[non_exhaustive]` — build with [`Default`] plus the `with_*`
/// setters, so future bounds are not semver breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct RequestLimits {
    /// Largest accepted [`Request::n`].
    pub max_nodes: u64,
    /// Largest accepted [`Request::edges`] length.
    pub max_edges: u64,
    /// Largest accepted [`ExecSpec::threads`] value (`Some(0)` = one
    /// thread per server core is always accepted).
    pub max_threads: u64,
}

impl Default for RequestLimits {
    /// Generous for every workload the experiments run (≤ 2^20 nodes,
    /// ≤ 2^22 edges, ≤ 512 threads) while keeping the worst-case
    /// per-request allocation a few tens of MiB.
    fn default() -> Self {
        RequestLimits {
            max_nodes: 1 << 20,
            max_edges: 1 << 22,
            max_threads: 512,
        }
    }
}

impl RequestLimits {
    /// Sets the node bound (builder style).
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: u64) -> Self {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets the edge bound (builder style).
    #[must_use]
    pub fn with_max_edges(mut self, max_edges: u64) -> Self {
        self.max_edges = max_edges;
        self
    }

    /// Sets the thread bound (builder style).
    #[must_use]
    pub fn with_max_threads(mut self, max_threads: u64) -> Self {
        self.max_threads = max_threads;
        self
    }

    /// Validates `request` against these bounds without allocating.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the violated bound (the server
    /// wraps it in [`Reject::BadInput`]).
    pub fn check(&self, request: &Request) -> Result<(), String> {
        if request.n > self.max_nodes {
            return Err(format!(
                "request declares {} nodes, over this server's limit of {}",
                request.n, self.max_nodes
            ));
        }
        if request.edges.len() as u64 > self.max_edges {
            return Err(format!(
                "request carries {} edges, over this server's limit of {}",
                request.edges.len(),
                self.max_edges
            ));
        }
        if let Some(threads) = request.exec.threads {
            if threads > self.max_threads {
                return Err(format!(
                    "request asks for {threads} threads, over this server's limit of {}",
                    self.max_threads
                ));
            }
        }
        Ok(())
    }
}

/// Why the server declined to produce a [`WireReport`] for a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reject {
    /// The max-inflight backpressure limit was hit; the request was shed
    /// *without* being queued (the accept loop never stalls). Retry later.
    Busy {
        /// In-flight requests observed at admission.
        inflight: u64,
        /// The server's configured admission limit.
        max_inflight: u64,
    },
    /// The request sat past the server's per-request deadline before a
    /// worker picked it up.
    TimedOut {
        /// The server's configured per-request limit in milliseconds.
        limit_ms: u64,
    },
    /// No scenario is registered under the requested name.
    UnknownScenario {
        /// The name the request carried.
        name: String,
    },
    /// The request payload was structurally valid but semantically not
    /// runnable: a malformed graph or invalid execution knobs.
    BadInput {
        /// Human-readable reason.
        detail: String,
    },
    /// The scenario ran and failed; the wrapped [`WireRunError`] carries
    /// the variant kind and full rendering of the server-side
    /// [`dcl_runner::RunError`].
    Run(WireRunError),
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reject::Busy {
                inflight,
                max_inflight,
            } => write!(
                f,
                "server busy: {inflight} requests in flight (limit {max_inflight})"
            ),
            Reject::TimedOut { limit_ms } => {
                write!(
                    f,
                    "request timed out after the server's {limit_ms} ms limit"
                )
            }
            Reject::UnknownScenario { name } => write!(f, "unknown scenario '{name}'"),
            Reject::BadInput { detail } => write!(f, "bad request input: {detail}"),
            Reject::Run(e) => write!(f, "{e}"),
        }
    }
}

impl Wire for Reject {
    fn wire_bits(&self) -> u32 {
        8 + match self {
            Reject::Busy {
                inflight,
                max_inflight,
            } => inflight.wire_bits() + max_inflight.wire_bits(),
            Reject::TimedOut { limit_ms } => limit_ms.wire_bits(),
            Reject::UnknownScenario { name } => name.wire_bits(),
            Reject::BadInput { detail } => detail.wire_bits(),
            Reject::Run(e) => e.wire_bits(),
        }
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        match self {
            Reject::Busy {
                inflight,
                max_inflight,
            } => {
                0u8.wire_encode(out);
                inflight.wire_encode(out);
                max_inflight.wire_encode(out);
            }
            Reject::TimedOut { limit_ms } => {
                1u8.wire_encode(out);
                limit_ms.wire_encode(out);
            }
            Reject::UnknownScenario { name } => {
                2u8.wire_encode(out);
                name.wire_encode(out);
            }
            Reject::BadInput { detail } => {
                3u8.wire_encode(out);
                detail.wire_encode(out);
            }
            Reject::Run(e) => {
                4u8.wire_encode(out);
                e.wire_encode(out);
            }
        }
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        match u8::wire_decode(buf)? {
            0 => Some(Reject::Busy {
                inflight: u64::wire_decode(buf)?,
                max_inflight: u64::wire_decode(buf)?,
            }),
            1 => Some(Reject::TimedOut {
                limit_ms: u64::wire_decode(buf)?,
            }),
            2 => Some(Reject::UnknownScenario {
                name: String::wire_decode(buf)?,
            }),
            3 => Some(Reject::BadInput {
                detail: String::wire_decode(buf)?,
            }),
            4 => Some(Reject::Run(WireRunError::wire_decode(buf)?)),
            _ => None,
        }
    }
}

/// The server's answer to one [`Request`], matched up by `id`.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The [`Request::id`] this answers.
    pub id: u64,
    /// The run result (tag 0 = report, 1 = reject on the wire).
    pub outcome: Result<WireReport, Reject>,
}

impl Wire for Response {
    fn wire_bits(&self) -> u32 {
        self.id.wire_bits()
            + 8
            + match &self.outcome {
                Ok(report) => report.wire_bits(),
                Err(reject) => reject.wire_bits(),
            }
    }
    fn wire_encode(&self, out: &mut Vec<u8>) {
        self.id.wire_encode(out);
        match &self.outcome {
            Ok(report) => {
                0u8.wire_encode(out);
                report.wire_encode(out);
            }
            Err(reject) => {
                1u8.wire_encode(out);
                reject.wire_encode(out);
            }
        }
    }
    fn wire_decode(buf: &mut &[u8]) -> Option<Self> {
        let id = u64::wire_decode(buf)?;
        let outcome = match u8::wire_decode(buf)? {
            0 => Ok(WireReport::wire_decode(buf)?),
            1 => Err(Reject::wire_decode(buf)?),
            _ => return None,
        };
        Some(Response { id, outcome })
    }
}

/// Everything that can go wrong between [`crate::ServiceClient`] and the
/// server, as one typed error.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The server answered, declining the request.
    Rejected(Reject),
    /// The connection failed or the peer went away (dial failure, EOF
    /// mid-stream, liveness deadline expired).
    Disconnected {
        /// Human-readable cause.
        detail: String,
    },
    /// The peer violated the protocol (bad magic, version mismatch,
    /// malformed frame or payload).
    Protocol {
        /// Human-readable cause.
        detail: String,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Rejected(reject) => write!(f, "request rejected: {reject}"),
            ServiceError::Disconnected { detail } => write!(f, "service disconnected: {detail}"),
            ServiceError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
        }
    }
}

impl Error for ServiceError {}

/// Appends a handshake frame (`sender` = [`PROTOCOL_VERSION`], payload =
/// [`PROTOCOL_MAGIC`]).
pub fn encode_hello(out: &mut Vec<u8>) {
    encode_frame(
        FrameKind::Hello,
        PROTOCOL_VERSION as usize,
        0,
        &PROTOCOL_MAGIC,
        out,
    );
}

/// Validates a received handshake frame, returning the peer's protocol
/// version.
///
/// # Errors
///
/// [`ServiceError::Protocol`] on a non-hello kind, wrong magic, or a
/// version this implementation does not speak.
pub fn check_hello(frame: &RawFrame) -> Result<u32, ServiceError> {
    if frame.kind != FrameKind::Hello {
        return Err(ServiceError::Protocol {
            detail: format!("expected hello frame, got {:?}", frame.kind),
        });
    }
    if frame.payload != PROTOCOL_MAGIC {
        return Err(ServiceError::Protocol {
            detail: format!("bad protocol magic {:?}", frame.payload),
        });
    }
    let version = frame.sender as u32;
    if version != PROTOCOL_VERSION {
        return Err(ServiceError::Protocol {
            detail: format!(
                "peer speaks protocol version {version}, this build speaks {PROTOCOL_VERSION}"
            ),
        });
    }
    Ok(version)
}

/// Appends a goodbye frame (no more frames from this sender).
pub fn encode_goodbye(out: &mut Vec<u8>) {
    encode_frame(FrameKind::EndRound, 0, 0, &[], out);
}

/// Appends a data frame carrying one [`Wire`]-encoded [`Request`].
pub fn encode_request(request: &Request, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    request.wire_encode(&mut payload);
    encode_frame(FrameKind::Data, 0, request.wire_bits(), &payload, out);
}

/// Appends a data frame carrying one [`Wire`]-encoded [`Response`].
pub fn encode_response(response: &Response, out: &mut Vec<u8>) {
    let mut payload = Vec::new();
    response.wire_encode(&mut payload);
    encode_frame(FrameKind::Data, 0, response.wire_bits(), &payload, out);
}

/// Decodes a data frame's payload as a [`Request`].
///
/// # Errors
///
/// [`ServiceError::Protocol`] on a non-data kind, a malformed or
/// partially-consumed payload, or a `declared_bits` header that disagrees
/// with the decoded value's [`Wire::wire_bits`].
pub fn decode_request(frame: &RawFrame) -> Result<Request, ServiceError> {
    decode_data(frame, "request")
}

/// Decodes a data frame's payload as a [`Response`]; same contract as
/// [`decode_request`].
///
/// # Errors
///
/// [`ServiceError::Protocol`], as for [`decode_request`].
pub fn decode_response(frame: &RawFrame) -> Result<Response, ServiceError> {
    decode_data(frame, "response")
}

fn decode_data<T: Wire>(frame: &RawFrame, what: &str) -> Result<T, ServiceError> {
    if frame.kind != FrameKind::Data {
        return Err(ServiceError::Protocol {
            detail: format!(
                "expected data frame carrying a {what}, got {:?}",
                frame.kind
            ),
        });
    }
    let mut view = frame.payload.as_slice();
    let value = T::wire_decode(&mut view).ok_or_else(|| ServiceError::Protocol {
        detail: format!("malformed {what} payload"),
    })?;
    if !view.is_empty() {
        return Err(ServiceError::Protocol {
            detail: format!("{what} payload carries {} trailing bytes", view.len()),
        });
    }
    if frame.declared_bits != value.wire_bits() {
        return Err(ServiceError::Protocol {
            detail: format!(
                "{what} declares {} bits but decodes to {} bits",
                frame.declared_bits,
                value.wire_bits()
            ),
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl_graphs::generators;
    use dcl_sim::transport::FrameReader;

    fn frame_of(bytes: &[u8]) -> RawFrame {
        let mut reader = FrameReader::new();
        reader.push(bytes);
        let frame = reader
            .next_frame()
            .expect("encoder output parses")
            .expect("one whole frame");
        assert_eq!(reader.pending_bytes(), 0, "exactly one frame encoded");
        frame
    }

    #[test]
    fn request_round_trips_through_its_frame() {
        let g = generators::gnp(12, 0.4, 3);
        let exec = ExecConfig::default()
            .with_backend(Backend::Parallel(2))
            .with_cap(BandwidthCap::new(96));
        let request = Request::for_graph(17, "congest", &g, &exec);
        let mut bytes = Vec::new();
        encode_request(&request, &mut bytes);
        let decoded = decode_request(&frame_of(&bytes)).expect("round trip");
        assert_eq!(decoded, request);
        let rebuilt = decoded.graph().expect("valid edge list");
        assert_eq!(rebuilt.n(), g.n());
        assert_eq!(rebuilt.m(), g.m());
        let back = decoded.exec.to_exec().expect("valid knobs");
        assert_eq!(back.backend, Backend::Parallel(2));
        assert_eq!(back.cap, Some(BandwidthCap::new(96)));
    }

    #[test]
    fn exec_spec_rejects_invalid_knobs_without_panicking() {
        let spec = ExecSpec {
            threads: None,
            cap_bits: Some(0),
        };
        assert!(spec.to_exec().is_err(), "zero cap must reject, not panic");
        assert_eq!(ExecSpec::default().to_exec(), Ok(ExecConfig::default()));
    }

    #[test]
    fn request_limits_reject_each_oversized_dimension_without_allocating() {
        let limits = RequestLimits::default();
        let ok = Request {
            id: 1,
            scenario: "congest".to_string(),
            n: 4,
            edges: vec![(0, 1), (1, 2)],
            exec: ExecSpec::default(),
        };
        assert_eq!(limits.check(&ok), Ok(()));

        // The allocation-amplifier case from the wire: a tiny payload
        // declaring an astronomical node count must bounce here, before
        // `Request::graph` can reach `vec![0; n]`.
        let mut huge_n = ok.clone();
        huge_n.n = 1 << 50;
        let err = limits.check(&huge_n).expect_err("oversized n rejects");
        assert!(err.contains("nodes"), "got: {err}");

        let tight = RequestLimits::default().with_max_edges(1);
        let err = tight.check(&ok).expect_err("oversized edge list rejects");
        assert!(err.contains("edges"), "got: {err}");

        let mut greedy = ok.clone();
        greedy.exec.threads = Some(u64::MAX);
        let err = limits.check(&greedy).expect_err("oversized threads reject");
        assert!(err.contains("threads"), "got: {err}");
        // `Some(0)` = one thread per server core — always in bounds.
        greedy.exec.threads = Some(0);
        assert_eq!(limits.check(&greedy), Ok(()));

        let loose = RequestLimits::default()
            .with_max_nodes(1 << 50)
            .with_max_threads(u64::MAX);
        assert_eq!(loose.check(&huge_n), Ok(()));
    }

    #[test]
    fn bad_graphs_reject_with_the_construction_error() {
        let request = Request {
            id: 1,
            scenario: "congest".to_string(),
            n: 2,
            edges: vec![(0, 0)],
            exec: ExecSpec::default(),
        };
        let err = request.graph().expect_err("self loop rejects");
        assert!(err.contains("self loop"), "got: {err}");
    }

    #[test]
    fn hello_handshake_validates_magic_and_version() {
        let mut bytes = Vec::new();
        encode_hello(&mut bytes);
        let frame = frame_of(&bytes);
        assert_eq!(check_hello(&frame), Ok(PROTOCOL_VERSION));

        let mut wrong_magic = frame.clone();
        wrong_magic.payload = b"XXXX".to_vec();
        assert!(matches!(
            check_hello(&wrong_magic),
            Err(ServiceError::Protocol { .. })
        ));

        let mut wrong_version = frame.clone();
        wrong_version.sender = PROTOCOL_VERSION as usize + 1;
        assert!(matches!(
            check_hello(&wrong_version),
            Err(ServiceError::Protocol { .. })
        ));

        let mut goodbye = Vec::new();
        encode_goodbye(&mut goodbye);
        assert!(matches!(
            check_hello(&frame_of(&goodbye)),
            Err(ServiceError::Protocol { .. })
        ));
    }

    #[test]
    fn response_decoder_rejects_lying_headers_and_trailing_bytes() {
        let response = Response {
            id: 4,
            outcome: Err(Reject::UnknownScenario {
                name: "nope".to_string(),
            }),
        };
        let mut bytes = Vec::new();
        encode_response(&response, &mut bytes);
        assert_eq!(decode_response(&frame_of(&bytes)).as_ref(), Ok(&response));

        let mut lying = frame_of(&bytes);
        lying.declared_bits += 1;
        assert!(matches!(
            decode_response(&lying),
            Err(ServiceError::Protocol { .. })
        ));

        let mut trailing = frame_of(&bytes);
        trailing.payload.push(0);
        assert!(matches!(
            decode_response(&trailing),
            Err(ServiceError::Protocol { .. })
        ));

        let mut hello = Vec::new();
        encode_hello(&mut hello);
        assert!(matches!(
            decode_response(&frame_of(&hello)),
            Err(ServiceError::Protocol { .. })
        ));
    }
}

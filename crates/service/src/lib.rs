//! Coloring as a service: the long-lived request/response tier on top of
//! the socket transport (`DESIGN.md` §10).
//!
//! PR 6 made the *physical* layer pluggable (the same rounds over
//! in-memory inboxes, channels, or TCP sockets); this crate adds the
//! *service* layer above it — a protocol, a server, and a client:
//!
//! - [`proto`] — versioned [`Request`]/[`Response`] frames over the shared
//!   [`dcl_sim::Wire`] codec and the transport tier's framing, with total
//!   (never-panicking) decoders and the typed [`Reject`]/[`ServiceError`]
//!   surfaces;
//! - [`server`] — [`Server`]/[`ServerHandle`] and the `dcl_serve` binary:
//!   a localhost TCP listener with concurrent connections, a bounded
//!   sharded worker pool on [`dcl_par::Pool`], exact max-inflight
//!   admission (shed with [`Reject::Busy`], never a stalled accept loop),
//!   per-request deadlines, and graceful drain on shutdown;
//! - [`client`] — [`ServiceClient`]: pipelined request ids over one
//!   connection, [`ClientStats`] byte counters (the E15 overhead table's
//!   input), and a draining close.
//!
//! The scenario registry ([`scenario_names`]/[`build_scenario`]) mirrors
//! the facade's `scenarios::all()`: every registered pipeline is servable,
//! and [`execute_request`] — the exact function the server's workers run —
//! is deterministic, so the same request always yields the bit-identical
//! response payload (pinned by `tests/service_roundtrip.rs`).
//!
//! # Example
//!
//! ```
//! use dcl_service::{Server, ServiceClient, ServiceConfig};
//! use dcl_graphs::generators;
//! use dcl_sim::ExecConfig;
//!
//! let server = Server::bind(ServiceConfig::default()).unwrap();
//! let addr = server.local_addr().unwrap();
//! let mut handle = server.start();
//! let mut client = ServiceClient::connect(addr).unwrap();
//! let g = generators::ring(8);
//! let report = client.color(&g, "congest", &ExecConfig::default()).unwrap();
//! assert!(report.proper);
//! client.close().unwrap();
//! handle.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{ClientStats, ServiceClient};
pub use proto::{
    ExecSpec, Reject, Request, RequestLimits, Response, ServiceError, PROTOCOL_MAGIC,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerHandle, ServiceConfig};

use dcl_runner::{run_protected, RunError, Scenario, WireReport, WireRunError};

/// Names of every servable scenario, in registry order — the same set the
/// facade's `scenarios::all()` gathers.
#[must_use]
pub fn scenario_names() -> [&'static str; 6] {
    [
        "congest",
        "decomp",
        "clique",
        "mpc-linear",
        "mpc-sublinear",
        "delta",
    ]
}

/// Builds the scenario registered under `name`, or `None` for an unknown
/// name (the server answers those with [`Reject::UnknownScenario`]).
#[must_use]
pub fn build_scenario(name: &str) -> Option<Box<dyn Scenario>> {
    match name {
        "congest" => Some(Box::new(dcl_coloring::scenario::CongestScenario::default())),
        "decomp" => Some(Box::new(dcl_decomp::scenario::DecompScenario::default())),
        "clique" => Some(Box::new(dcl_clique::scenario::CliqueScenario::default())),
        "mpc-linear" => Some(Box::new(dcl_mpc::scenario::MpcLinearScenario)),
        "mpc-sublinear" => Some(Box::new(dcl_mpc::scenario::MpcSublinearScenario::default())),
        "delta" => Some(Box::new(dcl_delta::scenario::DeltaScenario::default())),
        _ => None,
    }
}

/// Runs one request to its outcome — the exact function the server's
/// worker shards execute (minus admission and deadline checks, which need
/// server state). Deterministic: the outcome depends only on `request`
/// and `limits`.
///
/// `limits` is checked before anything is allocated or spawned for the
/// request — an oversized declared node count, edge list, or thread count
/// comes back as [`Reject::BadInput`] instead of reaching
/// [`Request::graph`]'s `O(n)` allocation or `Backend::Parallel`'s thread
/// spawns with remote-controlled sizes. The server passes its configured
/// [`ServiceConfig::limits`]; local callers usually pass
/// `&RequestLimits::default()`.
pub fn execute_request(request: &Request, limits: &RequestLimits) -> Result<WireReport, Reject> {
    let Some(scenario) = build_scenario(&request.scenario) else {
        return Err(Reject::UnknownScenario {
            name: request.scenario.clone(),
        });
    };
    limits
        .check(request)
        .map_err(|detail| Reject::BadInput { detail })?;
    let exec = request
        .exec
        .to_exec()
        .map_err(|detail| Reject::BadInput { detail })?;
    let graph = request
        .graph()
        .map_err(|detail| Reject::BadInput { detail })?;
    match run_protected(scenario.as_ref(), &graph, &exec) {
        Ok(report) => Ok(WireReport::from(&report)),
        Err(e) => Err(Reject::Run(WireRunError::from(&e))),
    }
}

/// Whether a served outcome agrees with a direct [`Scenario::run`] (via
/// [`run_protected`]) outcome: reports must match field for field, errors
/// must agree on kind and rendering. The determinism suite and the E15
/// table both use this as their "service path ≡ direct path" check.
#[must_use]
pub fn outcome_matches_direct(
    served: &Result<WireReport, ServiceError>,
    direct: &Result<dcl_runner::Report, RunError>,
) -> bool {
    match (served, direct) {
        (Ok(wire), Ok(report)) => wire.matches(report),
        (Err(ServiceError::Rejected(Reject::Run(wire))), Err(e)) => *wire == WireRunError::from(e),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_facade_scenario_set() {
        for name in scenario_names() {
            let scenario = build_scenario(name).expect("every registered name builds");
            assert_eq!(scenario.name(), name, "registry key = Scenario::name");
        }
        assert!(build_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn execute_request_types_every_failure() {
        let limits = RequestLimits::default();
        let unknown = Request {
            id: 1,
            scenario: "no-such-scenario".to_string(),
            n: 2,
            edges: vec![(0, 1)],
            exec: ExecSpec::default(),
        };
        assert!(matches!(
            execute_request(&unknown, &limits),
            Err(Reject::UnknownScenario { .. })
        ));

        let bad_graph = Request {
            id: 2,
            scenario: "congest".to_string(),
            n: 2,
            edges: vec![(1, 0)],
            exec: ExecSpec::default(),
        };
        assert!(matches!(
            execute_request(&bad_graph, &limits),
            Err(Reject::BadInput { .. })
        ));

        let bad_exec = Request {
            id: 3,
            scenario: "congest".to_string(),
            n: 2,
            edges: vec![(0, 1)],
            exec: ExecSpec {
                threads: None,
                cap_bits: Some(0),
            },
        };
        assert!(matches!(
            execute_request(&bad_exec, &limits),
            Err(Reject::BadInput { .. })
        ));
    }

    #[test]
    fn execute_request_bounces_oversized_requests_before_allocating() {
        // A 20-byte request declaring 2^50 nodes must reject via the
        // limits check, not abort in `Graph::from_sorted_edges`'s
        // `vec![0; n]`, and must not spawn remote-controlled threads.
        let huge = Request {
            id: 1,
            scenario: "congest".to_string(),
            n: 1 << 50,
            edges: vec![],
            exec: ExecSpec::default(),
        };
        let limits = RequestLimits::default();
        match execute_request(&huge, &limits) {
            Err(Reject::BadInput { detail }) => assert!(detail.contains("nodes"), "got: {detail}"),
            other => panic!("expected BadInput, got {other:?}"),
        }

        let greedy = Request {
            id: 2,
            scenario: "congest".to_string(),
            n: 2,
            edges: vec![(0, 1)],
            exec: ExecSpec {
                threads: Some(1 << 40),
                cap_bits: None,
            },
        };
        match execute_request(&greedy, &limits) {
            Err(Reject::BadInput { detail }) => {
                assert!(detail.contains("threads"), "got: {detail}")
            }
            other => panic!("expected BadInput, got {other:?}"),
        }
    }
}

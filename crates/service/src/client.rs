//! The service client: one TCP connection, pipelined request ids, typed
//! errors.
//!
//! [`ServiceClient::color`] is the one-call path (submit + wait); the
//! [`ServiceClient::submit`] / [`ServiceClient::wait`] pair pipelines many
//! requests onto the same connection — the server answers them as its
//! worker shards finish, in any order, and the client files responses by
//! id until asked for them. [`ServiceClient::close`] says goodbye and waits
//! for the server's drain-complete goodbye, so a clean close proves every
//! admitted request was answered.

use crate::proto::{
    check_hello, decode_response, encode_goodbye, encode_hello, encode_request, Reject, Request,
    Response, ServiceError,
};
use dcl_graphs::Graph;
use dcl_runner::WireReport;
use dcl_sim::deadline::Deadline;
use dcl_sim::transport::{FrameKind, FrameReader};
use dcl_sim::ExecConfig;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// How long a socket read blocks before the wait loop re-checks its
/// deadline.
const READ_TICK: Duration = Duration::from_millis(10);

/// Liveness bound on the handshake.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Liveness bound on waiting for one response (covers the server's queue
/// time plus the run itself).
const RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

/// Byte and message counters for one client connection. Totals are
/// deterministic for a fixed request sequence (both sides' encoders are) —
/// the E15 service-overhead table is built from them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests submitted.
    pub requests: u64,
    /// Responses received (and parsed).
    pub responses: u64,
    /// Bytes written to the socket, framing included (handshake +
    /// requests).
    pub bytes_sent: u64,
    /// Bytes read from the socket, framing included (handshake +
    /// responses).
    pub bytes_received: u64,
}

/// A connected service client.
#[derive(Debug)]
pub struct ServiceClient {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
    /// Responses that arrived while waiting for a different id, filed by
    /// id until their `wait` call (sorted map — no hash-order iteration in
    /// determinism-tier code). Each id holds a queue in arrival order:
    /// [`ServiceClient::submit_request`] supports reusing an id, so two
    /// responses to the same id must both survive until their `wait`s.
    ready: BTreeMap<u64, VecDeque<Result<WireReport, Reject>>>,
    stats: ClientStats,
    server_version: u32,
    /// Set once the server's goodbye frame arrives; no more responses will
    /// come.
    server_done: bool,
}

impl ServiceClient {
    /// Dials the server and runs the version handshake.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Disconnected`] if the dial or socket setup fails,
    /// [`ServiceError::Protocol`] if the server speaks a different
    /// protocol.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<ServiceClient, ServiceError> {
        let fail = |what: &'static str| {
            move |e: io::Error| ServiceError::Disconnected {
                detail: format!("{what}: {e}"),
            }
        };
        let stream = TcpStream::connect(addr).map_err(fail("connect"))?;
        stream.set_nodelay(true).map_err(fail("set_nodelay"))?;
        stream
            .set_read_timeout(Some(READ_TICK))
            .map_err(fail("set_read_timeout"))?;
        let mut client = ServiceClient {
            stream,
            reader: FrameReader::new(),
            next_id: 0,
            ready: BTreeMap::new(),
            stats: ClientStats::default(),
            server_version: 0,
            server_done: false,
        };
        let mut out = Vec::new();
        encode_hello(&mut out);
        client.write_bytes(&out)?;
        let deadline = Deadline::after(HANDSHAKE_TIMEOUT);
        let frame = loop {
            if let Some(frame) = client.parse_frame()? {
                break frame;
            }
            client.read_tick(&deadline, "server sent no hello")?;
        };
        client.server_version = check_hello(&frame)?;
        Ok(client)
    }

    /// The protocol version the server announced in its handshake.
    #[must_use]
    pub fn server_version(&self) -> u32 {
        self.server_version
    }

    /// Connection counters so far.
    #[must_use]
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Submits one request with a fresh pipelined id; returns the id to
    /// [`wait`](ServiceClient::wait) on.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Disconnected`] if the write fails.
    pub fn submit(
        &mut self,
        scenario: &str,
        graph: &Graph,
        exec: &ExecConfig,
    ) -> Result<u64, ServiceError> {
        let id = self.next_id;
        self.next_id += 1;
        self.submit_request(&Request::for_graph(id, scenario, graph, exec))?;
        Ok(id)
    }

    /// Submits a caller-built [`Request`] verbatim (id included) — the
    /// determinism tests use this to send the *same* request twice.
    /// Reused ids are fully supported: their responses are filed in
    /// arrival order, one per [`wait`](ServiceClient::wait) call.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Disconnected`] if the write fails.
    pub fn submit_request(&mut self, request: &Request) -> Result<(), ServiceError> {
        let mut out = Vec::new();
        encode_request(request, &mut out);
        self.write_bytes(&out)?;
        self.stats.requests += 1;
        self.next_id = self.next_id.max(request.id + 1);
        Ok(())
    }

    /// Waits for the response to `id`, filing any other responses that
    /// arrive first.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] when the server declined the request,
    /// [`ServiceError::Disconnected`] /[`ServiceError::Protocol`] on
    /// connection or protocol failures.
    pub fn wait(&mut self, id: u64) -> Result<WireReport, ServiceError> {
        let deadline = Deadline::after(RESPONSE_TIMEOUT);
        loop {
            if let Some(outcome) = self.take_ready(id) {
                return outcome.map_err(ServiceError::Rejected);
            }
            if self.server_done {
                return Err(ServiceError::Disconnected {
                    detail: format!("server said goodbye before answering request {id}"),
                });
            }
            if let Some(frame) = self.parse_frame()? {
                match frame.kind {
                    FrameKind::Data => self.file_response(decode_response(&frame)?),
                    FrameKind::EndRound => self.server_done = true,
                    FrameKind::Hello => {
                        return Err(ServiceError::Protocol {
                            detail: "unexpected hello after the handshake".to_string(),
                        })
                    }
                }
                continue;
            }
            self.read_tick(&deadline, "no response before the client deadline")?;
        }
    }

    /// Submit + wait in one call.
    ///
    /// # Errors
    ///
    /// As for [`submit`](ServiceClient::submit) and
    /// [`wait`](ServiceClient::wait).
    pub fn color(
        &mut self,
        graph: &Graph,
        scenario: &str,
        exec: &ExecConfig,
    ) -> Result<WireReport, ServiceError> {
        let id = self.submit(scenario, graph, exec)?;
        self.wait(id)
    }

    /// Says goodbye and waits for the server's drain-complete goodbye,
    /// returning the final counters. Consumes the client; a clean return
    /// proves the server answered everything it admitted on this
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Disconnected`] /[`ServiceError::Protocol`] if the
    /// connection or protocol fails before the server's goodbye.
    pub fn close(mut self) -> Result<ClientStats, ServiceError> {
        let mut out = Vec::new();
        encode_goodbye(&mut out);
        self.write_bytes(&out)?;
        let deadline = Deadline::after(RESPONSE_TIMEOUT);
        while !self.server_done {
            if let Some(frame) = self.parse_frame()? {
                match frame.kind {
                    FrameKind::Data => {
                        // Responses to requests nobody waited on; count and
                        // file them like any other.
                        self.file_response(decode_response(&frame)?);
                    }
                    FrameKind::EndRound => self.server_done = true,
                    FrameKind::Hello => {
                        return Err(ServiceError::Protocol {
                            detail: "unexpected hello after the handshake".to_string(),
                        })
                    }
                }
                continue;
            }
            self.read_tick(&deadline, "server never said goodbye")?;
        }
        Ok(self.stats)
    }

    /// Counts and files one received response under its id, behind any
    /// earlier unclaimed response to the same id.
    fn file_response(&mut self, response: Response) {
        self.stats.responses += 1;
        self.ready
            .entry(response.id)
            .or_default()
            .push_back(response.outcome);
    }

    /// Pops the oldest filed response for `id`, dropping the id's queue
    /// once empty.
    fn take_ready(&mut self, id: u64) -> Option<Result<WireReport, Reject>> {
        let queue = self.ready.get_mut(&id)?;
        let outcome = queue.pop_front();
        if queue.is_empty() {
            self.ready.remove(&id);
        }
        outcome
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), ServiceError> {
        self.stream
            .write_all(bytes)
            .map_err(|e| ServiceError::Disconnected {
                detail: format!("write failed: {e}"),
            })?;
        self.stats.bytes_sent += bytes.len() as u64;
        Ok(())
    }

    /// Pulls the next whole frame out of the reassembly buffer, if one is
    /// already there.
    fn parse_frame(&mut self) -> Result<Option<dcl_sim::transport::RawFrame>, ServiceError> {
        self.reader
            .next_frame()
            .map_err(|e| ServiceError::Protocol {
                detail: e.to_string(),
            })
    }

    /// One bounded read into the reassembly buffer; `context` names what
    /// we were waiting for if the deadline expires.
    fn read_tick(&mut self, deadline: &Deadline, context: &str) -> Result<(), ServiceError> {
        if deadline.expired() {
            return Err(ServiceError::Disconnected {
                detail: context.to_string(),
            });
        }
        let mut buf = [0u8; 4096];
        match self.stream.read(&mut buf) {
            Ok(0) => Err(ServiceError::Disconnected {
                detail: "server closed the stream".to_string(),
            }),
            Ok(n) => {
                self.reader.push(&buf[..n]);
                self.stats.bytes_received += n as u64;
                Ok(())
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                Ok(())
            }
            Err(e) => Err(ServiceError::Disconnected {
                detail: format!("read failed: {e}"),
            }),
        }
    }
}

//! The coloring service binary: a long-lived localhost TCP server
//! answering [`dcl_service`] protocol requests for every registered
//! scenario.
//!
//! ```text
//! dcl_serve [--addr HOST:PORT] [--workers N] [--max-inflight N]
//!           [--timeout-ms MS] [--max-nodes N] [--max-edges N]
//!           [--max-threads N]
//! ```
//!
//! Defaults mirror [`ServiceConfig::default`] (loopback with an OS-chosen
//! port, 2 workers). The bound address is printed as `listening on ADDR`
//! once the socket is ready, so harnesses that pass `--addr 127.0.0.1:0`
//! can scrape the port. Runs until killed.

use dcl_service::{scenario_names, Server, ServiceConfig};
use std::net::SocketAddr;
use std::process::exit;
use std::time::Duration;

fn usage_error(message: &str) -> ! {
    eprintln!("dcl_serve: {message}");
    eprintln!(
        "usage: dcl_serve [--addr HOST:PORT] [--workers N] [--max-inflight N] [--timeout-ms MS] \
         [--max-nodes N] [--max-edges N] [--max-threads N]"
    );
    exit(2);
}

fn parse_config(args: &[String]) -> ServiceConfig {
    let mut config = ServiceConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .unwrap_or_else(|| usage_error(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addr" => {
                let raw = value_of("--addr");
                let addr: SocketAddr = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad address '{raw}'")));
                config = config.with_addr(addr);
            }
            "--workers" => {
                let raw = value_of("--workers");
                let workers: usize = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad worker count '{raw}'")));
                config = config.with_workers(workers);
            }
            "--max-inflight" => {
                let raw = value_of("--max-inflight");
                let max: usize = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad inflight limit '{raw}'")));
                config = config.with_max_inflight(max);
            }
            "--timeout-ms" => {
                let raw = value_of("--timeout-ms");
                let ms: u64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad timeout '{raw}'")));
                config = config.with_request_timeout(Duration::from_millis(ms));
            }
            "--max-nodes" => {
                let raw = value_of("--max-nodes");
                let max: u64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad node limit '{raw}'")));
                config = config.with_limits(config.limits.with_max_nodes(max));
            }
            "--max-edges" => {
                let raw = value_of("--max-edges");
                let max: u64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad edge limit '{raw}'")));
                config = config.with_limits(config.limits.with_max_edges(max));
            }
            "--max-threads" => {
                let raw = value_of("--max-threads");
                let max: u64 = raw
                    .parse()
                    .unwrap_or_else(|_| usage_error(&format!("bad thread limit '{raw}'")));
                config = config.with_limits(config.limits.with_max_threads(max));
            }
            other => usage_error(&format!("unknown flag '{other}'")),
        }
    }
    config
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = parse_config(&args);
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("dcl_serve: bind {} failed: {e}", config.addr);
            exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    println!("listening on {addr}");
    println!(
        "workers={} max-inflight={} timeout-ms={} max-nodes={} max-edges={} max-threads={} \
         scenarios={}",
        config.workers,
        config.max_inflight,
        config.request_timeout.as_millis(),
        config.limits.max_nodes,
        config.limits.max_edges,
        config.limits.max_threads,
        scenario_names().join(",")
    );
    server.run();
}

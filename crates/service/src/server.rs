//! The long-lived coloring server: localhost TCP listener, per-connection
//! reader/writer threads, and one sharded worker pool shared by every
//! connection.
//!
//! # Threading model
//!
//! ```text
//! accept loop ──spawns──▶ connection threads ──admit──▶ shared job queue
//!                         (one reader + one                  │
//!                          writer per socket)                ▼
//!                               ▲                 dispatcher thread
//!                               │                 (dcl_par::Pool, one
//!                               └──── mpsc ◀───── shard per worker)
//! ```
//!
//! Requests are admitted under an exact max-inflight limit — over the limit
//! they are shed immediately with a typed [`Reject::Busy`] (never queued,
//! so the accept loop and readers never stall behind slow work). Admitted
//! jobs are batched by the dispatcher and sharded by `request.id %
//! workers`: equal ids always land on the same shard, so a repeated request
//! cannot race itself, and each shard runs its jobs in arrival order. The
//! run itself goes through [`dcl_runner::run_protected`], so scenario
//! panics and budget violations come back as typed rejects instead of
//! killing a worker; before it, the configured [`RequestLimits`] bound
//! what a request may declare (nodes, edges, threads) so remote input can
//! never size an allocation or a thread pool.
//!
//! # Determinism
//!
//! A request's outcome depends only on the request (scenario registry +
//! `run_protected` are deterministic); concurrency exists only *across*
//! requests. The service determinism suite pins this: the same request
//! yields byte-identical response payloads, alone or under concurrent load.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] (also run on drop) stops the accept loop,
//! lets every connection finish its drain — each connection waits for its
//! outstanding admitted jobs, answers them, then sends its goodbye frame —
//! and only then stops the dispatcher. Clients always see every admitted
//! request answered before the goodbye.

use crate::execute_request;
use crate::proto::{
    check_hello, decode_request, encode_goodbye, encode_hello, encode_response, Reject, Request,
    RequestLimits, Response, ServiceError,
};
use dcl_par::Pool;
use dcl_runner::{RunErrorKind, WireRunError};
use dcl_sim::deadline::{park_tick, Deadline};
use dcl_sim::transport::{FrameKind, FrameReader};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How long a socket read blocks before the loop re-checks its deadline
/// and the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(10);

/// Liveness bound on the handshake and on waiting for a response to start
/// arriving.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Liveness bound on a connection's shutdown drain — how long it waits for
/// its outstanding jobs before giving up and saying goodbye anyway.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(60);

/// Server tuning knobs.
///
/// `#[non_exhaustive]` — build with [`Default`] plus the `with_*` setters,
/// so future knobs are not semver breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Listen address (default `127.0.0.1:0` — loopback, OS-chosen port).
    pub addr: SocketAddr,
    /// Worker shard count of the execution pool (clamped to ≥ 1).
    pub workers: usize,
    /// Admission limit: requests beyond this many in flight are shed with
    /// [`Reject::Busy`]. `0` sheds everything (the deterministic
    /// always-busy configuration the tests use).
    pub max_inflight: usize,
    /// Per-request deadline, measured from admission to a worker picking
    /// the job up. `Duration::ZERO` times everything out (the
    /// deterministic always-late configuration the tests use).
    pub request_timeout: Duration,
    /// Admission bounds on each request's declared sizes (nodes, edges,
    /// threads), checked before any allocation or spawn — see
    /// [`RequestLimits`]. Violations come back as [`Reject::BadInput`].
    pub limits: RequestLimits,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: SocketAddr::from(([127, 0, 0, 1], 0)),
            workers: 2,
            max_inflight: 64,
            request_timeout: Duration::from_secs(10),
            limits: RequestLimits::default(),
        }
    }
}

impl ServiceConfig {
    /// Sets the listen address (builder style).
    #[must_use]
    pub fn with_addr(mut self, addr: SocketAddr) -> Self {
        self.addr = addr;
        self
    }

    /// Sets the worker shard count (builder style).
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the admission limit (builder style).
    #[must_use]
    pub fn with_max_inflight(mut self, max_inflight: usize) -> Self {
        self.max_inflight = max_inflight;
        self
    }

    /// Sets the per-request deadline (builder style).
    #[must_use]
    pub fn with_request_timeout(mut self, request_timeout: Duration) -> Self {
        self.request_timeout = request_timeout;
        self
    }

    /// Sets the per-request admission bounds (builder style).
    #[must_use]
    pub fn with_limits(mut self, limits: RequestLimits) -> Self {
        self.limits = limits;
        self
    }
}

/// What a connection's writer thread ships next.
enum Outbound {
    /// One response frame.
    Response(Response),
    /// Drain is complete: write the goodbye frame and exit.
    End,
}

/// One admitted request waiting for a worker.
struct Job {
    request: Request,
    deadline: Deadline,
    reply: ReplyHandle,
}

/// The job's way back to its connection: the writer channel plus the
/// connection's outstanding-job counter (drained before goodbye).
#[derive(Clone)]
struct ReplyHandle {
    tx: mpsc::Sender<Outbound>,
    outstanding: Arc<AtomicUsize>,
}

impl ReplyHandle {
    fn respond(&self, response: Response) {
        // The send completes before the decrement, so a connection that
        // observes `outstanding == 0` knows every response is already in
        // the channel ahead of its goodbye. A send error just means the
        // connection died first; the decrement must still happen.
        let _ = self.tx.send(Outbound::Response(response));
        self.outstanding.fetch_sub(1, Ordering::SeqCst);
    }
}

/// State shared by the accept loop, connection threads and dispatcher.
struct Shared {
    config: ServiceConfig,
    /// Set once by [`ServerHandle::shutdown`]; everything winds down.
    shutdown: AtomicBool,
    /// Set by the accept loop after every connection thread has finished
    /// (no more jobs can arrive); the dispatcher exits once this is set
    /// and the queue is empty.
    drained: AtomicBool,
    /// Exact count of admitted, unanswered requests across all
    /// connections.
    inflight: AtomicUsize,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
}

impl Shared {
    /// Admission control: either reserves an inflight slot (exactly, via
    /// compare-exchange — two racing requests cannot both take the last
    /// slot) and queues the job, or sheds the request with a typed busy
    /// response.
    fn admit(&self, request: Request, tx: &mpsc::Sender<Outbound>, outstanding: &Arc<AtomicUsize>) {
        let max = self.config.max_inflight;
        let admitted = self
            .inflight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                (v < max).then_some(v + 1)
            })
            .is_ok();
        if !admitted {
            let _ = tx.send(Outbound::Response(Response {
                id: request.id,
                outcome: Err(Reject::Busy {
                    inflight: self.inflight.load(Ordering::SeqCst) as u64,
                    max_inflight: max as u64,
                }),
            }));
            return;
        }
        outstanding.fetch_add(1, Ordering::SeqCst);
        let job = Job {
            request,
            deadline: Deadline::after(self.config.request_timeout),
            reply: ReplyHandle {
                tx: tx.clone(),
                outstanding: outstanding.clone(),
            },
        };
        let mut queue = self.queue.lock().expect("service queue lock poisoned");
        queue.push_back(job);
        drop(queue);
        self.queue_cv.notify_all();
    }

    /// Runs one job to a response and ships it back.
    ///
    /// The execution is double-shielded: [`execute_request`] checks the
    /// configured [`RequestLimits`] before allocating anything on the
    /// request's behalf, and the whole call sits under a `catch_unwind` —
    /// this runs on a dispatcher pool worker *outside*
    /// `run_protected`'s shield (which only covers the scenario run), so a
    /// stray panic in graph reconstruction or knob validation must become
    /// a typed reject here instead of killing the dispatcher.
    fn process(&self, job: Job) {
        let Job {
            request,
            deadline,
            reply,
        } = job;
        let outcome = if deadline.expired() {
            Err(Reject::TimedOut {
                limit_ms: self.config.request_timeout.as_millis() as u64,
            })
        } else {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                execute_request(&request, &self.config.limits)
            }))
            .unwrap_or_else(|payload| {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| String::from("<non-string panic payload>"));
                Err(Reject::Run(WireRunError {
                    kind: RunErrorKind::Panic,
                    message,
                }))
            })
        };
        let response = Response {
            id: request.id,
            outcome,
        };
        self.inflight.fetch_sub(1, Ordering::SeqCst);
        reply.respond(response);
    }
}

/// The dispatcher: drains the queue in batches, shards each batch by
/// `request.id % workers`, and runs the shards on the pool. Within a shard
/// jobs run in arrival order on one worker, so identical ids can never
/// race; across shards the pool runs them concurrently.
fn dispatcher_loop(shared: &Arc<Shared>) {
    let workers = shared.config.workers.max(1);
    let pool = Pool::new(workers);
    loop {
        let batch: Vec<Job> = {
            let mut queue = shared.queue.lock().expect("service queue lock poisoned");
            loop {
                if !queue.is_empty() {
                    break queue.drain(..).collect();
                }
                if shared.drained.load(Ordering::SeqCst) {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, READ_TICK)
                    .expect("service queue lock poisoned");
                queue = guard;
            }
        };
        let mut shards: Vec<Vec<Job>> = (0..workers).map(|_| Vec::new()).collect();
        for job in batch {
            let shard = (job.request.id % workers as u64) as usize;
            shards[shard].push(job);
        }
        let shards: Vec<Mutex<Vec<Job>>> = shards.into_iter().map(Mutex::new).collect();
        pool.run(workers, &|w| {
            let jobs = std::mem::take(&mut *shards[w].lock().expect("shard lock poisoned"));
            for job in jobs {
                shared.process(job);
            }
        });
    }
}

/// One nonblocking-read tick's outcome.
enum ReadEvent {
    /// Some bytes arrived and were pushed into the frame reader.
    Bytes,
    /// The read timed out; check deadlines/flags and try again.
    Idle,
    /// The peer closed the stream.
    Eof,
}

/// Reads once from `stream` (bounded by its read timeout) into `reader`.
fn read_tick(stream: &mut TcpStream, reader: &mut FrameReader) -> Result<ReadEvent, ServiceError> {
    let mut buf = [0u8; 4096];
    match stream.read(&mut buf) {
        Ok(0) => Ok(ReadEvent::Eof),
        Ok(n) => {
            reader.push(&buf[..n]);
            Ok(ReadEvent::Bytes)
        }
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            ) =>
        {
            Ok(ReadEvent::Idle)
        }
        Err(e) => Err(ServiceError::Disconnected {
            detail: format!("read failed: {e}"),
        }),
    }
}

/// Reads whole frames until one arrives, bounded by `deadline`.
fn read_frame_deadline(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    deadline: Deadline,
) -> Result<dcl_sim::transport::RawFrame, ServiceError> {
    loop {
        if let Some(frame) = reader.next_frame().map_err(|e| ServiceError::Protocol {
            detail: e.to_string(),
        })? {
            return Ok(frame);
        }
        if deadline.expired() {
            return Err(ServiceError::Disconnected {
                detail: "peer sent no frame before the deadline".to_string(),
            });
        }
        match read_tick(stream, reader)? {
            ReadEvent::Eof => {
                return Err(ServiceError::Disconnected {
                    detail: "peer closed the stream mid-frame".to_string(),
                })
            }
            ReadEvent::Bytes | ReadEvent::Idle => {}
        }
    }
}

/// The read half of one connection: decode requests and admit them until
/// the client says goodbye, closes the stream, or the server shuts down.
fn read_requests(
    shared: &Shared,
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    tx: &mpsc::Sender<Outbound>,
    outstanding: &Arc<AtomicUsize>,
) -> Result<(), ServiceError> {
    loop {
        while let Some(frame) = reader.next_frame().map_err(|e| ServiceError::Protocol {
            detail: e.to_string(),
        })? {
            match frame.kind {
                FrameKind::Data => shared.admit(decode_request(&frame)?, tx, outstanding),
                FrameKind::EndRound => return Ok(()),
                FrameKind::Hello => {
                    return Err(ServiceError::Protocol {
                        detail: "unexpected hello after the handshake".to_string(),
                    })
                }
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        match read_tick(stream, reader)? {
            ReadEvent::Eof => return Ok(()),
            ReadEvent::Bytes | ReadEvent::Idle => {}
        }
    }
}

/// The write half: serializes outbound frames onto the socket; on
/// [`Outbound::End`] writes the goodbye frame and exits.
fn writer_loop(mut stream: TcpStream, rx: &mpsc::Receiver<Outbound>) {
    let mut out = Vec::new();
    for message in rx {
        out.clear();
        match message {
            Outbound::Response(response) => encode_response(&response, &mut out),
            Outbound::End => {
                encode_goodbye(&mut out);
                let _ = stream.write_all(&out);
                let _ = stream.flush();
                return;
            }
        }
        if stream.write_all(&out).is_err() {
            return; // connection died; readers/jobs notice independently
        }
    }
}

/// One accepted connection, start to finish: handshake, request loop,
/// drain, goodbye. Errors tear the connection down without touching the
/// rest of the server.
fn serve_connection(shared: &Arc<Shared>, mut stream: TcpStream) -> Result<(), ServiceError> {
    let fail = |what: &'static str| {
        move |e: io::Error| ServiceError::Disconnected {
            detail: format!("{what}: {e}"),
        }
    };
    stream.set_nodelay(true).map_err(fail("set_nodelay"))?;
    stream
        .set_read_timeout(Some(READ_TICK))
        .map_err(fail("set_read_timeout"))?;

    let mut reader = FrameReader::new();
    let hello = read_frame_deadline(&mut stream, &mut reader, Deadline::after(HANDSHAKE_TIMEOUT))?;
    check_hello(&hello)?;
    let mut out = Vec::new();
    encode_hello(&mut out);
    stream.write_all(&out).map_err(fail("hello write"))?;

    let (tx, rx) = mpsc::channel();
    let outstanding = Arc::new(AtomicUsize::new(0));
    let writer_stream = stream.try_clone().map_err(fail("stream clone"))?;
    let writer = thread::spawn(move || writer_loop(writer_stream, &rx));

    let result = read_requests(shared, &mut stream, &mut reader, &tx, &outstanding);

    // Graceful drain: every admitted job must be answered (the dispatcher
    // keeps running until after all connections finish) before the goodbye
    // frame goes out.
    let drain = Deadline::after(DRAIN_TIMEOUT);
    while outstanding.load(Ordering::SeqCst) > 0 && !drain.expired() {
        park_tick();
    }
    let _ = tx.send(Outbound::End);
    drop(tx);
    let _ = writer.join();
    result
}

/// The accept loop: hands each connection to its own thread, reaps
/// finished ones, and on shutdown joins the rest before releasing the
/// dispatcher.
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                connections.push(thread::spawn(move || {
                    // A failed connection affects only itself.
                    let _ = serve_connection(&shared, stream);
                }));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => park_tick(),
            Err(_) => park_tick(), // transient accept failure; keep listening
        }
        connections.retain(|handle| !handle.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
    // No connection threads remain, so no new jobs can be admitted; let
    // the dispatcher exit once the queue runs dry.
    shared.drained.store(true, Ordering::SeqCst);
    shared.queue_cv.notify_all();
}

/// A bound-but-not-yet-serving server. Splitting bind from serve lets
/// callers learn the OS-chosen port before any client dials.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("config", &self.config)
            .field("inflight", &self.inflight)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener (nonblocking accepts; the loop parks through
    /// [`dcl_sim::deadline::park_tick`]).
    ///
    /// # Errors
    ///
    /// The underlying socket error if binding fails.
    pub fn bind(config: ServiceConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                shutdown: AtomicBool::new(false),
                drained: AtomicBool::new(false),
                inflight: AtomicUsize::new(0),
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
            }),
        })
    }

    /// The bound address (port resolved if the config asked for `:0`).
    ///
    /// # Errors
    ///
    /// The underlying socket error if the address cannot be read back.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts serving on background threads and returns the controlling
    /// handle.
    #[must_use]
    pub fn start(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("bound listener has an address");
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || dispatcher_loop(&shared))
        };
        let accept = {
            let shared = Arc::clone(&self.shared);
            let listener = self.listener;
            thread::spawn(move || accept_loop(&shared, &listener))
        };
        ServerHandle {
            addr,
            shared: self.shared,
            accept: Some(accept),
            dispatcher: Some(dispatcher),
        }
    }

    /// Serves on the calling thread (the `dcl_serve` binary's mode); only
    /// the dispatcher runs in the background. Returns when another thread
    /// flips the shutdown flag — for the binary, effectively never.
    pub fn run(self) {
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || dispatcher_loop(&shared))
        };
        accept_loop(&self.shared, &self.listener);
        let _ = dispatcher.join();
    }
}

/// A running server. Dropping the handle shuts the server down gracefully
/// (drain, then stop).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients dial.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Graceful shutdown: stop accepting, let every connection drain its
    /// admitted requests and say goodbye, stop the dispatcher. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_set_each_knob() {
        let config = ServiceConfig::default()
            .with_workers(5)
            .with_max_inflight(9)
            .with_request_timeout(Duration::from_millis(250))
            .with_addr(SocketAddr::from(([127, 0, 0, 1], 4000)))
            .with_limits(RequestLimits::default().with_max_nodes(100));
        assert_eq!(config.workers, 5);
        assert_eq!(config.max_inflight, 9);
        assert_eq!(config.request_timeout, Duration::from_millis(250));
        assert_eq!(config.addr.port(), 4000);
        assert_eq!(config.limits.max_nodes, 100);
        let defaults = ServiceConfig::default();
        assert!(defaults.max_inflight > 0);
        assert!(defaults.request_timeout > Duration::ZERO);
        assert_eq!(defaults.addr.ip().to_string(), "127.0.0.1");
        assert!(defaults.limits.max_nodes > 0);
        assert!(defaults.limits.max_threads > 0);
    }

    #[test]
    fn bind_resolves_an_os_chosen_port() {
        let server = Server::bind(ServiceConfig::default()).expect("bind loopback");
        let addr = server.local_addr().expect("addr");
        assert_ne!(addr.port(), 0);
        let mut handle = server.start();
        assert_eq!(handle.addr(), addr);
        handle.shutdown();
        handle.shutdown(); // idempotent
    }
}

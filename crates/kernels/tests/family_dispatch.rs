//! Pins the per-family default tier choices against the committed
//! `BENCH_bench.json` baseline.
//!
//! [`default_family_tier`] encodes measured decisions ("bit_len_batch is
//! fastest at the reference tier on the recording machine"); nothing else
//! would catch the table in `tier.rs` drifting out of sync with the
//! committed numbers. These tests parse the baseline's `kernels/*` rows and
//! assert the dispatched tier is never the measured-slowest one for its
//! family — the weakest claim that still catches an inverted default (a
//! re-recorded baseline on different hardware may legitimately reorder the
//! middle of the field).

use dcl_kernels::{
    clear_active_tier, default_family_tier, family_tier, set_active_tier, KernelFamily, KernelTier,
};
use std::collections::HashMap;

/// The committed baseline at the workspace root.
fn baseline_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_bench.json")
}

/// Extracts `id -> ns_per_iter` for every `kernels/*` row, with the
/// line-oriented matching the baseline's hand-written layout guarantees
/// (one `{ "suite": ..., "id": ..., "ns_per_iter": ... }` object per line).
fn kernel_rows() -> HashMap<String, f64> {
    let text = std::fs::read_to_string(baseline_path()).expect("committed BENCH_bench.json");
    let mut rows = HashMap::new();
    for line in text.lines() {
        let Some(id_at) = line.find("\"id\": \"kernels/") else {
            continue;
        };
        let id = &line[id_at + 7..];
        let id = &id[..id.find('"').expect("closing quote after id")];
        let ns_at = line.find("\"ns_per_iter\": ").expect("ns_per_iter field");
        let ns = &line[ns_at + 15..];
        let ns = &ns[..ns.find(',').expect("comma after ns_per_iter")];
        let ns: f64 = ns.trim().parse().expect("numeric ns_per_iter");
        rows.insert(id.to_string(), ns);
    }
    assert!(
        !rows.is_empty(),
        "no kernels/* rows in {}",
        baseline_path().display()
    );
    rows
}

/// The baseline row prefix whose per-tier measurements justify each
/// family's default. Ratio has no committed rows (its default stays
/// CPU-detected), so it is absent here.
const MEASURED: &[(KernelFamily, &str)] = &[
    (KernelFamily::DigitDp, "kernels/digit_dp/edge_shares/"),
    (KernelFamily::Argmin, "kernels/argmin/4096/"),
    (KernelFamily::Bits, "kernels/bit_len_batch/4096/"),
];

#[test]
fn default_tier_is_never_the_measured_slowest() {
    let rows = kernel_rows();
    for &(family, prefix) in MEASURED {
        let timed: Vec<(KernelTier, f64)> = KernelTier::all()
            .into_iter()
            .filter_map(|t| {
                rows.get(&format!("{prefix}{}", t.name()))
                    .map(|&ns| (t, ns))
            })
            .collect();
        assert!(
            timed.len() >= 3,
            "{prefix}* rows missing from the committed baseline"
        );
        let default = default_family_tier(family);
        let picked = timed
            .iter()
            .find(|(t, _)| *t == default)
            .unwrap_or_else(|| panic!("{prefix}{} row missing", default.name()));
        let worst = timed
            .iter()
            .cloned()
            .fold(f64::MIN, |acc, (_, ns)| acc.max(ns));
        assert!(
            picked.1 < worst,
            "{:?} dispatches to {} ({:.1} ns) which is the measured-slowest of {:?}",
            family,
            default.name(),
            picked.1,
            timed
        );
    }
}

#[test]
fn bit_len_default_matches_the_committed_regression() {
    // The concrete regression that motivated per-family dispatch: for
    // bit_len_batch the SIMD batching overhead exceeds the one-instruction
    // work item, so the committed numbers show the simd tier losing to the
    // dispatched default. (Reference vs scalar is within run-to-run noise
    // on the recording machine; the simd gap is the stable signal.)
    let rows = kernel_rows();
    let get = |tier: &str| rows[&format!("kernels/bit_len_batch/4096/{tier}")];
    let default = default_family_tier(KernelFamily::Bits);
    let default_ns = get(default.name());
    assert!(
        default_ns < get("simd"),
        "Bits defaults to {} ({default_ns:.1} ns) but the committed simd row ({:.1} ns) is faster",
        default.name(),
        get("simd")
    );
}

#[test]
fn override_forces_every_family() {
    for tier in KernelTier::all() {
        set_active_tier(tier);
        for family in [
            KernelFamily::DigitDp,
            KernelFamily::Argmin,
            KernelFamily::Bits,
            KernelFamily::Ratio,
        ] {
            assert_eq!(family_tier(family), tier, "{family:?} under forced tier");
        }
    }
    clear_active_tier();
    // Under a `DCL_KERNEL_TIER` environment override (the CI tier matrix)
    // clearing the in-process override resurfaces the env one, so the
    // per-family defaults are only observable without it.
    if std::env::var_os("DCL_KERNEL_TIER").is_none() {
        for family in [
            KernelFamily::DigitDp,
            KernelFamily::Argmin,
            KernelFamily::Bits,
            KernelFamily::Ratio,
        ] {
            assert_eq!(
                family_tier(family),
                default_family_tier(family),
                "{family:?} after clearing the override"
            );
        }
    }
}

//! Cross-tier bit-identity property tests.
//!
//! Every kernel family must produce **bit-identical** `f64` results under
//! all four tiers (`reference` / `scalar` / `simd` / `incremental`) — the
//! float-association rule of the crate docs, checked here with `to_bits`
//! equality rather than epsilon comparison. Inputs are arbitrary
//! same-slice form vectors, thresholds (including the inclusive `t = 2^b`
//! edge) and single-position overrides derived by real "fix one seed bit"
//! semantics. The stateful incremental evaluator is additionally driven
//! through full monotone seed schedules, checking warm-cache vs fresh
//! equality after every fix.

use dcl_kernels::digit_dp::{incremental, EdgeDpCache};
use dcl_kernels::{argmin, bits, digit_dp, ratio};
use dcl_kernels::{clear_active_tier, set_active_tier, BitForm, KernelTier};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Tier forcing mutates one process-global; serialize the tests in this
/// binary so no case observes a foreign tier mid-matrix.
fn lock_tier() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` once per tier (reference, scalar, simd, incremental — in that
/// order) and restores per-family dispatch afterwards.
fn per_tier<T>(mut f: impl FnMut() -> T) -> [T; 4] {
    let _guard = lock_tier();
    let out = KernelTier::all().map(|tier| {
        set_active_tier(tier);
        f()
    });
    clear_active_tier();
    out
}

fn assert_tiers_agree<T: PartialEq + std::fmt::Debug>(
    label: &str,
    results: [T; 4],
) -> Result<(), TestCaseError> {
    let [reference, scalar, simd, incremental] = results;
    prop_assert_eq!(
        &reference,
        &scalar,
        "{}: scalar diverged from reference",
        label
    );
    prop_assert_eq!(&reference, &simd, "{}: simd diverged from reference", label);
    prop_assert_eq!(
        &reference,
        &incremental,
        "{}: incremental diverged from reference",
        label
    );
    Ok(())
}

/// Decodes two same-slice form vectors of `b` digits from raw generator
/// words. Per position: `s_free` is shared (same slice, same seed), the
/// r-masks are independent `b`-bit subsets, and a `corr` bit forces the
/// masks equal so the `Correlated` case appears reliably. All five
/// `PairDist` cases arise.
#[allow(clippy::too_many_arguments)]
fn decode_forms(
    b: usize,
    s_free_bits: u64,
    off_x: u64,
    off_y: u64,
    mask_seed_x: u64,
    mask_seed_y: u64,
    corr_bits: u64,
) -> (Vec<BitForm>, Vec<BitForm>) {
    debug_assert!(b <= 6, "decode_forms packs 6-bit masks");
    let width = (1u64 << b) - 1;
    let mut fx = Vec::with_capacity(b);
    let mut fy = Vec::with_capacity(b);
    for i in 0..b {
        let s_free = s_free_bits >> i & 1 == 1;
        let mx = mask_seed_x >> (i * 6) & width;
        let my = if corr_bits >> i & 1 == 1 {
            mx
        } else {
            mask_seed_y >> (i * 6) & width
        };
        fx.push(BitForm {
            offset: off_x >> i & 1 == 1,
            mask: mx,
            s_free,
        });
        fy.push(BitForm {
            offset: off_y >> i & 1 == 1,
            mask: my,
            s_free,
        });
    }
    (fx, fy)
}

/// Applies "fix one seed bit of this slice to `val`" to a paired position:
/// either the shared `s` bit (when free and selected) or a free r-variable
/// `j`, dropped from each mask that contains it with `val` folded into the
/// offset. Preserves the same-slice invariant (shared `s_free`, masks stay
/// subsets), exactly like `SliceFamily::form_with_fix`.
fn fix_forms(fx: BitForm, fy: BitForm, which: u64, val: bool) -> (BitForm, BitForm) {
    let mut gx = fx;
    let mut gy = fy;
    if fx.s_free && which & 1 == 1 {
        gx.s_free = false;
        gy.s_free = false;
        if val {
            gx.offset = !gx.offset;
            gy.offset = !gy.offset;
        }
    } else {
        let j = which % 6;
        for g in [&mut gx, &mut gy] {
            if g.mask >> j & 1 == 1 {
                g.mask &= !(1u64 << j);
                if val {
                    g.offset = !g.offset;
                }
            }
        }
    }
    (gx, gy)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Marginal, joint and four-outcome coin DPs are bit-identical across
    /// tiers, with and without single-position overrides.
    #[test]
    fn digit_dp_probs_bit_identical_across_tiers(
        b in 1usize..=6,
        s_free_bits in any::<u64>(),
        offs in any::<u64>(),
        mask_seed_x in any::<u64>(),
        mask_seed_y in any::<u64>(),
        corr_bits in any::<u64>(),
        ts in any::<u64>(),
        ctrl in any::<u64>(),
    ) {
        let (fx, fy) = decode_forms(
            b, s_free_bits, offs, offs >> 8, mask_seed_x, mask_seed_y, corr_bits,
        );
        let full = 1u64 << b;
        let (tx, ty) = (ts % (full + 1), (ts >> 32) % (full + 1));
        let p = (ctrl % b as u64) as usize;
        let (over_which, over_val, use_over) =
            (ctrl >> 8, ctrl >> 16 & 1 == 1, ctrl >> 17 & 1 == 1);
        let (ox, oy) = fix_forms(fx[p], fy[p], over_which, over_val);
        let (over_x, over_y) = if use_over {
            (Some((p, ox)), Some((p, oy)))
        } else {
            (None, None)
        };

        let results = per_tier(|| {
            let marginal_x = digit_dp::prob_lt_override(&fx, over_x, tx).to_bits();
            let marginal_y = digit_dp::prob_lt_override(&fy, over_y, ty).to_bits();
            let joint =
                digit_dp::prob_joint_lt_override(&fx, over_x, tx, &fy, over_y, ty).to_bits();
            let coins = digit_dp::joint_coin_probs_override(&fx, over_x, tx, &fy, over_y, ty)
                .map(f64::to_bits);
            (marginal_x, marginal_y, joint, coins)
        });
        assert_tiers_agree("digit_dp probs", results)?;
    }

    /// The per-edge aggregation kernels (`edge_shares`, `joint_interval`)
    /// are bit-identical across tiers — these are the entry points the
    /// SIMD tier actually lane-pairs, so they exercise the masked-lane
    /// `+0.0` argument directly.
    #[test]
    fn edge_aggregation_bit_identical_across_tiers(
        b in 1usize..=6,
        s_free_bits in any::<u64>(),
        offs in any::<u64>(),
        mask_seed_u in any::<u64>(),
        mask_seed_v in any::<u64>(),
        corr_bits in any::<u64>(),
        ts in any::<u64>(),
        bounds_raw in any::<u64>(),
        ctrl in any::<u64>(),
        kraw in any::<u64>(),
    ) {
        let (fu, fv) = decode_forms(
            b, s_free_bits, offs, offs >> 8, mask_seed_u, mask_seed_v, corr_bits,
        );
        let full = 1u64 << b;
        let (tu, tv) = (ts % (full + 1), (ts >> 32) % (full + 1));
        let slice = (ctrl % b as u64) as usize;
        let over_which = ctrl >> 8;
        let (k0_u, k1_u, k0_v, k1_v) = (
            (kraw % 9) as usize,
            ((kraw >> 8) % 9) as usize,
            ((kraw >> 16) % 9) as usize,
            ((kraw >> 24) % 9) as usize,
        );
        let (u0, v0) = fix_forms(fu[slice], fv[slice], over_which, false);
        let (u1, v1) = fix_forms(fu[slice], fv[slice], over_which, true);
        let inv = ratio::recip_or_zero;

        let (a, bb) = (bounds_raw % (full + 1), bounds_raw >> 8 & 0xff);
        let (ul, uh) = (a.min(bb % (full + 1)), a.max(bb % (full + 1)));
        let c = bounds_raw >> 16 & 0xff;
        let d = bounds_raw >> 24 & 0xff;
        let (vl, vh) = ((c % (full + 1)).min(d % (full + 1)), (c % (full + 1)).max(d % (full + 1)));

        let results = per_tier(|| {
            let shares = digit_dp::edge_shares(
                &fu, [u0, u1], tu, inv(k0_u), inv(k1_u),
                &fv, [v0, v1], tv, inv(k0_v), inv(k1_v),
                slice,
            )
            .map(f64::to_bits);
            let interval = digit_dp::joint_interval(&fu, ul, uh, &fv, vl, vh).to_bits();
            (shares, interval)
        });
        assert_tiers_agree("edge aggregation", results)?;
    }

    /// `argmin_f64` is bit-identical across tiers on adversarial score
    /// vectors: ties, NaN, infinities, signed zeros, arbitrary lengths
    /// (covering lane remainders and the `len < 8` SIMD bail-out).
    #[test]
    fn argmin_bit_identical_across_tiers(
        raw in collection::vec((0u8..8, 0.0f64..1.0), 0..48),
    ) {
        let scores: Vec<f64> = raw
            .iter()
            .map(|&(code, v)| match code {
                4 => f64::NAN,
                5 => f64::INFINITY,
                6 => 0.0,
                7 => -0.0,
                // Quantize to 1/8ths so exact ties are common.
                _ => (v * 8.0).floor() / 8.0,
            })
            .collect();

        // The per-tier implementations are public: compare them directly,
        // then confirm the dispatcher routes to the same answer per tier.
        let anchor = argmin::reference(&scores);
        let anchor_bits = (anchor.0.to_bits(), anchor.1);
        let scalar = argmin::scalar(&scores);
        let simd = argmin::simd(&scores);
        prop_assert_eq!((scalar.0.to_bits(), scalar.1), anchor_bits, "scalar");
        prop_assert_eq!((simd.0.to_bits(), simd.1), anchor_bits, "simd");
        let dispatched = per_tier(|| {
            let (m, i) = argmin::argmin_f64(&scores);
            (m.to_bits(), i)
        });
        assert_tiers_agree("argmin dispatch", dispatched)?;
        prop_assert_eq!(dispatched_anchor(&scores), anchor_bits);
    }

    /// The bit-accounting batches (`bit_len_batch`, `recip_batch`,
    /// `ratio_batch`) match their single-value anchors bit for bit under
    /// every tier.
    #[test]
    fn batches_bit_identical_across_tiers(
        vals in collection::vec(any::<u64>(), 0..48),
        ks in collection::vec(0usize..10_000, 0..48),
        pairs in collection::vec((0usize..10_000, 1usize..10_000), 0..48),
    ) {
        let (nums, dens): (Vec<usize>, Vec<usize>) = pairs.iter().copied().unzip();
        let results = per_tier(|| {
            let mut lens = vec![0u32; vals.len()];
            bits::bit_len_batch(&vals, &mut lens);
            let mut recips = vec![0.0f64; ks.len()];
            ratio::recip_batch(&ks, &mut recips);
            let mut ratios = vec![0.0f64; nums.len()];
            ratio::ratio_batch(&nums, &dens, &mut ratios);
            (
                lens,
                recips.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
                ratios.iter().map(|r| r.to_bits()).collect::<Vec<_>>(),
            )
        });
        assert_tiers_agree("batches", results.clone())?;

        // Anchor against the single-value functions.
        let (lens, recips, ratios) = &results[0];
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(lens[i], bits::bit_len(v));
        }
        for (i, &k) in ks.iter().enumerate() {
            prop_assert_eq!(recips[i], ratio::recip_or_zero(k).to_bits());
        }
        for (i, (&n, &d)) in nums.iter().zip(&dens).enumerate() {
            prop_assert_eq!(ratios[i], ratio::ratio(n, d).to_bits());
        }
    }

    /// The stateful incremental evaluator driven through a full monotone
    /// seed schedule: slices are processed in increasing order, and within
    /// each slice's window several seed bits are fixed in turn (mutating
    /// only that slice's form — the contract `EdgeDpCache` relies on).
    /// After **every** fix, the warm persistent cache must agree bitwise
    /// with a cold cache and with the stateless dispatched evaluator.
    #[test]
    fn incremental_cache_matches_fresh_across_monotone_schedule(
        b in 1usize..=6,
        s_free_bits in any::<u64>(),
        offs in any::<u64>(),
        mask_seed_u in any::<u64>(),
        mask_seed_v in any::<u64>(),
        corr_bits in any::<u64>(),
        ts in any::<u64>(),
        kraw in any::<u64>(),
        fix_ctrl in any::<u64>(),
    ) {
        let (mut fu, mut fv) = decode_forms(
            b, s_free_bits, offs, offs >> 8, mask_seed_u, mask_seed_v, corr_bits,
        );
        let full = 1u64 << b;
        let (tu, tv) = (ts % (full + 1), (ts >> 32) % (full + 1));
        let inv = ratio::recip_or_zero;
        let (k0_u, k1_u, k0_v, k1_v) = (
            (kraw % 9) as usize,
            ((kraw >> 8) % 9) as usize,
            ((kraw >> 16) % 9) as usize,
            ((kraw >> 24) % 9) as usize,
        );
        let mut warm = EdgeDpCache::new();
        let mut warm_marg = incremental::MarginalDpCache::new();
        for slice in 0..b {
            // A window of "m + 1 = 3" seed bits per slice.
            for step in 0..3usize {
                let which = fix_ctrl >> (slice * 8 + step * 2);
                let val = fix_ctrl >> (32 + slice + step) & 1 == 1;
                let (u0, v0) = fix_forms(fu[slice], fv[slice], which, false);
                let (u1, v1) = fix_forms(fu[slice], fv[slice], which, true);

                let cached = incremental::edge_shares(
                    &mut warm,
                    &fu, [u0, u1], tu, inv(k0_u), inv(k1_u),
                    &fv, [v0, v1], tv, inv(k0_v), inv(k1_v),
                    slice,
                ).map(f64::to_bits);
                let mut cold = EdgeDpCache::new();
                let fresh = incremental::edge_shares(
                    &mut cold,
                    &fu, [u0, u1], tu, inv(k0_u), inv(k1_u),
                    &fv, [v0, v1], tv, inv(k0_v), inv(k1_v),
                    slice,
                ).map(f64::to_bits);
                // Bit-identical under any tier, so no tier lock is needed.
                let stateless = digit_dp::edge_shares(
                    &fu, [u0, u1], tu, inv(k0_u), inv(k1_u),
                    &fv, [v0, v1], tv, inv(k0_v), inv(k1_v),
                    slice,
                ).map(f64::to_bits);
                prop_assert_eq!(cached, fresh, "warm vs cold at slice {} step {}", slice, step);
                prop_assert_eq!(cached, stateless, "warm vs stateless at slice {} step {}", slice, step);

                let marg = incremental::prob_lt_override(&mut warm_marg, &fu, u1, tu, slice)
                    .to_bits();
                let marg_ref = digit_dp::prob_lt_override(&fu, Some((slice, u1)), tu).to_bits();
                prop_assert_eq!(marg, marg_ref, "marginal at slice {} step {}", slice, step);

                // Commit the fix: the chosen candidate becomes the slice's
                // form — only `slice`'s position mutates, as in
                // `SliceFamily::update_forms_on_fix`.
                let (gu, gv) = if val { (u1, v1) } else { (u0, v0) };
                fu[slice] = gu;
                fv[slice] = gv;
            }
        }
    }
}

/// One dispatched call under whatever tier is currently active — used to
/// check the dispatcher agrees with the direct reference call outside the
/// forced-tier window.
fn dispatched_anchor(scores: &[f64]) -> (u64, usize) {
    let (m, i) = argmin::argmin_f64(scores);
    (m.to_bits(), i)
}

//! Arch-dispatched numeric kernels for the simulator's hot loops.
//!
//! ~90% of Theorem 1.1 runtime is the Lemma 2.6 per-edge
//! conditional-expectation loop; the rest of the budget is dominated by the
//! drivers' `argmin_f64` candidate selection and the wire-accounting
//! arithmetic. This crate owns those three numeric families as *kernels*
//! with four implementation tiers, selected at runtime by one
//! dispatch module ([`tier`]):
//!
//! - **reference** — the code exactly as it lived at its original call
//!   site, moved verbatim. The semantic anchor every other tier is proven
//!   against.
//! - **scalar** — SoA (struct-of-arrays) restructured, allocation-free,
//!   autovectorization-friendly. Replays the reference's float operation
//!   sequence step for step, so results are bit-identical by construction.
//! - **simd** — explicit stable `std::arch` SIMD on x86_64 (SSE2 for the
//!   digit DP, AVX2 for `argmin`/`bit_len` when detected at runtime via
//!   [`std::arch::is_x86_feature_detected`]), falling back to `scalar`
//!   elsewhere.
//! - **incremental** — stateful digit-DP evaluation
//!   ([`digit_dp::incremental`]): callers following the monotone seed
//!   schedule carry a per-edge [`digit_dp::EdgeDpCache`] of DP prefix
//!   states, so each seed-bit evaluation replays only the overridden
//!   digit and the trailing digits instead of the full width. The cached
//!   prefix is a literal memo of the reference computation's leading
//!   steps, so results stay bit-identical. Kernels with no stateful
//!   variant ride the SIMD ceiling under this tier.
//!
//! # The float-association rule
//!
//! Every tier must produce **bit-identical** `f64` results, not merely
//! approximately equal ones: PRs 2–6 property-tested the whole system
//! bit-identical across backends, bandwidth caps, and transports, and the
//! kernels tier must not be the layer that breaks that contract. The rule
//! that makes this possible: *a tier may reorder independent work, but
//! never the accumulation order of any single float accumulator*. The SIMD
//! tiers therefore vectorize **across independent DP instances** (one
//! instance per lane, each lane replaying the scalar op sequence exactly)
//! rather than across the digits of one instance, and `argmin` uses a
//! fixed-width lane reduction with a defined lane-order combine. Masked
//! lanes contribute `+0.0` adds, which are bit-preserving because every
//! accumulated term is finite and non-negative (probabilities). The
//! cross-tier property tests in `tests/tier_equivalence.rs` and the
//! whole-pipeline oracle in the facade's `kernel_tier_oracle.rs` enforce
//! the contract.
//!
//! # Dispatch
//!
//! [`tier::family_tier`] picks the tier per kernel family: an explicit
//! override — [`tier::set_active_tier`] or the `DCL_KERNEL_TIER`
//! environment variable (`reference` / `scalar` / `simd` /
//! `incremental`) — forces every family to one tier (the tier-matrix
//! tests rely on this), otherwise each family uses its measured-best
//! default ([`tier::default_family_tier`], pinned against the committed
//! `BENCH_bench.json` by `tests/family_dispatch.rs`).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod argmin;
pub mod bits;
pub mod digit_dp;
pub mod forms;
pub mod ratio;
pub mod tier;

pub use forms::{pair_dist_of_forms, BitForm, PairDist};
pub use tier::{
    active_tier, clear_active_tier, default_family_tier, detected_tier, dispatch_label,
    family_tier, set_active_tier, simd_features, KernelFamily, KernelTier,
};

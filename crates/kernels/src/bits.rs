//! Family 3: fragmentation and bit-accounting arithmetic.
//!
//! The single-value entry points ([`bit_len`], [`fragments`]) are exact
//! integer formulas — `const fn`s shared by every tier, because the wire
//! cost model calls them from `const` contexts and a per-call dispatch
//! would cost more than the arithmetic. The *batch* entry point
//! ([`bit_len_batch`]) is dispatched: the SIMD tier computes four bit
//! lengths at once via the exact `u64 → f64` exponent trick (split each
//! value into 32-bit halves — both below `2^52`, where the
//! magic-constant conversion is exact — and read `⌊log₂⌋` straight out of
//! the IEEE exponent field).

use crate::tier::{family_tier, KernelFamily, KernelTier};

/// Bit length of a `u64` value (at least 1, so that the value 0 still
/// occupies a bit on the wire). Moved verbatim from `dcl_sim::wire`,
/// now `const`.
#[must_use]
pub const fn bit_len(v: u64) -> u32 {
    let len = 64 - v.leading_zeros();
    if len == 0 {
        1
    } else {
        len
    }
}

/// Number of `cap`-bit physical messages a `bits`-bit logical payload
/// occupies (at least 1 — even zero-width payloads take a message). Moved
/// verbatim from `dcl_sim::cap::BandwidthCap::fragments`.
///
/// `cap` must be positive (`BandwidthCap` guarantees this upstream).
#[must_use]
pub const fn fragments(cap: u32, bits: u32) -> u32 {
    let f = bits.div_ceil(cap);
    if f == 0 {
        1
    } else {
        f
    }
}

/// Writes `bit_len(vals[i])` into `out[i]` for every `i`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn bit_len_batch(vals: &[u64], out: &mut [u32]) {
    assert_eq!(vals.len(), out.len(), "batch slices must have equal length");
    match family_tier(KernelFamily::Bits) {
        KernelTier::Reference => {
            for (v, o) in vals.iter().zip(out.iter_mut()) {
                *o = bit_len(*v);
            }
        }
        KernelTier::Scalar => scalar_batch(vals, out),
        KernelTier::Simd | KernelTier::Incremental => {
            #[cfg(target_arch = "x86_64")]
            {
                if vals.len() >= 8 && std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 support was verified at runtime on the
                    // line above.
                    unsafe { avx2::bit_len_batch(vals, out) };
                    return;
                }
            }
            scalar_batch(vals, out);
        }
    }
}

/// Branch-free scalar batch: the bit length is exact integer arithmetic,
/// so this tier differs from reference only in the `max(1)` spelling —
/// kept separate so the tier matrix exercises a distinct code path.
fn scalar_batch(vals: &[u64], out: &mut [u32]) {
    for (v, o) in vals.iter().zip(out.iter_mut()) {
        let len = 64 - v.leading_zeros();
        *o = if len == 0 { 1 } else { len };
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        _mm256_add_epi64, _mm256_and_si256, _mm256_blendv_epi8, _mm256_castpd_si256,
        _mm256_castsi256_pd, _mm256_castsi256_si128, _mm256_cmpeq_epi64, _mm256_extracti128_si256,
        _mm256_or_si256, _mm256_set1_epi64x, _mm256_set_epi64x, _mm256_setzero_si256,
        _mm256_srli_epi64, _mm256_sub_epi64, _mm256_sub_pd, _mm_cvtsi128_si64, _mm_unpackhi_epi64,
    };

    /// Four bit lengths per iteration. For each 64-bit lane: pick the high
    /// 32-bit half when nonzero (else the low half), convert that half
    /// exactly to `f64` by OR-ing the `2^52` exponent pattern and
    /// subtracting `2^52`, then `biased_exponent − 1023 + 1` is the half's
    /// bit length (`+32` when the high half was used). A zero value falls
    /// through as a negative length and clamps to 1 on extraction.
    #[target_feature(enable = "avx2")]
    pub(super) fn bit_len_batch(vals: &[u64], out: &mut [u32]) {
        const MAGIC: i64 = 0x4330_0000_0000_0000; // bits of 2^52
        let magic = _mm256_set1_epi64x(MAGIC);
        let two52 = _mm256_castsi256_pd(magic);
        let lo_mask = _mm256_set1_epi64x(0xFFFF_FFFF);
        let zero = _mm256_setzero_si256();
        let chunks = vals.len() / 4 * 4;
        let mut i = 0;
        while i < chunks {
            let v = _mm256_set_epi64x(
                vals[i + 3] as i64,
                vals[i + 2] as i64,
                vals[i + 1] as i64,
                vals[i] as i64,
            );
            let hi = _mm256_srli_epi64::<32>(v);
            let lo = _mm256_and_si256(v, lo_mask);
            let hi_zero = _mm256_cmpeq_epi64(hi, zero);
            let half = _mm256_blendv_epi8(hi, lo, hi_zero);
            // Exact u32 → f64: bits OR 2^52-pattern, minus 2^52.
            let d = _mm256_sub_pd(_mm256_castsi256_pd(_mm256_or_si256(half, magic)), two52);
            // Biased exponent − 1022 = ⌊log₂ half⌋ + 1 (nonpositive for 0).
            let exp = _mm256_srli_epi64::<52>(_mm256_castpd_si256(d));
            let len = _mm256_sub_epi64(exp, _mm256_set1_epi64x(1022));
            let len =
                _mm256_blendv_epi8(_mm256_add_epi64(len, _mm256_set1_epi64x(32)), len, hi_zero);
            let lo128 = _mm256_castsi256_si128(len);
            let hi128 = _mm256_extracti128_si256::<1>(len);
            out[i] = _mm_cvtsi128_si64(lo128).max(1) as u32;
            out[i + 1] = _mm_cvtsi128_si64(_mm_unpackhi_epi64(lo128, lo128)).max(1) as u32;
            out[i + 2] = _mm_cvtsi128_si64(hi128).max(1) as u32;
            out[i + 3] = _mm_cvtsi128_si64(_mm_unpackhi_epi64(hi128, hi128)).max(1) as u32;
            i += 4;
        }
        for k in chunks..vals.len() {
            out[k] = super::bit_len(vals[k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{clear_active_tier, set_active_tier, KernelTier};

    #[test]
    fn bit_len_basics() {
        assert_eq!(bit_len(0), 1);
        assert_eq!(bit_len(1), 1);
        assert_eq!(bit_len(2), 2);
        assert_eq!(bit_len(255), 8);
        assert_eq!(bit_len(256), 9);
        assert_eq!(bit_len(u64::MAX), 64);
    }

    #[test]
    fn fragments_round_up() {
        assert_eq!(fragments(7, 1), 1);
        assert_eq!(fragments(7, 7), 1);
        assert_eq!(fragments(7, 8), 2);
        assert_eq!(fragments(7, 64), 10);
        assert_eq!(fragments(7, 0), 1);
    }

    #[test]
    fn batch_matches_singles_across_tiers() {
        let vals: Vec<u64> = (0..70u64)
            .map(|i| {
                i.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .rotate_left(i as u32 % 64)
            })
            .chain([0, 1, u64::MAX, 1 << 31, 1 << 32, (1 << 32) - 1, 1 << 63])
            .collect();
        let expected: Vec<u32> = vals.iter().map(|&v| bit_len(v)).collect();
        for tier in KernelTier::all() {
            set_active_tier(tier);
            let mut out = vec![0u32; vals.len()];
            bit_len_batch(&vals, &mut out);
            assert_eq!(out, expected, "tier {}", tier.name());
        }
        clear_active_tier();
    }
}

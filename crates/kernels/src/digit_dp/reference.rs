//! Reference tier: the digit DP exactly as it lived in
//! `dcl_derand::slice::SliceFamily` and the edge aggregation exactly as it
//! lived in `dcl_core::derand_step` — moved, not rewritten. `self.b` became
//! `forms.len()`; every float operation and its order is unchanged. The
//! other tiers are proven against this code.

use crate::forms::{pair_dist_of_forms, BitForm};

/// `Pr[z < t]`, position `i` replaced by `f` when `over = Some((i, f))`.
#[must_use]
pub fn prob_lt_override(forms: &[BitForm], over: Option<(usize, BitForm)>, t: u64) -> f64 {
    let b = forms.len();
    if t >= 1 << b {
        return 1.0;
    }
    let mut p_eq = 1.0f64;
    let mut p_lt = 0.0f64;
    for i in (0..b).rev() {
        let form = match over {
            Some((oi, f)) if oi == i => f,
            _ => forms[i],
        };
        let p1 = form.prob_one();
        if t >> i & 1 == 1 {
            p_lt += p_eq * (1.0 - p1);
            p_eq *= p1;
        } else {
            p_eq *= 1.0 - p1;
        }
    }
    p_lt
}

/// `Pr[z_x < t_x ∧ z_y < t_y]` with per-input overrides at one position
/// each.
///
/// States track, per coordinate, whether the output prefix is still equal
/// to the threshold prefix or already strictly less; mass where a
/// coordinate exceeds its threshold prefix is discarded.
#[must_use]
pub fn prob_joint_lt_override(
    forms_x: &[BitForm],
    over_x: Option<(usize, BitForm)>,
    t_x: u64,
    forms_y: &[BitForm],
    over_y: Option<(usize, BitForm)>,
    t_y: u64,
) -> f64 {
    let b = forms_x.len();
    debug_assert_eq!(b, forms_y.len(), "inputs must share the output width");
    let full = 1u64 << b;
    if t_x >= full && t_y >= full {
        return 1.0;
    }
    if t_x >= full {
        return prob_lt_override(forms_y, over_y, t_y);
    }
    if t_y >= full {
        return prob_lt_override(forms_x, over_x, t_x);
    }
    let mut ee = 1.0f64;
    let mut el = 0.0f64;
    let mut le = 0.0f64;
    let mut ll = 0.0f64;
    for i in (0..b).rev() {
        let fx = match over_x {
            Some((oi, f)) if oi == i => f,
            _ => forms_x[i],
        };
        let fy = match over_y {
            Some((oi, f)) if oi == i => f,
            _ => forms_y[i],
        };
        let q = pair_dist_of_forms(fx, fy).pmf();
        let tbx = t_x >> i & 1;
        let tby = t_y >> i & 1;
        let (mut nee, mut nel, mut nle, mut nll) = (0.0, 0.0, 0.0, 0.0);
        for (idx, &prob) in q.iter().enumerate() {
            if prob == 0.0 {
                continue;
            }
            let bx = (idx >> 1) as u64;
            let by = (idx & 1) as u64;
            let cx = bx.cmp(&tbx);
            let cy = by.cmp(&tby);
            use std::cmp::Ordering::*;
            match (cx, cy) {
                (Greater, _) | (_, Greater) => {}
                (Equal, Equal) => nee += ee * prob,
                (Equal, Less) => nel += ee * prob,
                (Less, Equal) => nle += ee * prob,
                (Less, Less) => nll += ee * prob,
            }
            match cx {
                Greater => {}
                Equal => nel += el * prob,
                Less => nll += el * prob,
            }
            match cy {
                Greater => {}
                Equal => nle += le * prob,
                Less => nll += le * prob,
            }
            nll += ll * prob;
        }
        ee = nee;
        el = nel;
        le = nle;
        ll = nll;
    }
    ll
}

/// Joint coin probabilities `[p00, p01, p10, p11]` with per-input overrides
/// at one position each.
#[must_use]
pub fn joint_coin_probs_override(
    forms_x: &[BitForm],
    over_x: Option<(usize, BitForm)>,
    t_x: u64,
    forms_y: &[BitForm],
    over_y: Option<(usize, BitForm)>,
    t_y: u64,
) -> [f64; 4] {
    let p11 = prob_joint_lt_override(forms_x, over_x, t_x, forms_y, over_y, t_y);
    let px = prob_lt_override(forms_x, over_x, t_x);
    let py = prob_lt_override(forms_y, over_y, t_y);
    let p10 = (px - p11).max(0.0);
    let p01 = (py - p11).max(0.0);
    let p00 = (1.0 - px - py + p11).max(0.0);
    [p00, p01, p10, p11]
}

/// One conflict edge's conditional-expectation shares for both candidate
/// values of one seed bit — the body of `dcl_core::derand_step`'s inner
/// loop, verbatim (the `form_with_fix` overrides arrive precomputed as
/// `over_u`/`over_v`).
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn edge_shares(
    forms_u: &[BitForm],
    over_u: [BitForm; 2],
    t_u: u64,
    k0_inv_u: f64,
    k1_inv_u: f64,
    forms_v: &[BitForm],
    over_v: [BitForm; 2],
    t_v: u64,
    k0_inv_v: f64,
    k1_inv_v: f64,
    slice: usize,
) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    for cand in [false, true] {
        let ou = over_u[usize::from(cand)];
        let ov = over_v[usize::from(cand)];
        let p = joint_coin_probs_override(
            forms_u,
            Some((slice, ou)),
            t_u,
            forms_v,
            Some((slice, ov)),
            t_v,
        );
        // Edge survives iff both coins agree; each endpoint adds the
        // conditional expectation of its own 1/|L_ℓ| share.
        let share_u = p[3] * k1_inv_u + p[0] * k0_inv_u;
        let share_v = p[3] * k1_inv_v + p[0] * k0_inv_v;
        let base = if cand { 2 } else { 0 };
        out[base] = share_u;
        out[base + 1] = share_v;
    }
    out
}

/// `Pr[z_u ∈ [ul, uh) ∧ z_v ∈ [vl, vh)]` — the inclusion–exclusion both
/// drivers used, verbatim.
#[must_use]
pub fn joint_interval(
    forms_u: &[BitForm],
    ul: u64,
    uh: u64,
    forms_v: &[BitForm],
    vl: u64,
    vh: u64,
) -> f64 {
    let j = |a: u64, b: u64| prob_joint_lt_override(forms_u, None, a, forms_v, None, b);
    (j(uh, vh) - j(ul, vh) - j(uh, vl) + j(ul, vl)).max(0.0)
}

//! Scalar-SoA tier: the same DP on the `Soa` layout.
//!
//! Bit-identity argument: per digit, the five-case split is resolved by
//! integer bit tests on the `known`/`offset` bitsets, and the nonzero pmf
//! entries are emitted **in ascending pmf-index order** — exactly the
//! entries the reference's `idx 0..4, skip prob == 0` loop visits, in the
//! same order. The transition body is the reference's inner loop verbatim,
//! so every accumulator sees the same float operations in the same order.
//! What this tier removes is overhead *around* the float ops: the
//! per-position override branch (pre-applied by `Soa::pack`), the
//! `PairDist` enum and its `[f64; 4]` pmf materialization, and the
//! zero-probability float compares.

use super::Soa;
use crate::forms::BitForm;

/// Marginal digit DP on a packed input. Same op sequence as the reference
/// ([`super::reference::prob_lt_override`]); the override is already packed.
#[must_use]
pub(crate) fn prob_lt(s: &Soa, t: u64) -> f64 {
    if t >= 1 << s.b {
        return 1.0;
    }
    let mut p_eq = 1.0f64;
    let mut p_lt = 0.0f64;
    for i in (0..s.b).rev() {
        let p1 = s.prob_one(i);
        if t >> i & 1 == 1 {
            p_lt += p_eq * (1.0 - p1);
            p_eq *= p1;
        } else {
            p_eq *= 1.0 - p1;
        }
    }
    p_lt
}

/// Joint digit DP on packed inputs.
#[must_use]
pub(crate) fn prob_joint_lt(sx: &Soa, t_x: u64, sy: &Soa, t_y: u64) -> f64 {
    debug_assert_eq!(sx.b, sy.b, "inputs must share the output width");
    let b = sx.b;
    let full = 1u64 << b;
    if t_x >= full && t_y >= full {
        return 1.0;
    }
    if t_x >= full {
        return prob_lt(sy, t_y);
    }
    if t_y >= full {
        return prob_lt(sx, t_x);
    }
    let mut ee = 1.0f64;
    let mut el = 0.0f64;
    let mut le = 0.0f64;
    let mut ll = 0.0f64;
    for i in (0..b).rev() {
        let tbx = t_x >> i & 1;
        let tby = t_y >> i & 1;
        let kx = sx.known >> i & 1 == 1;
        let ky = sy.known >> i & 1 == 1;
        let ox = sx.offset >> i & 1;
        let oy = sy.offset >> i & 1;
        // The nonzero pmf entries `(bx, by, prob)` in ascending pmf-index
        // (`bx<<1|by`) order — the exact visit order of the reference loop.
        let mut entries = [(0u64, 0u64, 0.0f64); 4];
        let count = match (kx, ky) {
            (true, true) => {
                entries[0] = (ox, oy, 1.0);
                1
            }
            (true, false) => {
                entries[0] = (ox, 0, 0.5);
                entries[1] = (ox, 1, 0.5);
                2
            }
            (false, true) => {
                entries[0] = (0, oy, 0.5);
                entries[1] = (1, oy, 0.5);
                2
            }
            (false, false) => {
                if sx.masks[i] == sy.masks[i] {
                    let d = ox ^ oy;
                    entries[0] = (0, d, 0.5);
                    entries[1] = (1, 1 ^ d, 0.5);
                    2
                } else {
                    entries[0] = (0, 0, 0.25);
                    entries[1] = (0, 1, 0.25);
                    entries[2] = (1, 0, 0.25);
                    entries[3] = (1, 1, 0.25);
                    4
                }
            }
        };
        let (mut nee, mut nel, mut nle, mut nll) = (0.0, 0.0, 0.0, 0.0);
        for &(bx, by, prob) in &entries[..count] {
            let cx = bx.cmp(&tbx);
            let cy = by.cmp(&tby);
            use std::cmp::Ordering::*;
            match (cx, cy) {
                (Greater, _) | (_, Greater) => {}
                (Equal, Equal) => nee += ee * prob,
                (Equal, Less) => nel += ee * prob,
                (Less, Equal) => nle += ee * prob,
                (Less, Less) => nll += ee * prob,
            }
            match cx {
                Greater => {}
                Equal => nel += el * prob,
                Less => nll += el * prob,
            }
            match cy {
                Greater => {}
                Equal => nle += le * prob,
                Less => nll += le * prob,
            }
            nll += ll * prob;
        }
        ee = nee;
        el = nel;
        le = nle;
        ll = nll;
    }
    ll
}

/// Coin probabilities on packed inputs; the combine replays the reference
/// order (`p11`, `px`, `py`, then the clamped differences).
#[must_use]
pub(crate) fn joint_coin_probs(sx: &Soa, t_x: u64, sy: &Soa, t_y: u64) -> [f64; 4] {
    let p11 = prob_joint_lt(sx, t_x, sy, t_y);
    let px = prob_lt(sx, t_x);
    let py = prob_lt(sy, t_y);
    let p10 = (px - p11).max(0.0);
    let p01 = (py - p11).max(0.0);
    let p00 = (1.0 - px - py + p11).max(0.0);
    [p00, p01, p10, p11]
}

/// Edge aggregation: pack each endpoint once per candidate (the override
/// differs between candidates), then run the three DPs per candidate in
/// reference order.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn edge_shares(
    forms_u: &[BitForm],
    over_u: [BitForm; 2],
    t_u: u64,
    k0_inv_u: f64,
    k1_inv_u: f64,
    forms_v: &[BitForm],
    over_v: [BitForm; 2],
    t_v: u64,
    k0_inv_v: f64,
    k1_inv_v: f64,
    slice: usize,
) -> [f64; 4] {
    let mut out = [0.0f64; 4];
    for cand in [false, true] {
        let su = Soa::pack(forms_u, Some((slice, over_u[usize::from(cand)])));
        let sv = Soa::pack(forms_v, Some((slice, over_v[usize::from(cand)])));
        let p = joint_coin_probs(&su, t_u, &sv, t_v);
        let share_u = p[3] * k1_inv_u + p[0] * k0_inv_u;
        let share_v = p[3] * k1_inv_v + p[0] * k0_inv_v;
        let base = if cand { 2 } else { 0 };
        out[base] = share_u;
        out[base + 1] = share_v;
    }
    out
}

/// Interval probability: pack both endpoints once, reuse across the four
/// CDF corners, combine in the fixed order.
#[must_use]
pub fn joint_interval(
    forms_u: &[BitForm],
    ul: u64,
    uh: u64,
    forms_v: &[BitForm],
    vl: u64,
    vh: u64,
) -> f64 {
    let su = Soa::pack(forms_u, None);
    let sv = Soa::pack(forms_v, None);
    joint_interval_packed(&su, ul, uh, &sv, vl, vh)
}

/// Interval probability on inputs the caller keeps packed (the clique/MPC
/// drivers' SoA scratch): the four CDF corners and the fixed combine,
/// without the per-call pack.
#[must_use]
pub fn joint_interval_packed(su: &Soa, ul: u64, uh: u64, sv: &Soa, vl: u64, vh: u64) -> f64 {
    let j = |a: u64, b: u64| prob_joint_lt(su, a, sv, b);
    (j(uh, vh) - j(ul, vh) - j(uh, vl) + j(ul, vl)).max(0.0)
}
